"""Asyncio JSON-lines front-end: concurrent queries, stats, error replies."""

import asyncio

import pytest

from repro.api import RunConfig, run
from repro.serve import InfluenceService, ServingFrontend, request
from repro.serve.frontend import result_payload

MACHINES = 2
SEED = 3


@pytest.fixture
def service(small_wc_graph):
    with InfluenceService(small_wc_graph, machines=MACHINES, seed=SEED) as svc:
        yield svc


def run_frontend(service, coro_fn):
    """Start a frontend, run ``coro_fn(port)`` against it, tear down."""

    async def main():
        frontend = ServingFrontend(service)
        await frontend.start()
        try:
            return await coro_fn(frontend.port)
        finally:
            await frontend.stop()

    return asyncio.run(main())


class TestRequests:
    def test_ping(self, service):
        async def go(port):
            return await asyncio.to_thread(request, port, {"op": "ping"})

        reply = run_frontend(service, go)
        assert reply == {"ok": True, "op": "ping"}

    def test_query_matches_cold_run(self, service, small_wc_graph):
        async def go(port):
            return await asyncio.to_thread(
                request, port, {"op": "query", "kind": "diimm", "k": 4}
            )

        reply = run_frontend(service, go)
        cold = run(
            "diimm", RunConfig(graph=small_wc_graph, k=4, machines=MACHINES, seed=SEED)
        )
        assert reply["ok"]
        assert reply["seeds"] == cold.seeds
        assert reply["objective"] == pytest.approx(cold.estimated_spread)
        assert set(reply["breakdown"]) >= {"generation", "computation", "total"}

    def test_concurrent_queries(self, service, small_wc_graph):
        async def go(port):
            def call(k):
                return request(port, {"op": "query", "kind": "diimm", "k": k})

            return await asyncio.gather(
                asyncio.to_thread(call, 3),
                asyncio.to_thread(call, 5),
                asyncio.to_thread(call, 3),
            )

        r3a, r5, r3b = run_frontend(service, go)
        cold3 = run(
            "diimm", RunConfig(graph=small_wc_graph, k=3, machines=MACHINES, seed=SEED)
        )
        cold5 = run(
            "diimm", RunConfig(graph=small_wc_graph, k=5, machines=MACHINES, seed=SEED)
        )
        assert r3a["seeds"] == r3b["seeds"] == cold3.seeds
        assert r5["seeds"] == cold5.seeds

    def test_stats_after_queries(self, service):
        async def go(port):
            await asyncio.to_thread(
                request, port, {"op": "query", "kind": "diimm", "k": 3}
            )
            return await asyncio.to_thread(request, port, {"op": "stats"})

        stats = run_frontend(service, go)
        assert stats["ok"]
        assert stats["queries"] == 1
        assert stats["by_kind"] == {"diimm": 1}
        assert stats["pools"]

    def test_list_fields_coerced(self, service):
        async def go(port):
            return await asyncio.to_thread(
                request,
                port,
                {"op": "query", "kind": "targeted", "k": 3, "targets": [0, 5, 10, 15]},
            )

        reply = run_frontend(service, go)
        assert reply["ok"]
        assert len(reply["seeds"]) == 3


class TestErrors:
    @pytest.mark.parametrize(
        "payload",
        [
            {"op": "query", "kind": "nope"},
            {"op": "unknown-op"},
            {"op": "query"},  # missing kind
            {"op": "query", "kind": "budgeted"},  # missing budget
        ],
    )
    def test_bad_requests_get_error_replies(self, service, payload):
        async def go(port):
            return await asyncio.to_thread(request, port, payload)

        reply = run_frontend(service, go)
        assert reply["ok"] is False
        assert "error" in reply

    def test_malformed_json(self, service):
        import json
        import socket

        async def go(port):
            def call():
                with socket.create_connection(("127.0.0.1", port), timeout=60) as sock:
                    sock.sendall(b"this is not json\n")
                    return json.loads(sock.makefile().readline())

            return await asyncio.to_thread(call)

        reply = run_frontend(service, go)
        assert reply["ok"] is False

    def test_connection_survives_errors(self, service):
        import json
        import socket

        async def go(port):
            def call():
                with socket.create_connection(("127.0.0.1", port), timeout=600) as sock:
                    stream = sock.makefile("rwb")
                    stream.write(b'{"op": "bogus"}\n')
                    stream.flush()
                    bad = json.loads(stream.readline())
                    stream.write(b'{"op": "ping"}\n')
                    stream.flush()
                    good = json.loads(stream.readline())
                    return bad, good

            return await asyncio.to_thread(call)

        bad, good = run_frontend(service, go)
        assert bad["ok"] is False
        assert good["ok"] is True


class TestPayloads:
    def test_unknown_result_type_rejected(self):
        with pytest.raises(TypeError):
            result_payload(object())
