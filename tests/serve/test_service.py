"""InfluenceService: warm answers must equal cold runs, bit for bit."""

import threading

import numpy as np
import pytest

from repro.api import RunConfig, run
from repro.applications import (
    budgeted_influence_maximization,
    profit_maximization,
    targeted_influence_maximization,
)
from repro.serve import InfluenceService, Query, default_costs

MACHINES = 3
SEED = 7


@pytest.fixture
def service(small_wc_graph):
    with InfluenceService(small_wc_graph, machines=MACHINES, seed=SEED) as svc:
        yield svc


class TestQueryValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Query(kind="pagerank")

    def test_targeted_needs_targets(self):
        with pytest.raises(ValueError, match="target"):
            Query(kind="targeted", k=3)

    def test_budgeted_needs_budget(self):
        with pytest.raises(ValueError, match="budget"):
            Query(kind="budgeted")

    def test_targets_normalized(self):
        q = Query(kind="targeted", targets=(5, 1, 5, 3))
        assert q.targets == (1, 3, 5)

    def test_fingerprint_is_hashable_and_distinct(self):
        a = Query(kind="diimm", k=5)
        b = Query(kind="diimm", k=6)
        assert hash(a.fingerprint()) != hash(b.fingerprint()) or a != b
        assert a.fingerprint() == Query(kind="diimm", k=5).fingerprint()


class TestWarmColdEquivalence:
    def test_diimm_varying_k(self, service, small_wc_graph):
        # Descending then ascending k: the second query tops the pool up,
        # the third is served from a strictly larger pool.
        for k in (6, 9, 3):
            warm = service.query(Query(kind="diimm", k=k))
            cold = run(
                "diimm", RunConfig(graph=small_wc_graph, k=k, machines=MACHINES, seed=SEED)
            )
            assert warm.seeds == cold.seeds
            assert warm.estimated_spread == cold.estimated_spread
            assert warm.num_rr_sets == cold.num_rr_sets

    def test_imm_baseline(self, service, small_wc_graph):
        warm = service.query(Query(kind="imm", k=4))
        cold = run("imm", RunConfig(graph=small_wc_graph, k=4, seed=SEED))
        assert warm.seeds == cold.seeds
        assert warm.estimated_spread == cold.estimated_spread

    def test_budgeted_application(self, service, small_wc_graph):
        warm = service.query(Query(kind="budgeted", budget=20.0, num_rr_sets=2000))
        cold = budgeted_influence_maximization(
            small_wc_graph,
            default_costs(small_wc_graph),
            20.0,
            MACHINES,
            2000,
            seed=SEED,
        )
        assert warm.seeds == cold.seeds
        assert warm.objective == cold.objective
        assert warm.num_rr_sets == cold.num_rr_sets == 2000

    def test_profit_application(self, service, small_wc_graph):
        warm = service.query(Query(kind="profit", num_rr_sets=2000))
        cold = profit_maximization(
            small_wc_graph, default_costs(small_wc_graph), MACHINES, 2000, seed=SEED
        )
        assert warm.seeds == cold.seeds
        assert warm.objective == cold.objective

    def test_targeted_application(self, service, small_wc_graph):
        targets = tuple(range(0, small_wc_graph.num_nodes, 5))
        warm = service.query(
            Query(kind="targeted", k=4, targets=targets, num_rr_sets=1500)
        )
        cold = targeted_influence_maximization(
            small_wc_graph, list(targets), 4, MACHINES, 1500, seed=SEED
        )
        assert warm.seeds == cold.seeds
        assert warm.objective == cold.objective

    def test_app_after_im_queries_shares_pool(self, service, small_wc_graph):
        # A diimm query grows the cluster pool first; the budgeted query
        # then reads a prefix of the same collections and must still equal
        # its cold run.
        service.query(Query(kind="diimm", k=5))
        warm = service.query(Query(kind="budgeted", budget=15.0, num_rr_sets=1000))
        cold = budgeted_influence_maximization(
            small_wc_graph,
            default_costs(small_wc_graph),
            15.0,
            MACHINES,
            1000,
            seed=SEED,
        )
        assert warm.seeds == cold.seeds
        assert warm.objective == cold.objective
        assert service.describe()["num_pools"] == 1  # same ('cluster','bfs') pool


class TestCaching:
    def test_repeat_query_hits_cache(self, service):
        first = service.query(Query(kind="diimm", k=5))
        second = service.query(Query(kind="diimm", k=5))
        assert second is first
        stats = service.describe()
        assert stats["queries"] == 2
        assert stats["cache_hits"] == 1

    def test_pool_growth_invalidates_entry_but_answer_is_stable(self, service):
        first = service.query(Query(kind="diimm", k=4))
        before = service._im_pool("diimm").signature()
        # A tighter eps needs a larger theta, forcing a pool top-up.
        service.query(Query(kind="diimm", k=4, eps=0.2))
        assert service._im_pool("diimm").signature() != before
        again = service.query(Query(kind="diimm", k=4))
        assert again is not first  # recomputed under the new pool signature
        assert again.seeds == first.seeds  # …but the answer cannot change

    def test_lru_eviction(self, small_wc_graph):
        with InfluenceService(
            small_wc_graph, machines=MACHINES, seed=SEED, cache_size=1
        ) as svc:
            svc.query(Query(kind="diimm", k=3))
            svc.query(Query(kind="diimm", k=5))
            assert svc.describe()["cache_entries"] == 1


class TestConcurrency:
    def test_threaded_queries_agree_with_cold_runs(self, service, small_wc_graph):
        ks = [3, 5, 7, 3, 5, 7]
        results: dict[int, list] = {}
        errors = []

        def worker(idx: int, k: int) -> None:
            try:
                results[idx] = service.query(Query(kind="diimm", k=k)).seeds
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i, k)) for i, k in enumerate(ks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        cold = {
            k: run(
                "diimm", RunConfig(graph=small_wc_graph, k=k, machines=MACHINES, seed=SEED)
            ).seeds
            for k in set(ks)
        }
        for idx, k in enumerate(ks):
            assert results[idx] == cold[k]


class TestLifecycle:
    def test_close_rejects_further_queries(self, small_wc_graph):
        svc = InfluenceService(small_wc_graph, machines=2, seed=SEED)
        svc.query(Query(kind="diimm", k=3))
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.query(Query(kind="diimm", k=3))
        svc.close()  # idempotent

    def test_describe_and_pool_sizes(self, service):
        service.query(Query(kind="diimm", k=3))
        sizes = service.pool_sizes()
        assert len(sizes) == 1
        (per_key,) = sizes.values()
        assert sum(per_key["main"]) > 0
        stats = service.describe()
        assert stats["machines"] == MACHINES
        assert stats["by_kind"] == {"diimm": 1}


@pytest.mark.slow
class TestMultiprocessingService:
    def test_warm_equals_cold_under_mp_executor(self, small_wc_graph):
        with InfluenceService(
            small_wc_graph,
            machines=2,
            seed=SEED,
            executor="multiprocessing",
            processes=2,
        ) as svc:
            warm_a = svc.query(Query(kind="diimm", k=4))
            warm_b = svc.query(Query(kind="diimm", k=6))
        cold_a = run(
            "diimm", RunConfig(graph=small_wc_graph, k=4, machines=2, seed=SEED)
        )
        cold_b = run(
            "diimm", RunConfig(graph=small_wc_graph, k=6, machines=2, seed=SEED)
        )
        assert warm_a.seeds == cold_a.seeds
        assert warm_b.seeds == cold_b.seeds
