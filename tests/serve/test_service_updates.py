"""Dynamic serving: apply_update / compact end to end, graph_version,
selective cache eviction, and the frontend update ops."""

import asyncio

import pytest

from repro.graphs import DirectedGraph, GraphDelta, VersionedGraph
from repro.serve import InfluenceService, Query, ServingFrontend, request

MACHINES = 2
SEED = 3


def fresh_graph(base):
    return DirectedGraph(base.num_nodes, *base.edge_arrays())


def make_delta(graph):
    edges = [(u, v) for u, v, _ in graph.edges()]
    return GraphDelta(
        add_edges=[(0, 7, 0.4), (33, 90, 0.25)],
        remove_edges=edges[3:8],
        reweight_edges=[(*edges[15], 0.85)],
    )


@pytest.fixture
def dynamic_service(small_wc_graph):
    with InfluenceService(
        fresh_graph(small_wc_graph), machines=MACHINES, seed=SEED, dynamic=True
    ) as svc:
        yield svc


def run_frontend(service, coro_fn):
    """Start a frontend, run ``coro_fn(port)`` against it, tear down."""

    async def main():
        frontend = ServingFrontend(service)
        await frontend.start()
        try:
            return await coro_fn(frontend.port)
        finally:
            await frontend.stop()

    return asyncio.run(main())


class TestGraphVersion:
    """Satellite regression: graph_version must be read somewhere, not a
    write-only counter — it is exposed in describe() and update replies
    and advances with every mutation."""

    def test_starts_at_zero_and_is_described(self, dynamic_service):
        assert dynamic_service.graph_version == 0
        assert dynamic_service.describe()["graph_version"] == 0
        assert dynamic_service.describe()["dynamic"] is True

    def test_increments_on_update_and_compact(self, dynamic_service, small_wc_graph):
        summary = dynamic_service.apply_update(make_delta(small_wc_graph))
        assert summary["graph_version"] == 1
        assert dynamic_service.describe()["graph_version"] == 1
        summary = dynamic_service.compact()
        assert summary["graph_version"] == 2
        assert dynamic_service.describe()["graph_version"] == 2

    def test_static_service_reports_version_zero_forever(self, small_wc_graph):
        with InfluenceService(small_wc_graph, machines=MACHINES, seed=SEED) as svc:
            svc.query(Query(kind="diimm", k=3))
            assert svc.describe()["graph_version"] == 0
            assert svc.describe()["dynamic"] is False


class TestDifferential:
    @pytest.mark.parametrize("kind", ["imm", "diimm", "dsubsim"])
    def test_post_update_answers_match_fresh_service(
        self, dynamic_service, small_wc_graph, kind
    ):
        delta = make_delta(small_wc_graph)
        dynamic_service.query(Query(kind=kind, k=4))  # warm the pool first
        dynamic_service.apply_update(delta)
        warm = dynamic_service.query(Query(kind=kind, k=4))

        updated = VersionedGraph(fresh_graph(small_wc_graph))
        updated.apply(delta)
        with InfluenceService(
            updated, machines=MACHINES, seed=SEED, dynamic=True
        ) as fresh:
            cold = fresh.query(Query(kind=kind, k=4))
        assert warm.seeds == cold.seeds
        assert warm.estimated_spread == pytest.approx(cold.estimated_spread)
        assert warm.num_rr_sets == cold.num_rr_sets

    def test_application_kinds_survive_update(self, dynamic_service, small_wc_graph):
        delta = make_delta(small_wc_graph)
        targets = tuple(range(0, 60, 3))
        queries = [
            Query(kind="budgeted", budget=3.0, num_rr_sets=4000),
            Query(kind="targeted", targets=targets, k=3, num_rr_sets=4000),
        ]
        for q in queries:
            dynamic_service.query(q)
        dynamic_service.apply_update(delta)
        warm = [dynamic_service.query(q) for q in queries]

        updated = VersionedGraph(fresh_graph(small_wc_graph))
        updated.apply(delta)
        with InfluenceService(
            updated, machines=MACHINES, seed=SEED, dynamic=True
        ) as fresh:
            cold = [fresh.query(q) for q in queries]
        for w, c in zip(warm, cold):
            assert w.seeds == c.seeds
            assert w.objective == pytest.approx(c.objective)

    def test_compact_preserves_answers(self, dynamic_service, small_wc_graph):
        dynamic_service.apply_update(make_delta(small_wc_graph))
        before = dynamic_service.query(Query(kind="diimm", k=4))
        dynamic_service.compact()
        after = dynamic_service.query(Query(kind="diimm", k=4))
        assert before.seeds == after.seeds
        assert before.num_rr_sets == after.num_rr_sets


class TestCacheEviction:
    def test_update_evicts_only_rewritten_pools(self, dynamic_service, small_wc_graph):
        q = Query(kind="diimm", k=4)
        dynamic_service.query(q)
        dynamic_service.query(q)
        assert dynamic_service.stats.cache_hits == 1
        summary = dynamic_service.apply_update(make_delta(small_wc_graph))
        assert summary["evicted"] >= 1
        # Post-update query recomputes (miss), then hits again.
        dynamic_service.query(q)
        assert dynamic_service.stats.cache_hits == 1
        dynamic_service.query(q)
        assert dynamic_service.stats.cache_hits == 2

    def test_untouched_pool_keeps_cache(self, dynamic_service):
        q = Query(kind="diimm", k=4)
        dynamic_service.query(q)
        # A delta whose endpoints appear in no RR set of the resident
        # pool would keep the cache; the cheap guaranteed case is a
        # repair that rewrites nothing: epoch stays, entry stays valid.
        before = dynamic_service.describe()["cache_entries"]
        summary = dynamic_service.apply_update(GraphDelta())
        assert summary["evicted"] == 0
        assert dynamic_service.describe()["cache_entries"] == before
        dynamic_service.query(q)
        assert dynamic_service.stats.cache_hits == 1


class TestRefusals:
    def test_static_service_refuses_updates(self, small_wc_graph):
        with InfluenceService(small_wc_graph, machines=MACHINES, seed=SEED) as svc:
            with pytest.raises(RuntimeError, match="dynamic=True"):
                svc.apply_update(GraphDelta(add_edges=[(0, 1, 0.5)]))
            with pytest.raises(RuntimeError, match="static"):
                svc.compact()

    def test_closed_service_refuses_updates(self, small_wc_graph):
        svc = InfluenceService(
            small_wc_graph, machines=MACHINES, seed=SEED, dynamic=True
        )
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.apply_update(GraphDelta(add_edges=[(0, 1, 0.5)]))


class TestFrontendOps:
    def test_update_op_round_trip(self, dynamic_service, small_wc_graph):
        delta = make_delta(small_wc_graph)

        async def go(port):
            first = await asyncio.to_thread(
                request, port, {"op": "query", "kind": "diimm", "k": 4}
            )
            update = await asyncio.to_thread(
                request, port, {"op": "update", **delta.to_json()}
            )
            second = await asyncio.to_thread(
                request, port, {"op": "query", "kind": "diimm", "k": 4}
            )
            stats = await asyncio.to_thread(request, port, {"op": "stats"})
            return first, update, second, stats

        first, update, second, stats = run_frontend(dynamic_service, go)
        assert first["ok"] and second["ok"]
        assert update["ok"] and update["op"] == "update"
        assert update["graph_version"] == 1
        assert update["num_changes"] == delta.num_changes
        assert sum(update["repaired"].values()) > 0
        assert stats["graph_version"] == 1

        updated = VersionedGraph(fresh_graph(small_wc_graph))
        updated.apply(delta)
        with InfluenceService(
            updated, machines=MACHINES, seed=SEED, dynamic=True
        ) as fresh:
            cold = fresh.query(Query(kind="diimm", k=4))
        assert second["seeds"] == cold.seeds

    def test_compact_op(self, dynamic_service, small_wc_graph):
        async def go(port):
            await asyncio.to_thread(
                request, port, {"op": "update", **make_delta(small_wc_graph).to_json()}
            )
            return await asyncio.to_thread(request, port, {"op": "compact"})

        reply = run_frontend(dynamic_service, go)
        assert reply["ok"] and reply["op"] == "compact"
        assert reply["graph_version"] == 2
        assert reply["num_edges"] == dynamic_service.graph.num_edges

    def test_update_on_static_service_is_error_reply(self, small_wc_graph):
        with InfluenceService(small_wc_graph, machines=MACHINES, seed=SEED) as svc:

            async def go(port):
                return await asyncio.to_thread(
                    request, port, {"op": "update", "add_edges": [[0, 1, 0.5]]}
                )

            reply = run_frontend(svc, go)
        assert reply["ok"] is False
        assert "dynamic" in reply["error"]

    def test_malformed_delta_is_error_reply(self, dynamic_service):
        async def go(port):
            return await asyncio.to_thread(
                request, port, {"op": "update", "add_edgez": [[0, 1, 0.5]]}
            )

        reply = run_frontend(dynamic_service, go)
        assert reply["ok"] is False
        assert "unknown" in reply["error"]


class TestMultiprocessingService:
    def test_dynamic_update_through_worker_pool(self, small_wc_graph):
        delta = make_delta(small_wc_graph)
        with InfluenceService(
            fresh_graph(small_wc_graph),
            machines=MACHINES,
            seed=SEED,
            executor="multiprocessing",
            processes=MACHINES,
            dynamic=True,
        ) as svc:
            svc.query(Query(kind="diimm", k=4))
            svc.apply_update(delta)
            warm = svc.query(Query(kind="diimm", k=4))

        updated = VersionedGraph(fresh_graph(small_wc_graph))
        updated.apply(delta)
        with InfluenceService(
            updated, machines=MACHINES, seed=SEED, dynamic=True
        ) as fresh:
            cold = fresh.query(Query(kind="diimm", k=4))
        assert warm.seeds == cold.seeds
        assert warm.num_rr_sets == cold.num_rr_sets
