"""Unit tests for seed minimization."""

import pytest

from repro.applications import seed_minimization
from repro.graphs import uniform, star_graph, path_graph


class TestSeedMinimization:
    def test_star_needs_one_seed(self):
        graph = uniform(star_graph(9), 1.0)
        result = seed_minimization(
            graph, required_spread=8.0, num_machines=2, num_rr_sets=500
        )
        assert result.seeds == [0]
        assert result.params["achieved"] >= 8.0

    def test_higher_requirement_needs_more_seeds(self, small_wc_graph):
        low = seed_minimization(
            small_wc_graph, required_spread=10.0, num_machines=2,
            num_rr_sets=2000, seed=1,
        )
        high = seed_minimization(
            small_wc_graph, required_spread=60.0, num_machines=2,
            num_rr_sets=2000, seed=1,
        )
        assert len(high.seeds) > len(low.seeds)

    def test_achieved_meets_requirement(self, small_wc_graph):
        result = seed_minimization(
            small_wc_graph, required_spread=30.0, num_machines=3,
            num_rr_sets=2000, seed=2,
        )
        assert result.objective >= 30.0 - 1e-9

    def test_max_seeds_cap(self, small_wc_graph):
        result = seed_minimization(
            small_wc_graph, required_spread=150.0, num_machines=2,
            num_rr_sets=1000, max_seeds=3, seed=0,
        )
        assert len(result.seeds) <= 3

    def test_disconnected_requirement_unreachable(self):
        # Two isolated nodes with no edges: only the selected roots are
        # covered, so coverage saturates once marginals hit zero.
        graph = uniform(path_graph(2), 0.0)
        result = seed_minimization(
            graph, required_spread=2.0, num_machines=1, num_rr_sets=100
        )
        assert len(result.seeds) <= 2

    def test_validation(self, small_wc_graph):
        with pytest.raises(ValueError, match="required_spread"):
            seed_minimization(
                small_wc_graph, required_spread=0.5, num_machines=1, num_rr_sets=10
            )
        with pytest.raises(ValueError, match="max_seeds"):
            seed_minimization(
                small_wc_graph, required_spread=5.0, num_machines=1,
                num_rr_sets=10, max_seeds=0,
            )
