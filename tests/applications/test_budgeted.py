"""Unit tests for budgeted influence maximization."""

import numpy as np
import pytest

from repro.applications import budgeted_influence_maximization
from repro.graphs import GraphBuilder, uniform, star_graph


class TestBudgetedIM:
    def test_budget_respected(self, small_wc_graph, rng):
        costs = rng.uniform(0.5, 2.0, size=small_wc_graph.num_nodes)
        result = budgeted_influence_maximization(
            small_wc_graph, costs, budget=5.0, num_machines=2, num_rr_sets=800
        )
        assert float(costs[result.seeds].sum()) <= 5.0 + 1e-9
        assert result.params["spent"] <= 5.0 + 1e-6

    def test_uniform_costs_match_cardinality_greedy(self, small_wc_graph):
        """Unit costs and budget k reduce to plain k-seed greedy coverage."""
        costs = np.ones(small_wc_graph.num_nodes)
        result = budgeted_influence_maximization(
            small_wc_graph, costs, budget=4.0, num_machines=2,
            num_rr_sets=1000, seed=3,
        )
        assert len(result.seeds) == 4

    def test_expensive_hub_skipped(self):
        # Hub covers everything but costs more than the whole budget;
        # greedy must fall back to leaves.
        graph = uniform(star_graph(6), 1.0)
        costs = np.ones(7)
        costs[0] = 100.0
        result = budgeted_influence_maximization(
            graph, costs, budget=3.0, num_machines=2, num_rr_sets=400
        )
        assert 0 not in result.seeds
        assert len(result.seeds) == 3

    def test_cheap_hub_preferred(self):
        graph = uniform(star_graph(6), 1.0)
        costs = np.full(7, 3.0)
        costs[0] = 1.0
        result = budgeted_influence_maximization(
            graph, costs, budget=3.0, num_machines=2, num_rr_sets=400
        )
        assert 0 in result.seeds

    def test_singleton_safeguard(self):
        # One node with enormous coverage but cost = budget; the ratio
        # rule may prefer many cheap low-coverage nodes, the singleton
        # guard must still consider the big node.
        builder = GraphBuilder(num_nodes=30)
        for leaf in range(1, 25):
            builder.add_edge(0, leaf, 1.0)
        builder.add_edge(25, 26, 1.0)
        graph = builder.build()
        costs = np.ones(30)
        costs[0] = 4.0
        result = budgeted_influence_maximization(
            graph, costs, budget=4.0, num_machines=2, num_rr_sets=800
        )
        # Covering with the hub reaches ~25 nodes; any 4 cheap nodes far
        # fewer — the safeguard (or the ratio greedy) must find the hub.
        assert 0 in result.seeds

    def test_validation(self, small_wc_graph):
        n = small_wc_graph.num_nodes
        with pytest.raises(ValueError, match="one entry per node"):
            budgeted_influence_maximization(
                small_wc_graph, [1.0], budget=1, num_machines=1, num_rr_sets=10
            )
        with pytest.raises(ValueError, match="positive"):
            budgeted_influence_maximization(
                small_wc_graph, np.zeros(n), budget=1, num_machines=1, num_rr_sets=10
            )
        with pytest.raises(ValueError, match="budget"):
            budgeted_influence_maximization(
                small_wc_graph, np.ones(n), budget=0, num_machines=1, num_rr_sets=10
            )
