"""Unit tests for targeted influence maximization."""

import pytest

from repro.applications import TargetedSampler, targeted_influence_maximization
from repro.graphs import GraphBuilder
from repro.ris import make_sampler


class TestTargetedSampler:
    def test_roots_only_from_targets(self, small_wc_graph, rng):
        base = make_sampler(small_wc_graph, "ic")
        targets = [3, 7, 11]
        sampler = TargetedSampler(base, targets)
        for __ in range(100):
            assert sampler.sample(rng).root in targets

    def test_num_targets_deduplicates(self, small_wc_graph):
        base = make_sampler(small_wc_graph, "ic")
        sampler = TargetedSampler(base, [1, 1, 2])
        assert sampler.num_targets == 2

    def test_empty_targets_rejected(self, small_wc_graph):
        base = make_sampler(small_wc_graph, "ic")
        with pytest.raises(ValueError, match="not be empty"):
            TargetedSampler(base, [])

    def test_out_of_range_targets_rejected(self, small_wc_graph):
        base = make_sampler(small_wc_graph, "ic")
        with pytest.raises(ValueError, match="target ids"):
            TargetedSampler(base, [10**6])


class TestTargetedIM:
    def test_seed_reaches_targets(self):
        # Two disjoint stars; targets are the leaves of star B, so the
        # hub of star B must be selected despite equal degrees.
        builder = GraphBuilder(num_nodes=12)
        for leaf in range(1, 6):
            builder.add_edge(0, leaf, 1.0)  # star A: hub 0
        for leaf in range(7, 12):
            builder.add_edge(6, leaf, 1.0)  # star B: hub 6
        graph = builder.build()
        result = targeted_influence_maximization(
            graph, targets=range(7, 12), k=1, num_machines=2, num_rr_sets=600
        )
        assert result.seeds == [6]

    def test_objective_bounded_by_targets(self, small_wc_graph):
        targets = list(range(20))
        result = targeted_influence_maximization(
            small_wc_graph, targets, k=3, num_machines=2, num_rr_sets=500
        )
        assert 0 <= result.objective <= len(targets)
        assert result.params["num_targets"] == 20

    def test_all_nodes_targeted_recovers_plain_im(self, small_wc_graph):
        """Targets = V reduces to ordinary influence maximization."""
        result = targeted_influence_maximization(
            small_wc_graph,
            range(small_wc_graph.num_nodes),
            k=3,
            num_machines=2,
            num_rr_sets=2000,
            seed=1,
        )
        assert len(result.seeds) == 3
        assert result.objective > 3  # seeds influence at least themselves

    def test_validation(self, small_wc_graph):
        with pytest.raises(ValueError):
            targeted_influence_maximization(
                small_wc_graph, [0], k=0, num_machines=1, num_rr_sets=10
            )
        with pytest.raises(ValueError):
            targeted_influence_maximization(
                small_wc_graph, [0], k=1, num_machines=1, num_rr_sets=0
            )

    def test_metrics_recorded(self, small_wc_graph):
        result = targeted_influence_maximization(
            small_wc_graph, [0, 1, 2], k=2, num_machines=3, num_rr_sets=300
        )
        assert result.breakdown["generation"] > 0
        assert result.summary_row()["application"] == "targeted-influence-maximization"
