"""Unit tests for the shared ApplicationResult container."""

import pytest

from repro.applications.result import ApplicationResult
from repro.cluster import COMMUNICATION, COMPUTATION, GENERATION, RunMetrics


@pytest.fixture
def result():
    metrics = RunMetrics()
    metrics.record_compute_phase(GENERATION, "gen", [2.0, 1.0])
    metrics.record_compute_phase(COMPUTATION, "sel", [0.5, 0.25])
    metrics.record_communication("gather", num_bytes=256, elapsed=0.125)
    return ApplicationResult(
        application="budgeted-influence-maximization",
        seeds=[4, 17, 2],
        objective=123.456789,
        num_rr_sets=5000,
        metrics=metrics,
        params={"budget": 25.0, "num_machines": 2},
    )


class TestBreakdown:
    def test_matches_metrics(self, result):
        assert result.breakdown == result.metrics.breakdown()

    def test_categories_and_total(self, result):
        breakdown = result.breakdown
        assert breakdown[GENERATION] == pytest.approx(2.0)
        assert breakdown[COMPUTATION] == pytest.approx(0.5)
        assert breakdown[COMMUNICATION] == pytest.approx(0.125)
        assert breakdown["total"] == pytest.approx(2.625)


class TestSummaryRow:
    def test_core_fields(self, result):
        row = result.summary_row()
        assert row["application"] == "budgeted-influence-maximization"
        assert row["num_seeds"] == 3
        assert row["objective"] == 123.46  # rounded to 2 digits
        assert row["num_rr_sets"] == 5000

    def test_params_merged_in(self, result):
        row = result.summary_row()
        assert row["budget"] == 25.0
        assert row["num_machines"] == 2

    def test_breakdown_rounded_to_4(self, result):
        row = result.summary_row()
        assert row[GENERATION] == 2.0
        assert row["total"] == 2.625
        assert all(
            row[key] == round(result.breakdown[key], 4)
            for key in (GENERATION, COMPUTATION, COMMUNICATION, "total")
        )

    def test_empty_seed_set(self):
        empty = ApplicationResult(
            application="profit-maximization",
            seeds=[],
            objective=0.0,
            num_rr_sets=100,
            metrics=RunMetrics(),
        )
        row = empty.summary_row()
        assert row["num_seeds"] == 0
        assert row["objective"] == 0.0
        assert row["total"] == 0.0
