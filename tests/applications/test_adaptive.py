"""Unit tests for adaptive influence maximization."""

import pytest

from repro.applications import adaptive_influence_maximization
from repro.graphs import GraphBuilder, uniform, star_graph


class TestAdaptiveIM:
    def test_selects_k_rounds(self, small_wc_graph):
        result = adaptive_influence_maximization(
            small_wc_graph, k=4, num_machines=2, rr_sets_per_round=400, seed=0
        )
        assert len(result.seeds) == 4
        assert len(set(result.seeds)) == 4
        assert result.num_rr_sets == 4 * 400

    def test_objective_is_realized_activation(self, small_wc_graph):
        result = adaptive_influence_maximization(
            small_wc_graph, k=3, num_machines=2, rr_sets_per_round=400, seed=1
        )
        # Realized activations include at least the seeds themselves.
        assert result.objective >= 3

    def test_two_stars_picks_both_hubs(self):
        # Deterministic unit-probability stars: after seeding hub 0 its
        # whole star is observed active, so round two must pick hub 6.
        builder = GraphBuilder(num_nodes=12)
        for leaf in range(1, 6):
            builder.add_edge(0, leaf, 1.0)
        for leaf in range(7, 12):
            builder.add_edge(6, leaf, 1.0)
        graph = builder.build()
        result = adaptive_influence_maximization(
            graph, k=2, num_machines=2, rr_sets_per_round=300, seed=0
        )
        assert set(result.seeds) == {0, 6}
        assert result.objective == 12

    def test_feedback_avoids_covered_region(self):
        # A star plus isolated stragglers: once the hub is seeded and its
        # star observed active, the second seed must be a straggler.
        builder = GraphBuilder(num_nodes=12)
        for leaf in range(1, 9):
            builder.add_edge(0, leaf, 1.0)
        graph = builder.build()  # nodes 9-11 are isolated
        result = adaptive_influence_maximization(
            graph, k=2, num_machines=1, rr_sets_per_round=300, seed=0
        )
        assert result.seeds[0] == 0
        assert result.seeds[1] in {9, 10, 11}

    def test_stops_when_everything_activated(self):
        graph = uniform(star_graph(8), 1.0)
        result = adaptive_influence_maximization(
            graph, k=5, num_machines=1, rr_sets_per_round=200, seed=0
        )
        # The hub's cascade activates the whole graph in round one.
        assert result.seeds == [0]
        assert result.objective == 9

    def test_deterministic(self, small_wc_graph):
        a = adaptive_influence_maximization(
            small_wc_graph, k=3, num_machines=2, rr_sets_per_round=300, seed=9
        )
        b = adaptive_influence_maximization(
            small_wc_graph, k=3, num_machines=2, rr_sets_per_round=300, seed=9
        )
        assert a.seeds == b.seeds
        assert a.objective == b.objective

    def test_validation(self, small_wc_graph):
        with pytest.raises(ValueError):
            adaptive_influence_maximization(
                small_wc_graph, k=0, num_machines=1, rr_sets_per_round=10
            )
        with pytest.raises(ValueError):
            adaptive_influence_maximization(
                small_wc_graph, k=1, num_machines=1, rr_sets_per_round=0
            )
        with pytest.raises(ValueError, match="unknown sampling method"):
            adaptive_influence_maximization(
                small_wc_graph, k=1, num_machines=1, rr_sets_per_round=10, method="nope"
            )

    def test_lt_model(self, small_wc_graph):
        result = adaptive_influence_maximization(
            small_wc_graph,
            k=3,
            num_machines=2,
            rr_sets_per_round=300,
            model="lt",
            seed=2,
        )
        assert len(result.seeds) == 3
        assert result.objective >= 3
        assert result.params["model"] == "lt"

    @pytest.mark.parametrize("model", ["ic", "lt"])
    def test_vectorized_method(self, small_wc_graph, model):
        result = adaptive_influence_maximization(
            small_wc_graph,
            k=3,
            num_machines=2,
            rr_sets_per_round=300,
            model=model,
            method="vectorized",
            seed=4,
        )
        assert len(result.seeds) == 3
        assert len(set(result.seeds)) == 3
        assert result.params["method"] == "vectorized"

    def test_vectorized_deterministic(self, small_wc_graph):
        runs = [
            adaptive_influence_maximization(
                small_wc_graph,
                k=3,
                num_machines=2,
                rr_sets_per_round=300,
                method="vectorized",
                seed=9,
            )
            for _ in range(2)
        ]
        assert runs[0].seeds == runs[1].seeds
        assert runs[0].objective == runs[1].objective

    def test_vectorized_matches_bfs_on_deterministic_instance(self):
        # On the two-star instance the right answer is seed-stream
        # independent, so both generation methods must find it.
        builder = GraphBuilder(num_nodes=12)
        for leaf in range(1, 6):
            builder.add_edge(0, leaf, 1.0)
        for leaf in range(7, 12):
            builder.add_edge(6, leaf, 1.0)
        graph = builder.build()
        for method in ("bfs", "vectorized"):
            result = adaptive_influence_maximization(
                graph, k=2, num_machines=2, rr_sets_per_round=300, method=method, seed=0
            )
            assert set(result.seeds) == {0, 6}
            assert result.objective == 12

    def test_network_model_accrues_communication(self, small_wc_graph):
        from repro.cluster import NetworkModel

        network = NetworkModel(bandwidth=1e6, latency=0.01)
        result = adaptive_influence_maximization(
            small_wc_graph,
            k=2,
            num_machines=2,
            rr_sets_per_round=200,
            network=network,
            seed=0,
        )
        comm = [e for e in result.metrics.phases if e.category == "communication"]
        assert comm
        assert sum(e.num_bytes for e in comm) > 0

    def test_metrics_rounds_annotated(self, small_wc_graph):
        result = adaptive_influence_maximization(
            small_wc_graph, k=3, num_machines=2, rr_sets_per_round=200, seed=1
        )
        labels = {e.label.split("/")[0] for e in result.metrics.phases}
        assert {"adaptive-0", "adaptive-1", "adaptive-2"} <= labels


class TestWithoutNodes:
    def test_edges_removed(self, paper_graph):
        residual = paper_graph.without_nodes([1])
        assert residual.num_nodes == 4
        assert not residual.has_edge(0, 1)
        assert not residual.has_edge(1, 3)
        assert residual.has_edge(0, 2)

    def test_empty_removal_is_identity(self, paper_graph):
        assert paper_graph.without_nodes([]) == paper_graph

    def test_remove_all(self, paper_graph):
        residual = paper_graph.without_nodes(range(4))
        assert residual.num_edges == 0
