"""Unit tests for profit maximization."""

import numpy as np
import pytest

from repro.applications import profit_maximization
from repro.graphs import uniform, star_graph


class TestProfitMaximization:
    def test_profitable_hub_selected(self):
        graph = uniform(star_graph(20), 1.0)
        costs = np.full(21, 2.0)
        result = profit_maximization(
            graph, costs, num_machines=2, num_rr_sets=600
        )
        assert 0 in result.seeds
        assert result.objective > 0

    def test_prohibitive_costs_select_nothing(self, small_wc_graph):
        costs = np.full(small_wc_graph.num_nodes, 1e6)
        result = profit_maximization(
            small_wc_graph, costs, num_machines=2, num_rr_sets=500
        )
        assert result.seeds == []
        assert result.objective == 0.0

    def test_free_seeds_select_many(self, small_wc_graph):
        costs = np.zeros(small_wc_graph.num_nodes)
        result = profit_maximization(
            small_wc_graph, costs, num_machines=2, num_rr_sets=800
        )
        # Zero cost: every node with positive marginal coverage is taken.
        assert len(result.seeds) > 10
        assert result.objective == pytest.approx(
            result.params["spread_estimate"], rel=1e-9
        )

    def test_profit_accounting(self, small_wc_graph, rng):
        costs = rng.uniform(0.1, 1.0, size=small_wc_graph.num_nodes)
        result = profit_maximization(
            small_wc_graph, costs, num_machines=3, num_rr_sets=1000, seed=4
        )
        expected = result.params["spread_estimate"] - result.params["total_cost"]
        assert result.objective == pytest.approx(expected, abs=0.05)

    def test_moderate_costs_are_selective(self, small_wc_graph):
        free = profit_maximization(
            small_wc_graph,
            np.zeros(small_wc_graph.num_nodes),
            num_machines=2,
            num_rr_sets=800,
            seed=1,
        )
        priced = profit_maximization(
            small_wc_graph,
            np.full(small_wc_graph.num_nodes, 1.5),
            num_machines=2,
            num_rr_sets=800,
            seed=1,
        )
        assert len(priced.seeds) < len(free.seeds)

    def test_validation(self, small_wc_graph):
        with pytest.raises(ValueError, match="one entry per node"):
            profit_maximization(small_wc_graph, [1.0], num_machines=1, num_rr_sets=10)
        with pytest.raises(ValueError, match="non-negative"):
            profit_maximization(
                small_wc_graph,
                np.full(small_wc_graph.num_nodes, -1.0),
                num_machines=1,
                num_rr_sets=10,
            )
