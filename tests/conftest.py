"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coverage import CoverageInstance
from repro.graphs import (
    GraphBuilder,
    erdos_renyi,
    paper_coverage_example,
    paper_example_graph,
    weighted_cascade,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def paper_graph():
    """The 4-node graph of the paper's Fig 1 (Examples 1 and 2)."""
    return paper_example_graph()


@pytest.fixture(scope="session")
def paper_instance() -> CoverageInstance:
    """The 6-RR-set coverage instance of the paper's Fig 2 (Example 3)."""
    return CoverageInstance(5, paper_coverage_example())


@pytest.fixture(scope="session")
def small_wc_graph():
    """A 200-node ER graph with weighted-cascade probabilities."""
    graph = erdos_renyi(200, 1200, np.random.default_rng(7))
    return weighted_cascade(graph)


@pytest.fixture(scope="session")
def medium_wc_graph():
    """A 2000-node ER graph with weighted-cascade probabilities."""
    graph = erdos_renyi(2000, 10000, np.random.default_rng(11))
    return weighted_cascade(graph)


@pytest.fixture
def diamond_graph():
    """Deterministic diamond 0 -> {1, 2} -> 3 with unit probabilities."""
    return GraphBuilder.from_edges(
        [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)], num_nodes=4
    )


def make_random_instance(
    rng: np.random.Generator,
    max_sets: int = 30,
    max_elements: int = 60,
) -> CoverageInstance:
    """Random coverage instance helper used by several test modules."""
    num_sets = int(rng.integers(2, max_sets))
    num_elements = int(rng.integers(1, max_elements))
    elements = [
        rng.choice(
            num_sets,
            size=int(rng.integers(1, min(6, num_sets + 1))),
            replace=False,
        )
        for __ in range(num_elements)
    ]
    return CoverageInstance(num_sets, elements)
