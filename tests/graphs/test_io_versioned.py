"""IO / interop round-trips through VersionedGraph (load -> delta -> save)."""

import pytest

from repro.graphs import (
    DirectedGraph,
    GraphDelta,
    VersionedGraph,
    from_networkx,
    load_npz,
    read_edge_list,
    save_npz,
    to_networkx,
    write_edge_list,
)


def edge_triples(graph):
    return sorted((u, v, round(p, 9)) for u, v, p in graph.edges())


@pytest.fixture
def delta(small_wc_graph):
    edges = [(u, v) for u, v, _ in small_wc_graph.edges()]
    return GraphDelta(
        add_edges=[(0, 3, 0.5), (9, 1, 0.25)],
        remove_edges=edges[:4],
        reweight_edges=[(edges[6][0], edges[6][1], 0.75)],
    )


@pytest.fixture
def updated(small_wc_graph, delta):
    graph = VersionedGraph(
        DirectedGraph(small_wc_graph.num_nodes, *small_wc_graph.edge_arrays())
    )
    graph.apply(delta)
    return graph


class TestNpzRoundTrip:
    def test_save_compacted_equals_direct(self, updated, tmp_path):
        path = tmp_path / "updated.npz"
        save_npz(updated.compact(), path)
        loaded = load_npz(path)
        assert loaded.num_nodes == updated.num_nodes
        assert loaded.num_edges == updated.num_edges
        assert edge_triples(loaded) == edge_triples(updated)

    def test_load_apply_save_load(self, small_wc_graph, delta, tmp_path):
        # load -> wrap -> delta -> compact -> save must equal building the
        # updated graph directly from its edge arrays.
        base_path = tmp_path / "base.npz"
        save_npz(small_wc_graph, base_path)
        graph = VersionedGraph(load_npz(base_path))
        graph.apply(delta)
        out_path = tmp_path / "out.npz"
        save_npz(graph.compact(), out_path)
        direct = DirectedGraph(graph.num_nodes, *graph.edge_arrays())
        assert edge_triples(load_npz(out_path)) == edge_triples(direct)


class TestEdgeListRoundTrip:
    def test_write_read_versioned(self, updated, tmp_path):
        path = tmp_path / "updated.txt"
        write_edge_list(updated.compact(), path)
        loaded = read_edge_list(path, num_nodes=updated.num_nodes)
        assert loaded.num_edges == updated.num_edges
        assert edge_triples(loaded) == edge_triples(updated)

    def test_write_accepts_versioned_directly(self, updated, tmp_path):
        # write_edge_list only needs .edges()/num_nodes/num_edges, which
        # the overlay view serves without compacting first.
        path = tmp_path / "overlay.txt"
        write_edge_list(updated, path)
        loaded = read_edge_list(path, num_nodes=updated.num_nodes)
        assert edge_triples(loaded) == edge_triples(updated)


class TestNetworkxRoundTrip:
    def test_interop_through_versioned(self, updated):
        rebuilt = from_networkx(to_networkx(updated.compact()))
        assert rebuilt.num_nodes == updated.num_nodes
        assert edge_triples(rebuilt) == edge_triples(updated)

    def test_grown_graph_round_trip(self, small_wc_graph, tmp_path):
        graph = VersionedGraph(
            DirectedGraph(small_wc_graph.num_nodes, *small_wc_graph.edge_arrays())
        )
        n = graph.num_nodes
        graph.apply(GraphDelta(add_nodes=3, add_edges=[(n, 0, 0.5), (n + 1, n, 0.5)]))
        path = tmp_path / "grown.npz"
        save_npz(graph.compact(), path)
        loaded = load_npz(path)
        assert loaded.num_nodes == n + 3
        assert edge_triples(loaded) == edge_triples(graph)
