"""Unit tests for GraphBuilder."""

import pytest

from repro.graphs import GraphBuilder


class TestAddEdge:
    def test_simple_build(self):
        builder = GraphBuilder(num_nodes=3)
        builder.add_edge(0, 1, 0.5)
        builder.add_edge(1, 2, 0.25)
        graph = builder.build()
        assert graph.num_edges == 2
        assert graph.edge_probability(0, 1) == pytest.approx(0.5)

    def test_len_counts_accumulated_edges(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1)
        builder.add_edge(1, 2)
        assert len(builder) == 2

    def test_undirected_mirrors(self):
        builder = GraphBuilder(num_nodes=2, undirected=True)
        builder.add_edge(0, 1, 0.3)
        graph = builder.build()
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.num_edges == 2

    def test_undirected_self_loop_not_doubled(self):
        builder = GraphBuilder(num_nodes=2, undirected=True)
        builder.add_edge(0, 0)
        graph = builder.build(drop_self_loops=False)
        assert graph.num_edges == 1

    def test_negative_id_rejected(self):
        builder = GraphBuilder()
        with pytest.raises(ValueError, match="non-negative"):
            builder.add_edge(-1, 0)

    def test_bad_probability_rejected(self):
        builder = GraphBuilder()
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            builder.add_edge(0, 1, 2.0)

    def test_bad_num_nodes_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            GraphBuilder(num_nodes=-5)


class TestBuild:
    def test_infers_node_count(self):
        graph = GraphBuilder.from_edges([(0, 7)])
        assert graph.num_nodes == 8

    def test_empty_builder(self):
        graph = GraphBuilder().build()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_dedup_keeps_last_probability(self):
        builder = GraphBuilder(num_nodes=2)
        builder.add_edge(0, 1, 0.2)
        builder.add_edge(0, 1, 0.9)
        graph = builder.build(dedup=True)
        assert graph.num_edges == 1
        assert graph.edge_probability(0, 1) == pytest.approx(0.9)

    def test_dedup_disabled_keeps_parallel_edges(self):
        builder = GraphBuilder(num_nodes=2)
        builder.add_edge(0, 1, 0.2)
        builder.add_edge(0, 1, 0.9)
        graph = builder.build(dedup=False)
        assert graph.num_edges == 2

    def test_self_loops_dropped_by_default(self):
        builder = GraphBuilder(num_nodes=2)
        builder.add_edge(0, 0)
        builder.add_edge(0, 1)
        assert builder.build().num_edges == 1

    def test_self_loops_kept_on_request(self):
        builder = GraphBuilder(num_nodes=1)
        builder.add_edge(0, 0)
        assert builder.build(drop_self_loops=False).num_edges == 1

    def test_add_edges_mixed_arity(self):
        graph = GraphBuilder.from_edges([(0, 1), (1, 2, 0.4)])
        assert graph.num_edges == 2
        assert graph.edge_probability(1, 2) == pytest.approx(0.4)

    def test_from_edges_respects_num_nodes(self):
        graph = GraphBuilder.from_edges([(0, 1)], num_nodes=10)
        assert graph.num_nodes == 10
