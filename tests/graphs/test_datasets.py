"""Unit tests for the dataset registry (Table III stand-ins)."""

import numpy as np
import pytest

from repro.graphs import DATASET_NAMES, dataset_summary, load_dataset


class TestRegistry:
    def test_names_match_paper_order(self):
        assert DATASET_NAMES == ("facebook", "googleplus", "livejournal", "twitter")

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("orkut")

    def test_caching_returns_same_object(self):
        assert load_dataset("facebook") is load_dataset("facebook")

    def test_different_seed_different_graph(self):
        first = load_dataset("facebook", seed=1)
        second = load_dataset("facebook", seed=2)
        assert first.graph != second.graph


class TestDatasetProperties:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_weighted_cascade_assigned(self, name):
        graph = load_dataset(name).graph
        sums = graph.in_probability_sums()
        has_in = graph.in_degrees() > 0
        assert np.allclose(sums[has_in], 1.0)

    def test_facebook_full_scale(self):
        ds = load_dataset("facebook")
        assert ds.num_nodes == ds.paper_nodes == 4000
        assert not ds.directed
        # Undirected edge count within 5% of the paper's 88.2K.
        assert abs(ds.num_edges - ds.paper_edges) / ds.paper_edges < 0.05

    def test_relative_size_ordering(self):
        sizes = {name: load_dataset(name).num_nodes for name in DATASET_NAMES}
        ordered = (
            sizes["facebook"] < sizes["googleplus"] < sizes["twitter"] < sizes["livejournal"]
        )
        assert ordered or (
            sizes["facebook"] < sizes["googleplus"] < sizes["livejournal"]
        )

    def test_googleplus_densest_directed(self):
        degrees = {
            name: load_dataset(name).avg_degree
            for name in ("googleplus", "livejournal", "twitter")
        }
        assert degrees["googleplus"] == max(degrees.values())

    def test_avg_degree_conventions(self):
        fb = load_dataset("facebook")
        # Undirected: avg degree = 2m/n with m undirected edges.
        assert fb.avg_degree == pytest.approx(
            fb.graph.num_edges / fb.num_nodes, rel=1e-6
        )
        tw = load_dataset("twitter")
        assert tw.avg_degree == pytest.approx(
            tw.graph.num_edges / tw.num_nodes, rel=1e-6
        )


class TestSummary:
    def test_rows_cover_all_datasets(self):
        rows = dataset_summary()
        assert [row["dataset"] for row in rows] == list(DATASET_NAMES)
        for row in rows:
            assert row["nodes"] > 0
            assert row["edges"] > 0
            assert row["paper_nodes"] >= row["nodes"]
