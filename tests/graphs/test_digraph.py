"""Unit tests for the CSR directed graph."""

import numpy as np
import pytest

from repro.graphs import DirectedGraph


@pytest.fixture
def triangle() -> DirectedGraph:
    return DirectedGraph(3, [0, 1, 2], [1, 2, 0], [0.1, 0.2, 0.3])


class TestConstruction:
    def test_counts(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3

    def test_empty_graph(self):
        graph = DirectedGraph(0, [], [])
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_nodes_without_edges(self):
        graph = DirectedGraph(5, [0], [1])
        assert graph.num_nodes == 5
        assert graph.out_degree(4) == 0
        assert graph.in_degree(4) == 0

    def test_negative_node_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            DirectedGraph(-1, [], [])

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            DirectedGraph(3, [0, 1], [1])

    def test_out_of_range_ids_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            DirectedGraph(2, [0], [5])

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            DirectedGraph(2, [-1], [0])

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            DirectedGraph(2, [0], [1], [1.5])

    def test_prob_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            DirectedGraph(2, [0], [1], [0.5, 0.5])


class TestAdjacency:
    def test_out_neighbors(self, triangle):
        assert list(triangle.out_neighbors(0)) == [1]
        assert list(triangle.out_neighbors(2)) == [0]

    def test_in_neighbors(self, triangle):
        assert list(triangle.in_neighbors(1)) == [0]
        assert list(triangle.in_neighbors(0)) == [2]

    def test_probabilities_follow_edges(self, triangle):
        assert triangle.out_probabilities(0)[0] == pytest.approx(0.1)
        assert triangle.in_probabilities(0)[0] == pytest.approx(0.3)

    def test_degrees(self, triangle):
        assert triangle.out_degree(0) == 1
        assert triangle.in_degree(0) == 1
        assert list(triangle.out_degrees()) == [1, 1, 1]
        assert list(triangle.in_degrees()) == [1, 1, 1]

    def test_multi_edges_from_one_source(self):
        graph = DirectedGraph(4, [0, 0, 0], [1, 2, 3])
        assert sorted(graph.out_neighbors(0).tolist()) == [1, 2, 3]
        assert graph.out_degree(0) == 3

    def test_csr_indptr_monotone(self, triangle):
        assert np.all(np.diff(triangle.out_indptr) >= 0)
        assert np.all(np.diff(triangle.in_indptr) >= 0)
        assert triangle.out_indptr[-1] == triangle.num_edges
        assert triangle.in_indptr[-1] == triangle.num_edges


class TestQueries:
    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 0)

    def test_edge_probability(self, triangle):
        assert triangle.edge_probability(1, 2) == pytest.approx(0.2)

    def test_edge_probability_missing(self, triangle):
        with pytest.raises(KeyError):
            triangle.edge_probability(1, 0)

    def test_edges_iteration(self, triangle):
        edges = list(triangle.edges())
        assert edges == [(0, 1, 0.1), (1, 2, 0.2), (2, 0, 0.3)]

    def test_edge_arrays_roundtrip(self, triangle):
        sources, targets, probs = triangle.edge_arrays()
        rebuilt = DirectedGraph(3, sources, targets, probs)
        assert rebuilt == triangle

    def test_in_probability_sums(self):
        graph = DirectedGraph(3, [0, 1], [2, 2], [0.25, 0.5])
        sums = graph.in_probability_sums()
        assert sums[2] == pytest.approx(0.75)
        assert sums[0] == 0.0
        assert graph.in_probability_sum(2) == pytest.approx(0.75)

    def test_in_probability_sums_empty_graph_nodes(self):
        graph = DirectedGraph(4, [], [])
        assert np.all(graph.in_probability_sums() == 0.0)


class TestDerived:
    def test_reversed(self, triangle):
        rev = triangle.reversed()
        assert rev.has_edge(1, 0)
        assert rev.edge_probability(1, 0) == pytest.approx(0.1)
        assert rev.reversed() == triangle

    def test_with_probabilities(self, triangle):
        new = triangle.with_probabilities(np.array([0.9, 0.8, 0.7]))
        assert new.edge_probability(0, 1) == pytest.approx(0.9)
        # Original untouched.
        assert triangle.edge_probability(0, 1) == pytest.approx(0.1)

    def test_equality(self, triangle):
        same = DirectedGraph(3, [0, 1, 2], [1, 2, 0], [0.1, 0.2, 0.3])
        assert triangle == same
        different = DirectedGraph(3, [0, 1, 2], [1, 2, 0], [0.1, 0.2, 0.4])
        assert triangle != different

    def test_repr(self, triangle):
        assert "n=3" in repr(triangle)
        assert "m=3" in repr(triangle)
