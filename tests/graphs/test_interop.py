"""Unit tests for the networkx bridge."""

import networkx as nx
import pytest

from repro.graphs import from_networkx, to_networkx
from repro.graphs.interop import PROBABILITY_KEY


class TestFromNetworkx:
    def test_directed_roundtrip(self, paper_graph):
        rebuilt = from_networkx(to_networkx(paper_graph))
        assert rebuilt == paper_graph

    def test_probability_attribute(self):
        g = nx.DiGraph()
        g.add_nodes_from(range(2))
        g.add_edge(0, 1, probability=0.7)
        graph = from_networkx(g)
        assert graph.edge_probability(0, 1) == pytest.approx(0.7)

    def test_missing_probability_defaults_zero(self):
        g = nx.DiGraph()
        g.add_nodes_from(range(2))
        g.add_edge(0, 1)
        assert from_networkx(g).edge_probability(0, 1) == 0.0

    def test_undirected_mirrors(self):
        g = nx.Graph()
        g.add_nodes_from(range(2))
        g.add_edge(0, 1, probability=0.4)
        graph = from_networkx(g)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)

    def test_sparse_labels_rejected(self):
        g = nx.DiGraph()
        g.add_edge(0, 5)
        with pytest.raises(ValueError, match="dense integers"):
            from_networkx(g)


class TestToNetworkx:
    def test_edges_and_attributes(self, paper_graph):
        g = to_networkx(paper_graph)
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 5
        assert g.edges[0, 3][PROBABILITY_KEY] == pytest.approx(0.4)

    def test_isolated_nodes_preserved(self):
        from repro.graphs import GraphBuilder

        graph = GraphBuilder.from_edges([(0, 1)], num_nodes=5)
        assert to_networkx(graph).number_of_nodes() == 5
