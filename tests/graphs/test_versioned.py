"""VersionedGraph / GraphDelta: overlay semantics, compaction, sharing."""

import numpy as np
import pytest

from repro.graphs import (
    DirectedGraph,
    GraphDelta,
    VersionedGraph,
    attach_shared,
    erdos_renyi,
    weighted_cascade,
)


def versioned(graph) -> VersionedGraph:
    return VersionedGraph(DirectedGraph(graph.num_nodes, *graph.edge_arrays()))


def in_rows_equal(a, b) -> bool:
    """Exact in-row equality: order matters (the samplers' traversal order)."""
    if a.num_nodes != b.num_nodes:
        return False
    for v in range(a.num_nodes):
        if not np.array_equal(a.in_neighbors(v), b.in_neighbors(v)):
            return False
        if not np.array_equal(a.in_probabilities(v), b.in_probabilities(v)):
            return False
    return True


def edge_triples(graph):
    """Semantic (order-insensitive) edge identity."""
    return sorted((u, v, round(p, 12)) for u, v, p in graph.edges())


class TestGraphDelta:
    def test_counts_and_empty(self):
        assert GraphDelta().is_empty
        delta = GraphDelta(add_edges=[(0, 1, 0.5)], remove_nodes=[2], add_nodes=3)
        assert not delta.is_empty
        assert delta.num_changes == 5

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            GraphDelta(add_edges=[(0, 1, 1.5)])

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError):
            GraphDelta(remove_edges=[(-1, 0)])

    def test_json_round_trip(self):
        delta = GraphDelta(
            add_edges=[(0, 1, 0.5), (2, 3, 0.25)],
            remove_edges=[(4, 5)],
            reweight_edges=[(6, 7, 0.75)],
            remove_nodes=[8],
            add_nodes=2,
        )
        clone = GraphDelta.from_json(delta.to_json())
        assert clone.to_json() == delta.to_json()
        assert clone.num_changes == delta.num_changes

    def test_from_json_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            GraphDelta.from_json({"add_edgez": []})


class TestApply:
    def test_mixed_delta_matches_direct_construction(self, small_wc_graph):
        graph = versioned(small_wc_graph)
        edges = [(u, v) for u, v, _ in small_wc_graph.edges()]
        delta = GraphDelta(
            add_edges=[(0, 1, 0.5), (10, 11, 0.125)],
            remove_edges=edges[:3],
            reweight_edges=[(edges[5][0], edges[5][1], 0.9)],
        )
        before_edges = graph.num_edges
        touched = graph.apply(delta)
        assert graph.version == 1
        assert graph.num_edges == before_edges + 2 - 3
        # Touched = ascending in-row owners of every change.
        assert touched is not None
        assert np.all(np.diff(touched) > 0)
        owners = {1, 11, edges[5][1]} | {v for _, v in edges[:3]}
        assert set(int(t) for t in touched) == owners
        # The effective structure equals a graph built from the new edges.
        direct = DirectedGraph(graph.num_nodes, *graph.edge_arrays())
        assert in_rows_equal(graph.compact(), direct)
        assert edge_triples(graph) == edge_triples(direct)

    def test_remove_node_isolates(self, small_wc_graph):
        graph = versioned(small_wc_graph)
        victim = int(max(range(graph.num_nodes), key=graph.out_degree))
        touched = graph.apply(GraphDelta(remove_nodes=[victim]))
        assert graph.num_nodes == small_wc_graph.num_nodes  # id kept
        assert graph.in_degree(victim) == 0
        assert graph.out_degree(victim) == 0
        assert victim in set(int(t) for t in touched)

    def test_add_nodes_forces_full_invalidation(self, small_wc_graph):
        graph = versioned(small_wc_graph)
        n = graph.num_nodes
        touched = graph.apply(GraphDelta(add_nodes=2, add_edges=[(n, 0, 0.5)]))
        assert touched is None
        assert graph.num_nodes == n + 2
        assert graph.edge_probability(n, 0) == 0.5

    def test_remove_absent_edge_raises(self, small_wc_graph):
        graph = versioned(small_wc_graph)
        missing = next(
            (u, v)
            for u in range(graph.num_nodes)
            for v in range(graph.num_nodes)
            if u != v and not graph.has_edge(u, v)
        )
        with pytest.raises(ValueError, match="not in graph"):
            graph.apply(GraphDelta(remove_edges=[missing]))
        # A failed apply must not bump the version.
        assert graph.version == 0

    def test_reweight_absent_edge_raises(self, small_wc_graph):
        graph = versioned(small_wc_graph)
        with pytest.raises(ValueError, match="not in graph"):
            graph.apply(GraphDelta(reweight_edges=[(0, 0, 0.5)]))

    def test_out_of_range_ids_raise(self, small_wc_graph):
        graph = versioned(small_wc_graph)
        with pytest.raises(ValueError):
            graph.apply(GraphDelta(add_edges=[(graph.num_nodes, 0, 0.5)]))

    def test_accessor_parity_with_compacted(self, small_wc_graph, rng):
        graph = versioned(small_wc_graph)
        edges = [(u, v) for u, v, _ in small_wc_graph.edges()]
        graph.apply(
            GraphDelta(
                add_edges=[(2, 4, 0.3)],
                remove_edges=edges[10:14],
                remove_nodes=[7],
            )
        )
        compacted = graph.compact()
        assert graph.num_edges == compacted.num_edges
        assert np.array_equal(graph.in_degrees(), compacted.in_degrees())
        assert np.array_equal(graph.out_degrees(), compacted.out_degrees())
        assert np.allclose(
            graph.in_probability_sums(), compacted.in_probability_sums()
        )
        for v in rng.integers(0, graph.num_nodes, size=25):
            v = int(v)
            assert np.array_equal(graph.in_neighbors(v), compacted.in_neighbors(v))
            assert np.array_equal(
                graph.in_probabilities(v), compacted.in_probabilities(v)
            )
            assert sorted(graph.out_neighbors(v)) == sorted(compacted.out_neighbors(v))

    def test_parallel_edge_removal_drops_all(self):
        base = DirectedGraph(
            3,
            np.array([0, 0, 1]),
            np.array([1, 1, 2]),
            np.array([0.2, 0.3, 0.4]),
        )
        graph = VersionedGraph(base)
        graph.apply(GraphDelta(remove_edges=[(0, 1)]))
        assert not graph.has_edge(0, 1)
        assert graph.num_edges == 1


class TestCompactAndRebase:
    def test_identity_compaction(self, small_wc_graph):
        graph = versioned(small_wc_graph)
        assert in_rows_equal(graph.compact(), small_wc_graph)

    def test_rebase_clears_overlay(self, small_wc_graph):
        graph = versioned(small_wc_graph)
        edges = [(u, v) for u, v, _ in small_wc_graph.edges()]
        graph.apply(GraphDelta(remove_edges=edges[:2], add_edges=[(1, 3, 0.6)]))
        assert graph.num_patched_rows > 0
        triples = edge_triples(graph)
        graph.rebase()
        assert graph.num_patched_rows == 0
        assert edge_triples(graph) == triples
        # in_csr now reports no overlay.
        assert graph.in_csr()[3] is None


class TestSharedMemory:
    def test_round_trip_preserves_overlay(self, small_wc_graph):
        graph = versioned(small_wc_graph)
        edges = [(u, v) for u, v, _ in small_wc_graph.edges()]
        graph.apply(GraphDelta(remove_edges=edges[:3], add_edges=[(0, 2, 0.7)]))
        handle = graph.to_shared()
        try:
            attached = attach_shared(handle.spec)
            assert attached.version == graph.version
            assert attached.num_edges == graph.num_edges
            assert in_rows_equal(attached, graph)
            del attached
        finally:
            handle.unlink()

    def test_plain_graph_spec_still_attaches(self, small_wc_graph):
        handle = small_wc_graph.to_shared()
        try:
            attached = attach_shared(handle.spec)
            assert attached.num_edges == small_wc_graph.num_edges
            del attached
        finally:
            handle.unlink()


class TestPerSetStreams:
    def test_wrapping_preserves_base_identity(self):
        base = weighted_cascade(erdos_renyi(50, 200, np.random.default_rng(0)))
        graph = VersionedGraph(base)
        assert graph.base is base
        with pytest.raises(TypeError):
            VersionedGraph(graph)
