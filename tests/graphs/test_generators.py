"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graphs import (
    barabasi_albert,
    chung_lu,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    paper_coverage_example,
    paper_example_graph,
    path_graph,
    rmat,
    star_graph,
    watts_strogatz,
)


class TestPaperExamples:
    def test_fig1_edges(self):
        graph = paper_example_graph()
        assert graph.num_nodes == 4
        assert graph.edge_probability(0, 1) == 1.0
        assert graph.edge_probability(0, 2) == 1.0
        assert graph.edge_probability(0, 3) == pytest.approx(0.4)
        assert graph.edge_probability(1, 3) == pytest.approx(0.3)
        assert graph.edge_probability(2, 3) == pytest.approx(0.2)

    def test_fig1_lt_feasible(self):
        graph = paper_example_graph()
        assert graph.in_probability_sum(3) == pytest.approx(0.9)

    def test_fig2_coverage_facts(self):
        rr_sets = paper_coverage_example()
        assert len(rr_sets) == 6
        # v1 covers R1, R3, R5 (Example 3).
        assert [i for i, r in enumerate(rr_sets) if 0 in r] == [0, 2, 4]
        # {v1, v4} covers R1, R3, R5, R6.
        covered = {i for i, r in enumerate(rr_sets) if r & {0, 3}}
        assert covered == {0, 2, 4, 5}
        # {v1, v2} covers all six.
        covered = {i for i, r in enumerate(rr_sets) if r & {0, 1}}
        assert covered == set(range(6))


class TestRandomGenerators:
    def test_erdos_renyi_shape(self, rng):
        graph = erdos_renyi(100, 500, rng)
        assert graph.num_nodes == 100
        assert 0 < graph.num_edges <= 500

    def test_erdos_renyi_no_self_loops(self, rng):
        graph = erdos_renyi(20, 200, rng)
        for u, v, __ in graph.edges():
            assert u != v

    def test_erdos_renyi_deterministic(self):
        first = erdos_renyi(50, 200, np.random.default_rng(3))
        second = erdos_renyi(50, 200, np.random.default_rng(3))
        assert first == second

    def test_erdos_renyi_trivial_sizes(self, rng):
        assert erdos_renyi(0, 10, rng).num_edges == 0
        assert erdos_renyi(1, 10, rng).num_edges == 0

    def test_barabasi_albert_edge_count(self, rng):
        graph = barabasi_albert(100, 3, rng)
        # (n - attach) arrivals each adding `attach` undirected edges.
        assert graph.num_edges == 2 * 3 * 97

    def test_barabasi_albert_is_symmetric(self, rng):
        graph = barabasi_albert(50, 2, rng)
        for u, v, __ in graph.edges():
            assert graph.has_edge(v, u)

    def test_barabasi_albert_rejects_bad_attach(self, rng):
        with pytest.raises(ValueError):
            barabasi_albert(10, 0, rng)
        with pytest.raises(ValueError):
            barabasi_albert(3, 5, rng)

    def test_barabasi_albert_hubs_exist(self, rng):
        graph = barabasi_albert(300, 2, rng)
        degrees = graph.out_degrees()
        assert degrees.max() >= 4 * degrees.mean()

    def test_watts_strogatz_degree(self, rng):
        graph = watts_strogatz(40, 4, 0.0, rng)
        # No rewiring: a clean ring lattice, every node has degree 4.
        assert np.all(graph.out_degrees() == 4)

    def test_watts_strogatz_rewire_bounds(self, rng):
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1, rng)
        with pytest.raises(ValueError):
            watts_strogatz(10, 4, 1.5, rng)

    def test_chung_lu_heavy_tail(self, rng):
        graph = chung_lu(2000, 20000, rng, exponent=2.2)
        degrees = graph.in_degrees()
        assert degrees.max() >= 10 * max(degrees.mean(), 1.0)

    def test_chung_lu_rejects_bad_exponent(self, rng):
        with pytest.raises(ValueError):
            chung_lu(10, 20, rng, exponent=1.0)

    def test_rmat_node_count(self, rng):
        graph = rmat(8, 4, rng)
        assert graph.num_nodes == 256
        assert graph.num_edges > 0

    def test_rmat_skewed(self, rng):
        graph = rmat(10, 8, rng)
        degrees = graph.out_degrees()
        assert degrees.max() >= 5 * max(degrees.mean(), 1.0)

    def test_rmat_rejects_bad_quadrants(self, rng):
        with pytest.raises(ValueError):
            rmat(4, 2, rng, a=0.5, b=0.4, c=0.2)


class TestDeterministicGraphs:
    def test_star_outward(self):
        graph = star_graph(4)
        assert graph.out_degree(0) == 4
        assert graph.in_degree(0) == 0

    def test_star_inward(self):
        graph = star_graph(4, outward=False)
        assert graph.in_degree(0) == 4

    def test_path(self):
        graph = path_graph(5)
        assert graph.num_edges == 4
        assert graph.has_edge(3, 4)

    def test_cycle(self):
        graph = cycle_graph(5)
        assert graph.num_edges == 5
        assert graph.has_edge(4, 0)

    def test_complete(self):
        graph = complete_graph(4)
        assert graph.num_edges == 12
