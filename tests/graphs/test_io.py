"""Unit tests for graph I/O."""

import io

import pytest

from repro.graphs import (
    GraphBuilder,
    load_npz,
    read_edge_list,
    save_npz,
    weighted_cascade,
    write_edge_list,
)
from repro.graphs.io import iter_edge_lines


@pytest.fixture
def sample_graph():
    return GraphBuilder.from_edges(
        [(0, 1, 0.5), (1, 2, 0.25), (2, 0, 0.125)], num_nodes=3
    )


class TestEdgeListParsing:
    def test_basic_pairs(self):
        handle = io.StringIO("0\t1\n1 2\n")
        assert list(iter_edge_lines(handle)) == [(0, 1, None), (1, 2, None)]

    def test_comments_and_blanks_skipped(self):
        handle = io.StringIO("# header\n\n% other\n0 1\n")
        assert list(iter_edge_lines(handle)) == [(0, 1, None)]

    def test_weighted_third_column(self):
        handle = io.StringIO("0 1 0.5\n")
        assert list(iter_edge_lines(handle)) == [(0, 1, 0.5)]

    def test_malformed_field_count(self):
        handle = io.StringIO("0 1 2 3\n")
        with pytest.raises(ValueError, match="line 1"):
            list(iter_edge_lines(handle))

    def test_malformed_token(self):
        handle = io.StringIO("a b\n")
        with pytest.raises(ValueError, match="cannot parse"):
            list(iter_edge_lines(handle))


class TestReadWrite:
    def test_text_roundtrip(self, sample_graph):
        buffer = io.StringIO()
        write_edge_list(sample_graph, buffer)
        buffer.seek(0)
        loaded = read_edge_list(buffer, num_nodes=3)
        assert loaded == sample_graph

    def test_write_without_probs(self, sample_graph):
        buffer = io.StringIO()
        write_edge_list(sample_graph, buffer, include_probs=False)
        assert "0.5" not in buffer.getvalue()

    def test_read_undirected(self):
        loaded = read_edge_list(io.StringIO("0 1\n"), undirected=True)
        assert loaded.has_edge(0, 1)
        assert loaded.has_edge(1, 0)

    def test_read_from_path(self, tmp_path, sample_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(sample_graph, path)
        assert read_edge_list(path, num_nodes=3) == sample_graph


class TestGzip:
    def test_reads_gzipped_edge_list(self, tmp_path, sample_graph):
        import gzip
        import io as iomod

        buffer = iomod.StringIO()
        write_edge_list(sample_graph, buffer)
        path = tmp_path / "graph.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(buffer.getvalue())
        assert read_edge_list(path, num_nodes=3) == sample_graph


class TestNpz:
    def test_roundtrip(self, tmp_path, sample_graph):
        path = tmp_path / "graph.npz"
        save_npz(sample_graph, path)
        assert load_npz(path) == sample_graph

    def test_roundtrip_preserves_weights(self, tmp_path, rng):
        from repro.graphs import erdos_renyi

        graph = weighted_cascade(erdos_renyi(30, 100, rng))
        path = tmp_path / "wc.npz"
        save_npz(graph, path)
        assert load_npz(path) == graph
