"""Unit tests for the edge weighting schemes."""

import numpy as np
import pytest

from repro.graphs import (
    GraphBuilder,
    erdos_renyi,
    trivalency,
    uniform,
    weighted_cascade,
)
from repro.graphs.weights import TRIVALENCY_CHOICES


@pytest.fixture
def fan_in_graph():
    # Node 3 has in-degree 3, node 1 has in-degree 1.
    return GraphBuilder.from_edges([(0, 3), (1, 3), (2, 3), (0, 1)], num_nodes=4)


class TestWeightedCascade:
    def test_probability_is_reciprocal_indegree(self, fan_in_graph):
        graph = weighted_cascade(fan_in_graph)
        assert graph.edge_probability(0, 3) == pytest.approx(1 / 3)
        assert graph.edge_probability(0, 1) == pytest.approx(1.0)

    def test_incoming_sums_equal_one(self, rng):
        graph = weighted_cascade(erdos_renyi(50, 300, rng))
        sums = graph.in_probability_sums()
        has_in = graph.in_degrees() > 0
        assert np.allclose(sums[has_in], 1.0)
        assert np.allclose(sums[~has_in], 0.0)

    def test_original_untouched(self, fan_in_graph):
        weighted_cascade(fan_in_graph)
        assert fan_in_graph.edge_probability(0, 3) == 0.0

    def test_empty_graph(self):
        graph = weighted_cascade(GraphBuilder(num_nodes=3).build())
        assert graph.num_edges == 0


class TestTrivalency:
    def test_values_from_choice_set(self, fan_in_graph, rng):
        graph = trivalency(fan_in_graph, rng)
        for __, __, prob in graph.edges():
            assert prob in TRIVALENCY_CHOICES

    def test_custom_choices(self, fan_in_graph, rng):
        graph = trivalency(fan_in_graph, rng, choices=(0.5,))
        assert all(prob == 0.5 for __, __, prob in graph.edges())

    def test_deterministic_for_seed(self, fan_in_graph):
        first = trivalency(fan_in_graph, np.random.default_rng(1))
        second = trivalency(fan_in_graph, np.random.default_rng(1))
        assert first == second


class TestUniform:
    def test_assigns_constant(self, fan_in_graph):
        graph = uniform(fan_in_graph, 0.123)
        assert all(prob == 0.123 for __, __, prob in graph.edges())

    def test_out_of_range_rejected(self, fan_in_graph):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            uniform(fan_in_graph, 1.01)
