"""Property-based tests (hypothesis) for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import DirectedGraph, GraphBuilder, weighted_cascade


@st.composite
def edge_lists(draw):
    num_nodes = draw(st.integers(min_value=1, max_value=20))
    num_edges = draw(st.integers(min_value=0, max_value=40))
    edges = [
        (
            draw(st.integers(0, num_nodes - 1)),
            draw(st.integers(0, num_nodes - 1)),
            draw(st.floats(0.0, 1.0, allow_nan=False)),
        )
        for __ in range(num_edges)
    ]
    return num_nodes, edges


@settings(max_examples=80, deadline=None)
@given(data=edge_lists())
def test_csr_directions_are_consistent(data):
    """Every out-edge appears as the matching in-edge with the same
    probability, and degree sums agree."""
    num_nodes, edges = data
    graph = GraphBuilder.from_edges(edges, num_nodes=num_nodes)
    assert graph.out_degrees().sum() == graph.in_degrees().sum() == graph.num_edges
    for u, v, prob in graph.edges():
        assert u in graph.in_neighbors(v)
        idx = list(graph.in_neighbors(v)).index(u)
        assert graph.in_probabilities(v)[idx] == prob


@settings(max_examples=80, deadline=None)
@given(data=edge_lists())
def test_builder_dedup_keeps_unique_pairs(data):
    num_nodes, edges = data
    graph = GraphBuilder.from_edges(edges, num_nodes=num_nodes)
    pairs = [(u, v) for u, v, __ in graph.edges()]
    assert len(pairs) == len(set(pairs))
    assert all(u != v for u, v in pairs)


@settings(max_examples=60, deadline=None)
@given(data=edge_lists())
def test_reversed_is_involution(data):
    num_nodes, edges = data
    graph = GraphBuilder.from_edges(edges, num_nodes=num_nodes)
    assert graph.reversed().reversed() == graph


@settings(max_examples=60, deadline=None)
@given(data=edge_lists())
def test_weighted_cascade_sums(data):
    """WC weighting: incoming probabilities sum to 1 for every node with
    in-degree > 0, and each edge carries exactly 1/indeg."""
    num_nodes, edges = data
    graph = GraphBuilder.from_edges(edges, num_nodes=num_nodes)
    wc = weighted_cascade(graph)
    sums = wc.in_probability_sums()
    indeg = wc.in_degrees()
    assert np.allclose(sums[indeg > 0], 1.0)
    for u, v, prob in wc.edges():
        assert prob == 1.0 / wc.in_degree(v)


@settings(max_examples=60, deadline=None)
@given(data=edge_lists())
def test_edge_arrays_roundtrip(data):
    num_nodes, edges = data
    graph = GraphBuilder.from_edges(edges, num_nodes=num_nodes)
    sources, targets, probs = graph.edge_arrays()
    assert DirectedGraph(num_nodes, sources, targets, probs) == graph
