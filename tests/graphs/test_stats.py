"""Unit tests for structural graph statistics."""

import numpy as np
import pytest

from repro.graphs import (
    GraphBuilder,
    chung_lu,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.graphs.stats import (
    DegreeSummary,
    degree_summary,
    largest_wcc_fraction,
    powerlaw_tail_exponent,
    strongly_connected_components,
    weakly_connected_components,
)


class TestDegreeSummary:
    def test_star_summary(self):
        summary = degree_summary(star_graph(10), "out")
        assert summary.maximum == 10
        assert summary.mean == pytest.approx(10 / 11)
        assert summary.median == 0.0

    def test_direction_switch(self):
        graph = star_graph(5)
        assert degree_summary(graph, "out").maximum == 5
        assert degree_summary(graph, "in").maximum == 1

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            degree_summary(star_graph(3), "sideways")

    def test_gini_zero_for_regular_graph(self):
        summary = degree_summary(cycle_graph(10), "out")
        assert summary.gini == pytest.approx(0.0, abs=1e-9)

    def test_gini_high_for_star(self):
        summary = degree_summary(star_graph(50), "out")
        assert summary.gini > 0.9

    def test_empty_degrees(self):
        summary = DegreeSummary.from_degrees(np.array([], dtype=np.int64))
        assert summary.mean == 0.0


class TestConnectedComponents:
    def test_single_wcc_on_path(self):
        labels = weakly_connected_components(path_graph(6))
        assert len(set(labels.tolist())) == 1

    def test_two_components(self):
        graph = GraphBuilder.from_edges([(0, 1), (2, 3)], num_nodes=4)
        labels = weakly_connected_components(graph)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_largest_wcc_fraction(self):
        graph = GraphBuilder.from_edges([(0, 1), (1, 2)], num_nodes=5)
        assert largest_wcc_fraction(graph) == pytest.approx(0.6)

    def test_isolated_nodes_are_own_components(self):
        graph = GraphBuilder(num_nodes=3).build()
        labels = weakly_connected_components(graph)
        assert len(set(labels.tolist())) == 3


class TestStronglyConnectedComponents:
    def test_cycle_is_one_scc(self):
        labels = strongly_connected_components(cycle_graph(5))
        assert len(set(labels.tolist())) == 1

    def test_path_has_singleton_sccs(self):
        labels = strongly_connected_components(path_graph(5))
        assert len(set(labels.tolist())) == 5

    def test_mixed_structure(self):
        # 0 <-> 1 form an SCC; 2 dangles off it.
        graph = GraphBuilder.from_edges([(0, 1), (1, 0), (1, 2)], num_nodes=3)
        labels = strongly_connected_components(graph)
        assert labels[0] == labels[1]
        assert labels[2] != labels[0]

    def test_matches_networkx(self):
        import networkx as nx

        from repro.graphs import to_networkx

        graph = erdos_renyi(60, 200, np.random.default_rng(3))
        ours = strongly_connected_components(graph)
        theirs = list(nx.strongly_connected_components(to_networkx(graph)))
        # Same partition: identical number of components and sizes.
        our_sizes = sorted(np.bincount(ours).tolist())
        their_sizes = sorted(len(c) for c in theirs)
        assert our_sizes == their_sizes


class TestPowerlawTail:
    def test_heavy_tail_detected(self):
        graph = chung_lu(3000, 25000, np.random.default_rng(0), exponent=2.2)
        alpha = powerlaw_tail_exponent(graph.in_degrees())
        assert 1.3 < alpha < 4.5

    def test_light_tail_large_alpha(self):
        rng = np.random.default_rng(1)
        degrees = rng.poisson(20, size=5000)
        alpha = powerlaw_tail_exponent(degrees)
        assert alpha > 4.5

    def test_validation(self):
        with pytest.raises(ValueError):
            powerlaw_tail_exponent(np.array([1, 2, 3]))
        with pytest.raises(ValueError):
            powerlaw_tail_exponent(np.arange(100), tail_fraction=0.0)
