"""Tests for the seed-quality comparison experiment."""

from repro.experiments import heterogeneity, seed_quality_comparison


class TestSeedQuality:
    def test_diimm_competitive(self):
        rows = seed_quality_comparison(
            datasets=["facebook"], k=10, eps=0.6, num_machines=2, mc_samples=150
        )
        by_strategy = {row["strategy"]: row for row in rows}
        assert set(by_strategy) == {
            "DIIMM", "max-degree", "single-discount",
            "degree-discount", "pagerank", "random",
        }
        # DIIMM is the guaranteed method: within a whisker of the best.
        assert by_strategy["DIIMM"]["vs_best"] >= 0.95
        # Random seeding is clearly worse on a heavy-tailed graph.
        assert by_strategy["random"]["mc_spread"] < by_strategy["DIIMM"]["mc_spread"]


class TestFrameworkComparison:
    def test_reduced_run(self):
        from repro.experiments import framework_comparison

        rows = framework_comparison(
            datasets=["facebook"], k=10, eps=0.6, num_machines=2, mc_samples=100
        )
        frameworks = {row["framework"] for row in rows}
        assert frameworks == {"DIIMM", "DSSA", "DOPIM-C", "DSUBSIM"}
        assert all(row["vs_best_spread"] >= 0.85 for row in rows)
        # The adaptive-stopping frameworks need fewer RR sets than DIIMM.
        by_name = {row["framework"]: row for row in rows}
        assert by_name["DOPIM-C"]["num_rr_sets"] < by_name["DIIMM"]["num_rr_sets"]


class TestHeterogeneityAblation:
    def test_weighted_beats_even(self):
        rows = heterogeneity(
            dataset="facebook", num_machines=4, num_rr_sets=2000, max_slowdown=3.0
        )
        even = next(r for r in rows if r["strategy"] == "even")
        weighted = next(r for r in rows if r["strategy"] == "weighted")
        assert even["parallel_gen_s"] > weighted["parallel_gen_s"]
        assert even["vs_weighted"] > 1.0
