"""Integration tests for the experiment harness (reduced configurations).

Each paper artefact's runner executes end-to-end on a reduced
configuration (single dataset, loose epsilon, few machines) and its rows
must carry the structure the benchmarks print.
"""

import pytest

from repro.experiments import (
    fig5_cluster_ic,
    fig9_server_lt,
    fig10_maxcover,
    lazy_vs_naive_greedy,
    subsim_vs_bfs_generation,
    table3_rows,
    table4_rows,
    traffic_tuple_vs_dense,
    workload_balance,
)


class TestTables:
    def test_table3_structure(self):
        rows = table3_rows()
        assert len(rows) == 4
        assert {"dataset", "nodes", "edges", "avg_degree"} <= set(rows[0])

    def test_table4_reduced(self):
        rows = table4_rows(datasets=["facebook"], k=5, eps=0.6, num_machines=2)
        assert len(rows) == 1
        row = rows[0]
        assert row["num_rr_sets"] > 0
        assert row["total_size"] >= row["num_rr_sets"]
        assert row["paper_num_rr_sets"] == 8_200_000


class TestScalingRunners:
    def test_fig5_reduced_sweep(self):
        rows = fig5_cluster_ic(
            datasets=["facebook"], k=5, eps=0.6, machine_counts=(1, 2)
        )
        assert len(rows) == 2
        base, dist = rows
        assert base["machines"] == 1
        assert base["algorithm"] == "IMM"
        assert dist["algorithm"] == "DIIMM"
        assert base["speedup"] == 1.0
        assert dist["speedup"] > 1.0
        assert dist["generation_s"] < base["generation_s"]

    def test_fig9_lt_reduced(self):
        rows = fig9_server_lt(
            datasets=["facebook"], k=5, eps=0.6, machine_counts=(1, 4)
        )
        assert rows[1]["total_s"] < rows[0]["total_s"]

    def test_breakdown_sums_to_total(self):
        rows = fig5_cluster_ic(
            datasets=["facebook"], k=5, eps=0.6, machine_counts=(2,)
        )
        row = rows[0]
        parts = row["generation_s"] + row["computation_s"] + row["communication_s"]
        assert parts == pytest.approx(row["total_s"], abs=0.01)


class TestFig10:
    def test_reduced_run(self):
        rows = fig10_maxcover(datasets=["facebook"], core_counts=(1, 4), k=10)
        assert len(rows) == 2
        for row in rows:
            assert row["newgreedi_coverage"] > 0
            # NEWGREEDI matches the sequential greedy exactly; GREEDI may
            # edge past greedy by a sliver (greedy is not optimal).
            assert row["coverage_ratio"] <= 1.02


class TestAblations:
    def test_lazy_vs_naive(self):
        rows = lazy_vs_naive_greedy(dataset="facebook", k_values=(5,))
        assert rows[0]["speedup"] > 1.0

    def test_traffic_comparison(self):
        rows = traffic_tuple_vs_dense(
            dataset="facebook", machine_counts=(2,), k=5, eps=0.6
        )
        assert rows[0]["actual_mb"] <= rows[0]["dense_mb"]
        assert rows[0]["saving_factor"] >= 1.0

    def test_subsim_ablation(self):
        rows = subsim_vs_bfs_generation(datasets=["googleplus"], num_rr_sets=500)
        assert rows[0]["speedup"] > 1.0

    def test_workload_balance(self):
        rows = workload_balance(
            dataset="facebook", machine_counts=(4,), num_rr_sets=2000
        )
        row = rows[0]
        assert 1.0 <= row["max_over_mean"] < 1.5
        assert row["rr_sets_per_machine"] == 500
