"""Unit tests for experiment reporting utilities."""

import json

from repro.experiments import format_table, write_json


class TestFormatTable:
    def test_alignment_and_columns(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "b" in lines[0]
        assert len(lines) == 4  # header, rule, two rows

    def test_title_prepended(self):
        text = format_table([{"a": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_union_of_keys(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])
        assert format_table([], title="T").startswith("T")

    def test_float_rendering(self):
        text = format_table([{"x": 0.000123456, "y": 123456.789, "z": 0.5}])
        assert "0.000123" in text
        assert "1.23e+05" in text
        assert "0.5" in text


class TestWriteJson:
    def test_roundtrip(self, tmp_path):
        rows = [{"dataset": "facebook", "value": 1.5}]
        path = tmp_path / "rows.json"
        write_json(rows, path)
        assert json.loads(path.read_text()) == rows
