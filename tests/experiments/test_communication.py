"""Tests for the communication-scaling experiment."""

from repro.experiments import communication_scaling


class TestCommunicationScaling:
    def test_fixed_pool_invariants(self):
        rows = communication_scaling(
            dataset="facebook", machine_counts=(1, 2, 4), num_rr_sets=2000, k=10
        )
        # Identical coverage on every layout: the pool is fixed and
        # NEWGREEDI is layout-invariant (Lemma 2).
        assert len({row["coverage"] for row in rows}) == 1
        # Traffic grows with the machine count.
        assert rows[-1]["comm_mb"] >= rows[0]["comm_mb"]

    def test_communication_below_computation(self):
        rows = communication_scaling(
            dataset="facebook", machine_counts=(4,), num_rr_sets=2000, k=10
        )
        assert rows[0]["comm_over_comp"] < 1.0
