"""Unit tests for timed cascades."""

import numpy as np
import pytest

from repro.diffusion import (
    IndependentCascade,
    LinearThreshold,
    simulate_ic_timed,
    simulate_lt_timed,
)
from repro.graphs import uniform, path_graph, star_graph


class TestTimedIC:
    def test_rounds_on_unit_path(self, rng):
        graph = uniform(path_graph(5), 1.0)
        cascade = simulate_ic_timed(graph, [0], rng)
        assert cascade.activation_round.tolist() == [0, 1, 2, 3, 4]
        assert cascade.duration == 4
        assert cascade.size == 5

    def test_seeds_at_round_zero(self, rng):
        graph = uniform(star_graph(3), 0.0)
        cascade = simulate_ic_timed(graph, [0, 2], rng)
        assert cascade.activation_round[0] == 0
        assert cascade.activation_round[2] == 0
        assert cascade.activated.tolist() == [0, 2]

    def test_unreached_marked_minus_one(self, rng):
        graph = uniform(path_graph(4), 0.0)
        cascade = simulate_ic_timed(graph, [0], rng)
        assert cascade.activation_round[3] == -1

    def test_activated_at(self, rng):
        graph = uniform(star_graph(4), 1.0)
        cascade = simulate_ic_timed(graph, [0], rng)
        assert cascade.activated_at(1).tolist() == [1, 2, 3, 4]

    def test_reach_matches_plain_simulator(self, small_wc_graph):
        timed = simulate_ic_timed(small_wc_graph, [0], np.random.default_rng(5))
        plain = IndependentCascade().simulate(
            small_wc_graph, [0], np.random.default_rng(5)
        )
        assert np.array_equal(timed.activated, plain)

    def test_paper_example_dynamics(self, paper_graph):
        """Example 1, case (ii): v4 is activated at slot 2 through v2/v3."""
        hit_round2 = 0
        trials = 20000
        rng = np.random.default_rng(0)
        for __ in range(trials):
            cascade = simulate_ic_timed(paper_graph, [0], rng)
            if cascade.activation_round[3] == 2:
                hit_round2 += 1
        assert hit_round2 / trials == pytest.approx(0.264, abs=0.01)


class TestTimedLT:
    def test_rounds_on_unit_path(self, rng):
        graph = uniform(path_graph(4), 1.0)
        cascade = simulate_lt_timed(graph, [0], rng)
        assert cascade.activation_round.tolist() == [0, 1, 2, 3]

    def test_reach_matches_plain_simulator(self, small_wc_graph):
        timed = simulate_lt_timed(small_wc_graph, [0], np.random.default_rng(6))
        plain = LinearThreshold().simulate(
            small_wc_graph, [0], np.random.default_rng(6)
        )
        assert np.array_equal(timed.activated, plain)

    def test_paper_example_case_probabilities(self, paper_graph):
        """Example 1 LT: v4 at slot 1 w.p. 0.4, slot 2 w.p. 0.5, never 0.1."""
        counts = {1: 0, 2: 0, -1: 0}
        trials = 20000
        rng = np.random.default_rng(1)
        for __ in range(trials):
            cascade = simulate_lt_timed(paper_graph, [0], rng)
            counts[int(cascade.activation_round[3])] += 1
        assert counts[1] / trials == pytest.approx(0.4, abs=0.015)
        assert counts[2] / trials == pytest.approx(0.5, abs=0.015)
        assert counts[-1] / trials == pytest.approx(0.1, abs=0.01)

    def test_empty_cascade(self, rng):
        graph = uniform(path_graph(3), 1.0)
        cascade = simulate_lt_timed(graph, [], rng)
        assert cascade.size == 0
        assert cascade.duration == 0
