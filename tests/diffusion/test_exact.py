"""Unit tests for exact spread enumeration and brute-force optima."""

import pytest

from repro.diffusion import (
    IndependentCascade,
    LinearThreshold,
    estimate_spread,
    exact_optimum,
    exact_spread_ic,
    exact_spread_lt,
)
from repro.graphs import GraphBuilder, erdos_renyi, uniform, path_graph, weighted_cascade

import numpy as np


class TestExactIC:
    def test_single_edge(self):
        graph = GraphBuilder.from_edges([(0, 1, 0.3)], num_nodes=2)
        assert exact_spread_ic(graph, [0]) == pytest.approx(1.3)

    def test_deterministic_diamond(self, diamond_graph):
        assert exact_spread_ic(diamond_graph, [0]) == pytest.approx(4.0)

    def test_two_hop_chain(self):
        graph = GraphBuilder.from_edges([(0, 1, 0.5), (1, 2, 0.5)], num_nodes=3)
        # sigma = 1 + 0.5 + 0.25.
        assert exact_spread_ic(graph, [0]) == pytest.approx(1.75)

    def test_all_seeds(self, diamond_graph):
        assert exact_spread_ic(diamond_graph, range(4)) == pytest.approx(4.0)

    def test_refuses_large_graphs(self, rng):
        graph = erdos_renyi(30, 100, rng)
        with pytest.raises(ValueError, match="enumeration limited"):
            exact_spread_ic(graph, [0])

    def test_matches_monte_carlo(self, rng):
        graph = weighted_cascade(erdos_renyi(8, 14, np.random.default_rng(2)))
        exact = exact_spread_ic(graph, [0, 1])
        mc = estimate_spread(graph, [0, 1], IndependentCascade(), 40000, rng)
        assert mc.mean == pytest.approx(exact, abs=0.06)


class TestExactLT:
    def test_single_edge(self):
        graph = GraphBuilder.from_edges([(0, 1, 0.3)], num_nodes=2)
        assert exact_spread_lt(graph, [0]) == pytest.approx(1.3)

    def test_matches_monte_carlo(self, rng):
        graph = weighted_cascade(erdos_renyi(8, 14, np.random.default_rng(2)))
        exact = exact_spread_lt(graph, [0, 1])
        mc = estimate_spread(graph, [0, 1], LinearThreshold(), 40000, rng)
        assert mc.mean == pytest.approx(exact, abs=0.06)

    def test_ic_lt_agree_on_single_in_edges(self):
        # When every node has at most one in-edge the two models coincide.
        graph = GraphBuilder.from_edges([(0, 1, 0.5), (1, 2, 0.4)], num_nodes=3)
        assert exact_spread_ic(graph, [0]) == pytest.approx(exact_spread_lt(graph, [0]))

    def test_infeasible_rejected(self):
        graph = GraphBuilder.from_edges([(0, 2, 0.9), (1, 2, 0.9)], num_nodes=3)
        with pytest.raises(ValueError):
            exact_spread_lt(graph, [0])


class TestExactOptimum:
    def test_path_optimum_is_source(self):
        graph = uniform(path_graph(4), 1.0)
        seeds, value = exact_optimum(graph, 1)
        assert seeds == (0,)
        assert value == pytest.approx(4.0)

    def test_k2_on_paper_graph(self, paper_graph):
        seeds, value = exact_optimum(paper_graph, 2, model="ic")
        assert 0 in seeds
        assert value > exact_spread_ic(paper_graph, [0])

    def test_candidates_restriction(self, paper_graph):
        seeds, __ = exact_optimum(paper_graph, 1, candidates=[2, 3])
        assert seeds[0] in (2, 3)

    def test_k_exceeding_pool(self, paper_graph):
        seeds, value = exact_optimum(paper_graph, 10)
        assert len(seeds) == 4
        assert value == pytest.approx(4.0)

    def test_invalid_k(self, paper_graph):
        with pytest.raises(ValueError):
            exact_optimum(paper_graph, 0)
