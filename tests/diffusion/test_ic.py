"""Unit tests for the IC forward simulator."""

import numpy as np
import pytest

from repro.diffusion import IndependentCascade, seeds_to_array
from repro.graphs import GraphBuilder, path_graph, star_graph, uniform


@pytest.fixture
def model():
    return IndependentCascade()


class TestDeterministicCascades:
    def test_unit_probabilities_reach_everything(self, model, diamond_graph, rng):
        activated = model.simulate(diamond_graph, [0], rng)
        assert activated.tolist() == [0, 1, 2, 3]

    def test_zero_probabilities_stop_at_seeds(self, model, rng):
        graph = uniform(path_graph(5), 0.0)
        activated = model.simulate(graph, [0], rng)
        assert activated.tolist() == [0]

    def test_unit_path_full_chain(self, model, rng):
        graph = uniform(path_graph(6), 1.0)
        assert model.simulate(graph, [0], rng).size == 6

    def test_chain_from_middle(self, model, rng):
        graph = uniform(path_graph(6), 1.0)
        activated = model.simulate(graph, [3], rng)
        assert activated.tolist() == [3, 4, 5]

    def test_seeds_always_active(self, model, rng):
        graph = uniform(star_graph(3), 0.0)
        activated = model.simulate(graph, [0, 2], rng)
        assert activated.tolist() == [0, 2]

    def test_isolated_node(self, model, rng):
        graph = GraphBuilder.from_edges([(0, 1, 1.0)], num_nodes=3)
        assert model.simulate(graph, [2], rng).tolist() == [2]


class TestStochasticBehaviour:
    def test_activation_probability_single_edge(self, model):
        graph = GraphBuilder.from_edges([(0, 1, 0.3)], num_nodes=2)
        rng = np.random.default_rng(0)
        hits = sum(model.simulate(graph, [0], rng).size == 2 for __ in range(20000))
        assert hits / 20000 == pytest.approx(0.3, abs=0.02)

    def test_single_activation_chance(self, model):
        # Node 1 gets exactly one chance to activate node 2, so the
        # activation probability of 2 equals p(0,1) * p(1,2).
        graph = GraphBuilder.from_edges([(0, 1, 0.5), (1, 2, 0.5)], num_nodes=3)
        rng = np.random.default_rng(1)
        count = sum(
            2 in model.simulate(graph, [0], rng).tolist() for __ in range(20000)
        )
        assert count / 20000 == pytest.approx(0.25, abs=0.02)

    def test_deterministic_given_seeded_rng(self, model, small_wc_graph):
        first = model.simulate(small_wc_graph, [5], np.random.default_rng(9))
        second = model.simulate(small_wc_graph, [5], np.random.default_rng(9))
        assert np.array_equal(first, second)

    def test_cascade_size_helper(self, model, diamond_graph, rng):
        assert model.cascade_size(diamond_graph, [0], rng) == 4


class TestSeedValidation:
    def test_duplicate_seeds_collapsed(self):
        assert seeds_to_array([3, 3, 1], 5).tolist() == [1, 3]

    def test_out_of_range_seed_rejected(self, model, diamond_graph, rng):
        with pytest.raises(ValueError, match="seed ids"):
            model.simulate(diamond_graph, [99], rng)

    def test_empty_seed_set(self, model, diamond_graph, rng):
        assert model.simulate(diamond_graph, [], rng).size == 0
