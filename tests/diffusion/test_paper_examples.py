"""Validation against the paper's worked Example 1 (Section II-A).

The paper computes the exact influence spread of ``{v1}`` on the Fig 1
graph: ``3.664`` under IC (case probabilities 0.4 / 0.264 / 0.336) and
``3.9`` under LT (case probabilities 0.4 / 0.5 / 0.1).
"""

import numpy as np
import pytest

from repro.diffusion import (
    IndependentCascade,
    LinearThreshold,
    estimate_spread,
    exact_spread_ic,
    exact_spread_lt,
)


class TestExample1Exact:
    def test_ic_spread_of_v1(self, paper_graph):
        assert exact_spread_ic(paper_graph, [0]) == pytest.approx(3.664)

    def test_lt_spread_of_v1(self, paper_graph):
        assert exact_spread_lt(paper_graph, [0]) == pytest.approx(3.9)

    def test_ic_case_probabilities(self, paper_graph):
        # P[all four active] = 0.4 + 0.264; P[three active] = 0.336.
        # Derived from the exact spread decomposition: sigma = 4p4 + 3p3.
        sigma = exact_spread_ic(paper_graph, [0])
        p4 = sigma - 3.0  # p4 + p3 = 1 and 4 p4 + 3 p3 = sigma
        assert p4 == pytest.approx(0.664)

    def test_lt_case_probabilities(self, paper_graph):
        sigma = exact_spread_lt(paper_graph, [0])
        p4 = sigma - 3.0
        assert p4 == pytest.approx(0.9)

    def test_v2_v3_always_activated(self, paper_graph):
        # p(v1,v2) = p(v1,v3) = 1: the spread of {v1} is at least 3.
        assert exact_spread_ic(paper_graph, [0]) >= 3.0
        assert exact_spread_lt(paper_graph, [0]) >= 3.0


class TestExample1MonteCarlo:
    def test_ic_simulator_matches(self, paper_graph):
        rng = np.random.default_rng(42)
        estimate = estimate_spread(paper_graph, [0], IndependentCascade(), 40000, rng)
        low, high = estimate.ci(z=4.0)
        assert low <= 3.664 <= high
        assert estimate.mean == pytest.approx(3.664, abs=0.05)

    def test_lt_simulator_matches(self, paper_graph):
        rng = np.random.default_rng(42)
        estimate = estimate_spread(paper_graph, [0], LinearThreshold(), 40000, rng)
        assert estimate.mean == pytest.approx(3.9, abs=0.05)

    def test_lt_spread_exceeds_ic_here(self, paper_graph):
        # The paper's example: LT gives 3.9 > IC's 3.664 on this graph.
        assert exact_spread_lt(paper_graph, [0]) > exact_spread_ic(paper_graph, [0])
