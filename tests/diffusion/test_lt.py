"""Unit tests for the LT forward simulator."""

import numpy as np
import pytest

from repro.diffusion import LinearThreshold, check_lt_feasible
from repro.graphs import GraphBuilder, path_graph, uniform, weighted_cascade


@pytest.fixture
def model():
    return LinearThreshold()


class TestFeasibilityCheck:
    def test_valid_graph_passes(self, paper_graph):
        check_lt_feasible(paper_graph)

    def test_oversubscribed_node_rejected(self):
        graph = GraphBuilder.from_edges([(0, 2, 0.8), (1, 2, 0.8)], num_nodes=3)
        with pytest.raises(ValueError, match="sum of incoming"):
            check_lt_feasible(graph)

    def test_simulate_enforces_check(self, model, rng):
        graph = GraphBuilder.from_edges([(0, 2, 0.8), (1, 2, 0.8)], num_nodes=3)
        with pytest.raises(ValueError):
            model.simulate(graph, [0], rng)


class TestDeterministicCascades:
    def test_unit_chain(self, model, rng):
        graph = uniform(path_graph(5), 1.0)
        assert model.simulate(graph, [0], rng).size == 5

    def test_guaranteed_activation_prob_one(self, model, paper_graph):
        # v2 and v3 have a single incoming edge of probability 1, so any
        # threshold is met once v1 is active.
        for seed in range(50):
            activated = model.simulate(
                paper_graph, [0], np.random.default_rng(seed)
            ).tolist()
            assert 1 in activated and 2 in activated

    def test_no_spontaneous_activation(self, model, rng):
        # Thresholds never let a node with no active in-neighbor fire.
        graph = weighted_cascade(path_graph(4))
        activated = model.simulate(graph, [3], rng)
        assert activated.tolist() == [3]


class TestStochasticBehaviour:
    def test_single_edge_probability(self, model):
        graph = GraphBuilder.from_edges([(0, 1, 0.4)], num_nodes=2)
        rng = np.random.default_rng(0)
        hits = sum(model.simulate(graph, [0], rng).size == 2 for __ in range(20000))
        # Under LT, node 1 activates iff threshold <= 0.4.
        assert hits / 20000 == pytest.approx(0.4, abs=0.02)

    def test_threshold_accumulates_across_neighbors(self, model):
        # v2's incoming mass is 0.5 + 0.5; with both sources active it
        # always activates (threshold <= 1 surely).
        graph = GraphBuilder.from_edges([(0, 2, 0.5), (1, 2, 0.5)], num_nodes=3)
        rng = np.random.default_rng(1)
        for __ in range(200):
            assert model.simulate(graph, [0, 1], rng).size == 3

    def test_partial_activation_probability(self, model):
        # Only one source seeded: activation probability equals 0.5.
        graph = GraphBuilder.from_edges([(0, 2, 0.5), (1, 2, 0.5)], num_nodes=3)
        rng = np.random.default_rng(2)
        hits = sum(2 in model.simulate(graph, [0], rng).tolist() for __ in range(20000))
        assert hits / 20000 == pytest.approx(0.5, abs=0.02)

    def test_deterministic_given_seeded_rng(self, model, small_wc_graph):
        first = model.simulate(small_wc_graph, [3], np.random.default_rng(4))
        second = model.simulate(small_wc_graph, [3], np.random.default_rng(4))
        assert np.array_equal(first, second)
