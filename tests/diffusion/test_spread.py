"""Unit tests for Monte-Carlo spread estimation."""

import numpy as np
import pytest

from repro.diffusion import (
    IndependentCascade,
    estimate_spread,
    get_model,
    singleton_spreads,
    spread_with_ci,
)
from repro.graphs import uniform, path_graph


class TestEstimateSpread:
    def test_deterministic_graph_zero_variance(self, diamond_graph, rng):
        estimate = estimate_spread(diamond_graph, [0], IndependentCascade(), 50, rng)
        assert estimate.mean == 4.0
        assert estimate.stderr == 0.0

    def test_requires_positive_samples(self, diamond_graph, rng):
        with pytest.raises(ValueError, match="num_samples"):
            estimate_spread(diamond_graph, [0], IndependentCascade(), 0, rng)

    def test_single_sample_has_no_stderr(self, diamond_graph, rng):
        estimate = estimate_spread(diamond_graph, [0], IndependentCascade(), 1, rng)
        assert estimate.stderr == 0.0
        assert estimate.num_samples == 1

    def test_ci_contains_mean(self, small_wc_graph, rng):
        estimate = estimate_spread(small_wc_graph, [0], IndependentCascade(), 300, rng)
        low, high = estimate.ci()
        assert low <= estimate.mean <= high

    def test_spread_with_ci_wrapper(self, diamond_graph, rng):
        mean, (low, high) = spread_with_ci(
            diamond_graph, [0], IndependentCascade(), 10, rng
        )
        assert mean == 4.0
        assert low == high == 4.0


class TestSingletonSpreads:
    def test_path_graph_values(self, rng):
        graph = uniform(path_graph(4), 1.0)
        spreads = singleton_spreads(graph, IndependentCascade(), 20, rng)
        # Node i reaches nodes i..3 deterministically.
        assert spreads.tolist() == [4.0, 3.0, 2.0, 1.0]

    def test_every_singleton_at_least_one(self, small_wc_graph, rng):
        spreads = singleton_spreads(small_wc_graph, get_model("ic"), 10, rng)
        assert np.all(spreads >= 1.0)


class TestGetModel:
    def test_resolves_ic_and_lt(self):
        assert get_model("ic").name == "ic"
        assert get_model("LT").name == "lt"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown diffusion model"):
            get_model("sir")
