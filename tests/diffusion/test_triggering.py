"""Unit tests for the triggering-model live-edge implementation.

The key property: :class:`TriggeringModel` with the IC (resp. LT)
triggering distribution agrees *in distribution* with the round-based IC
(resp. LT) simulator — they are two implementations of the same process.
"""

import numpy as np
import pytest

from repro.diffusion import (
    ICTriggering,
    IndependentCascade,
    LinearThreshold,
    LTTriggering,
    TriggeringModel,
    estimate_spread,
    reachable_from,
)
from repro.graphs import GraphBuilder, uniform, path_graph, weighted_cascade, erdos_renyi


class TestReachability:
    def test_direct_path(self):
        sources = np.array([0, 1])
        targets = np.array([1, 2])
        assert reachable_from(3, sources, targets, np.array([0])).tolist() == [0, 1, 2]

    def test_no_edges(self):
        empty = np.array([], dtype=np.int64)
        assert reachable_from(3, empty, empty, np.array([1])).tolist() == [1]

    def test_disconnected(self):
        sources = np.array([0])
        targets = np.array([1])
        assert reachable_from(4, sources, targets, np.array([2])).tolist() == [2]

    def test_cycle(self):
        sources = np.array([0, 1, 2])
        targets = np.array([1, 2, 0])
        assert reachable_from(3, sources, targets, np.array([1])).size == 3


class TestICTriggering:
    def test_live_edge_fraction(self, rng):
        graph = uniform(path_graph(2), 0.5)
        dist = ICTriggering()
        live = sum(
            dist.sample_live_edges(graph, rng)[0].size for __ in range(5000)
        )
        assert live / 5000 == pytest.approx(0.5, abs=0.03)

    def test_unit_probability_keeps_all(self, rng, diamond_graph):
        sources, __ = ICTriggering().sample_live_edges(diamond_graph, rng)
        assert sources.size == diamond_graph.num_edges


class TestLTTriggering:
    def test_at_most_one_live_in_edge(self, rng):
        graph = weighted_cascade(erdos_renyi(40, 300, np.random.default_rng(5)))
        for __ in range(50):
            __, targets = LTTriggering().sample_live_edges(graph, rng)
            __, counts = np.unique(targets, return_counts=True)
            assert np.all(counts <= 1)

    def test_edge_selection_probability(self, rng):
        # v2 has in-edges with probabilities 0.3 and 0.6; the first should
        # be live 30% of the time, the second 60%, none 10%.
        graph = GraphBuilder.from_edges([(0, 2, 0.3), (1, 2, 0.6)], num_nodes=3)
        dist = LTTriggering()
        picks = {0: 0, 1: 0, None: 0}
        for __ in range(20000):
            sources, targets = dist.sample_live_edges(graph, rng)
            mask = targets == 2
            if mask.any():
                picks[int(sources[mask][0])] += 1
            else:
                picks[None] += 1
        assert picks[0] / 20000 == pytest.approx(0.3, abs=0.02)
        assert picks[1] / 20000 == pytest.approx(0.6, abs=0.02)
        assert picks[None] / 20000 == pytest.approx(0.1, abs=0.02)

    def test_infeasible_graph_rejected(self, rng):
        graph = GraphBuilder.from_edges([(0, 2, 0.8), (1, 2, 0.8)], num_nodes=3)
        with pytest.raises(ValueError):
            LTTriggering().sample_live_edges(graph, rng)


class TestDistributionEquivalence:
    """Live-edge and round-based simulators agree in expectation."""

    def test_ic_equivalence(self, paper_graph):
        rng = np.random.default_rng(0)
        direct = estimate_spread(paper_graph, [0], IndependentCascade(), 30000, rng)
        viaedges = estimate_spread(
            paper_graph, [0], TriggeringModel(ICTriggering()), 30000, rng
        )
        assert direct.mean == pytest.approx(viaedges.mean, abs=0.05)

    def test_lt_equivalence(self, paper_graph):
        rng = np.random.default_rng(0)
        direct = estimate_spread(paper_graph, [0], LinearThreshold(), 30000, rng)
        viaedges = estimate_spread(
            paper_graph, [0], TriggeringModel(LTTriggering()), 30000, rng
        )
        assert direct.mean == pytest.approx(viaedges.mean, abs=0.05)

    def test_ic_equivalence_random_graph(self, small_wc_graph):
        rng = np.random.default_rng(0)
        direct = estimate_spread(small_wc_graph, [0, 1], IndependentCascade(), 8000, rng)
        viaedges = estimate_spread(
            small_wc_graph, [0, 1], TriggeringModel(ICTriggering()), 8000, rng
        )
        assert direct.mean == pytest.approx(viaedges.mean, rel=0.1)

    def test_repr_mentions_distribution(self):
        assert "ICTriggering" in repr(TriggeringModel(ICTriggering()))
