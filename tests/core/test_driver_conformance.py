"""Golden-seed conformance for the RoundDriver port.

Every value below was captured by running the pre-driver implementations
(each entry point carrying its own private round loop) on the shared
``small_wc_graph`` fixture.  The driver port must reproduce them *bit for
bit* — seeds, RR-set accounting, bounds and round counts — on both
executors; only metered wall-clock times are allowed to differ.
"""

from __future__ import annotations

import pytest

from repro.core import (
    diimm,
    distributed_opimc,
    distributed_ssa,
    distributed_subsim,
    imm,
)

# (seeds, num_rr_sets, total_rr_size, total_edges_examined,
#  lower_bound, search_rounds, estimated_spread)
GOLDEN_A = {
    "diimm": (
        [75, 168, 36, 118], 2726, 28688, 172480,
        32.693216045934015, 3, 55.09904622157007,
    ),
    "dssa": (
        [75, 168, 152, 32], 6432, 65919, 396852,
        50.43532338308458, 4, 50.43532338308458,
    ),
    "dopimc": (
        [26, 32, 79, 62], 222, 2653, 16003,
        0.14193592041754935, 1, 61.26126126126126,
    ),
    "dsubsim": (
        [36, 75, 132, 118], 2815, 29241, 58507,
        31.664131763616485, 3, 53.42806394316163,
    ),
}

GOLDEN_A_IMM = (
    [75, 36, 168, 118], 2986, 29825, 179948,
    29.84344418720854, 3, 49.966510381781646,
)

GOLDEN_B = {
    "diimm": (
        [75, 36, 168, 93, 128, 32], 2706, 27676, 166068,
        37.19594697325339, 3, 64.15373244641536,
    ),
    "dssa": (
        [75, 36, 168, 132, 93, 160], 6432, 67247, 404163,
        62.43781094527363, 4, 62.43781094527363,
    ),
    "dopimc": (
        [75, 135, 106, 145, 79, 87], 500, 4744, 28339,
        0.22143748035919608, 2, 56.0,
    ),
    "dsubsim": (
        [75, 36, 118, 152, 168, 93], 2801, 27241, 54248,
        35.936191193410586, 3, 62.54908961085327,
    ),
}

GOLDEN_B_IMM = (
    [36, 75, 152, 39, 102, 168], 2711, 27730, 166611,
    37.12964403747219, 3, 62.338620435263735,
)

ALGORITHMS = {
    "diimm": diimm,
    "dssa": distributed_ssa,
    "dopimc": distributed_opimc,
    "dsubsim": distributed_subsim,
}


def assert_matches(result, golden):
    seeds, num_rr, total_size, total_edges, lb, rounds, spread = golden
    assert result.seeds == seeds
    assert result.num_rr_sets == num_rr
    assert result.total_rr_size == total_size
    assert result.total_edges_examined == total_edges
    assert result.lower_bound == lb
    assert result.search_rounds == rounds
    assert result.estimated_spread == spread


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
class TestSimulatedConformance:
    def test_config_a(self, small_wc_graph, algorithm):
        result = ALGORITHMS[algorithm](small_wc_graph, 4, 3, eps=0.5, seed=11)
        assert_matches(result, GOLDEN_A[algorithm])

    def test_config_b(self, small_wc_graph, algorithm):
        result = ALGORITHMS[algorithm](small_wc_graph, 6, 4, eps=0.5, seed=3)
        assert_matches(result, GOLDEN_B[algorithm])


class TestImmConformance:
    def test_config_a(self, small_wc_graph):
        assert_matches(imm(small_wc_graph, 4, eps=0.5, seed=11), GOLDEN_A_IMM)

    def test_config_b(self, small_wc_graph):
        assert_matches(imm(small_wc_graph, 6, eps=0.5, seed=3), GOLDEN_B_IMM)

    def test_zero_communication(self, small_wc_graph):
        """The single-machine baseline still issues no communication."""
        result = imm(small_wc_graph, 4, eps=0.5, seed=11)
        assert result.metrics.communication_time == 0.0
        assert result.metrics.total_bytes == 0


@pytest.mark.slow
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
class TestMultiprocessingConformance:
    """The multiprocessing executor must match the same golden values."""

    def test_config_a(self, small_wc_graph, algorithm):
        result = ALGORITHMS[algorithm](
            small_wc_graph, 4, 3, eps=0.5, seed=11, executor="multiprocessing"
        )
        assert_matches(result, GOLDEN_A[algorithm])


@pytest.mark.slow
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
class TestSocketConformance:
    """The socket executor (real TCP workers) matches the golden values
    and additionally records measured wire traffic."""

    def test_config_a(self, small_wc_graph, algorithm):
        result = ALGORITHMS[algorithm](
            small_wc_graph, 4, 3, eps=0.5, seed=11, executor="socket"
        )
        assert_matches(result, GOLDEN_A[algorithm])
        assert result.metrics.wire_sent_bytes > 0
        assert result.metrics.wire_received_bytes > 0
        assert result.metrics.total_round_trips > 0
