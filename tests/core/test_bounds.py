"""Unit tests for the IMM sampling bounds (equations 3-7)."""

import math

import pytest

from repro.core import (
    ImmParameters,
    alpha_term,
    beta_term,
    lambda_prime,
    lambda_star,
    log_binomial,
    solve_delta_prime,
)


class TestLogBinomial:
    def test_small_values_exact(self):
        assert log_binomial(5, 2) == pytest.approx(math.log(10))
        assert log_binomial(10, 0) == pytest.approx(0.0)
        assert log_binomial(10, 10) == pytest.approx(0.0)

    def test_symmetry(self):
        assert log_binomial(100, 30) == pytest.approx(log_binomial(100, 70))

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            log_binomial(5, 6)
        with pytest.raises(ValueError):
            log_binomial(5, -1)

    def test_large_values_finite(self):
        value = log_binomial(41_700_000, 50)
        assert 0 < value < 2000


class TestLambdaFormulas:
    def test_lambda_prime_formula(self):
        n, k, eps_p, delta_p = 1000, 10, 0.5, 0.01
        expected = (
            (2 + 2 * eps_p / 3)
            * (log_binomial(n, k) + math.log(2 / delta_p) + math.log(math.log2(n)))
            * n
            / eps_p**2
        )
        assert lambda_prime(n, k, eps_p, delta_p) == pytest.approx(expected)

    def test_lambda_star_formula(self):
        n, k, eps, delta_p = 1000, 10, 0.5, 0.01
        combined = (1 - 1 / math.e) * alpha_term(delta_p) + beta_term(n, k, delta_p)
        assert lambda_star(n, k, eps, delta_p) == pytest.approx(
            2 * n * combined**2 / eps**2
        )

    def test_lambda_scales_inverse_eps_squared(self):
        small = lambda_star(1000, 10, 0.1, 0.01)
        large = lambda_star(1000, 10, 0.2, 0.01)
        assert small / large == pytest.approx(4.0)

    def test_lambda_grows_with_k(self):
        assert lambda_star(1000, 20, 0.5, 0.01) > lambda_star(1000, 5, 0.5, 0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            lambda_prime(1, 1, 0.5, 0.1)
        with pytest.raises(ValueError):
            lambda_star(100, 0, 0.5, 0.1)
        with pytest.raises(ValueError):
            lambda_star(100, 5, -0.5, 0.1)
        with pytest.raises(ValueError):
            alpha_term(1.5)


class TestDeltaPrimeFixedPoint:
    """Chen's fix: delta' solves ceil(lambda*) * delta' = delta."""

    def test_fixed_point_identity(self):
        n, k, eps, delta = 10_000, 50, 0.5, 1e-4
        delta_p = solve_delta_prime(n, k, eps, delta)
        residual = math.ceil(lambda_star(n, k, eps, delta_p)) * delta_p
        assert residual == pytest.approx(delta, rel=1e-6)

    def test_smaller_than_delta(self):
        delta = 0.01
        delta_p = solve_delta_prime(1000, 10, 0.5, delta)
        assert 0 < delta_p < delta

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            solve_delta_prime(1000, 10, 0.5, 1.5)


class TestImmParameters:
    def test_compute_consistency(self):
        params = ImmParameters.compute(2000, 10, 0.5, 1 / 2000)
        assert params.eps_prime == pytest.approx(math.sqrt(2) * 0.5)
        assert params.lambda_prime == pytest.approx(
            lambda_prime(2000, 10, params.eps_prime, params.delta_prime)
        )
        assert params.max_search_rounds == int(math.log2(2000)) - 1

    def test_theta_for_round_doubles(self):
        params = ImmParameters.compute(2000, 10, 0.5, 1 / 2000)
        t1 = params.theta_for_round(1)
        t2 = params.theta_for_round(2)
        assert t2 == pytest.approx(2 * t1, rel=0.01)

    def test_theta_final_inverse_in_lb(self):
        params = ImmParameters.compute(2000, 10, 0.5, 1 / 2000)
        assert params.theta_final(100) > params.theta_final(200)

    def test_theta_validation(self):
        params = ImmParameters.compute(2000, 10, 0.5, 1 / 2000)
        with pytest.raises(ValueError):
            params.theta_for_round(0)
        with pytest.raises(ValueError):
            params.theta_final(0.5)

    def test_paper_scale_parameters_computable(self):
        """The bound machinery handles the paper's actual settings
        (n = 41.7M, k = 50, eps = 0.01, delta = 1/n) without overflow."""
        n = 41_700_000
        params = ImmParameters.compute(n, 50, 0.01, 1.0 / n)
        assert params.lambda_star > 0
        assert math.isfinite(params.lambda_star)
        # Hundreds of millions of RR sets, matching Table IV's magnitudes.
        assert params.theta_final(n * 0.05) > 1e6
