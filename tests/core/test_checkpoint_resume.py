"""Driver checkpoint/resume: crash mid-run, continue to the same answer.

All randomness lives in the machines' RNG streams, which the snapshots
capture; a resumed run therefore replays the interrupted round bit-for-bit
and must finish with the *identical* result an uninterrupted run produces.
"""

from __future__ import annotations

import json

import pytest

from repro.core import CheckpointManager, diimm, distributed_ssa
from repro.core.checkpoint import (
    DRIVER_CHECKPOINT_MAGIC,
    DRIVER_CHECKPOINT_VERSION,
)
from repro.core.driver import RoundDriver
from repro.ris import CheckpointFormatError


def assert_same_result(resumed, reference):
    assert resumed.seeds == reference.seeds
    assert resumed.num_rr_sets == reference.num_rr_sets
    assert resumed.total_rr_size == reference.total_rr_size
    assert resumed.total_edges_examined == reference.total_edges_examined
    assert resumed.lower_bound == reference.lower_bound
    assert resumed.search_rounds == reference.search_rounds
    assert resumed.estimated_spread == reference.estimated_spread


def inject_select_crash(monkeypatch, at_call: int):
    """Make RoundDriver._select raise once, on its ``at_call``-th call."""
    original = RoundDriver._select
    state = {"calls": 0, "armed": True}

    def crashing(self, round_label):
        state["calls"] += 1
        if state["armed"] and state["calls"] == at_call:
            state["armed"] = False
            raise RuntimeError("injected crash")
        return original(self, round_label)

    monkeypatch.setattr(RoundDriver, "_select", crashing)
    return state


class TestResume:
    def test_diimm_resume_reproduces_result(self, small_wc_graph, tmp_path):
        reference = diimm(small_wc_graph, 4, 3, eps=0.5, seed=11)
        ckpt = tmp_path / "run"
        first = diimm(small_wc_graph, 4, 3, eps=0.5, seed=11, checkpoint_dir=str(ckpt))
        assert_same_result(first, reference)
        # One snapshot per continued round: 3 search rounds, stop in final.
        rounds = sorted(p.name for p in ckpt.iterdir())
        assert rounds == ["round-0001", "round-0002", "round-0003"]

        resumed = diimm(
            small_wc_graph, 4, 3, eps=0.5, seed=11,
            checkpoint_dir=str(ckpt), resume=True,
        )
        assert_same_result(resumed, reference)

    def test_diimm_resume_after_crash(self, small_wc_graph, tmp_path, monkeypatch):
        reference = diimm(small_wc_graph, 4, 3, eps=0.5, seed=11)
        ckpt = tmp_path / "run"
        inject_select_crash(monkeypatch, at_call=2)
        with pytest.raises(RuntimeError, match="injected crash"):
            diimm(small_wc_graph, 4, 3, eps=0.5, seed=11, checkpoint_dir=str(ckpt))
        # The crash hit round 2; only round 1's snapshot exists.
        assert [p.name for p in sorted(ckpt.iterdir())] == ["round-0001"]

        resumed = diimm(
            small_wc_graph, 4, 3, eps=0.5, seed=11,
            checkpoint_dir=str(ckpt), resume=True,
        )
        assert_same_result(resumed, reference)

    def test_dssa_resume_multi_collection(self, small_wc_graph, tmp_path, monkeypatch):
        """Both the select and verify collections survive the crash."""
        reference = distributed_ssa(small_wc_graph, 4, 3, eps=0.5, seed=11)
        ckpt = tmp_path / "run"
        inject_select_crash(monkeypatch, at_call=3)
        with pytest.raises(RuntimeError, match="injected crash"):
            distributed_ssa(
                small_wc_graph, 4, 3, eps=0.5, seed=11, checkpoint_dir=str(ckpt)
            )
        latest = ckpt / "round-0002"
        for key in ("select", "verify"):
            for machine_id in range(3):
                assert (latest / f"machine{machine_id}-{key}.npz").is_file()

        resumed = distributed_ssa(
            small_wc_graph, 4, 3, eps=0.5, seed=11,
            checkpoint_dir=str(ckpt), resume=True,
        )
        assert_same_result(resumed, reference)


class TestValidation:
    def test_resume_from_empty_directory(self, small_wc_graph, tmp_path):
        with pytest.raises(FileNotFoundError, match="no driver checkpoint"):
            diimm(
                small_wc_graph, 4, 3, eps=0.5, seed=11,
                checkpoint_dir=str(tmp_path / "missing"), resume=True,
            )

    def test_config_mismatch_refused(self, small_wc_graph, tmp_path):
        ckpt = tmp_path / "run"
        diimm(small_wc_graph, 4, 3, eps=0.5, seed=11, checkpoint_dir=str(ckpt))
        with pytest.raises(CheckpointFormatError, match="differing keys.*'k'"):
            diimm(
                small_wc_graph, 5, 3, eps=0.5, seed=11,
                checkpoint_dir=str(ckpt), resume=True,
            )

    def test_rule_mismatch_refused(self, small_wc_graph, tmp_path):
        ckpt = tmp_path / "run"
        diimm(small_wc_graph, 4, 3, eps=0.5, seed=11, checkpoint_dir=str(ckpt))
        with pytest.raises(CheckpointFormatError, match="written by rule"):
            distributed_ssa(
                small_wc_graph, 4, 3, eps=0.5, seed=11,
                checkpoint_dir=str(ckpt), resume=True,
            )

    @staticmethod
    def _fake_snapshot(directory, **overrides):
        round_dir = directory / "round-0001"
        round_dir.mkdir(parents=True)
        state = {
            "magic": DRIVER_CHECKPOINT_MAGIC,
            "version": DRIVER_CHECKPOINT_VERSION,
            "round_index": 1,
            "rule": {"name": "imm-schedule", "state": {}},
            "rng_states": [{}],
            "collection_keys": ["main"],
            "num_machines": 1,
            "config": {},
        }
        state.update(overrides)
        (round_dir / "state.json").write_text(json.dumps(state))

    def test_foreign_state_json_refused(self, tmp_path):
        self._fake_snapshot(tmp_path, magic="someone-elses-checkpoint")
        manager = CheckpointManager(tmp_path, config={})
        with pytest.raises(CheckpointFormatError, match="not a driver checkpoint"):
            manager.load_latest("imm-schedule", ["main"], 1, "flat")

    def test_version_mismatch_refused(self, tmp_path):
        self._fake_snapshot(tmp_path, version=DRIVER_CHECKPOINT_VERSION + 1)
        manager = CheckpointManager(tmp_path, config={})
        with pytest.raises(CheckpointFormatError, match="driver-checkpoint version"):
            manager.load_latest("imm-schedule", ["main"], 1, "flat")

    def test_shape_mismatch_refused(self, tmp_path):
        self._fake_snapshot(tmp_path)
        manager = CheckpointManager(tmp_path, config={})
        with pytest.raises(CheckpointFormatError, match="machines"):
            manager.load_latest("imm-schedule", ["main"], 2, "flat")

    def test_torn_write_leaves_previous_snapshot(self, tmp_path):
        """A stray tmp dir (simulating a crash mid-write) is ignored."""
        self._fake_snapshot(tmp_path)
        (tmp_path / ".tmp-round-0002").mkdir()
        manager = CheckpointManager(tmp_path, config={})
        assert manager.latest_round() == 1
