"""SamplePool: shared RR-sample lifetime, warm/cold equivalence, coverage cache."""

import numpy as np
import pytest

from repro.api import POOLABLE, RunConfig, run
from repro.cluster.cluster import SimulatedCluster
from repro.core.pool import MAX_CACHED_COVERAGE, SamplePool
from repro.coverage.state import CoverageState
from repro.ris import FlatRRCollection, make_sampler


@pytest.fixture
def pool(small_wc_graph):
    with SamplePool(small_wc_graph, machines=3, seed=7) as p:
        yield p


class TestConstruction:
    def test_rejects_vectorized(self, small_wc_graph):
        with pytest.raises(ValueError, match="prefix-deterministic"):
            SamplePool(small_wc_graph, machines=2, method="vectorized")

    def test_rejects_unknown_rng_scheme(self, small_wc_graph):
        with pytest.raises(ValueError, match="rng_scheme"):
            SamplePool(small_wc_graph, rng_scheme="nope")

    def test_legacy_imm_is_single_machine(self, small_wc_graph):
        with pytest.raises(ValueError, match="single-machine"):
            SamplePool(small_wc_graph, machines=2, rng_scheme="legacy-imm")

    def test_close_is_idempotent(self, small_wc_graph):
        pool = SamplePool(small_wc_graph, machines=2)
        pool.close()
        pool.close()
        assert pool.closed

    def test_repr(self, pool):
        assert "SamplePool" in repr(pool)


class TestGrowth:
    def test_ensure_generates_only_shortfall(self, pool):
        assert pool.ensure("main", [10, 20, 30]) == 60
        assert pool.sizes()["main"] == [10, 20, 30]
        # Lower or equal targets draw nothing.
        assert pool.ensure("main", [5, 20, 30]) == 0
        assert pool.ensure("main", [15, 20, 35]) == 10
        assert pool.sizes()["main"] == [15, 20, 35]

    def test_ensure_validates_target_count(self, pool):
        with pytest.raises(ValueError):
            pool.ensure("main", [1, 2])

    def test_topped_up_store_equals_cold_stream(self, pool, small_wc_graph):
        # Two top-ups of machine i's collection must equal one cold draw
        # of the same total from an identically seeded stream.
        pool.ensure("main", [12, 12, 12])
        pool.ensure("main", [40, 40, 40])
        sampler = make_sampler(small_wc_graph, "ic")
        cold_cluster = SimulatedCluster(3, seed=7)
        for machine, store in zip(cold_cluster.machines, pool.stores("main")):
            cold = FlatRRCollection(small_wc_graph.num_nodes)
            cold.extend(sampler.sample_many(40, machine.rng))
            assert np.array_equal(store.nodes, cold.nodes)
            assert np.array_equal(store.offsets, cold.offsets)

    def test_signature_tracks_sizes(self, pool):
        empty = pool.signature()
        pool.ensure("main", [5, 5, 5])
        grown = pool.signature()
        assert empty != grown
        assert grown == (0, (("main", (5, 5, 5)),))

    def test_view_stores_start_empty(self, pool):
        pool.ensure("main", [8, 8, 8])
        views = pool.view_stores(["main"])
        assert [v.num_sets for v in views["main"]] == [0, 0, 0]
        views["main"][0].set_limit(8)
        assert views["main"][0].num_sets == 8


class TestCoverageCache:
    def _state(self, pool, marks):
        state = CoverageState(pool.num_nodes, pool.num_machines)
        state.watermarks = list(marks)
        return state

    def test_fork_requires_dominated_watermarks(self, pool):
        pool.donate_coverage("main", self._state(pool, [10, 10, 10]))
        assert pool.fork_coverage("main", [9, 10, 10]) is None
        forked = pool.fork_coverage("main", [10, 10, 10])
        assert forked is not None
        assert forked.watermarks == [10, 10, 10]

    def test_fork_picks_largest_usable(self, pool):
        pool.donate_coverage("main", self._state(pool, [5, 5, 5]))
        pool.donate_coverage("main", self._state(pool, [20, 20, 20]))
        forked = pool.fork_coverage("main", [25, 25, 25])
        assert forked.watermarks == [20, 20, 20]

    def test_donations_deduplicate_and_cap(self, pool):
        pool.donate_coverage("main", self._state(pool, [1, 1, 1]))
        pool.donate_coverage("main", self._state(pool, [1, 1, 1]))
        assert len(pool._coverage_cache["main"]) == 1
        for mark in range(2, 2 + MAX_CACHED_COVERAGE + 2):
            pool.donate_coverage("main", self._state(pool, [mark] * 3))
        assert len(pool._coverage_cache["main"]) == MAX_CACHED_COVERAGE

    def test_forked_state_is_copy_on_write(self, pool):
        donated = self._state(pool, [0, 0, 0])
        donated.counts[:] = 5
        pool.donate_coverage("main", donated)
        fork = pool.fork_coverage("main", [100, 100, 100])
        assert fork.counts is donated.counts  # shared until first ingest
        fork._ensure_owned()
        fork.counts[0] = 99
        assert donated.counts[0] == 5


class TestQueryMetrics:
    def test_isolation_and_merge(self, pool):
        with pool.query_metrics() as metrics:
            pool.ensure("main", [4, 4, 4])
            assert len(metrics.phases) == 1
        assert pool.queries_served == 1
        # The query's phases fold into the pool lifetime metrics on exit.
        assert len(pool.lifetime_metrics.phases) == 1
        with pool.query_metrics() as metrics2:
            assert metrics2.phases == []


class TestCheckConfig:
    def test_accepts_matching_config(self, pool, small_wc_graph):
        pool.check_config(
            RunConfig(graph=small_wc_graph, k=5, machines=3, seed=7), machines=3
        )

    def test_rejects_wrong_seed(self, pool, small_wc_graph):
        with pytest.raises(ValueError, match="seed"):
            pool.check_config(RunConfig(graph=small_wc_graph, k=5, machines=3, seed=8))

    def test_rejects_other_graph(self, pool, paper_graph):
        with pytest.raises(ValueError, match="graph"):
            pool.check_config(RunConfig(graph=paper_graph, k=2, machines=3, seed=7))

    def test_rejects_wrong_method(self, pool, small_wc_graph):
        with pytest.raises(ValueError, match="pool samples"):
            pool.check_config(
                RunConfig(graph=small_wc_graph, k=5, machines=3, seed=7, method="subsim")
            )

    def test_rejects_machine_mismatch(self, pool, small_wc_graph):
        with pytest.raises(ValueError, match="machines"):
            pool.check_config(
                RunConfig(graph=small_wc_graph, k=5, machines=2, seed=7), machines=2
            )

    def test_rejects_checkpointing(self, pool, small_wc_graph, tmp_path):
        with pytest.raises(ValueError, match="checkpoint"):
            pool.check_config(
                RunConfig(
                    graph=small_wc_graph,
                    k=5,
                    machines=3,
                    seed=7,
                    checkpoint_dir=str(tmp_path),
                )
            )

    def test_rejects_faults(self, pool, small_wc_graph):
        with pytest.raises(ValueError, match="fault"):
            pool.check_config(
                RunConfig(graph=small_wc_graph, k=5, machines=3, seed=7, faults="crash@m0")
            )


class TestWarmColdEquivalence:
    """The correctness anchor: warm queries == cold runs, bit for bit."""

    def test_diimm_across_k_and_topups(self, small_wc_graph):
        cold = {
            k: run("diimm", RunConfig(graph=small_wc_graph, k=k, machines=3, seed=7))
            for k in (3, 8)
        }
        with SamplePool(small_wc_graph, machines=3, seed=7) as pool:
            # Ascending k grows the pool; repeating k=3 serves from a pool
            # strictly larger than its theta — both must stay identical.
            for k in (3, 8, 3):
                warm = run(
                    "diimm",
                    RunConfig(graph=small_wc_graph, k=k, machines=3, seed=7),
                    pool=pool,
                )
                assert warm.seeds == cold[k].seeds
                assert warm.estimated_spread == cold[k].estimated_spread
                assert warm.num_rr_sets == cold[k].num_rr_sets
                assert warm.total_rr_size == cold[k].total_rr_size
                assert warm.total_edges_examined == cold[k].total_edges_examined
            assert pool.queries_served == 3

    def test_imm_requires_legacy_scheme(self, small_wc_graph):
        with SamplePool(small_wc_graph, machines=1, seed=7) as pool:
            with pytest.raises(ValueError, match="legacy-imm"):
                run("imm", RunConfig(graph=small_wc_graph, k=3, seed=7), pool=pool)

    def test_imm_warm_equals_cold(self, small_wc_graph):
        cold = run("imm", RunConfig(graph=small_wc_graph, k=4, seed=7))
        with SamplePool(
            small_wc_graph, machines=1, seed=7, rng_scheme="legacy-imm"
        ) as pool:
            warm = run("imm", RunConfig(graph=small_wc_graph, k=4, seed=7), pool=pool)
        assert warm.seeds == cold.seeds
        assert warm.estimated_spread == cold.estimated_spread

    def test_unpoolable_algorithms_rejected(self, small_wc_graph):
        assert "dssa" not in POOLABLE
        with SamplePool(small_wc_graph, machines=3, seed=7) as pool:
            with pytest.raises(ValueError, match="warm pool"):
                run(
                    "dssa",
                    RunConfig(graph=small_wc_graph, k=3, machines=3, seed=7),
                    pool=pool,
                )

    def test_executor_and_pool_are_exclusive(self, small_wc_graph, pool):
        cluster = SimulatedCluster(3, seed=7)
        from repro.cluster.executor import make_executor

        exec_ = make_executor("simulated", cluster, graph=small_wc_graph)
        try:
            with pytest.raises(ValueError, match="not both"):
                run(
                    "diimm",
                    RunConfig(graph=small_wc_graph, k=3, machines=3, seed=7),
                    executor=exec_,
                    pool=pool,
                )
        finally:
            exec_.close()
