"""Each StoppingRule in isolation, against hand-built coverage states.

The rules only see two things: the round's selection (a
:class:`~repro.coverage.greedy.GreedyResult`) and a driver-like context
offering ``total_sets`` / ``coverage_of``.  Stubbing both lets the tests
pin every documented trigger threshold without running any sampling.
"""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import (
    ImmParameters,
    opim_opt_upper_bound,
    opim_spread_lower_bound,
)
from repro.core.driver import (
    ImmScheduleRule,
    OpimStoppingRule,
    StareStoppingRule,
    SubsimScheduleRule,
)
from repro.coverage.greedy import GreedyResult


class StubDriver:
    """Driver stand-in: fixed collection sizes and coverage answers."""

    def __init__(self, sets=None, coverage=None):
        self._sets = sets or {}
        self._coverage = coverage or {}
        self.coverage_labels = []

    def total_sets(self, key):
        return self._sets[key]

    def coverage_of(self, key, seeds, label):
        self.coverage_labels.append(label)
        return self._coverage[key]


def selection(coverage, num_elements, seeds=(0, 1)):
    return GreedyResult(
        seeds=list(seeds), coverage=coverage, num_elements=num_elements
    )


class TestImmScheduleRule:
    N, K, EPS, DELTA = 1000, 5, 0.5, 1e-3

    def make(self):
        return ImmScheduleRule(ImmParameters.compute(self.N, self.K, self.EPS, self.DELTA))

    def test_search_round_targets_follow_schedule(self):
        rule = self.make()
        plan = rule.next_round()
        assert plan.label == "search-1"
        assert plan.targets == {"main": rule.params.theta_for_round(1)}
        # No certification -> next round doubles the guess.
        rule.check(None, selection(0, plan.targets["main"]), plan)
        plan2 = rule.next_round()
        assert plan2.label == "search-2"
        assert plan2.targets == {"main": rule.params.theta_for_round(2)}

    def test_certification_threshold(self):
        rule = self.make()
        plan = rule.next_round()
        num = plan.targets["main"]
        x = self.N / 2.0
        # Exactly at the bar: n * coverage/num >= (1 + eps') * x certifies.
        bar = (1.0 + rule.params.eps_prime) * x
        covering = math.ceil(bar * num / self.N)
        assert not rule.check(None, selection(covering, num), plan)
        assert rule.final_pending
        assert rule.lower_bound == pytest.approx(
            self.N * covering / num / (1.0 + rule.params.eps_prime)
        )
        assert rule.search_rounds == 1
        final = rule.next_round()
        assert final.label == "final"
        assert final.targets == {"main": rule.params.theta_final(rule.lower_bound)}
        # The final round's check always stops.
        assert rule.check(None, selection(covering, num), final)

    def test_below_threshold_keeps_searching(self):
        rule = self.make()
        plan = rule.next_round()
        num = plan.targets["main"]
        bar = (1.0 + rule.params.eps_prime) * (self.N / 2.0)
        below = math.ceil(bar * num / self.N) - 1
        assert not rule.check(None, selection(below, num), plan)
        assert not rule.final_pending
        assert rule.lower_bound == 1.0

    def test_exhausted_search_falls_through_with_trivial_bound(self):
        rule = self.make()
        for __ in range(rule.params.max_search_rounds):
            plan = rule.next_round()
            assert not rule.check(None, selection(0, plan.targets["main"]), plan)
        assert rule.final_pending
        assert rule.lower_bound == 1.0
        assert rule.search_rounds == rule.params.max_search_rounds

    def test_state_dict_round_trip(self):
        rule = self.make()
        plan = rule.next_round()
        rule.check(None, selection(plan.targets["main"], plan.targets["main"]), plan)
        restored = self.make()
        restored.load_state_dict(rule.state_dict())
        assert restored.state_dict() == rule.state_dict()
        assert restored.next_round() == rule.next_round()

    def test_subsim_variant_shares_schedule(self):
        params = ImmParameters.compute(self.N, self.K, self.EPS, self.DELTA)
        assert SubsimScheduleRule(params).next_round() == ImmScheduleRule(
            params
        ).next_round()
        assert SubsimScheduleRule.name == "subsim-schedule"


class TestStareStoppingRule:
    N = 1000

    def make(self, eps_1=0.2, min_coverage=50.0, theta_initial=100, theta_max=1000):
        return StareStoppingRule(
            self.N,
            eps_1=eps_1,
            min_coverage=min_coverage,
            theta_initial=theta_initial,
            theta_max=theta_max,
        )

    def test_consistent_and_supported_stops(self):
        rule = self.make()
        plan = rule.next_round()
        assert plan.targets == {"select": 100, "verify": 100}
        # Verification agrees exactly -> consistent; coverage 60 >= 50.
        driver = StubDriver(
            sets={"select": 100, "verify": 100}, coverage={"verify": 60}
        )
        assert rule.check(driver, selection(60, 100), plan)
        assert rule.verify_estimate == pytest.approx(self.N * 60 / 100)
        assert driver.coverage_labels == ["round-1/stare"]

    def test_inconsistent_verification_doubles(self):
        rule = self.make()
        plan = rule.next_round()
        # Select estimate 600, verify estimate 400: 400 < 600 / 1.2 = 500.
        driver = StubDriver(
            sets={"select": 100, "verify": 100}, coverage={"verify": 40}
        )
        assert not rule.check(driver, selection(60, 100), plan)
        assert rule.theta == 200
        assert rule.next_round().targets == {"select": 200, "verify": 200}

    def test_unsupported_coverage_doubles(self):
        rule = self.make(min_coverage=61.0)
        plan = rule.next_round()
        # Perfectly consistent but coverage 60 < min_coverage 61.
        driver = StubDriver(
            sets={"select": 100, "verify": 100}, coverage={"verify": 60}
        )
        assert not rule.check(driver, selection(60, 100), plan)
        assert rule.theta == 200

    def test_theta_cap_forces_stop(self):
        rule = self.make(theta_initial=1000, theta_max=1000)
        plan = rule.next_round()
        driver = StubDriver(
            sets={"select": 1000, "verify": 1000}, coverage={"verify": 0}
        )
        # Inconsistent and unsupported, but theta is at the cap.
        assert rule.check(driver, selection(10, 1000), plan)

    def test_doubling_clamps_to_cap(self):
        rule = self.make(theta_initial=600, theta_max=1000)
        plan = rule.next_round()
        driver = StubDriver(
            sets={"select": 600, "verify": 600}, coverage={"verify": 0}
        )
        assert not rule.check(driver, selection(10, 600), plan)
        assert rule.theta == 1000

    def test_state_dict_round_trip(self):
        rule = self.make()
        plan = rule.next_round()
        driver = StubDriver(
            sets={"select": 100, "verify": 100}, coverage={"verify": 40}
        )
        rule.check(driver, selection(60, 100), plan)
        restored = self.make()
        restored.load_state_dict(rule.state_dict())
        assert restored.state_dict() == rule.state_dict()
        assert restored.next_round() == rule.next_round()


class TestOpimStoppingRule:
    N = 1000

    def make(self, eps=0.1, theta_initial=100, i_max=5, a=2.0):
        return OpimStoppingRule(
            self.N, eps=eps, theta_initial=theta_initial, i_max=i_max, a=a
        )

    def test_certified_ratio_matches_bounds_and_stops(self):
        rule = self.make(theta_initial=10000)
        plan = rule.next_round()
        assert plan.targets == {"R1": 10000, "R2": 10000}
        # Near-total coverage on large collections certifies immediately:
        # the ratio (~0.61) clears 1 - 1/e - 0.1 (~0.53).
        driver = StubDriver(sets={"R1": 10000, "R2": 10000}, coverage={"R2": 9500})
        assert rule.check(driver, selection(9500, 10000), plan)
        expected = opim_spread_lower_bound(
            9500, 10000, self.N, 2.0
        ) / opim_opt_upper_bound(9500, 10000, self.N, 2.0)
        assert rule.certified_ratio == pytest.approx(expected)
        assert rule.certified_ratio >= 1.0 - 1.0 / math.e - rule.eps
        assert rule.estimated_spread == pytest.approx(self.N * 9500 / 10000)
        assert driver.coverage_labels == ["round-1/validate"]

    def test_uncertified_doubles(self):
        rule = self.make()
        plan = rule.next_round()
        driver = StubDriver(sets={"R1": 100, "R2": 100}, coverage={"R2": 5})
        assert not rule.check(driver, selection(5, 100), plan)
        assert rule.certified_ratio < 1.0 - 1.0 / math.e - rule.eps
        assert rule.theta == 200
        assert rule.next_round().targets == {"R1": 200, "R2": 200}

    def test_round_budget_forces_stop(self):
        rule = self.make(i_max=1)
        plan = rule.next_round()
        driver = StubDriver(sets={"R1": 100, "R2": 100}, coverage={"R2": 5})
        # Uncertified, but i_max = 1 is spent.
        assert rule.check(driver, selection(5, 100), plan)

    def test_empty_collections_do_not_divide_by_zero(self):
        rule = self.make(i_max=3)
        plan = rule.next_round()
        driver = StubDriver(sets={"R1": 0, "R2": 0}, coverage={"R2": 0})
        assert not rule.check(driver, selection(0, 0), plan)
        assert rule.estimated_spread == 0.0
        assert rule.certified_ratio == 0.0

    def test_state_dict_round_trip(self):
        rule = self.make()
        plan = rule.next_round()
        driver = StubDriver(sets={"R1": 100, "R2": 100}, coverage={"R2": 5})
        rule.check(driver, selection(5, 100), plan)
        restored = self.make()
        restored.load_state_dict(rule.state_dict())
        assert restored.state_dict() == rule.state_dict()
        assert restored.next_round() == rule.next_round()
