"""Unit tests for DIIMM (Algorithm 2)."""

import math

import numpy as np
import pytest

from repro.cluster import gigabit_cluster
from repro.core import diimm, imm
from repro.diffusion import estimate_spread, exact_optimum, get_model
from repro.graphs import erdos_renyi, weighted_cascade


class TestBasicBehaviour:
    def test_returns_k_seeds(self, medium_wc_graph):
        result = diimm(medium_wc_graph, 5, 4, eps=0.5, seed=0)
        assert len(result.seeds) == 5
        assert result.algorithm == "DIIMM"
        assert result.params["num_machines"] == 4

    def test_deterministic_for_seed_and_machines(self, small_wc_graph):
        a = diimm(small_wc_graph, 3, 4, eps=0.5, seed=9)
        b = diimm(small_wc_graph, 3, 4, eps=0.5, seed=9)
        assert a.seeds == b.seeds
        assert a.num_rr_sets == b.num_rr_sets

    def test_theta_matches_schedule(self, medium_wc_graph):
        from repro.core import ImmParameters

        result = diimm(medium_wc_graph, 5, 4, eps=0.5, seed=0)
        params = ImmParameters.compute(
            medium_wc_graph.num_nodes, 5, 0.5, 1 / medium_wc_graph.num_nodes
        )
        assert result.num_rr_sets >= params.theta_final(result.lower_bound)

    def test_lt_model(self, medium_wc_graph):
        result = diimm(medium_wc_graph, 5, 4, eps=0.5, model="lt", seed=0)
        assert result.model == "lt"

    def test_communication_recorded(self, medium_wc_graph):
        result = diimm(
            medium_wc_graph, 5, 4, eps=0.5, network=gigabit_cluster(), seed=0
        )
        assert result.metrics.communication_time > 0
        assert result.metrics.total_bytes > 0


class TestDistributionInvariance:
    """Solution *quality* does not depend on the machine count."""

    def test_spread_stable_across_machine_counts(self, medium_wc_graph):
        spreads = {}
        for machines in (1, 4, 8):
            result = diimm(medium_wc_graph, 10, machines, eps=0.5, seed=3)
            spreads[machines] = result.estimated_spread
        values = list(spreads.values())
        assert max(values) - min(values) <= 0.1 * max(values)

    def test_matches_single_machine_imm_quality(self, medium_wc_graph):
        base = imm(medium_wc_graph, 10, eps=0.5, seed=3)
        dist = diimm(medium_wc_graph, 10, 4, eps=0.5, seed=3)
        assert dist.estimated_spread == pytest.approx(
            base.estimated_spread, rel=0.1
        )

    def test_rr_sets_land_on_all_machines(self, medium_wc_graph):
        result = diimm(medium_wc_graph, 5, 8, eps=0.5, seed=0)
        # theta / 8 per machine, so every machine holds a share.
        assert result.num_rr_sets > 8


class TestScalability:
    """The headline: generation time shrinks ~1/l; communication stays low."""

    def test_generation_time_scales_down(self, medium_wc_graph):
        single = diimm(medium_wc_graph, 5, 1, eps=0.5, seed=1)
        distributed = diimm(medium_wc_graph, 5, 8, eps=0.5, seed=1)
        gen_1 = single.breakdown["generation"]
        gen_8 = distributed.breakdown["generation"]
        assert gen_8 < gen_1 / 3  # at least ~3x from 8 machines

    def test_total_time_scales_down(self, medium_wc_graph):
        single = diimm(medium_wc_graph, 5, 1, eps=0.5, seed=1)
        distributed = diimm(medium_wc_graph, 5, 8, eps=0.5, seed=1)
        assert distributed.breakdown["total"] < single.breakdown["total"] / 2

    def test_communication_below_computation_on_server(self, medium_wc_graph):
        result = diimm(medium_wc_graph, 5, 8, eps=0.5, seed=1)
        assert (
            result.breakdown["communication"] < result.breakdown["computation"]
        )


class TestSolutionQuality:
    def test_approximation_on_brute_forceable_graph(self):
        graph = weighted_cascade(erdos_renyi(10, 18, np.random.default_rng(3)))
        result = diimm(graph, 2, 3, eps=0.3, seed=0)
        __, opt = exact_optimum(graph, 2, model="ic")
        mc = estimate_spread(
            graph, result.seeds, get_model("ic"), 30000, np.random.default_rng(1)
        )
        assert mc.mean >= (1 - 1 / math.e - 0.3) * opt - 0.1

    def test_incremental_counts_consistent(self, small_wc_graph):
        """The incremental master-count path returns a coverage that an
        independent recount of the final seeds confirms."""
        result = diimm(small_wc_graph, 4, 3, eps=0.5, seed=2)
        assert 0 < result.estimated_spread <= small_wc_graph.num_nodes
        assert result.lower_bound >= 1.0
