"""Driver- and config-level tests for the sketch coverage backend.

Pins the early ``RunConfig.validate`` refusals for unsupported combos,
the warm-pool rejection, the golden-seed bit-determinism of sketch runs
across all three executors, and the peak-memory accounting satellite.
"""

import pytest

from repro.api import RunConfig, run
from repro.core.pool import SamplePool
from repro.graphs import VersionedGraph


def sketch_config(graph, **overrides):
    kwargs = dict(graph=graph, k=3, machines=2, eps=0.4, seed=0, backend="sketch")
    kwargs.update(overrides)
    return RunConfig(**kwargs)


class TestConfigValidation:
    def test_sketch_is_a_known_backend(self, small_wc_graph):
        sketch_config(small_wc_graph).validate("diimm")
        with pytest.raises(ValueError, match="config.backend must be one of"):
            sketch_config(small_wc_graph, backend="hll").validate()

    def test_precision_range_and_type(self, small_wc_graph):
        with pytest.raises(ValueError, match=r"sketch_precision must be an int in \[4, 16\]"):
            sketch_config(small_wc_graph, sketch_precision=3).validate()
        with pytest.raises(ValueError, match="sketch_precision must be an int"):
            sketch_config(small_wc_graph, sketch_precision=10.0).validate()
        sketch_config(small_wc_graph, sketch_precision=4).validate("diimm")
        sketch_config(small_wc_graph, sketch_precision=16).validate("diimm")

    def test_dynamic_graph_refused(self, small_wc_graph):
        config = sketch_config(VersionedGraph(small_wc_graph))
        with pytest.raises(
            ValueError,
            match="does not support dynamic-graph repair: register banks "
            "cannot retract",
        ):
            config.validate("diimm")

    def test_checkpoint_and_resume_refused(self, small_wc_graph, tmp_path):
        config = sketch_config(small_wc_graph, checkpoint_dir=str(tmp_path))
        with pytest.raises(
            ValueError, match="does not support checkpoint/resume: the register journal"
        ):
            config.validate("diimm")

    @pytest.mark.parametrize("algorithm", ["dssa", "dopimc"])
    def test_exact_only_algorithms_refused(self, small_wc_graph, algorithm):
        with pytest.raises(
            ValueError, match="stopping certificate assumes exact coverage counts"
        ):
            sketch_config(small_wc_graph).validate(algorithm)

    @pytest.mark.parametrize("algorithm", ["imm", "diimm", "dsubsim"])
    def test_schedule_algorithms_accepted(self, small_wc_graph, algorithm):
        sketch_config(small_wc_graph).validate(algorithm)

    @pytest.mark.parametrize("algorithm", ["dssa", "dopimc"])
    def test_error_adaptive_refused_for_certificate_algorithms(
        self, small_wc_graph, algorithm
    ):
        config = RunConfig(
            graph=small_wc_graph, k=3, machines=2, stopping="error-adaptive"
        )
        with pytest.raises(
            ValueError, match="owns its own stopping certificate"
        ):
            config.validate(algorithm)

    def test_unknown_stopping_rejected(self, small_wc_graph):
        config = RunConfig(graph=small_wc_graph, k=3, stopping="whenever")
        with pytest.raises(ValueError, match="config.stopping must be one of"):
            config.validate()

    def test_eps_below_sketch_noise_floor_refused(self, small_wc_graph):
        config = sketch_config(
            small_wc_graph, sketch_precision=4, eps=0.2, stopping="error-adaptive"
        )
        with pytest.raises(ValueError, match="below the sketch noise floor"):
            config.validate("diimm")
        # Raising precision clears the floor.
        sketch_config(
            small_wc_graph, sketch_precision=10, eps=0.2, stopping="error-adaptive"
        ).validate("diimm")

    def test_refusals_fire_through_entry_points(self, small_wc_graph):
        with pytest.raises(ValueError, match="exact coverage counts"):
            run("dssa", sketch_config(small_wc_graph))
        with pytest.raises(ValueError, match="stopping certificate"):
            run(
                "dopimc",
                RunConfig(
                    graph=small_wc_graph, k=3, machines=2, stopping="error-adaptive"
                ),
            )


class TestWarmPoolRejection:
    def test_check_config_refuses_sketch_with_hint(self, small_wc_graph):
        config = sketch_config(small_wc_graph, machines=2)
        with SamplePool(small_wc_graph, machines=2, seed=0) as pool:
            with pytest.raises(
                ValueError,
                match="warm pools are flat-store only.*sketch register banks "
                "cannot be windowed",
            ):
                pool.check_config(config, machines=2)

    def test_serving_a_sketch_query_warm_refuses(self, small_wc_graph):
        config = sketch_config(small_wc_graph, machines=2)
        with SamplePool(small_wc_graph, machines=2, seed=0) as pool:
            with pytest.raises(ValueError, match="flat-store only"):
                run("diimm", config, pool=pool)


class TestCrossExecutorDeterminism:
    """Golden-seed conformance: the sketch path is bit-deterministic."""

    GOLDEN = {}

    @pytest.mark.parametrize(
        "executor", ["simulated", "multiprocessing", "socket"]
    )
    def test_identical_seeds_and_spread(self, small_wc_graph, executor):
        result = run(
            "diimm",
            sketch_config(small_wc_graph, machines=3, seed=11, executor=executor),
        )
        key = "diimm"
        snapshot = (
            tuple(result.seeds),
            result.estimated_spread,
            result.num_rr_sets,
        )
        if key in self.GOLDEN:
            assert snapshot == self.GOLDEN[key], (
                f"{executor} diverged from {self.GOLDEN[key]}"
            )
        else:
            self.GOLDEN[key] = snapshot

    def test_repeat_run_is_bit_identical(self, small_wc_graph):
        config = sketch_config(small_wc_graph, seed=3)
        first = run("diimm", config)
        second = run("diimm", config)
        assert first.seeds == second.seeds
        assert first.estimated_spread == second.estimated_spread

    def test_imm_sketch_single_machine(self, small_wc_graph):
        result = run("imm", RunConfig(graph=small_wc_graph, k=3, backend="sketch"))
        assert len(result.seeds) == 3
        assert len(set(result.seeds)) == 3


class TestMemoryAccounting:
    def test_memory_summary_populated_for_both_backends(self, small_wc_graph):
        flat = run("diimm", RunConfig(graph=small_wc_graph, k=3, machines=2, seed=0))
        sketch = run("diimm", sketch_config(small_wc_graph, seed=0))
        for result in (flat, sketch):
            memory = result.metrics.memory_summary()
            assert memory["rr_store_nbytes"] > 0
            assert memory["coverage_nbytes"] > 0
            assert (
                memory["peak_nbytes"]
                == memory["rr_store_nbytes"] + memory["coverage_nbytes"]
            )
        # The sketch store is a fixed-size bank; at 200 nodes the flat CSR
        # store is larger per the same run despite exactness.
        n = small_wc_graph.num_nodes
        assert sketch.metrics.rr_store_nbytes == 2 * n * 1024

    def test_record_memory_keeps_peaks_and_merges(self):
        from repro.cluster.metrics import RunMetrics

        metrics = RunMetrics()
        metrics.record_memory(rr_store_nbytes=100, coverage_nbytes=10)
        metrics.record_memory(rr_store_nbytes=50, coverage_nbytes=40)
        assert metrics.rr_store_nbytes == 100
        assert metrics.coverage_nbytes == 40
        other = RunMetrics()
        other.record_memory(rr_store_nbytes=700)
        metrics.merge(other)
        assert metrics.memory_summary() == {
            "rr_store_nbytes": 700,
            "coverage_nbytes": 40,
            "peak_nbytes": 740,
        }
