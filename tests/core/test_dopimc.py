"""Unit tests for distributed OPIM-C."""

import math

import numpy as np

from repro.core import diimm, distributed_opimc
from repro.diffusion import estimate_spread, exact_optimum, get_model
from repro.graphs import erdos_renyi, weighted_cascade


class TestDistributedOpimc:
    def test_basic_run(self, medium_wc_graph):
        result = distributed_opimc(medium_wc_graph, 5, 4, eps=0.5, seed=0)
        assert result.algorithm == "DOPIM-C"
        assert len(result.seeds) == 5
        assert result.search_rounds >= 1

    def test_certified_ratio_reached(self, medium_wc_graph):
        result = distributed_opimc(medium_wc_graph, 5, 4, eps=0.5, seed=0)
        # lower_bound stores the certified sigma_low / opt_high ratio.
        assert result.lower_bound >= 1 - 1 / math.e - 0.5

    def test_uses_fewer_rr_sets_than_diimm(self, medium_wc_graph):
        """OPIM-C's selling point: early stopping needs fewer samples."""
        opim = distributed_opimc(medium_wc_graph, 10, 4, eps=0.5, seed=1)
        imm_result = diimm(medium_wc_graph, 10, 4, eps=0.5, seed=1)
        assert opim.num_rr_sets < imm_result.num_rr_sets

    def test_quality_comparable_to_diimm(self, medium_wc_graph):
        opim = distributed_opimc(medium_wc_graph, 10, 4, eps=0.5, seed=1)
        imm_result = diimm(medium_wc_graph, 10, 4, eps=0.5, seed=1)
        rng = np.random.default_rng(2)
        model = get_model("ic")
        opim_mc = estimate_spread(medium_wc_graph, opim.seeds, model, 1500, rng)
        imm_mc = estimate_spread(medium_wc_graph, imm_result.seeds, model, 1500, rng)
        assert opim_mc.mean >= 0.85 * imm_mc.mean

    def test_lt_model(self, medium_wc_graph):
        result = distributed_opimc(medium_wc_graph, 5, 4, eps=0.5, model="lt", seed=0)
        assert result.model == "lt"

    def test_theta_initial_override(self, small_wc_graph):
        result = distributed_opimc(
            small_wc_graph, 3, 2, eps=0.5, seed=0, theta_initial=128
        )
        # Two collections of at least the initial size each.
        assert result.num_rr_sets >= 256

    def test_deterministic(self, small_wc_graph):
        a = distributed_opimc(small_wc_graph, 3, 2, eps=0.5, seed=5)
        b = distributed_opimc(small_wc_graph, 3, 2, eps=0.5, seed=5)
        assert a.seeds == b.seeds

    def test_approximation_on_brute_forceable_graph(self):
        graph = weighted_cascade(erdos_renyi(10, 18, np.random.default_rng(3)))
        result = distributed_opimc(graph, 2, 2, eps=0.3, seed=0)
        __, opt = exact_optimum(graph, 2, model="ic")
        mc = estimate_spread(
            graph, result.seeds, get_model("ic"), 30000, np.random.default_rng(1)
        )
        assert mc.mean >= (1 - 1 / math.e - 0.3) * opt - 0.1
