"""Property-based tests (hypothesis) for the IMM bound formulas."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ImmParameters,
    lambda_prime,
    lambda_star,
    log_binomial,
    solve_delta_prime,
)

ns = st.integers(min_value=10, max_value=10**7)
eps_values = st.floats(min_value=0.05, max_value=0.9, allow_nan=False)
delta_values = st.floats(min_value=1e-9, max_value=0.4, allow_nan=False)


@settings(max_examples=80, deadline=None)
@given(n=ns, data=st.data())
def test_log_binomial_monotone_to_middle(n, data):
    k = data.draw(st.integers(min_value=1, max_value=min(n // 2, 200)))
    assert log_binomial(n, k) >= log_binomial(n, k - 1) - 1e-9


@settings(max_examples=80, deadline=None)
@given(n=ns, eps=eps_values, delta_p=delta_values, data=st.data())
def test_lambda_star_monotonicities(n, eps, delta_p, data):
    k = data.draw(st.integers(min_value=1, max_value=min(n - 1, 100)))
    base = lambda_star(n, k, eps, delta_p)
    # Tighter epsilon requires more samples.
    assert lambda_star(n, k, eps / 2, delta_p) > base
    # Smaller failure probability requires more samples.
    assert lambda_star(n, k, eps, delta_p / 2) > base
    # Positivity.
    assert base > 0


@settings(max_examples=60, deadline=None)
@given(n=ns, eps=eps_values, delta_p=delta_values, data=st.data())
def test_lambda_prime_positive_and_scaling(n, eps, delta_p, data):
    k = data.draw(st.integers(min_value=1, max_value=min(n - 1, 100)))
    value = lambda_prime(n, k, eps, delta_p)
    assert value > 0
    assert lambda_prime(n, k, eps / 2, delta_p) > value


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=100, max_value=10**6),
    eps=st.floats(min_value=0.1, max_value=0.9),
    delta=st.floats(min_value=1e-8, max_value=0.3),
    data=st.data(),
)
def test_delta_prime_fixed_point_property(n, eps, delta, data):
    k = data.draw(st.integers(min_value=1, max_value=min(n - 1, 60)))
    delta_p = solve_delta_prime(n, k, eps, delta)
    assert 0 < delta_p < delta
    residual = math.ceil(lambda_star(n, k, eps, delta_p)) * delta_p
    assert abs(residual - delta) <= 1e-5 * delta


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=16, max_value=10**6),
    eps=st.floats(min_value=0.1, max_value=0.9),
    data=st.data(),
)
def test_theta_schedule_doubles(n, eps, data):
    k = data.draw(st.integers(min_value=1, max_value=min(n - 1, 60)))
    params = ImmParameters.compute(n, k, eps, 1.0 / n)
    for t in range(1, params.max_search_rounds):
        ratio = params.theta_for_round(t + 1) / params.theta_for_round(t)
        assert 1.9 <= ratio <= 2.1


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=16, max_value=10**6),
    eps=st.floats(min_value=0.1, max_value=0.9),
    lb=st.floats(min_value=1.0, max_value=1e6),
    data=st.data(),
)
def test_theta_final_antitone_in_lb(n, eps, lb, data):
    k = data.draw(st.integers(min_value=1, max_value=min(n - 1, 60)))
    params = ImmParameters.compute(n, k, eps, 1.0 / n)
    assert params.theta_final(lb) >= params.theta_final(lb * 2)
