"""Unit tests for distributed SUBSIM."""

import pytest

from repro.core import distributed_subsim, imm


class TestDistributedSubsim:
    def test_label_and_method(self, medium_wc_graph):
        result = distributed_subsim(medium_wc_graph, 5, 4, eps=0.5, seed=0)
        assert result.algorithm == "DSUBSIM"
        assert result.method == "subsim"
        assert result.model == "ic"

    def test_returns_k_seeds(self, medium_wc_graph):
        result = distributed_subsim(medium_wc_graph, 5, 4, eps=0.5, seed=0)
        assert len(result.seeds) == 5

    def test_quality_matches_bfs_variant(self, medium_wc_graph):
        from repro.core import diimm

        bfs = diimm(medium_wc_graph, 10, 4, eps=0.5, seed=1)
        sub = distributed_subsim(medium_wc_graph, 10, 4, eps=0.5, seed=1)
        assert sub.estimated_spread == pytest.approx(
            bfs.estimated_spread, rel=0.1
        )

    def test_scales_like_diimm(self, medium_wc_graph):
        """Fig 7's point: the speedup of distributed SUBSIM over
        single-machine SUBSIM mirrors DIIMM over IMM."""
        single = imm(medium_wc_graph, 5, eps=0.5, method="subsim", seed=1)
        distributed = distributed_subsim(medium_wc_graph, 5, 8, eps=0.5, seed=1)
        assert (
            distributed.breakdown["generation"]
            < single.breakdown["generation"] / 3
        )
