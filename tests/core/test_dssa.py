"""Unit tests for distributed SSA (stop-and-stare)."""

import numpy as np
import pytest

from repro.core import diimm, distributed_ssa
from repro.diffusion import estimate_spread, get_model


class TestDistributedSSA:
    def test_basic_run(self, medium_wc_graph):
        result = distributed_ssa(medium_wc_graph, 5, 4, eps=0.5, seed=0)
        assert result.algorithm == "DSSA"
        assert len(result.seeds) == 5
        assert result.search_rounds >= 1
        assert result.estimated_spread > 0

    def test_deterministic(self, small_wc_graph):
        a = distributed_ssa(small_wc_graph, 3, 2, eps=0.5, seed=5)
        b = distributed_ssa(small_wc_graph, 3, 2, eps=0.5, seed=5)
        assert a.seeds == b.seeds
        assert a.num_rr_sets == b.num_rr_sets

    def test_quality_comparable_to_diimm(self, medium_wc_graph):
        ssa = distributed_ssa(medium_wc_graph, 10, 4, eps=0.5, seed=1)
        ref = diimm(medium_wc_graph, 10, 4, eps=0.5, seed=1)
        rng = np.random.default_rng(2)
        model = get_model("ic")
        ssa_mc = estimate_spread(medium_wc_graph, ssa.seeds, model, 1500, rng)
        ref_mc = estimate_spread(medium_wc_graph, ref.seeds, model, 1500, rng)
        assert ssa_mc.mean >= 0.85 * ref_mc.mean

    def test_verification_estimate_close_to_mc(self, medium_wc_graph):
        result = distributed_ssa(medium_wc_graph, 10, 4, eps=0.5, seed=3)
        mc = estimate_spread(
            medium_wc_graph,
            result.seeds,
            get_model("ic"),
            2000,
            np.random.default_rng(4),
        )
        assert result.estimated_spread == pytest.approx(mc.mean, rel=0.15)

    def test_lt_model(self, medium_wc_graph):
        result = distributed_ssa(medium_wc_graph, 5, 4, eps=0.5, model="lt", seed=0)
        assert result.model == "lt"
        assert len(result.seeds) == 5

    def test_theta_initial_override(self, small_wc_graph):
        result = distributed_ssa(
            small_wc_graph, 3, 2, eps=0.5, seed=0, theta_initial=128
        )
        assert result.num_rr_sets >= 256  # select + verify collections
