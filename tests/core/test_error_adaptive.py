"""Tests for the error-adaptive stopping rule.

Mechanics (doubling, capping, stop conditions), checkpoint round-trip,
and the headline behavioural claim: on an easy instance the adaptive
rule stops with strictly fewer RR sets than the IMM theta schedule
while landing on comparable seeds.
"""

import math

import pytest

from repro.api import RunConfig, run
from repro.core.bounds import ImmParameters
from repro.core.diimm import make_schedule_rule
from repro.core.driver import ErrorAdaptiveRule, ImmScheduleRule
from repro.coverage.greedy import GreedyResult
from repro.coverage.sketch import hll_relative_error


def selection_with_coverage(coverage: float, num_elements: int) -> GreedyResult:
    return GreedyResult(
        seeds=[0], coverage=coverage, num_elements=num_elements, marginals=[coverage]
    )


class TestRuleMechanics:
    def make_rule(self, **overrides):
        kwargs = dict(
            n=1000, eps=0.3, delta=0.01, theta_initial=100, theta_max=10_000
        )
        kwargs.update(overrides)
        return ErrorAdaptiveRule(**kwargs)

    def test_validation(self):
        with pytest.raises(ValueError, match="eps"):
            self.make_rule(eps=0.0)
        with pytest.raises(ValueError, match="delta"):
            self.make_rule(delta=1.0)
        with pytest.raises(ValueError, match="theta_initial"):
            self.make_rule(theta_initial=0)
        with pytest.raises(ValueError, match="unreachable"):
            self.make_rule(sketch_rel_error=0.3)

    def test_doubles_until_measured_error_clears_eps(self):
        rule = self.make_rule()
        plan = rule.next_round()
        assert plan.targets == {"main": 100}
        # Tiny coverage: huge sampling error, keep going with doubled theta.
        assert rule.check(None, selection_with_coverage(5.0, 100), plan) is False
        assert rule.theta == 200
        assert rule.measured_error == pytest.approx(
            math.sqrt(3 * math.log(2 / 0.01) / 5)
        )
        # Large coverage: error below eps, stop.
        plan = rule.next_round()
        big = 3 * math.log(2 / 0.01) / 0.3**2 * 2
        assert rule.check(None, selection_with_coverage(big, 10_000), plan) is True
        assert rule.measured_error <= 0.3
        assert rule.search_rounds == 2

    def test_theta_capped_and_termination_unconditional(self):
        rule = self.make_rule(theta_initial=6000)
        rule.next_round()
        assert rule.check(None, selection_with_coverage(1.0, 6000), rule) is False
        assert rule.theta == 10_000  # min(2 * 6000, cap)
        rule.next_round()
        # Still terrible error, but theta hit the cap: must stop anyway.
        assert rule.check(None, selection_with_coverage(1.0, 10_000), rule) is True
        assert rule.measured_error > rule.eps

    def test_sketch_noise_floor_is_added(self):
        noisy = self.make_rule(sketch_rel_error=0.1)
        clean = self.make_rule()
        selection = selection_with_coverage(500.0, 1000)
        noisy.next_round(), clean.next_round()
        noisy.check(None, selection, None)
        clean.check(None, selection, None)
        assert noisy.measured_error == pytest.approx(clean.measured_error + 0.1)
        assert noisy.lower_bound < clean.lower_bound

    def test_lower_bound_discounts_by_measured_error(self):
        rule = self.make_rule()
        rule.next_round()
        rule.check(None, selection_with_coverage(400.0, 1000), None)
        expected = 1000 * 0.4 / (1.0 + rule.measured_error)
        assert rule.lower_bound == pytest.approx(expected)

    def test_state_dict_round_trip(self):
        rule = self.make_rule()
        rule.next_round()
        rule.check(None, selection_with_coverage(5.0, 100), None)
        state = rule.state_dict()
        fresh = self.make_rule()
        fresh.load_state_dict(state)
        for attr in (
            "theta",
            "rounds",
            "measured_error",
            "sampling_error",
            "lower_bound",
            "search_rounds",
        ):
            assert getattr(fresh, attr) == getattr(rule, attr), attr

    def test_round_labels_carry_the_round_index(self):
        rule = self.make_rule()
        assert rule.next_round().label == "adaptive-1"
        assert rule.next_round().label == "adaptive-2"


class TestFactory:
    def make_config(self, graph, **overrides):
        kwargs = dict(graph=graph, k=3, machines=2, eps=0.4, seed=0)
        kwargs.update(overrides)
        return RunConfig(**kwargs)

    def test_schedule_is_the_default(self, small_wc_graph):
        config = self.make_config(small_wc_graph)
        params = ImmParameters.compute(small_wc_graph.num_nodes, 3, 0.4, 0.01)
        assert isinstance(make_schedule_rule(config, params, 0.01), ImmScheduleRule)

    def test_error_adaptive_wiring(self, small_wc_graph):
        params = ImmParameters.compute(small_wc_graph.num_nodes, 3, 0.4, 0.01)
        rule = make_schedule_rule(
            self.make_config(small_wc_graph, stopping="error-adaptive"), params, 0.01
        )
        assert isinstance(rule, ErrorAdaptiveRule)
        assert rule.theta == min(params.theta_for_round(1), rule.theta_max)
        assert rule.theta_max == params.theta_final(3.0)
        assert rule.sketch_rel_error == 0.0
        # theta_initial override and the sketch noise floor both thread in.
        rule = make_schedule_rule(
            self.make_config(
                small_wc_graph,
                stopping="error-adaptive",
                backend="sketch",
                theta_initial=64,
            ),
            params,
            0.01,
        )
        assert rule.theta == 64
        assert rule.sketch_rel_error == pytest.approx(hll_relative_error(10))


class TestEndToEnd:
    def test_stops_earlier_than_schedule_on_easy_instance(self, small_wc_graph):
        base = dict(graph=small_wc_graph, k=3, machines=2, eps=0.4, seed=7)
        schedule = run("diimm", RunConfig(**base))
        adaptive = run("diimm", RunConfig(**base, stopping="error-adaptive"))
        assert adaptive.num_rr_sets < schedule.num_rr_sets
        assert adaptive.num_rr_sets <= schedule.num_rr_sets // 2
        # Comparable answer quality: spreads within 15% of each other.
        assert adaptive.estimated_spread == pytest.approx(
            schedule.estimated_spread, rel=0.15
        )

    def test_adaptive_works_with_sketch_backend(self, small_wc_graph):
        result = run(
            "diimm",
            RunConfig(
                graph=small_wc_graph,
                k=3,
                machines=2,
                eps=0.4,
                seed=7,
                backend="sketch",
                stopping="error-adaptive",
            ),
        )
        assert len(result.seeds) == 3
        assert result.search_rounds >= 1

    def test_imm_honours_error_adaptive(self, small_wc_graph):
        base = dict(graph=small_wc_graph, k=3, eps=0.4, seed=7)
        schedule = run("imm", RunConfig(**base))
        adaptive = run("imm", RunConfig(**base, stopping="error-adaptive"))
        assert adaptive.num_rr_sets < schedule.num_rr_sets
