"""Warm-pool repair differential: repaired pools == cold pools on the
updated graph, bit for bit.

The tentpole correctness anchor.  A warm :class:`SamplePool` mid
query-stream (sets already generated, more to come) takes a
:class:`GraphDelta`, repairs only the RR sets whose traversal consulted
a changed in-row, keeps topping up — and every byte of every collection
must equal a pool built cold on the already-updated graph with the same
seed and schedule.  Exercised across batch shapes (insert-only,
delete-only, mixed) and both executors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import SimulatedCluster
from repro.cluster.executor import GeneratePhase, make_executor
from repro.cluster.faults import FaultPlan
from repro.core.pool import SamplePool
from repro.coverage import CoverageState
from repro.graphs import DirectedGraph, GraphDelta, VersionedGraph
from repro.ris import make_sampler

SEED = 41
MACHINES = 2


def fresh_versioned(graph) -> VersionedGraph:
    return VersionedGraph(DirectedGraph(graph.num_nodes, *graph.edge_arrays()))


def make_delta(graph, shape: str) -> GraphDelta:
    edges = [(u, v) for u, v, _ in graph.edges()]
    if shape == "insert":
        return GraphDelta(
            add_edges=[(0, 5, 0.4), (17, 3, 0.2), (90, 120, 0.6), (44, 45, 0.3)]
        )
    if shape == "delete":
        return GraphDelta(remove_edges=edges[::150][:6])
    if shape == "mixed":
        return GraphDelta(
            add_edges=[(2, 8, 0.35), (61, 62, 0.5)],
            remove_edges=edges[5:10],
            reweight_edges=[(*edges[20], 0.9), (*edges[21], 0.1)],
        )
    raise ValueError(shape)


def pool_on(graph, executor="simulated", **kwargs):
    return SamplePool(
        graph,
        machines=MACHINES,
        seed=SEED,
        rng_scheme="per-set",
        executor=executor,
        processes=MACHINES if executor == "multiprocessing" else None,
        **kwargs,
    )


def assert_stores_equal(a: SamplePool, b: SamplePool, key: str = "main") -> None:
    for sa, sb in zip(a.stores(key), b.stores(key)):
        assert np.array_equal(sa.nodes, sb.nodes)
        assert np.array_equal(sa.offsets, sb.offsets)
        assert sa.total_edges_examined == sb.total_edges_examined


@pytest.mark.parametrize("shape", ["insert", "delete", "mixed"])
@pytest.mark.parametrize("executor", ["simulated", "multiprocessing"])
def test_repaired_pool_equals_cold_pool(small_wc_graph, shape, executor):
    delta = make_delta(small_wc_graph, shape)
    warm = pool_on(fresh_versioned(small_wc_graph), executor)
    try:
        # Mid-stream: generate, update, keep generating.
        warm.ensure("main", [30] * MACHINES)
        repaired = warm.apply_update(delta)
        warm.ensure("main", [55] * MACHINES)
        # Incrementality: some but not all resident sets were redrawn.
        assert 0 < repaired["main"] <= 30 * MACHINES

        cold_graph = fresh_versioned(small_wc_graph)
        cold_graph.apply(delta)
        cold = pool_on(cold_graph, executor)
        try:
            cold.ensure("main", [55] * MACHINES)
            assert_stores_equal(warm, cold)
        finally:
            cold.close()
    finally:
        warm.close()


def test_update_between_two_keys_repairs_both(small_wc_graph):
    warm = pool_on(fresh_versioned(small_wc_graph))
    try:
        warm.ensure("main", [20] * MACHINES)
        warm.ensure("targeted", [10] * MACHINES)
        repaired = warm.apply_update(make_delta(small_wc_graph, "mixed"))
        assert set(repaired) == {"main", "targeted"}
        assert any(repaired.values())
    finally:
        warm.close()


def test_full_invalidation_on_node_addition(small_wc_graph):
    n = small_wc_graph.num_nodes
    delta = GraphDelta(add_nodes=2, add_edges=[(n, 0, 0.5), (n + 1, n, 0.5)])
    warm = pool_on(fresh_versioned(small_wc_graph))
    try:
        warm.ensure("main", [25] * MACHINES)
        repaired = warm.apply_update(delta)
        # Node additions change the root-draw range: everything redraws.
        assert repaired["main"] == 25 * MACHINES
        warm.ensure("main", [40] * MACHINES)

        cold_graph = fresh_versioned(small_wc_graph)
        cold_graph.apply(delta)
        cold = pool_on(cold_graph)
        try:
            cold.ensure("main", [40] * MACHINES)
            assert_stores_equal(warm, cold)
            assert warm.stores("main")[0].num_nodes == n + 2
        finally:
            cold.close()
    finally:
        warm.close()


def test_sequential_updates_compose(small_wc_graph):
    warm = pool_on(fresh_versioned(small_wc_graph))
    try:
        warm.ensure("main", [15] * MACHINES)
        warm.apply_update(make_delta(small_wc_graph, "insert"))
        warm.ensure("main", [30] * MACHINES)
        warm.apply_update(make_delta(small_wc_graph, "delete"))
        warm.ensure("main", [45] * MACHINES)

        cold_graph = fresh_versioned(small_wc_graph)
        cold_graph.apply(make_delta(small_wc_graph, "insert"))
        cold_graph.apply(make_delta(small_wc_graph, "delete"))
        cold = pool_on(cold_graph)
        try:
            cold.ensure("main", [45] * MACHINES)
            assert_stores_equal(warm, cold)
        finally:
            cold.close()
    finally:
        warm.close()


def test_coverage_snapshot_repaired_not_dropped(small_wc_graph):
    warm = pool_on(fresh_versioned(small_wc_graph))
    try:
        warm.ensure("main", [30] * MACHINES)
        stores = warm.stores("main")
        cluster = SimulatedCluster(MACHINES, seed=SEED)
        state = CoverageState(warm.num_nodes, MACHINES)
        state.ingest(make_executor("simulated", cluster, graph=warm.graph), stores)
        warm.donate_coverage("main", state)

        warm.apply_update(make_delta(small_wc_graph, "mixed"))
        forked = warm.fork_coverage("main", [30] * MACHINES)
        assert forked is not None
        # The repaired snapshot still equals a from-scratch aggregation
        # over the repaired stores.
        np.testing.assert_array_equal(forked.counts, forked.rebuild_from(stores))
    finally:
        warm.close()


def test_full_invalidation_drops_coverage_cache(small_wc_graph):
    warm = pool_on(fresh_versioned(small_wc_graph))
    try:
        warm.ensure("main", [20] * MACHINES)
        state = CoverageState(warm.num_nodes, MACHINES)
        cluster = SimulatedCluster(MACHINES, seed=SEED)
        state.ingest(
            make_executor("simulated", cluster, graph=warm.graph),
            warm.stores("main"),
        )
        warm.donate_coverage("main", state)
        warm.apply_update(GraphDelta(add_nodes=1))
        assert warm.fork_coverage("main", [20] * MACHINES) is None
    finally:
        warm.close()


class TestSignatureEpoch:
    def test_real_update_bumps_epoch(self, small_wc_graph):
        warm = pool_on(fresh_versioned(small_wc_graph))
        try:
            warm.ensure("main", [20] * MACHINES)
            before = warm.signature()
            warm.apply_update(make_delta(small_wc_graph, "mixed"))
            after = warm.signature()
            assert after[0] == before[0] + 1
            assert after[1] == before[1]  # sizes unchanged: in-place repair
        finally:
            warm.close()

    def test_noop_repair_keeps_epoch(self, small_wc_graph):
        warm = pool_on(fresh_versioned(small_wc_graph))
        try:
            warm.ensure("main", [20] * MACHINES)
            before = warm.signature()
            # No RR set contains a touched row -> nothing rewritten ->
            # cached results stay valid and the epoch must not move.
            repaired = warm.repair(np.zeros(0, dtype=np.int64))
            assert repaired == {"main": 0}
            assert warm.signature() == before
        finally:
            warm.close()


class TestRefusals:
    def test_non_per_set_scheme_refuses_repair(self, small_wc_graph):
        pool = SamplePool(
            fresh_versioned(small_wc_graph), machines=2, seed=SEED, rng_scheme="cluster"
        )
        try:
            pool.ensure("main", [10, 10])
            with pytest.raises(ValueError, match="per-set"):
                pool.repair(np.array([0], dtype=np.int64))
        finally:
            pool.close()

    def test_plain_graph_refuses_apply_update(self, small_wc_graph):
        pool = SamplePool(
            small_wc_graph, machines=2, seed=SEED, rng_scheme="per-set"
        )
        try:
            with pytest.raises(TypeError, match="VersionedGraph"):
                pool.apply_update(GraphDelta(add_edges=[(0, 1, 0.5)]))
        finally:
            pool.close()

    def test_fixed_sampler_refuses_repair_factory_works(self, small_wc_graph):
        graph = fresh_versioned(small_wc_graph)
        fixed = SamplePool(
            graph,
            machines=1,
            seed=SEED,
            rng_scheme="per-set",
            sampler=make_sampler(graph, model="ic", method="bfs"),
        )
        try:
            fixed.ensure("main", [10])
            with pytest.raises(ValueError, match="sampler_factory"):
                fixed.apply_update(make_delta(small_wc_graph, "insert"))
        finally:
            fixed.close()

        warm = SamplePool(
            fresh_versioned(small_wc_graph),
            machines=1,
            seed=SEED,
            rng_scheme="per-set",
            sampler_factory=lambda g: make_sampler(g, model="ic", method="bfs"),
        )
        try:
            warm.ensure("main", [10])
            warm.apply_update(make_delta(small_wc_graph, "insert"))
            warm.ensure("main", [20])
            cold_graph = fresh_versioned(small_wc_graph)
            cold_graph.apply(make_delta(small_wc_graph, "insert"))
            cold = SamplePool(
                cold_graph,
                machines=1,
                seed=SEED,
                rng_scheme="per-set",
                sampler_factory=lambda g: make_sampler(g, model="ic", method="bfs"),
            )
            try:
                cold.ensure("main", [20])
                assert_stores_equal(warm, cold)
            finally:
                cold.close()
        finally:
            warm.close()

    def test_per_set_generation_refuses_fault_injection(self, small_wc_graph):
        cluster = SimulatedCluster(1, seed=SEED)
        executor = make_executor(
            "simulated", cluster, graph=small_wc_graph, faults=FaultPlan()
        )
        with pytest.raises(ValueError, match="fault injection"):
            executor.run_phase(
                GeneratePhase(
                    "gen",
                    counts=(5,),
                    targets=None,
                    model="ic",
                    method="bfs",
                    rng_scheme="per-set",
                    seed=SEED,
                    starts=(0,),
                )
            )
