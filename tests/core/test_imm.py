"""Unit tests for single-machine IMM."""

import math

import numpy as np
import pytest

from repro.core import imm
from repro.diffusion import estimate_spread, exact_optimum, get_model
from repro.graphs import star_graph, uniform, weighted_cascade, erdos_renyi


class TestBasicBehaviour:
    def test_returns_k_seeds(self, medium_wc_graph):
        result = imm(medium_wc_graph, 5, eps=0.5, seed=0)
        assert len(result.seeds) == 5
        assert len(set(result.seeds)) == 5

    def test_result_fields_consistent(self, medium_wc_graph):
        result = imm(medium_wc_graph, 5, eps=0.5, seed=0)
        assert result.algorithm == "IMM"
        assert result.num_rr_sets > 0
        assert result.total_rr_size >= result.num_rr_sets
        assert result.total_edges_examined >= 0
        assert result.lower_bound >= 1.0
        assert 1 <= result.search_rounds
        assert result.metrics.communication_time == 0

    def test_estimated_spread_bounded_by_n(self, medium_wc_graph):
        result = imm(medium_wc_graph, 5, eps=0.5, seed=0)
        assert 0 < result.estimated_spread <= medium_wc_graph.num_nodes

    def test_deterministic_for_seed(self, small_wc_graph):
        a = imm(small_wc_graph, 3, eps=0.5, seed=9)
        b = imm(small_wc_graph, 3, eps=0.5, seed=9)
        assert a.seeds == b.seeds
        assert a.num_rr_sets == b.num_rr_sets

    def test_delta_defaults_to_inverse_n(self, small_wc_graph):
        result = imm(small_wc_graph, 3, eps=0.5, seed=0)
        assert result.params["delta"] == pytest.approx(1 / small_wc_graph.num_nodes)

    def test_more_rr_sets_for_smaller_eps(self, small_wc_graph):
        loose = imm(small_wc_graph, 3, eps=0.6, seed=0)
        tight = imm(small_wc_graph, 3, eps=0.3, seed=0)
        assert tight.num_rr_sets > loose.num_rr_sets

    def test_lt_model(self, medium_wc_graph):
        result = imm(medium_wc_graph, 5, eps=0.5, model="lt", seed=0)
        assert result.model == "lt"
        assert len(result.seeds) == 5

    def test_subsim_method(self, medium_wc_graph):
        result = imm(medium_wc_graph, 5, eps=0.5, method="subsim", seed=0)
        assert result.method == "subsim"
        assert len(result.seeds) == 5


class TestSolutionQuality:
    def test_identifies_obvious_hub(self, rng):
        # A star graph with unit probabilities: node 0 is the only
        # reasonable first seed.
        graph = uniform(star_graph(50), 1.0)
        result = imm(graph, 1, eps=0.3, seed=1)
        assert result.seeds == [0]

    def test_approximation_on_brute_forceable_graph(self):
        graph = weighted_cascade(erdos_renyi(10, 18, np.random.default_rng(3)))
        result = imm(graph, 2, eps=0.3, seed=0)
        __, opt = exact_optimum(graph, 2, model="ic")
        mc = estimate_spread(
            graph, result.seeds, get_model("ic"), 30000, np.random.default_rng(1)
        )
        # The guarantee is 1 - 1/e - eps with eps = 0.3; allow MC noise.
        assert mc.mean >= (1 - 1 / math.e - 0.3) * opt - 0.1

    def test_spread_estimate_close_to_monte_carlo(self, medium_wc_graph):
        result = imm(medium_wc_graph, 10, eps=0.5, seed=2)
        mc = estimate_spread(
            medium_wc_graph,
            result.seeds,
            get_model("ic"),
            2000,
            np.random.default_rng(5),
        )
        assert result.estimated_spread == pytest.approx(mc.mean, rel=0.15)


class TestSamplingSchedule:
    def test_search_stops_before_max_rounds_on_easy_graph(self, medium_wc_graph):
        result = imm(medium_wc_graph, 10, eps=0.5, seed=0)
        max_rounds = int(math.log2(medium_wc_graph.num_nodes)) - 1
        assert result.search_rounds <= max_rounds

    def test_final_theta_at_least_lambda_star_over_lb(self, medium_wc_graph):
        from repro.core import ImmParameters

        result = imm(medium_wc_graph, 10, eps=0.5, seed=0)
        params = ImmParameters.compute(
            medium_wc_graph.num_nodes, 10, 0.5, 1 / medium_wc_graph.num_nodes
        )
        assert result.num_rr_sets >= params.theta_final(result.lower_bound)

    def test_generation_dominates_runtime(self, medium_wc_graph):
        """The paper observes RR generation is the dominant cost."""
        result = imm(medium_wc_graph, 10, eps=0.5, seed=0)
        breakdown = result.breakdown
        assert breakdown["generation"] > breakdown["computation"]
