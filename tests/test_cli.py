"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "diimm"
        assert args.k == 50
        assert args.executor == "simulated"
        assert args.backend == "flat"

    def test_run_executor_and_backend_choices(self):
        args = build_parser().parse_args(
            ["run", "--executor", "multiprocessing", "--backend", "reference"]
        )
        assert args.executor == "multiprocessing"
        assert args.backend == "reference"
        # --executor is a free-form ExecutorSpec shorthand now, so the
        # parser accepts any string and validation happens in RunConfig.
        args = build_parser().parse_args(["run", "--executor", "socket:2"])
        assert args.executor == "socket:2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "sparse"])

    def test_run_rejects_bad_executor_spec(self, capsys):
        code = main(["run", "--dataset", "facebook", "--k", "2", "--executor", "mpi"])
        assert code == 2
        assert "config.executor" in capsys.readouterr().err

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "facebook" in out
        assert "paper_nodes" in out

    def test_run_imm_small(self, capsys):
        code = main(
            [
                "run", "--dataset", "facebook", "--algorithm", "imm",
                "--k", "5", "--eps", "0.6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "IMM on facebook" in out
        assert "seeds:" in out

    def test_run_diimm(self, capsys):
        code = main(
            [
                "run", "--dataset", "facebook", "--k", "5", "--eps", "0.6",
                "--machines", "2", "--network", "cluster",
            ]
        )
        assert code == 0
        assert "DIIMM on facebook" in capsys.readouterr().out

    def test_run_diimm_multiprocessing_reference(self, capsys):
        """The --executor/--backend flags reach the algorithm and agree
        with the default flat/simulated run on the seed set."""
        code = main(
            [
                "run", "--dataset", "facebook", "--k", "3", "--eps", "0.7",
                "--machines", "2", "--executor", "multiprocessing",
                "--backend", "reference",
            ]
        )
        assert code == 0
        mp_out = capsys.readouterr().out
        assert "DIIMM on facebook" in mp_out
        code = main(
            [
                "run", "--dataset", "facebook", "--k", "3", "--eps", "0.7",
                "--machines", "2",
            ]
        )
        assert code == 0
        default_out = capsys.readouterr().out
        seeds = lambda out: out[out.index("seeds:") :]  # noqa: E731
        assert seeds(mp_out) == seeds(default_out)

    def test_validate(self, capsys):
        code = main(
            ["validate", "--dataset", "facebook", "--seeds", "0,1,2",
             "--samples", "50"]
        )
        assert code == 0
        assert "sigma" in capsys.readouterr().out

    def test_validate_bad_seed_list(self, capsys):
        code = main(["validate", "--dataset", "facebook", "--seeds", "a,b"])
        assert code == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3", "--datasets", "facebook"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "facebook" in out

    def test_app_targeted(self, capsys):
        code = main(
            ["app", "targeted", "--dataset", "facebook", "--machines", "2",
             "--rr-sets", "1000", "--k", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "targeted-influence-maximization" in out
        assert "seeds:" in out

    def test_app_seedmin(self, capsys):
        code = main(
            ["app", "seedmin", "--dataset", "facebook", "--machines", "2",
             "--rr-sets", "1000", "--required-spread", "200"]
        )
        assert code == 0
        assert "seed-minimization" in capsys.readouterr().out

    def test_app_adaptive(self, capsys):
        code = main(
            ["app", "adaptive", "--dataset", "facebook", "--machines", "2",
             "--rr-sets", "600", "--k", "3"]
        )
        assert code == 0
        assert "adaptive-influence-maximization" in capsys.readouterr().out

    def test_app_bad_name(self):
        with pytest.raises(SystemExit):
            main(["app", "unknown"])


class TestCheckpointFlags:
    def test_parser_accepts_checkpoint_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "--checkpoint-dir", str(tmp_path), "--resume"]
        )
        assert args.checkpoint_dir == str(tmp_path)
        assert args.resume is True
        defaults = build_parser().parse_args(["run"])
        assert defaults.checkpoint_dir is None
        assert defaults.resume is False

    def test_resume_requires_checkpoint_dir(self, capsys):
        code = main(["run", "--dataset", "facebook", "--resume"])
        assert code == 2
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    def test_kill_and_resume_reaches_identical_seeds(
        self, tmp_path, capsys, monkeypatch
    ):
        """A run killed mid-round, resumed through the CLI, prints the
        exact seed set an uninterrupted run prints."""
        from repro.core.driver import RoundDriver

        run_args = [
            "run", "--dataset", "facebook", "--k", "3", "--eps", "0.7",
            "--machines", "2",
        ]
        assert main(run_args) == 0
        reference_out = capsys.readouterr().out

        original = RoundDriver._select
        state = {"calls": 0, "armed": True}

        def crashing(self, round_label):
            state["calls"] += 1
            if state["armed"] and state["calls"] == 2:
                state["armed"] = False
                raise RuntimeError("killed mid-round")
            return original(self, round_label)

        monkeypatch.setattr(RoundDriver, "_select", crashing)
        ckpt = tmp_path / "ckpt"
        with pytest.raises(RuntimeError, match="killed mid-round"):
            main(run_args + ["--checkpoint-dir", str(ckpt)])
        capsys.readouterr()
        assert any(p.name.startswith("round-") for p in ckpt.iterdir())

        code = main(run_args + ["--checkpoint-dir", str(ckpt), "--resume"])
        assert code == 0
        resumed_out = capsys.readouterr().out
        seeds = lambda out: out[out.index("seeds:") :]
        assert seeds(resumed_out) == seeds(reference_out)
