"""Equivalence suite for the vectorized frontier kernels.

Two layers of guarantees, mirroring ``repro.ris.vectorized``'s contract:

* **Bit-identity where draw ordering is preserved** — the IC kernel at
  ``block_size=1`` consumes the RNG exactly like
  :class:`~repro.ris.ic_sampler.ICReverseBFSSampler`, so it is held to
  the same differential standard as every other batch sampler.
* **Statistical equivalence everywhere else** — larger IC blocks, the
  lockstep LT walks and the triggering dispatch reorder RNG consumption,
  so they are certified distributionally with the fixed-seed harness in
  :mod:`tests.ris.equivalence` (per-root size/work KS tests, membership
  chi-square, spread agreement within Hoeffding bounds) on both
  executors.

Every test seeds its own generators; see the harness module docstring
for the suite's false-positive budget.
"""

import numpy as np
import pytest

from repro.api import RunConfig, run
from repro.cluster import GeneratePhase, SimulatedCluster, make_executor
from repro.diffusion import ICTriggering, LTTriggering
from repro.ris import (
    FlatRRCollection,
    ICReverseBFSSampler,
    LTReverseWalkSampler,
    TriggeringRRSampler,
    VectorizedICSampler,
    VectorizedLTSampler,
    VectorizedTriggeringSampler,
    append_batch,
    make_sampler,
)
from repro.ris.rrset import pack_samples

from .equivalence import (
    assert_frequencies_match,
    assert_same_distribution,
    chi_square_gof,
    chi_square_homogeneity,
    hoeffding_epsilon,
    ks_two_sample,
    pool_small_bins,
)

# (id, reference-sampler factory, vectorized-sampler factory).  The odd
# block size exercises partial final blocks in every batch.
PAIRS = [
    ("ic", ICReverseBFSSampler, lambda g: VectorizedICSampler(g, block_size=96)),
    ("lt", LTReverseWalkSampler, lambda g: VectorizedLTSampler(g, block_size=96)),
    (
        "triggering-ic",
        lambda g: TriggeringRRSampler(g, ICTriggering()),
        lambda g: VectorizedTriggeringSampler(g, ICTriggering(), block_size=96),
    ),
    (
        "triggering-lt",
        lambda g: TriggeringRRSampler(g, LTTriggering()),
        lambda g: VectorizedTriggeringSampler(g, LTTriggering(), block_size=96),
    ),
]
PAIR_IDS = [p[0] for p in PAIRS]


def set_sizes(batch) -> np.ndarray:
    return np.diff(batch.offsets)


class TestHarness:
    """Self-tests of the statistical machinery (no SciPy to lean on)."""

    def test_ks_accepts_identical_distributions(self):
        rng = np.random.default_rng(0)
        a, b = rng.poisson(9.0, size=4000), rng.poisson(9.0, size=4000)
        _, p = ks_two_sample(a, b)
        assert p > 0.01

    def test_ks_rejects_shifted_distributions(self):
        rng = np.random.default_rng(1)
        _, p = ks_two_sample(rng.poisson(9.0, 4000), rng.poisson(10.5, 4000))
        assert p < 1e-6

    def test_gamma_q_known_values(self):
        # chi2.sf(x, df) = Q(df/2, x/2); classic table entries.
        _, p = chi_square_gof([60, 40], [50, 50], min_expected=1)
        assert p == pytest.approx(0.0455, abs=2e-3)  # chi2=4, df=1

    def test_chi_square_homogeneity_accepts_and_rejects(self):
        rng = np.random.default_rng(2)
        probs = rng.dirichlet(np.ones(40))
        same_a = rng.multinomial(30000, probs)
        same_b = rng.multinomial(30000, probs)
        _, p_same = chi_square_homogeneity(same_a, same_b)
        other = rng.multinomial(30000, rng.dirichlet(np.ones(40)))
        _, p_diff = chi_square_homogeneity(same_a, other)
        assert p_same > 0.01 and p_diff < 1e-9

    def test_pool_small_bins(self):
        observed, expected = pool_small_bins([10, 1, 2, 30], [9.0, 2.0, 1.0, 31.0])
        assert observed.tolist() == [10, 30, 3]
        assert expected.tolist() == [9.0, 31.0, 3.0]

    def test_hoeffding_epsilon_shrinks_with_samples(self):
        assert hoeffding_epsilon(40000) < hoeffding_epsilon(10000) / 1.9
        with pytest.raises(ValueError):
            hoeffding_epsilon(0)


class TestBitIdentity:
    """Where draw ordering is preserved, hold the kernel to bit-identity."""

    @pytest.mark.parametrize("seed", [0, 1, 2022])
    def test_ic_block_one_matches_per_set_path(self, small_wc_graph, seed):
        reference = ICReverseBFSSampler(small_wc_graph)
        vectorized = VectorizedICSampler(small_wc_graph, block_size=1)
        rng_ref = np.random.default_rng(seed)
        rng_vec = np.random.default_rng(seed)

        expected = pack_samples(reference.sample_many(150, rng_ref))
        batch = vectorized.sample_batch(rng_vec, 150)

        np.testing.assert_array_equal(batch.nodes, expected.nodes)
        np.testing.assert_array_equal(batch.offsets, expected.offsets)
        np.testing.assert_array_equal(batch.roots, expected.roots)
        np.testing.assert_array_equal(batch.edges_examined, expected.edges_examined)
        assert batch.nodes.dtype == np.int32
        # Same draws AND the same number of draws.
        assert rng_vec.bit_generator.state == rng_ref.bit_generator.state

    def test_ic_block_one_streams_interleave(self, small_wc_graph):
        reference = ICReverseBFSSampler(small_wc_graph)
        vectorized = VectorizedICSampler(small_wc_graph, block_size=1)
        rng_ref = np.random.default_rng(7)
        rng_vec = np.random.default_rng(7)

        first = vectorized.sample_batch(rng_vec, 30)
        second = vectorized.sample_batch(rng_vec, 20)
        expected = reference.sample_batch(rng_ref, 50)

        np.testing.assert_array_equal(
            np.concatenate([first.nodes, second.nodes]), expected.nodes
        )
        np.testing.assert_array_equal(
            np.concatenate([first.roots, second.roots]), expected.roots
        )
        assert rng_vec.bit_generator.state == rng_ref.bit_generator.state

    def test_ic_single_sample_matches(self, small_wc_graph):
        reference = ICReverseBFSSampler(small_wc_graph)
        vectorized = VectorizedICSampler(small_wc_graph, block_size=1)
        for seed in range(5):
            a = reference.sample(np.random.default_rng(seed))
            b = vectorized.sample(np.random.default_rng(seed))
            assert a.root == b.root
            assert a.edges_examined == b.edges_examined
            np.testing.assert_array_equal(a.nodes, b.nodes)


class TestSamplerContract:
    """The vectorized samplers honor the shared RRSampler interface."""

    @pytest.mark.parametrize("pair", PAIRS, ids=PAIR_IDS)
    def test_sets_sorted_unique_and_contain_root(self, small_wc_graph, pair):
        _, __, build_vec = pair
        batch = build_vec(small_wc_graph).sample_batch(np.random.default_rng(3), 300)
        assert batch.count == 300
        for i in range(300):
            nodes = batch.nodes[batch.offsets[i] : batch.offsets[i + 1]]
            assert nodes.size > 0
            assert (np.diff(nodes) > 0).all()
            assert batch.roots[i] in nodes

    @pytest.mark.parametrize("pair", PAIRS, ids=PAIR_IDS)
    def test_empty_batch_and_negative_count(self, small_wc_graph, pair):
        _, __, build_vec = pair
        sampler = build_vec(small_wc_graph)
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        batch = sampler.sample_batch(rng, 0)
        assert batch.count == 0 and batch.offsets.tolist() == [0]
        assert rng.bit_generator.state == before
        with pytest.raises(ValueError, match=">= 0"):
            sampler.sample_batch(rng, -1)

    @pytest.mark.parametrize("pair", PAIRS, ids=PAIR_IDS)
    def test_scratch_clean_after_draws(self, small_wc_graph, pair):
        _, __, build_vec = pair
        sampler = build_vec(small_wc_graph)
        sampler.sample_batch(np.random.default_rng(0), 150)
        scratch = getattr(sampler, "_kernel", sampler)._visited
        assert not scratch.any()

    @pytest.mark.parametrize("pair", PAIRS, ids=PAIR_IDS)
    def test_failed_draw_does_not_poison_the_next(self, small_wc_graph, pair):
        class FlakyRNG:
            def __init__(self, inner, fail_after):
                self._inner, self._calls, self._fail_after = inner, 0, fail_after

            def __getattr__(self, name):
                target = getattr(self._inner, name)
                if not callable(target):
                    return target

                def wrapped(*args, **kwargs):
                    self._calls += 1
                    if self._calls > self._fail_after:
                        raise RuntimeError("injected RNG failure")
                    return target(*args, **kwargs)

                return wrapped

        _, __, build_vec = pair
        sampler = build_vec(small_wc_graph)
        sampler.sample_batch(np.random.default_rng(1), 20)
        died = False
        for fail_after in (1, 2, 3):
            try:
                sampler.sample_batch(FlakyRNG(np.random.default_rng(2), fail_after), 50)
            except RuntimeError:
                died = True
                fresh = build_vec(small_wc_graph)
                rng_dirty = np.random.default_rng(40 + fail_after)
                rng_fresh = np.random.default_rng(40 + fail_after)
                dirty = sampler.sample_batch(rng_dirty, 60)
                clean = fresh.sample_batch(rng_fresh, 60)
                np.testing.assert_array_equal(dirty.nodes, clean.nodes)
                np.testing.assert_array_equal(dirty.offsets, clean.offsets)
                assert rng_dirty.bit_generator.state == rng_fresh.bit_generator.state
        assert died, "injected failures never fired mid-draw"

    def test_make_sampler_dispatch(self, small_wc_graph):
        assert isinstance(
            make_sampler(small_wc_graph, model="ic", method="vectorized"),
            VectorizedICSampler,
        )
        assert isinstance(
            make_sampler(small_wc_graph, model="lt", method="vectorized"),
            VectorizedLTSampler,
        )
        with pytest.raises(ValueError, match="unknown sampling method"):
            make_sampler(small_wc_graph, model="ic", method="warp")
        with pytest.raises(ValueError, match="unknown sampling method"):
            make_sampler(small_wc_graph, model="lt", method="warp")
        with pytest.raises(ValueError, match="IC model only"):
            make_sampler(small_wc_graph, model="lt", method="subsim")

    def test_block_size_validated(self, small_wc_graph):
        with pytest.raises(ValueError, match="block_size"):
            VectorizedICSampler(small_wc_graph, block_size=0)

    def test_generic_triggering_distribution_rejected(self, small_wc_graph):
        class Custom:
            pass

        with pytest.raises(ValueError, match="TriggeringRRSampler"):
            VectorizedTriggeringSampler(small_wc_graph, Custom())

    def test_rooted_batch_validates_roots(self, small_wc_graph):
        sampler = VectorizedICSampler(small_wc_graph)
        with pytest.raises(ValueError, match="1-D"):
            sampler.sample_batch_rooted(np.random.default_rng(0), [[0, 1]])
        with pytest.raises(ValueError, match="lie in"):
            sampler.sample_batch_rooted(
                np.random.default_rng(0), [small_wc_graph.num_nodes]
            )


class TestSizeDistributions:
    """Per-root RR-set size and work (``w(R)``) distributions via KS."""

    SAMPLES = 2500

    def roots_of_interest(self, graph) -> list[int]:
        in_degrees = np.diff(graph.in_indptr)
        return [int(in_degrees.argmax()), int(in_degrees.argmin())]

    @pytest.mark.parametrize("pair", PAIRS, ids=PAIR_IDS)
    def test_per_root_sizes_and_work_match(self, small_wc_graph, pair):
        label, build_ref, build_vec = pair
        reference = build_ref(small_wc_graph)
        vectorized = build_vec(small_wc_graph)
        for root in self.roots_of_interest(small_wc_graph):
            rng_ref = np.random.default_rng(1000 + root)
            rng_vec = np.random.default_rng(2000 + root)
            ref_samples = [
                reference.sample(rng_ref, root=root) for _ in range(self.SAMPLES)
            ]
            batch = vectorized.sample_batch_rooted(
                rng_vec, np.full(self.SAMPLES, root, dtype=np.int64)
            )
            assert_same_distribution(
                [len(s) for s in ref_samples],
                set_sizes(batch),
                label=f"{label} sizes, root={root}",
            )
            assert_same_distribution(
                [s.edges_examined for s in ref_samples],
                batch.edges_examined,
                label=f"{label} w(R), root={root}",
            )

    @pytest.mark.parametrize("pair", PAIRS, ids=PAIR_IDS)
    def test_unconditional_sizes_match(self, small_wc_graph, pair):
        """Full sample_batch streams (roots drawn internally) agree."""
        label, build_ref, build_vec = pair
        ref = build_ref(small_wc_graph).sample_batch(
            np.random.default_rng(11), self.SAMPLES
        )
        vec = build_vec(small_wc_graph).sample_batch(
            np.random.default_rng(12), self.SAMPLES
        )
        assert_same_distribution(
            set_sizes(ref), set_sizes(vec), label=f"{label} unconditional sizes"
        )
        # Roots themselves must be uniform in both paths.
        assert_frequencies_match(
            np.bincount(ref.roots, minlength=small_wc_graph.num_nodes),
            np.bincount(vec.roots, minlength=small_wc_graph.num_nodes),
            label=f"{label} root frequencies",
        )


class TestMembershipFrequencies:
    """How often each node lands in an RR set: chi-square homogeneity."""

    SAMPLES = 5000

    @pytest.mark.parametrize("pair", PAIRS, ids=PAIR_IDS)
    def test_membership_counts_match(self, small_wc_graph, pair):
        label, build_ref, build_vec = pair
        n = small_wc_graph.num_nodes
        ref = build_ref(small_wc_graph).sample_batch(
            np.random.default_rng(21), self.SAMPLES
        )
        vec = build_vec(small_wc_graph).sample_batch(
            np.random.default_rng(22), self.SAMPLES
        )
        assert_frequencies_match(
            np.bincount(ref.nodes, minlength=n),
            np.bincount(vec.nodes, minlength=n),
            label=f"{label} membership",
        )


class TestSpreadAgreement:
    """Golden seed sets score the same spread within Hoeffding bounds."""

    SAMPLES = 8000

    def spread_fraction(self, graph, sampler, seeds, rng) -> float:
        store = FlatRRCollection(graph.num_nodes)
        append_batch(store, sampler.sample_batch(rng, self.SAMPLES))
        return store.coverage_of(seeds) / self.SAMPLES

    @pytest.mark.parametrize("pair", PAIRS, ids=PAIR_IDS)
    def test_golden_seeds_score_identically(self, small_wc_graph, pair):
        label, build_ref, build_vec = pair
        # Golden seed set: the top out-degree hubs — fixed, model-blind.
        seeds = np.argsort(np.diff(small_wc_graph.out_indptr))[-3:].tolist()
        frac_ref = self.spread_fraction(
            small_wc_graph, build_ref(small_wc_graph), seeds, np.random.default_rng(31)
        )
        frac_vec = self.spread_fraction(
            small_wc_graph, build_vec(small_wc_graph), seeds, np.random.default_rng(32)
        )
        # Each estimate is a mean of SAMPLES Bernoulli indicators; under
        # the null both concentrate on one expectation, so the gap is at
        # most the two epsilons combined.
        budget = 2 * hoeffding_epsilon(self.SAMPLES)
        assert abs(frac_ref - frac_vec) <= budget, (
            f"{label}: coverage fractions {frac_ref:.4f} vs {frac_vec:.4f} "
            f"differ by more than the Hoeffding budget {budget:.4f}"
        )


class TestExecutors:
    """method="vectorized" behaves identically behind both executors."""

    @pytest.mark.parametrize("model", ["ic", "lt"])
    def test_executors_agree_bit_for_bit(self, small_wc_graph, model):
        """Simulated and multiprocessing produce identical collections."""
        snapshots = {}
        for name in ("simulated", "multiprocessing"):
            cluster = SimulatedCluster(2, seed=5)
            cluster.init_collections(small_wc_graph.num_nodes, backend="flat")
            executor = make_executor(name, cluster, graph=small_wc_graph)
            try:
                executor.run_phase(
                    GeneratePhase(
                        "t/gen", counts=(40, 25), model=model, method="vectorized"
                    )
                )
                snapshots[name] = (
                    [
                        [
                            m.collection.get(j).tolist()
                            for j in range(m.collection.num_sets)
                        ]
                        for m in executor.machines
                    ],
                    [m.rng.bit_generator.state for m in executor.machines],
                )
            finally:
                executor.close()
        assert snapshots["simulated"] == snapshots["multiprocessing"]

    @pytest.mark.parametrize("executor", ["simulated", "multiprocessing"])
    def test_vectorized_spread_agrees_with_bfs(self, small_wc_graph, executor):
        """End-to-end api.run: the two methods' spreads agree within the
        RIS concentration the run's own theta provides (loose 10% here —
        the per-sampler agreement is pinned far tighter above)."""
        results = {}
        for method in ("bfs", "vectorized"):
            config = RunConfig(
                graph=small_wc_graph,
                k=3,
                machines=2,
                eps=0.5,
                method=method,
                seed=0,
                executor=executor,
                processes=2,
            )
            results[method] = run("diimm", config)
        spread_bfs = results["bfs"].estimated_spread
        spread_vec = results["vectorized"].estimated_spread
        scale = small_wc_graph.num_nodes
        assert abs(spread_bfs - spread_vec) <= 0.1 * scale
        assert results["vectorized"].method == "vectorized"

    def test_end_to_end_identical_across_executors(self, small_wc_graph):
        results = {
            name: run(
                "diimm",
                RunConfig(
                    graph=small_wc_graph,
                    k=4,
                    machines=3,
                    eps=0.6,
                    method="vectorized",
                    seed=11,
                    executor=name,
                ),
            )
            for name in ("simulated", "multiprocessing")
        }
        assert results["simulated"].seeds == results["multiprocessing"].seeds
        assert (
            results["simulated"].num_rr_sets == results["multiprocessing"].num_rr_sets
        )
