"""Statistical-equivalence suite for the sketch coverage backend.

The sketch path cannot be bit-identical to the flat path — register
banks are lossy — so it is held to the second line of defense (see
:mod:`tests.ris.equivalence`): identical RR-set batches go into a
:class:`~repro.ris.flat.FlatRRCollection` and a
:class:`~repro.coverage.sketch.SketchRRCollection`, and the sketch's
degrees, coverage estimates and greedy seeds are certified against the
exact store within the sketch's own published error budget
(``1.04 / sqrt(2**precision)`` per estimate) on IC, LT and both
triggering samplers, end to end on all three executors.
"""

import numpy as np
import pytest

from repro.api import RunConfig, run
from repro.coverage import greedy_max_coverage
from repro.coverage.sketch import (
    SketchRRCollection,
    hll_relative_error,
    sketch_lazy_greedy,
)
from repro.diffusion import ICTriggering, LTTriggering
from repro.ris import (
    FlatRRCollection,
    ICReverseBFSSampler,
    LTReverseWalkSampler,
    TriggeringRRSampler,
    append_batch,
)

from .equivalence import hoeffding_epsilon

PRECISION = 10
#: Three standard errors of a single HLL estimate at the test precision.
SKETCH_BUDGET = 3 * hll_relative_error(PRECISION)

SAMPLERS = [
    ("ic", ICReverseBFSSampler),
    ("lt", LTReverseWalkSampler),
    ("triggering-ic", lambda g: TriggeringRRSampler(g, ICTriggering())),
    ("triggering-lt", lambda g: TriggeringRRSampler(g, LTTriggering())),
]
SAMPLER_IDS = [s[0] for s in SAMPLERS]


def paired_stores(graph, build_sampler, num_sets, seed):
    """The same RR-set batch folded into an exact and a sketch store."""
    batch = build_sampler(graph).sample_batch(np.random.default_rng(seed), num_sets)
    flat = FlatRRCollection(graph.num_nodes)
    append_batch(flat, batch)
    sketch = SketchRRCollection(graph.num_nodes, precision=PRECISION)
    sketch.append_arrays(batch.nodes, batch.offsets, batch.edges_examined)
    return flat, sketch


class TestDegreeEstimates:
    """Per-node degree estimates track the exact coverage degrees."""

    SAMPLES = 4000

    @pytest.mark.parametrize("sampler", SAMPLERS, ids=SAMPLER_IDS)
    def test_heavy_node_degrees_within_budget(self, small_wc_graph, sampler):
        label, build = sampler
        flat, sketch = paired_stores(small_wc_graph, build, self.SAMPLES, seed=101)
        exact = np.bincount(
            flat.nodes[: flat.total_size], minlength=small_wc_graph.num_nodes
        ).astype(np.float64)
        estimated = sketch.estimate_degrees()
        # Relative accuracy is only meaningful where the estimate has
        # support; check every node covering >= 1% of the samples.
        heavy = np.flatnonzero(exact >= 0.01 * self.SAMPLES)
        assert heavy.size > 0
        rel = np.abs(estimated[heavy] - exact[heavy]) / exact[heavy]
        assert rel.max() < SKETCH_BUDGET, (
            f"{label}: worst heavy-node degree error {rel.max():.3f} "
            f"exceeds the sketch budget {SKETCH_BUDGET:.3f}"
        )

    @pytest.mark.parametrize("sampler", SAMPLERS, ids=SAMPLER_IDS)
    def test_coverage_of_matches_exact_union(self, small_wc_graph, sampler):
        label, build = sampler
        flat, sketch = paired_stores(small_wc_graph, build, self.SAMPLES, seed=202)
        seeds = np.argsort(np.diff(small_wc_graph.out_indptr))[-3:].tolist()
        exact = flat.coverage_of(seeds)
        estimated = sketch.coverage_of(seeds)
        assert estimated == pytest.approx(exact, rel=SKETCH_BUDGET), label


class TestSeedQuality:
    """Sketch greedy seeds lose at most the sketch budget in spread."""

    SAMPLES = 6000

    @pytest.mark.parametrize("sampler", SAMPLERS, ids=SAMPLER_IDS)
    def test_sketch_seeds_match_exact_oracle_spread(self, small_wc_graph, sampler):
        label, build = sampler
        flat, sketch = paired_stores(small_wc_graph, build, self.SAMPLES, seed=303)
        exact_pick = greedy_max_coverage([flat], 5)
        sketch_pick = sketch_lazy_greedy(
            sketch.register_bank(), 5, sketch.num_sets
        )
        # Judge both seed sets on the exact store — the differential
        # oracle ISSUE.md names.  Submodularity means the sketch picks
        # can only lose coverage; they must stay within the noise budget.
        exact_value = flat.coverage_of(exact_pick.seeds)
        sketch_value = flat.coverage_of(sketch_pick.seeds)
        assert sketch_value <= exact_value
        assert sketch_value >= (1.0 - SKETCH_BUDGET) * exact_value, (
            f"{label}: sketch seeds cover {sketch_value} vs exact "
            f"{exact_value} — beyond the {SKETCH_BUDGET:.3f} budget"
        )


class TestEndToEndSpread:
    """api.run with backend="sketch" matches the exact run's spread."""

    JUDGE_SAMPLES = 8000

    def judge(self, graph, seeds) -> float:
        """Spread fraction on an independent exact RR sample."""
        store = FlatRRCollection(graph.num_nodes)
        append_batch(
            store,
            ICReverseBFSSampler(graph).sample_batch(
                np.random.default_rng(909), self.JUDGE_SAMPLES
            ),
        )
        return store.coverage_of(seeds) / self.JUDGE_SAMPLES

    @pytest.mark.parametrize(
        "executor", ["simulated", "multiprocessing", "socket"]
    )
    def test_matched_spread_across_executors(self, small_wc_graph, executor):
        base = dict(graph=small_wc_graph, k=4, machines=2, eps=0.4, seed=5)
        flat = run("diimm", RunConfig(**base))
        sketch = run(
            "diimm", RunConfig(**base, backend="sketch", executor=executor)
        )
        frac_flat = self.judge(small_wc_graph, flat.seeds)
        frac_sketch = self.judge(small_wc_graph, sketch.seeds)
        # Both are means of JUDGE_SAMPLES indicators plus the sketch's
        # selection noise on one of them.
        budget = 2 * hoeffding_epsilon(self.JUDGE_SAMPLES) + SKETCH_BUDGET * frac_flat
        assert frac_sketch >= frac_flat - budget, (
            f"{executor}: sketch spread {frac_sketch:.4f} trails flat "
            f"{frac_flat:.4f} beyond budget {budget:.4f}"
        )

    @pytest.mark.parametrize("model", ["ic", "lt"])
    def test_models_reach_matched_spread(self, small_wc_graph, model):
        base = dict(graph=small_wc_graph, k=4, machines=2, eps=0.4, seed=5, model=model)
        flat = run("diimm", RunConfig(**base))
        sketch = run("diimm", RunConfig(**base, backend="sketch"))
        # Judge on the run's own estimates: the sketch's reported spread
        # must agree with the exact run's within sketch + RIS noise.
        assert sketch.estimated_spread == pytest.approx(
            flat.estimated_spread, rel=0.15
        )
