"""Statistical-equivalence harness for RR-set generators.

The repo's first line of defense is *bit-identity* (differential tests
pin optimized paths to reference paths under the same RNG stream).  The
vectorized frontier kernels — and any future sketch backend — reorder
RNG consumption, so bit-identity cannot hold; this module provides the
second line: fixed-seed statistical tests certifying that two samplers
draw from the *same distribution*.

Everything here is NumPy + stdlib only (no SciPy — it is not a
dependency of this repo): the KS tail is the classic asymptotic
Kolmogorov series, the chi-square tail the regularized upper incomplete
gamma via Numerical-Recipes-style series/continued-fraction evaluation.
Both are accurate to far more digits than hypothesis testing needs.

False-positive budget
---------------------
Every test in the suites built on this harness runs with a *fixed* seed,
so each configuration either always passes or always fails — there is no
run-to-run flakiness to budget for.  The residual risk is at *authoring*
time: a correct kernel can land on an unlucky seed.  With the default
``alpha = 1e-3`` and roughly 40 harness assertions across the
equivalence + property suites, the chance that a correct implementation
fails at least one assertion on first authoring is about
``1 - (1 - 1e-3)**40 ≈ 4%`` — low enough to trust a red suite as a real
regression, high enough that *one* isolated failure on a brand-new test
deserves a seed-sensitivity check before debugging the kernel.  Do not
raise ``alpha`` to chase significance; add samples instead.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "DEFAULT_ALPHA",
    "ks_two_sample",
    "chi_square_gof",
    "chi_square_homogeneity",
    "hoeffding_epsilon",
    "pool_small_bins",
    "assert_same_distribution",
    "assert_frequencies_match",
]

#: Per-assertion significance level used throughout the suites.
DEFAULT_ALPHA = 1e-3


# ----------------------------------------------------------------------
# Tail probabilities (NumPy/stdlib replacements for scipy.stats/special)
# ----------------------------------------------------------------------
def _kolmogorov_sf(lam: float) -> float:
    """Asymptotic Kolmogorov survival function ``Q(lam)``.

    ``Q(lam) = 2 * sum_{k>=1} (-1)^(k-1) exp(-2 k^2 lam^2)`` — the
    limiting null distribution of the scaled two-sample KS statistic.
    """
    if lam <= 0.0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return min(max(total, 0.0), 1.0)


def _gamma_q(s: float, x: float) -> float:
    """Regularized upper incomplete gamma ``Q(s, x) = Γ(s, x) / Γ(s)``.

    Series expansion for ``x < s + 1``, Lentz continued fraction
    otherwise (Numerical Recipes 6.2) — the chi-square survival function
    is ``Q(df/2, stat/2)``.
    """
    if x < 0.0 or s <= 0.0:
        raise ValueError("gamma_q requires x >= 0 and s > 0")
    if x == 0.0:
        return 1.0
    lg = math.lgamma(s)
    if x < s + 1.0:
        # P(s, x) series, then Q = 1 - P.
        term = 1.0 / s
        total = term
        a = s
        for _ in range(500):
            a += 1.0
            term *= x / a
            total += term
            if abs(term) < abs(total) * 1e-15:
                break
        p = total * math.exp(-x + s * math.log(x) - lg)
        return min(max(1.0 - p, 0.0), 1.0)
    # Continued fraction for Q directly.
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    q = h * math.exp(-x + s * math.log(x) - lg)
    return min(max(q, 0.0), 1.0)


# ----------------------------------------------------------------------
# Test statistics
# ----------------------------------------------------------------------
def ks_two_sample(a, b) -> tuple[float, float]:
    """Two-sample Kolmogorov–Smirnov test; returns ``(D, p_value)``.

    Compares the empirical CDFs of two 1-D samples (e.g. per-root RR-set
    sizes from two samplers).  The p-value uses the asymptotic
    distribution with the standard small-sample correction
    ``lam = (sqrt(ne) + 0.12 + 0.11/sqrt(ne)) * D``; fine for the
    thousands-of-samples regime these suites run in.
    """
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    n, m = a.size, b.size
    if n == 0 or m == 0:
        raise ValueError("ks_two_sample requires non-empty samples")
    # Empirical CDF gap evaluated at every data point of both samples.
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / n
    cdf_b = np.searchsorted(b, grid, side="right") / m
    d = float(np.abs(cdf_a - cdf_b).max())
    ne = n * m / (n + m)
    lam = (math.sqrt(ne) + 0.12 + 0.11 / math.sqrt(ne)) * d
    return d, _kolmogorov_sf(lam)


def pool_small_bins(
    observed: np.ndarray, expected: np.ndarray, min_expected: float = 5.0
) -> tuple[np.ndarray, np.ndarray]:
    """Merge bins with small expectation into one pooled bin.

    The chi-square approximation degrades when expected counts fall
    below ~5; standard practice is to pool such bins.  Keeps alignment
    between the two arrays; the pooled bin is appended last (only when
    something was pooled).
    """
    observed = np.asarray(observed, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if observed.shape != expected.shape:
        raise ValueError("observed and expected must have the same shape")
    small = expected < min_expected
    if not small.any():
        return observed, expected
    pooled_o = np.concatenate([observed[~small], [observed[small].sum()]])
    pooled_e = np.concatenate([expected[~small], [expected[small].sum()]])
    return pooled_o, pooled_e


def chi_square_gof(observed, expected, min_expected: float = 5.0) -> tuple[float, float]:
    """Chi-square goodness-of-fit test; returns ``(stat, p_value)``.

    ``observed`` are counts, ``expected`` their expectations under the
    null (same total).  Bins with expectation below ``min_expected`` are
    pooled first; degrees of freedom are ``bins - 1`` after pooling.
    """
    observed, expected = pool_small_bins(
        np.asarray(observed), np.asarray(expected), min_expected
    )
    if observed.size < 2:
        raise ValueError("need at least 2 bins after pooling")
    if expected.min() <= 0:
        raise ValueError("expected counts must be positive after pooling")
    stat = float(((observed - expected) ** 2 / expected).sum())
    df = observed.size - 1
    return stat, _gamma_q(df / 2.0, stat / 2.0)


def chi_square_homogeneity(
    counts_a, counts_b, min_expected: float = 5.0
) -> tuple[float, float]:
    """Chi-square test that two count vectors share one distribution.

    The two-sample analogue used for membership frequencies: bin ``i``
    counts how often node ``i`` appeared in the RR sets of sampler A
    resp. B.  Expected cell counts come from the pooled proportions;
    low-expectation bins (under the pooled expectation scaled to the
    smaller sample) are pooled first.  Returns ``(stat, p_value)`` with
    ``bins - 1`` degrees of freedom.
    """
    a = np.asarray(counts_a, dtype=np.float64)
    b = np.asarray(counts_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("count vectors must have the same shape")
    keep = (a + b) > 0
    a, b = a[keep], b[keep]
    if a.size == 0:
        raise ValueError("count vectors are all zero")
    total_a, total_b = a.sum(), b.sum()
    pooled = (a + b) / (total_a + total_b)
    # Pool bins by the smaller sample's expectation, then re-split.
    scale = min(total_a, total_b)
    a, _ = pool_small_bins(a, pooled * scale, min_expected)
    b, _ = pool_small_bins(b, pooled * scale, min_expected)
    if a.size < 2:
        raise ValueError("need at least 2 bins after pooling")
    pooled = (a + b) / (total_a + total_b)
    ea, eb = pooled * total_a, pooled * total_b
    stat = float((((a - ea) ** 2) / ea).sum() + (((b - eb) ** 2) / eb).sum())
    df = a.size - 1
    return stat, _gamma_q(df / 2.0, stat / 2.0)


def hoeffding_epsilon(num_samples: int, alpha: float = DEFAULT_ALPHA) -> float:
    """Two-sided Hoeffding deviation bound for a mean of ``[0, 1]`` draws.

    With probability ``>= 1 - alpha`` the empirical mean of
    ``num_samples`` independent draws lies within this epsilon of its
    expectation — the bound the property tests and the spread-agreement
    checks budget against.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    return math.sqrt(math.log(2.0 / alpha) / (2.0 * num_samples))


# ----------------------------------------------------------------------
# Assertion helpers (the suites' vocabulary)
# ----------------------------------------------------------------------
def assert_same_distribution(a, b, alpha: float = DEFAULT_ALPHA, label: str = "") -> None:
    """KS-assert that two 1-D samples come from one distribution."""
    d, p = ks_two_sample(a, b)
    assert p >= alpha, (
        f"KS test rejects distributional equality{f' ({label})' if label else ''}: "
        f"D={d:.4f}, p={p:.2e} < alpha={alpha:.0e} "
        f"(n={np.asarray(a).size}, m={np.asarray(b).size})"
    )


def assert_frequencies_match(
    counts_a, counts_b, alpha: float = DEFAULT_ALPHA, label: str = ""
) -> None:
    """Chi-square-assert that two count vectors share one distribution."""
    stat, p = chi_square_homogeneity(counts_a, counts_b)
    assert p >= alpha, (
        f"chi-square rejects frequency agreement{f' ({label})' if label else ''}: "
        f"stat={stat:.2f}, p={p:.2e} < alpha={alpha:.0e}"
    )
