"""FlatPrefixView: zero-copy prefix windows over a shared flat store.

The warm pool's correctness rests on a view with limit ``c`` being
indistinguishable — node for node, count for count — from a fresh
:class:`FlatRRCollection` holding only the store's first ``c`` sets.
These tests pin that equivalence, the monotone-limit contract, and the
per-set edge accounting (:meth:`edges_examined_upto`) the views read.
"""

import numpy as np
import pytest

from repro.ris import FlatPrefixView, FlatRRCollection, make_sampler


def drawn_samples(graph, count, seed=0, model="ic"):
    sampler = make_sampler(graph, model)
    return sampler.sample_many(count, np.random.default_rng(seed))


def truncated_copy(store: FlatRRCollection, limit: int) -> FlatRRCollection:
    fresh = FlatRRCollection(store.num_nodes)
    for idx in range(limit):
        nodes = store.get(idx)
        per_set = store.edges_examined_upto(idx + 1) - store.edges_examined_upto(idx)
        fresh.append_arrays(
            nodes,
            np.asarray([0, nodes.size], dtype=np.int64),
            edges_examined=per_set,
        )
    return fresh


@pytest.fixture
def store(small_wc_graph):
    flat = FlatRRCollection(small_wc_graph.num_nodes)
    flat.extend(drawn_samples(small_wc_graph, 120, seed=5))
    return flat


class TestPrefixEqualsTruncatedStore:
    @pytest.mark.parametrize("limit", [0, 1, 40, 120])
    def test_protocol_surface_matches(self, store, limit):
        view = FlatPrefixView(store, limit)
        oracle = truncated_copy(store, limit)
        assert view.num_sets == oracle.num_sets == limit
        assert len(view) == limit
        assert view.total_size == oracle.total_size
        assert view.total_edges_examined == oracle.total_edges_examined
        assert np.array_equal(view.nodes, oracle.nodes)
        assert np.array_equal(view.offsets, oracle.offsets)
        for idx in range(limit):
            assert np.array_equal(view.get(idx), oracle.get(idx))

    @pytest.mark.parametrize("limit", [1, 40, 120])
    def test_inverted_index_matches(self, store, limit):
        view = FlatPrefixView(store, limit)
        oracle = truncated_copy(store, limit)
        for node in range(store.num_nodes):
            assert np.array_equal(
                view.sets_containing(node), oracle.sets_containing(node)
            )

    @pytest.mark.parametrize("start", [0, 10])
    def test_coverage_counts_match(self, store, start):
        view = FlatPrefixView(store, 60)
        oracle = truncated_copy(store, 60)
        assert np.array_equal(
            view.coverage_counts(start=start), oracle.coverage_counts(start=start)
        )

    def test_coverage_of_matches(self, store):
        view = FlatPrefixView(store, 75)
        oracle = truncated_copy(store, 75)
        seeds = [0, 3, 17, 42]
        assert view.coverage_of(seeds) == oracle.coverage_of(seeds)

    def test_iteration(self, store):
        view = FlatPrefixView(store, 7)
        sets = list(view)
        assert len(sets) == 7
        assert all(np.array_equal(s, store.get(i)) for i, s in enumerate(sets))


class TestLimits:
    def test_limits_are_monotone(self, store):
        view = FlatPrefixView(store, 10)
        view.set_limit(10)  # no-op allowed
        view.set_limit(50)
        with pytest.raises(ValueError):
            view.set_limit(49)

    def test_limit_cannot_exceed_store(self, store):
        view = FlatPrefixView(store, 0)
        with pytest.raises(ValueError):
            view.set_limit(store.num_sets + 1)

    def test_view_sees_growth_after_creation(self, store, small_wc_graph):
        view = FlatPrefixView(store, store.num_sets)
        before = store.num_sets
        # Reading through the full-limit view borrows the store's index …
        assert view.sets_containing(0) is not None
        store.extend(drawn_samples(small_wc_graph, 30, seed=9))
        # … and the borrowed arrays stay valid after the store grows.
        oracle = truncated_copy(store, before)
        for node in range(0, store.num_nodes, 17):
            assert np.array_equal(
                view.sets_containing(node), oracle.sets_containing(node)
            )
        view.set_limit(store.num_sets)
        assert view.num_sets == before + 30

    def test_zero_limit_view_is_empty(self, store):
        view = FlatPrefixView(store, 0)
        assert view.num_sets == 0
        assert view.total_size == 0
        assert view.total_edges_examined == 0
        assert view.sets_containing(0).size == 0
        assert view.coverage_counts().sum() == 0

    def test_repr_mentions_limit(self, store):
        view = FlatPrefixView(store, 12)
        assert "12" in repr(view)


class TestEdgeAccounting:
    def test_edges_cumsum_is_monotone_and_total(self, store):
        upto = [store.edges_examined_upto(i) for i in range(store.num_sets + 1)]
        assert upto[0] == 0
        assert upto[-1] == store.total_edges_examined
        assert all(a <= b for a, b in zip(upto, upto[1:]))

    def test_round_trip_preserves_totals(self, store):
        # RRCollection keeps only the aggregate edge counter, so a round
        # trip preserves the total and re-splits prefixes by the
        # deterministic divmod rule.
        back = store.to_collection()
        again = FlatRRCollection.from_collection(back)
        assert again.total_edges_examined == store.total_edges_examined
        assert (
            again.edges_examined_upto(again.num_sets)
            == store.edges_examined_upto(store.num_sets)
        )
        upto = [again.edges_examined_upto(i) for i in range(again.num_sets + 1)]
        assert all(a <= b for a, b in zip(upto, upto[1:]))

    def test_upto_range_checked(self, store):
        with pytest.raises(ValueError):
            store.edges_examined_upto(store.num_sets + 1)
        with pytest.raises(ValueError):
            store.edges_examined_upto(-1)

    def test_scalar_batch_split_preserves_total(self):
        flat = FlatRRCollection(10)
        nodes = np.asarray([1, 2, 3, 4, 5], dtype=np.int32)
        offsets = np.asarray([0, 2, 3, 5], dtype=np.int64)
        flat.append_arrays(nodes, offsets, edges_examined=10)  # scalar over 3 sets
        assert flat.total_edges_examined == 10
        assert flat.edges_examined_upto(3) == 10
        # Per-set split is deterministic: base + remainder on the first sets.
        per_set = np.diff(
            [flat.edges_examined_upto(i) for i in range(4)]
        )
        assert per_set.tolist() == [4, 3, 3]
