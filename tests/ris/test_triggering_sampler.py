"""Unit tests for the general triggering-model RR sampler."""

import numpy as np
import pytest

from repro.diffusion import ICTriggering, LTTriggering, TriggeringDistribution
from repro.diffusion.exact import exact_spread_ic, exact_spread_lt
from repro.ris import (
    ICReverseBFSSampler,
    LTReverseWalkSampler,
    TriggeringRRSampler,
)


class TestStructure:
    def test_root_always_included(self, small_wc_graph, rng):
        sampler = TriggeringRRSampler(small_wc_graph, ICTriggering())
        for __ in range(50):
            sample = sampler.sample(rng)
            assert sample.root in sample

    def test_scratch_reset(self, small_wc_graph, rng):
        sampler = TriggeringRRSampler(small_wc_graph, LTTriggering())
        for __ in range(50):
            sampler.sample(rng)
        assert not sampler._visited.any()

    def test_lt_rr_sets_are_paths(self, small_wc_graph, rng):
        """At most one live in-edge per node: the RR set is a path/cycle."""
        sampler = TriggeringRRSampler(small_wc_graph, LTTriggering())
        lt_ref = LTReverseWalkSampler(small_wc_graph)
        sizes = [len(sampler.sample(rng)) for __ in range(300)]
        ref_sizes = [len(lt_ref.sample(rng)) for __ in range(300)]
        assert np.mean(sizes) == pytest.approx(np.mean(ref_sizes), rel=0.25)


class TestDistributionAgreement:
    """The generic sampler matches both specialised samplers and the
    exact spreads on the paper graph."""

    def test_ic_unbiased(self, paper_graph):
        sampler = TriggeringRRSampler(paper_graph, ICTriggering())
        rng = np.random.default_rng(0)
        num = 60000
        covered = sum(0 in sampler.sample(rng) for __ in range(num))
        assert 4 * covered / num == pytest.approx(
            exact_spread_ic(paper_graph, [0]), abs=0.05
        )

    def test_lt_unbiased(self, paper_graph):
        sampler = TriggeringRRSampler(paper_graph, LTTriggering())
        rng = np.random.default_rng(1)
        num = 60000
        covered = sum(0 in sampler.sample(rng) for __ in range(num))
        assert 4 * covered / num == pytest.approx(
            exact_spread_lt(paper_graph, [0]), abs=0.05
        )

    def test_matches_ic_specialised_sampler(self, small_wc_graph):
        generic = TriggeringRRSampler(small_wc_graph, ICTriggering())
        special = ICReverseBFSSampler(small_wc_graph)
        num = 8000
        g_sizes = [len(s) for s in generic.sample_many(num, np.random.default_rng(2))]
        s_sizes = [len(s) for s in special.sample_many(num, np.random.default_rng(3))]
        assert np.mean(g_sizes) == pytest.approx(np.mean(s_sizes), rel=0.1)

    def test_generic_fallback_distribution(self, paper_graph):
        """A custom distribution exercises the sample-whole-graph path."""

        class EveryOtherEdge(TriggeringDistribution):
            def sample_live_edges(self, graph, rng):
                sources, targets, __ = graph.edge_arrays()
                keep = rng.random(sources.size) < 0.5
                return sources[keep], targets[keep]

        sampler = TriggeringRRSampler(paper_graph, EveryOtherEdge())
        rng = np.random.default_rng(4)
        sample = sampler.sample(rng, root=3)
        assert 3 in sample
        assert all(0 <= v < 4 for v in sample.nodes)
