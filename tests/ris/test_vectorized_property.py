"""Property tests for the vectorized kernels: exact enumeration + edge cases.

On graphs small enough to enumerate every live-edge outcome, the exact
per-node RR-inclusion probability ``P(u in RR(root))`` is computable in
closed form:

* **IC** — sum over all ``2^m`` live-edge subgraphs (each edge live
  independently) of the subgraph's probability times the indicator that
  ``u`` reaches the root;
* **LT / triggering** — each node independently picks one in-edge (with
  its probability) or none (the residual mass); sum over the product
  space of choices.

The empirical pinned-root frequencies from the vectorized kernels must
match these exact values within union-bounded Hoeffding deviations —
a distribution-free certificate that the blocked frontier advancement
computes the right process, complementing the KS/chi-square agreement
checks in ``test_vectorized_equivalence.py``.

The hypothesis block mirrors ``test_property.py``'s structural
invariants for the blocked samplers on random small graphs; the
enumerations run on fixed seeded graphs (see ``tests/ris/equivalence.py``
for the suite's false-positive budget).
"""

from itertools import product

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion import ICTriggering, LTTriggering
from repro.graphs import GraphBuilder, weighted_cascade
from repro.ris import (
    VectorizedICSampler,
    VectorizedLTSampler,
    VectorizedTriggeringSampler,
)

from .equivalence import DEFAULT_ALPHA, hoeffding_epsilon

SAMPLES = 6000


# ----------------------------------------------------------------------
# Exact enumeration
# ----------------------------------------------------------------------
def edge_list(graph):
    edges = []
    for u in range(graph.num_nodes):
        for idx in range(int(graph.out_indptr[u]), int(graph.out_indptr[u + 1])):
            edges.append((u, int(graph.out_indices[idx]), float(graph.out_probs[idx])))
    return edges


def reverse_reachable(num_nodes, live_edges, root):
    """Nodes that reach ``root`` through the live edges (the RR set)."""
    preds: dict[int, list[int]] = {}
    for s, t in live_edges:
        preds.setdefault(t, []).append(s)
    seen = {root}
    stack = [root]
    while stack:
        node = stack.pop()
        for s in preds.get(node, ()):
            if s not in seen:
                seen.add(s)
                stack.append(s)
    return seen


def exact_ic_inclusion(graph, root):
    """``P(u in RR(root))`` under IC, by summing all live-edge subgraphs."""
    edges = edge_list(graph)
    m = len(edges)
    assert m <= 12, "IC enumeration needs 2^m subgraphs; keep the graph tiny"
    inclusion = np.zeros(graph.num_nodes)
    for mask in range(1 << m):
        weight = 1.0
        live = []
        for i, (s, t, p) in enumerate(edges):
            if mask >> i & 1:
                weight *= p
                live.append((s, t))
            else:
                weight *= 1.0 - p
            if weight == 0.0:
                break
        if weight == 0.0:
            continue
        for u in reverse_reachable(graph.num_nodes, live, root):
            inclusion[u] += weight
    return inclusion


def exact_lt_inclusion(graph, root):
    """``P(u in RR(root))`` under LT, by enumerating per-node in-choices."""
    edges = edge_list(graph)
    options = []
    total_combos = 1
    for v in range(graph.num_nodes):
        ins = [(s, p) for (s, t, p) in edges if t == v]
        opts = [((s, v), p) for (s, p) in ins]
        opts.append((None, 1.0 - sum(p for _, p in ins)))
        options.append(opts)
        total_combos *= len(opts)
    assert total_combos <= 20000, "LT enumeration product space too large"
    inclusion = np.zeros(graph.num_nodes)
    for combo in product(*options):
        weight = 1.0
        for _, p in combo:
            weight *= p
        if weight == 0.0:
            continue
        live = [edge for edge, _ in combo if edge is not None]
        for u in reverse_reachable(graph.num_nodes, live, root):
            inclusion[u] += weight
    return inclusion


def empirical_inclusion(sampler, root, num_nodes, seed):
    rng = np.random.default_rng(seed)
    batch = sampler.sample_batch_rooted(rng, np.full(SAMPLES, root, dtype=np.int64))
    # Sets are unique per set, so one bincount counts memberships.
    return np.bincount(batch.nodes, minlength=num_nodes) / SAMPLES


def assert_matches_exact(empirical, exact, label):
    # Union bound over the graph's nodes: each per-node frequency is a
    # mean of SAMPLES indicators.
    epsilon = hoeffding_epsilon(SAMPLES, DEFAULT_ALPHA / exact.size)
    deviation = np.abs(empirical - exact)
    worst = int(deviation.argmax())
    assert deviation.max() <= epsilon, (
        f"{label}: node {worst} empirical {empirical[worst]:.4f} vs exact "
        f"{exact[worst]:.4f} exceeds Hoeffding epsilon {epsilon:.4f}"
    )


def random_tiny_graph(seed, max_edges=9, lt_safe=False):
    """A random graph small enough for exact enumeration.

    ``lt_safe`` rescales probabilities so each node's incoming mass stays
    <= 1 (the LT feasibility constraint).
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 8))
    builder = GraphBuilder(num_nodes=n)
    seen = set()
    for _ in range(max_edges):
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        builder.add_edge(u, v, float(rng.uniform(0.05, 0.9)))
    graph = builder.build()
    if lt_safe:
        sums = graph.in_probability_sums()
        scale = float(sums.max()) if sums.size else 0.0
        if scale > 1.0:
            rebuilt = GraphBuilder(num_nodes=n)
            for s, t, p in edge_list(graph):
                rebuilt.add_edge(s, t, p / (scale * 1.01))
            graph = rebuilt.build()
    return graph


class TestExactInclusionIC:
    @pytest.mark.parametrize("graph_seed", [0, 1, 2])
    def test_vectorized_ic_matches_enumeration(self, graph_seed):
        graph = random_tiny_graph(graph_seed)
        sampler = VectorizedICSampler(graph, block_size=128)
        root = int(np.diff(graph.in_indptr).argmax())
        exact = exact_ic_inclusion(graph, root)
        empirical = empirical_inclusion(sampler, root, graph.num_nodes, 100 + graph_seed)
        assert_matches_exact(empirical, exact, f"ic graph_seed={graph_seed}")

    @pytest.mark.parametrize("graph_seed", [0, 1])
    def test_vectorized_triggering_ic_matches_enumeration(self, graph_seed):
        graph = random_tiny_graph(graph_seed)
        sampler = VectorizedTriggeringSampler(graph, ICTriggering(), block_size=128)
        root = int(np.diff(graph.in_indptr).argmax())
        exact = exact_ic_inclusion(graph, root)
        empirical = empirical_inclusion(sampler, root, graph.num_nodes, 200 + graph_seed)
        assert_matches_exact(empirical, exact, f"triggering-ic graph_seed={graph_seed}")


class TestExactInclusionLT:
    @pytest.mark.parametrize("graph_seed", [0, 1, 2])
    def test_vectorized_lt_matches_enumeration(self, graph_seed):
        graph = random_tiny_graph(graph_seed, lt_safe=True)
        sampler = VectorizedLTSampler(graph, block_size=128)
        root = int(np.diff(graph.in_indptr).argmax())
        exact = exact_lt_inclusion(graph, root)
        empirical = empirical_inclusion(sampler, root, graph.num_nodes, 300 + graph_seed)
        assert_matches_exact(empirical, exact, f"lt graph_seed={graph_seed}")

    @pytest.mark.parametrize("graph_seed", [0, 1])
    def test_vectorized_triggering_lt_matches_enumeration(self, graph_seed):
        graph = random_tiny_graph(graph_seed, lt_safe=True)
        sampler = VectorizedTriggeringSampler(graph, LTTriggering(), block_size=128)
        root = int(np.diff(graph.in_indptr).argmax())
        exact = exact_lt_inclusion(graph, root)
        empirical = empirical_inclusion(sampler, root, graph.num_nodes, 400 + graph_seed)
        assert_matches_exact(empirical, exact, f"triggering-lt graph_seed={graph_seed}")

    def test_weighted_cascade_walk_never_stops_early(self):
        # WC normalises incoming mass to exactly 1, so the only stop
        # conditions are revisit and in-degree zero; the enumeration's
        # "none" option carries zero weight and must not be sampled.
        graph = weighted_cascade(
            GraphBuilder.from_edges(
                [(0, 1), (1, 2), (2, 0), (0, 2)], num_nodes=3
            )
        )
        sampler = VectorizedLTSampler(graph, block_size=64)
        exact = exact_lt_inclusion(graph, 2)
        empirical = empirical_inclusion(sampler, 2, 3, 500)
        assert_matches_exact(empirical, exact, "wc cycle")


class TestEdgeCases:
    def build_samplers(self, graph):
        return [
            VectorizedICSampler(graph, block_size=32),
            VectorizedLTSampler(graph, block_size=32),
            VectorizedTriggeringSampler(graph, ICTriggering(), block_size=32),
            VectorizedTriggeringSampler(graph, LTTriggering(), block_size=32),
        ]

    def test_single_node_graph(self):
        graph = GraphBuilder(num_nodes=1).build()
        for sampler in self.build_samplers(graph):
            batch = sampler.sample_batch(np.random.default_rng(0), 50)
            assert batch.nodes.tolist() == [0] * 50
            assert batch.edges_examined.tolist() == [0] * 50

    def test_isolated_root_yields_singleton(self):
        # Node 3 has no in-edges: every RR set rooted there is {3}.
        builder = GraphBuilder(num_nodes=4)
        builder.add_edge(0, 1, 0.9)
        builder.add_edge(1, 2, 0.9)
        graph = builder.build()
        for sampler in self.build_samplers(graph):
            batch = sampler.sample_batch_rooted(
                np.random.default_rng(1), np.full(40, 3, dtype=np.int64)
            )
            assert batch.nodes.tolist() == [3] * 40
            assert batch.edges_examined.tolist() == [0] * 40

    def test_zero_probability_edges_never_traversed(self):
        # The only path into the root has probability zero end-to-end.
        builder = GraphBuilder(num_nodes=3)
        builder.add_edge(0, 2, 0.0)
        builder.add_edge(1, 2, 0.0)
        graph = builder.build()
        for sampler in self.build_samplers(graph):
            batch = sampler.sample_batch_rooted(
                np.random.default_rng(2), np.full(60, 2, dtype=np.int64)
            )
            assert batch.nodes.tolist() == [2] * 60
            # The dead edges are still *examined* (w(R) counts work).
            assert batch.edges_examined.tolist() == [2] * 60

    def test_self_loops_are_harmless(self):
        # A self-loop can only re-reach an already visited node; RR sets
        # and terminations must match the loop-free graph's semantics.
        builder = GraphBuilder(num_nodes=2)
        builder.add_edge(0, 0, 0.5)
        builder.add_edge(0, 1, 1.0)
        graph = builder.build(drop_self_loops=False)
        for sampler in self.build_samplers(graph):
            batch = sampler.sample_batch_rooted(
                np.random.default_rng(3), np.full(60, 1, dtype=np.int64)
            )
            for i in range(batch.count):
                nodes = batch.nodes[batch.offsets[i] : batch.offsets[i + 1]].tolist()
                assert nodes == [0, 1]

    def test_empty_graph_rejected(self):
        graph = GraphBuilder(num_nodes=0).build()
        with pytest.raises(ValueError, match="empty graph"):
            VectorizedICSampler(graph)


# ----------------------------------------------------------------------
# Hypothesis: structural invariants on random small graphs
# ----------------------------------------------------------------------
@st.composite
def wc_graphs(draw):
    num_nodes = draw(st.integers(min_value=1, max_value=15))
    num_edges = draw(st.integers(min_value=0, max_value=30))
    edges = [
        (draw(st.integers(0, num_nodes - 1)), draw(st.integers(0, num_nodes - 1)))
        for __ in range(num_edges)
    ]
    graph = GraphBuilder.from_edges(edges, num_nodes=num_nodes)
    return weighted_cascade(graph)


@settings(max_examples=40, deadline=None)
@given(graph=wc_graphs(), seed=st.integers(0, 2**16), block=st.integers(1, 7))
def test_blocked_rr_sets_contain_root_and_stay_in_range(graph, seed, block):
    rng = np.random.default_rng(seed)
    for sampler in (
        VectorizedICSampler(graph, block_size=block),
        VectorizedLTSampler(graph, block_size=block),
        VectorizedTriggeringSampler(graph, ICTriggering(), block_size=block),
    ):
        batch = sampler.sample_batch(rng, 11)
        assert batch.count == 11
        for i in range(11):
            nodes = batch.nodes[batch.offsets[i] : batch.offsets[i + 1]]
            assert nodes.size > 0
            assert batch.roots[i] in nodes
            assert nodes.min() >= 0 and nodes.max() < graph.num_nodes
            assert np.all(np.diff(nodes) > 0)  # sorted unique


@settings(max_examples=40, deadline=None)
@given(graph=wc_graphs(), seed=st.integers(0, 2**16))
def test_blocked_rr_nodes_can_reach_root(graph, seed):
    """Live-edge subgraphs only remove edges, so every RR-set member must
    reach its root over the *full* edge set."""
    sampler = VectorizedICSampler(graph, block_size=4)
    batch = sampler.sample_batch(np.random.default_rng(seed), 9)
    full_edges = [(s, t) for s, t, _ in edge_list(graph)]
    for i in range(batch.count):
        nodes = set(batch.nodes[batch.offsets[i] : batch.offsets[i + 1]].tolist())
        reachable = reverse_reachable(graph.num_nodes, full_edges, int(batch.roots[i]))
        assert nodes <= reachable
