"""Streaming frame reads: partial delivery, truncation, oversize, CRC.

``read_frame`` is the socket executor's receive path; it must reassemble
one CRC32-framed message from a ``recv`` callable that may return any
byte-chunking of the stream, reject oversized frames *before* buffering
their body, and keep the stream aligned after a CRC failure so the next
frame is still readable.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ris.serialization import (
    DEFAULT_MAX_FRAME_BODY,
    MESSAGE_HEADER_BYTES,
    FrameTooLargeError,
    FrameTruncatedError,
    PayloadCorruptionError,
    pack_message,
    read_frame,
)


class ChunkedStream:
    """A recv() over a fixed byte string, delivering prescribed chunk sizes."""

    def __init__(self, data: bytes, sizes=None):
        self.data = data
        self.pos = 0
        self.sizes = list(sizes) if sizes is not None else None
        self.calls = 0

    def recv(self, count: int) -> bytes:
        self.calls += 1
        if self.pos >= len(self.data):
            return b""
        if self.sizes:
            count = min(count, self.sizes.pop(0))
        count = max(count, 1)
        chunk = self.data[self.pos : self.pos + count]
        self.pos += len(chunk)
        return chunk


PAYLOADS = [
    None,
    ("op", 7, [1, 2, 3]),
    {"key": b"\x00" * 500},
    list(range(200)),
]


@pytest.mark.parametrize("payload", PAYLOADS)
def test_round_trip_whole_frames(payload):
    stream = ChunkedStream(pack_message(payload))
    assert read_frame(stream.recv) == payload


@pytest.mark.parametrize("chunk", [1, 2, 3, 7, MESSAGE_HEADER_BYTES])
def test_round_trip_under_fixed_chunking(chunk):
    payload = ("batch", 3, b"x" * 257)
    data = pack_message(payload)
    stream = ChunkedStream(data, sizes=[chunk] * (len(data) // chunk + 1))
    assert read_frame(stream.recv) == payload


@given(
    payload=st.one_of(
        st.none(),
        st.binary(max_size=300),
        st.lists(st.integers(-(2**40), 2**40), max_size=50),
        st.tuples(st.text(max_size=10), st.integers(0, 2**32)),
    ),
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_round_trip_under_arbitrary_chunking(payload, data):
    frame = pack_message(payload)
    sizes = data.draw(
        st.lists(st.integers(1, max(len(frame), 1)), min_size=0, max_size=len(frame))
    )
    stream = ChunkedStream(frame, sizes=sizes)
    assert read_frame(stream.recv) == payload
    # The stream is fully consumed: exactly one frame, no residue.
    assert stream.pos == len(frame)


def test_eof_before_header_returns_none_by_default():
    assert read_frame(ChunkedStream(b"").recv) is None


def test_eof_before_header_raises_when_disallowed():
    with pytest.raises(FrameTruncatedError, match="before a frame header"):
        read_frame(ChunkedStream(b"").recv, eof_ok=False)


@pytest.mark.parametrize("cut", [1, MESSAGE_HEADER_BYTES - 1, MESSAGE_HEADER_BYTES, -1])
def test_truncated_stream_raises(cut):
    data = pack_message(("op", 1, b"payload"))[:cut]
    with pytest.raises(FrameTruncatedError, match="stream ended"):
        read_frame(ChunkedStream(data).recv)


def test_truncation_error_is_a_corruption_error():
    # Callers catching the framing layer's base error see truncation too.
    assert issubclass(FrameTruncatedError, PayloadCorruptionError)
    assert issubclass(FrameTooLargeError, PayloadCorruptionError)


def test_oversized_frame_rejected_before_body_read():
    payload = b"y" * 4096
    frame = pack_message(payload)
    stream = ChunkedStream(frame)
    with pytest.raises(FrameTooLargeError, match="refusing the allocation"):
        read_frame(stream.recv, max_body=1024)
    # Only the header was consumed: the oversized body was never buffered.
    assert stream.pos == MESSAGE_HEADER_BYTES


def test_default_max_body_accepts_normal_frames():
    assert DEFAULT_MAX_FRAME_BODY >= 1 << 20
    payload = b"z" * 100_000
    assert read_frame(ChunkedStream(pack_message(payload)).recv) == payload


def test_bad_magic_refuses_resync():
    frame = bytearray(pack_message(("op", 1, None)))
    frame[0] ^= 0xFF
    with pytest.raises(PayloadCorruptionError, match="resynchronize"):
        read_frame(ChunkedStream(bytes(frame)).recv)


def test_crc_failure_keeps_stream_aligned():
    good = ("op", 2, [4, 5])
    first = bytearray(pack_message(("op", 1, [1, 2, 3])))
    first[MESSAGE_HEADER_BYTES] ^= 0xFF  # corrupt the first body byte
    stream = ChunkedStream(bytes(first) + pack_message(good))
    with pytest.raises(PayloadCorruptionError):
        read_frame(stream.recv)
    # The corrupted frame's body was drained, so the next one parses.
    assert read_frame(stream.recv) == good
    assert read_frame(stream.recv) is None
