"""Round-trip and corruption tests for the delta + varint wire codec."""

import numpy as np
import pytest

from repro.ris import make_sampler
from repro.ris.rrset import FlatBatch, pack_samples
from repro.ris.serialization import PayloadCorruptionError
from repro.ris.wire import (
    MAX_VARINT_BYTES,
    decode_batch,
    decode_varints,
    encode_batch,
    encode_varints,
    encoded_batch_nbytes,
    tuple_vector_nbytes,
    varint_sizes,
)


def batch_from_sets(sets, num_nodes=None):
    sizes = np.asarray([len(s) for s in sets], dtype=np.int64)
    offsets = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    nodes = (
        np.concatenate([np.asarray(s, dtype=np.int32) for s in sets])
        if sets and offsets[-1]
        else np.zeros(0, dtype=np.int32)
    )
    roots = np.asarray([s[0] if len(s) else 0 for s in sets], dtype=np.int64)
    edges = np.arange(len(sets), dtype=np.int64)
    return FlatBatch(nodes, offsets, roots, edges)


def assert_batches_equal(left, right):
    assert left.nodes.dtype == right.nodes.dtype == np.int32
    assert left.offsets.dtype == right.offsets.dtype == np.int64
    assert np.array_equal(left.nodes, right.nodes)
    assert np.array_equal(left.offsets, right.offsets)
    assert np.array_equal(left.roots, right.roots)
    assert np.array_equal(left.edges_examined, right.edges_examined)


class TestVarints:
    def test_known_boundaries(self):
        values = np.asarray(
            [0, 1, 127, 128, 16383, 16384, 2**31 - 1, 2**63 - 1, 2**64 - 1],
            dtype=np.uint64,
        )
        sizes = varint_sizes(values)
        assert sizes.tolist() == [1, 1, 1, 2, 2, 3, 5, 9, 10]
        encoded = encode_varints(values)
        assert len(encoded) == int(sizes.sum())
        assert np.array_equal(decode_varints(encoded), values)

    def test_single_byte_wire_values(self):
        assert encode_varints(np.asarray([0], dtype=np.uint64)) == b"\x00"
        assert encode_varints(np.asarray([300], dtype=np.uint64)) == b"\xac\x02"

    def test_empty_stream(self):
        assert encode_varints(np.zeros(0, dtype=np.uint64)) == b""
        assert decode_varints(b"").size == 0

    @pytest.mark.parametrize("trial", range(20))
    def test_random_round_trip(self, trial):
        rng = np.random.default_rng(trial)
        count = int(rng.integers(1, 500))
        # Mix magnitudes so every encoded length occurs.
        magnitudes = rng.integers(0, 64, size=count).astype(np.uint64)
        values = rng.integers(0, 2**63, size=count, dtype=np.uint64) >> magnitudes
        encoded = encode_varints(values)
        assert len(encoded) == int(varint_sizes(values).sum())
        assert np.array_equal(decode_varints(encoded), values)

    def test_truncated_stream_raises(self):
        encoded = encode_varints(np.asarray([5, 70000], dtype=np.uint64))
        with pytest.raises(PayloadCorruptionError, match="truncated"):
            decode_varints(encoded[:-1])

    def test_overlong_varint_raises(self):
        stream = b"\x80" * MAX_VARINT_BYTES + b"\x01"
        with pytest.raises(PayloadCorruptionError, match="spans"):
            decode_varints(stream)


class TestBatchCodec:
    def test_empty_batch(self):
        batch = batch_from_sets([])
        assert_batches_equal(decode_batch(encode_batch(batch)), batch)

    def test_empty_and_single_node_sets(self):
        batch = batch_from_sets([[7], [], [0], [2**31 - 1], []])
        assert_batches_equal(decode_batch(encode_batch(batch)), batch)

    def test_max_int32_node_ids(self):
        top = 2**31 - 1
        batch = batch_from_sets([[top - 2, top - 1, top], [0, top]])
        round_tripped = decode_batch(encode_batch(batch))
        assert_batches_equal(round_tripped, batch)
        assert round_tripped.nodes.max() == top

    @pytest.mark.parametrize("trial", range(20))
    def test_random_sorted_sets_round_trip(self, trial):
        rng = np.random.default_rng(1000 + trial)
        sets = []
        for __ in range(int(rng.integers(0, 40))):
            size = int(rng.integers(0, 60))
            high = int(rng.integers(1, 2**31))
            ids = np.unique(rng.integers(0, high, size=size))
            sets.append(ids.tolist())
        batch = batch_from_sets(sets)
        encoded = encode_batch(batch)
        assert len(encoded) == encoded_batch_nbytes(batch)
        assert_batches_equal(decode_batch(encoded), batch)

    def test_sampler_batch_round_trip(self, small_wc_graph):
        sampler = make_sampler(small_wc_graph, "ic", "bfs")
        batch = sampler.sample_batch(np.random.default_rng(7), 200)
        encoded = encode_batch(batch)
        assert_batches_equal(decode_batch(encoded), batch)
        # The whole point: compressed body well under the raw arrays.
        raw = sum(arr.nbytes for arr in batch)
        assert len(encoded) * 2 <= raw

    def test_round_trip_matches_pack_samples(self, small_wc_graph):
        sampler = make_sampler(small_wc_graph, "ic", "bfs")
        samples = sampler.sample_many(50, np.random.default_rng(3))
        batch = pack_samples(samples)
        assert_batches_equal(decode_batch(encode_batch(batch)), batch)

    def test_truncated_body_raises(self):
        batch = batch_from_sets([[1, 5, 9], [2, 4]])
        encoded = encode_batch(batch)
        with pytest.raises(PayloadCorruptionError):
            decode_batch(encoded[: len(encoded) // 2])

    def test_missing_header_raises(self):
        with pytest.raises(PayloadCorruptionError, match="missing set-count"):
            decode_batch(b"")

    def test_wrong_value_count_raises(self):
        # Header promises 3 sets but the stream holds nothing else.
        with pytest.raises(PayloadCorruptionError, match="declares 3 sets"):
            decode_batch(encode_varints(np.asarray([3], dtype=np.uint64)))

    def test_inconsistent_lengths_raise(self):
        # One set of length 2, but only one delta follows.
        stream = np.asarray([1, 2, 42, 0, 0], dtype=np.uint64)
        with pytest.raises(PayloadCorruptionError, match="implies"):
            decode_batch(encode_varints(stream))


class TestTupleVectorSize:
    def test_empty_vector_costs_header_only(self):
        assert tuple_vector_nbytes(np.zeros(0, dtype=np.int64), np.zeros(0)) == 1

    def test_sorted_vector_smaller_than_tuples(self):
        rng = np.random.default_rng(0)
        nodes = np.unique(rng.integers(0, 100000, size=500))
        counts = rng.integers(1, 50, size=nodes.size)
        size = tuple_vector_nbytes(nodes, counts)
        assert 0 < size < 8 * nodes.size

    def test_matches_explicit_encoding(self):
        nodes = np.asarray([3, 10, 11, 500, 70000], dtype=np.int64)
        counts = np.asarray([1, 2, 3, 4, 5], dtype=np.int64)
        deltas = np.asarray([3, 7, 1, 489, 69500], dtype=np.uint64)
        explicit = len(
            encode_varints(np.asarray([5], dtype=np.uint64))
            + encode_varints(deltas)
            + encode_varints(counts.astype(np.uint64))
        )
        assert tuple_vector_nbytes(nodes, counts) == explicit
