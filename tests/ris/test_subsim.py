"""Unit tests for the SUBSIM subset-sampling RR sampler.

The crucial property: SUBSIM draws RR sets from *exactly the same
distribution* as the plain reverse BFS — only faster.  Tests compare
empirical coverage statistics between the two samplers.
"""

import numpy as np
import pytest

from repro.diffusion import exact_spread_ic
from repro.graphs import (
    erdos_renyi,
    star_graph,
    uniform,
    weighted_cascade,
)
from repro.ris import ICReverseBFSSampler, SubsimSampler


class TestStructure:
    def test_root_always_included(self, small_wc_graph, rng):
        sampler = SubsimSampler(small_wc_graph)
        for __ in range(100):
            sample = sampler.sample(rng)
            assert sample.root in sample

    def test_unit_probability_fallback(self, rng):
        # p_max >= 1 takes the direct coin-flip branch.
        graph = uniform(star_graph(5, outward=True), 1.0)
        sampler = SubsimSampler(graph)
        sample = sampler.sample(rng, root=3)
        assert sample.nodes.tolist() == [0, 3]

    def test_zero_probability_nodes(self, rng):
        graph = uniform(star_graph(3), 0.0)
        sampler = SubsimSampler(graph)
        assert sampler.sample(rng, root=1).nodes.tolist() == [1]

    def test_scratch_bitmap_reset(self, small_wc_graph, rng):
        sampler = SubsimSampler(small_wc_graph)
        for __ in range(100):
            sampler.sample(rng)
        assert not sampler._visited.any()

    def test_uniform_flags_detected(self, small_wc_graph):
        sampler = SubsimSampler(small_wc_graph)
        # Weighted cascade: all in-edges of a node share 1/indeg.
        has_in = small_wc_graph.in_degrees() > 0
        assert np.all(sampler._uniform[has_in])


class TestDistributionEquivalence:
    def test_spread_estimate_matches_exact(self, paper_graph):
        sampler = SubsimSampler(paper_graph)
        rng = np.random.default_rng(2)
        num = 60000
        covered = sum(0 in sampler.sample(rng) for __ in range(num))
        assert 4 * covered / num == pytest.approx(
            exact_spread_ic(paper_graph, [0]), abs=0.05
        )

    def test_matches_bfs_on_wc_graph(self, small_wc_graph):
        num = 20000
        bfs = ICReverseBFSSampler(small_wc_graph)
        sub = SubsimSampler(small_wc_graph)
        bfs_sizes = [
            len(s) for s in bfs.sample_many(num, np.random.default_rng(3))
        ]
        sub_sizes = [
            len(s) for s in sub.sample_many(num, np.random.default_rng(4))
        ]
        assert np.mean(sub_sizes) == pytest.approx(np.mean(bfs_sizes), rel=0.05)

    def test_matches_bfs_with_nonuniform_probs(self):
        # Rejection branch: random (non-equal) probabilities per edge.
        base = erdos_renyi(30, 200, np.random.default_rng(0))
        probs = np.random.default_rng(1).uniform(0.05, 0.6, size=base.num_edges)
        graph = base.with_probabilities(probs)
        num = 30000
        bfs = ICReverseBFSSampler(graph)
        sub = SubsimSampler(graph)
        bfs_cov = sum(
            0 in s for s in bfs.sample_many(num, np.random.default_rng(5))
        )
        sub_cov = sum(
            0 in s for s in sub.sample_many(num, np.random.default_rng(6))
        )
        assert sub_cov / num == pytest.approx(bfs_cov / num, abs=0.02)

    def test_per_edge_success_probability(self, rng):
        # A node with 4 in-edges at p = 0.3: each must be live 30% of the
        # time under geometric-jump sampling.
        graph = uniform(star_graph(4, outward=False), 0.3)
        sampler = SubsimSampler(graph)
        counts = np.zeros(5)
        num = 20000
        for __ in range(num):
            sample = sampler.sample(rng, root=0)
            counts[sample.nodes] += 1
        for leaf in range(1, 5):
            assert counts[leaf] / num == pytest.approx(0.3, abs=0.02)


class TestEfficiency:
    def test_fewer_draws_than_degree_on_sparse_probs(self, rng):
        # A hub with 1000 in-edges at p = 1/1000: SUBSIM's work should be
        # near-constant, far below the in-degree.
        graph = weighted_cascade(star_graph(1000, outward=False))
        sampler = SubsimSampler(graph)
        draws = [
            sampler.sample(rng, root=0).edges_examined for __ in range(200)
        ]
        assert np.mean(draws) < 50
