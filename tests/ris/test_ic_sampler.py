"""Unit tests for the IC reverse-BFS RR-set sampler."""

import numpy as np
import pytest

from repro.diffusion import exact_spread_ic
from repro.graphs import uniform, path_graph, star_graph
from repro.ris import ICReverseBFSSampler


class TestStructure:
    def test_root_always_included(self, small_wc_graph, rng):
        sampler = ICReverseBFSSampler(small_wc_graph)
        for __ in range(100):
            sample = sampler.sample(rng)
            assert sample.root in sample

    def test_nodes_sorted_unique(self, small_wc_graph, rng):
        sampler = ICReverseBFSSampler(small_wc_graph)
        sample = sampler.sample(rng)
        nodes = sample.nodes
        assert np.all(np.diff(nodes) > 0)

    def test_unit_probabilities_full_reverse_reachability(self, rng):
        graph = uniform(path_graph(5), 1.0)
        sampler = ICReverseBFSSampler(graph)
        sample = sampler.sample(rng, root=4)
        # Everything reaches node 4 along the path.
        assert sample.nodes.tolist() == [0, 1, 2, 3, 4]

    def test_zero_probabilities_rr_set_is_root(self, rng):
        graph = uniform(star_graph(4), 0.0)
        sampler = ICReverseBFSSampler(graph)
        sample = sampler.sample(rng, root=2)
        assert sample.nodes.tolist() == [2]

    def test_edges_examined_counts_in_edges(self, rng):
        graph = uniform(path_graph(4), 1.0)
        sampler = ICReverseBFSSampler(graph)
        sample = sampler.sample(rng, root=3)
        # Nodes 3,2,1 each have one in-edge; node 0 has none.
        assert sample.edges_examined == 3

    def test_scratch_bitmap_reset_between_samples(self, small_wc_graph, rng):
        sampler = ICReverseBFSSampler(small_wc_graph)
        for __ in range(200):
            sampler.sample(rng)
        assert not sampler._visited.any()

    def test_empty_graph_rejected(self):
        from repro.graphs import DirectedGraph

        with pytest.raises(ValueError, match="empty graph"):
            ICReverseBFSSampler(DirectedGraph(0, [], []))


class TestDistribution:
    def test_example2_rr_set_probability(self, paper_graph):
        """Paper Example 2: from root v4 under IC, the RR set {v1, v3, v4}.

        The paper quotes 0.056 for one specific traversal realization
        (v2->v4 fails, v1->v4 and v3->v4 succeed: 0.7 * 0.4 * 0.2).  The
        total probability of the *set* {v1,v3,v4} is P[v2->v4 fails] *
        P[v3->v4 succeeds] = 0.7 * 0.2 = 0.14, since v1 is then always
        reached through the unit edge v1->v3.
        """
        sampler = ICReverseBFSSampler(paper_graph)
        rng = np.random.default_rng(0)
        target = frozenset({0, 2, 3})
        hits = sum(
            frozenset(sampler.sample(rng, root=3).nodes.tolist()) == target
            for __ in range(50000)
        )
        assert hits / 50000 == pytest.approx(0.14, abs=0.01)

    def test_lemma1_unbiased_spread(self, paper_graph):
        """Lemma 1: sigma(S) = n * Pr[S covers a random RR set]."""
        sampler = ICReverseBFSSampler(paper_graph)
        rng = np.random.default_rng(1)
        num = 60000
        covered = sum(0 in sampler.sample(rng) for __ in range(num))
        estimate = 4 * covered / num
        assert estimate == pytest.approx(exact_spread_ic(paper_graph, [0]), abs=0.05)

    def test_root_uniformity(self, rng):
        graph = uniform(path_graph(4), 0.5)
        sampler = ICReverseBFSSampler(graph)
        roots = np.array([sampler.sample(rng).root for __ in range(8000)])
        counts = np.bincount(roots, minlength=4)
        assert np.all(np.abs(counts / 8000 - 0.25) < 0.03)

    def test_pinned_root(self, small_wc_graph, rng):
        sampler = ICReverseBFSSampler(small_wc_graph)
        assert sampler.sample(rng, root=7).root == 7

    def test_sample_many_count(self, small_wc_graph, rng):
        sampler = ICReverseBFSSampler(small_wc_graph)
        assert len(sampler.sample_many(25, rng)) == 25


class TestGrow:
    def test_zero_capacity_buffer_terminates(self):
        """Regression: a zero-size buffer used to make the capacity
        doubling loop spin forever (0 * 2 == 0)."""
        from repro.ris.ic_sampler import _grow

        grown = _grow(np.empty(0, dtype=np.int32), 0, 5)
        assert grown.size >= 5
        assert grown.dtype == np.int32

    def test_preserves_used_prefix(self):
        from repro.ris.ic_sampler import _grow

        buffer = np.arange(4, dtype=np.int64)
        grown = _grow(buffer, 3, 9)
        assert grown.size >= 9
        assert grown[:3].tolist() == [0, 1, 2]

    def test_no_copy_when_large_enough(self):
        from repro.ris.ic_sampler import _grow

        buffer = np.arange(8)
        assert _grow(buffer, 8, 8) is buffer
