"""Unit tests for the LT reverse-walk RR-set sampler."""

import numpy as np
import pytest

from repro.diffusion import exact_spread_lt
from repro.graphs import GraphBuilder, cycle_graph, uniform, path_graph, weighted_cascade
from repro.ris import LTReverseWalkSampler


class TestStructure:
    def test_rr_set_is_a_reverse_path(self, small_wc_graph, rng):
        sampler = LTReverseWalkSampler(small_wc_graph)
        for __ in range(50):
            sample = sampler.sample(rng)
            assert sample.root in sample
            assert len(sample) >= 1

    def test_walk_stops_at_indegree_zero(self, rng):
        graph = uniform(path_graph(4), 1.0)
        sampler = LTReverseWalkSampler(graph)
        sample = sampler.sample(rng, root=3)
        # Unit probabilities force the walk all the way back to node 0.
        assert sample.nodes.tolist() == [0, 1, 2, 3]

    def test_walk_stops_on_revisit(self, rng):
        graph = uniform(cycle_graph(4), 1.0)
        sampler = LTReverseWalkSampler(graph)
        sample = sampler.sample(rng, root=0)
        # The walk loops the cycle exactly once, then hits a visited node.
        assert sample.nodes.size == 4

    def test_stop_probability(self, rng):
        # Single in-edge with probability 0.25: the walk extends past the
        # root a quarter of the time.
        graph = GraphBuilder.from_edges([(0, 1, 0.25)], num_nodes=2)
        sampler = LTReverseWalkSampler(graph)
        sizes = [len(sampler.sample(rng, root=1)) for __ in range(20000)]
        assert np.mean([s == 2 for s in sizes]) == pytest.approx(0.25, abs=0.02)

    def test_infeasible_graph_rejected(self):
        graph = GraphBuilder.from_edges([(0, 2, 0.8), (1, 2, 0.8)], num_nodes=3)
        with pytest.raises(ValueError, match="sum to <= 1"):
            LTReverseWalkSampler(graph)

    def test_edges_examined_counts_degrees(self, rng):
        graph = uniform(path_graph(3), 1.0)
        sampler = LTReverseWalkSampler(graph)
        sample = sampler.sample(rng, root=2)
        # Nodes 2 and 1 have one in-edge each; node 0 has none.
        assert sample.edges_examined == 2


class TestDistribution:
    def test_example2_lt_path_probability(self, paper_graph):
        """Under LT the RR set {v1, v3, v4} needs the walk v4 -> v3 -> v1.

        Probability: pick the v3 in-edge at v4 (0.2), then at v3 the single
        unit edge to v1 (1.0), then v1 has no in-edges: 0.2 total.
        """
        sampler = LTReverseWalkSampler(paper_graph)
        rng = np.random.default_rng(0)
        target = frozenset({0, 2, 3})
        hits = sum(
            frozenset(sampler.sample(rng, root=3).nodes.tolist()) == target
            for __ in range(50000)
        )
        assert hits / 50000 == pytest.approx(0.2, abs=0.01)

    def test_lemma1_unbiased_spread(self, paper_graph):
        sampler = LTReverseWalkSampler(paper_graph)
        rng = np.random.default_rng(1)
        num = 60000
        covered = sum(0 in sampler.sample(rng) for __ in range(num))
        assert 4 * covered / num == pytest.approx(
            exact_spread_lt(paper_graph, [0]), abs=0.05
        )

    def test_weighted_cascade_never_stops_midwalk(self, rng):
        # WC sums incoming probabilities to exactly 1, so the walk only
        # terminates at in-degree-zero nodes or revisits.
        graph = weighted_cascade(uniform(cycle_graph(5), 1.0))
        sampler = LTReverseWalkSampler(graph)
        for __ in range(50):
            assert len(sampler.sample(rng)) == 5

    def test_nonuniform_probabilities_branch(self, rng):
        # Exercises the binary-search path (unequal in-probabilities).
        graph = GraphBuilder.from_edges(
            [(0, 2, 0.7), (1, 2, 0.2)], num_nodes=3
        )
        sampler = LTReverseWalkSampler(graph)
        first = sum(
            1 in sampler.sample(rng, root=2).nodes.tolist() for __ in range(20000)
        )
        assert first / 20000 == pytest.approx(0.2, abs=0.015)

    def test_deterministic_with_seed(self, small_wc_graph):
        sampler = LTReverseWalkSampler(small_wc_graph)
        a = sampler.sample_many(20, np.random.default_rng(5))
        b = sampler.sample_many(20, np.random.default_rng(5))
        assert all(np.array_equal(x.nodes, y.nodes) for x, y in zip(a, b))
