"""Unit tests for RRCollection."""

import numpy as np
import pytest

from repro.ris import RRCollection
from repro.ris.rrset import RRSample


def make_sample(nodes, root=None, edges=0):
    arr = np.unique(np.asarray(nodes, dtype=np.int32))
    return RRSample(nodes=arr, root=root if root is not None else int(arr[0]), edges_examined=edges)


@pytest.fixture
def collection():
    coll = RRCollection(num_nodes=5)
    coll.add(make_sample([0, 1], edges=3))
    coll.add(make_sample([1, 2], edges=2))
    coll.add(make_sample([0, 3, 4], edges=7))
    return coll


class TestMutation:
    def test_add_returns_index(self):
        coll = RRCollection(3)
        assert coll.add(make_sample([0])) == 0
        assert coll.add(make_sample([1])) == 1

    def test_extend(self, collection):
        collection.extend([make_sample([2]), make_sample([4])])
        assert collection.num_sets == 5

    def test_invalid_num_nodes(self):
        with pytest.raises(ValueError):
            RRCollection(0)

    def test_add_rejects_out_of_range_ids(self):
        """Regression: ids >= num_nodes used to be silently accepted and
        then crash coverage_counts' bincount much later."""
        coll = RRCollection(3)
        with pytest.raises(ValueError, match=r"outside \[0, 3\)"):
            coll.add(make_sample([1, 3]))
        with pytest.raises(ValueError, match="outside"):
            coll.add(
                RRSample(nodes=np.asarray([-1], dtype=np.int32), root=0, edges_examined=0)
            )
        assert coll.num_sets == 0


class TestAccounting:
    def test_num_sets(self, collection):
        assert collection.num_sets == 3
        assert len(collection) == 3

    def test_total_size(self, collection):
        assert collection.total_size == 7

    def test_total_edges_examined(self, collection):
        assert collection.total_edges_examined == 12

    def test_get(self, collection):
        assert collection.get(1).tolist() == [1, 2]

    def test_iteration(self, collection):
        assert [s.tolist() for s in collection] == [[0, 1], [1, 2], [0, 3, 4]]


class TestInvertedIndex:
    def test_sets_containing(self, collection):
        assert collection.sets_containing(0) == [0, 2]
        assert collection.sets_containing(1) == [0, 1]
        assert collection.sets_containing(4) == [2]

    def test_missing_node_empty(self, collection):
        assert collection.sets_containing(2) == [1]
        coll = RRCollection(10)
        assert coll.sets_containing(9) == []

    def test_index_grows_with_extend(self, collection):
        collection.add(make_sample([0]))
        assert collection.sets_containing(0) == [0, 2, 3]


class TestCoverage:
    def test_coverage_counts(self, collection):
        counts = collection.coverage_counts()
        assert counts.tolist() == [2, 2, 1, 1, 1]

    def test_coverage_counts_from_start(self, collection):
        counts = collection.coverage_counts(start=2)
        assert counts.tolist() == [1, 0, 0, 1, 1]

    def test_coverage_of_single(self, collection):
        assert collection.coverage_of([0]) == 2

    def test_coverage_of_union(self, collection):
        assert collection.coverage_of([0, 1]) == 3

    def test_coverage_of_duplicates(self, collection):
        assert collection.coverage_of([0, 0]) == 2

    def test_coverage_of_empty(self, collection):
        assert collection.coverage_of([]) == 0

    def test_repr(self, collection):
        assert "num_sets=3" in repr(collection)
