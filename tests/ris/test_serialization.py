"""Unit tests for RR-collection persistence."""

import numpy as np
import pytest

from repro.coverage import greedy_max_coverage
from repro.ris import (
    FORMAT_MAGIC,
    FORMAT_VERSION,
    CheckpointFormatError,
    FlatRRCollection,
    RRCollection,
    load_collection,
    load_flat_collection,
    make_sampler,
    save_collection,
)


@pytest.fixture
def populated(small_wc_graph, rng):
    sampler = make_sampler(small_wc_graph, "ic")
    collection = RRCollection(small_wc_graph.num_nodes)
    collection.extend(sampler.sample_many(200, rng))
    return collection


class TestRoundtrip:
    def test_membership_preserved(self, populated, tmp_path):
        path = tmp_path / "coll.npz"
        save_collection(populated, path)
        loaded = load_collection(path)
        assert loaded.num_sets == populated.num_sets
        assert loaded.num_nodes == populated.num_nodes
        for idx in range(populated.num_sets):
            assert np.array_equal(loaded.get(idx), populated.get(idx))

    def test_accounting_preserved(self, populated, tmp_path):
        path = tmp_path / "coll.npz"
        save_collection(populated, path)
        loaded = load_collection(path)
        assert loaded.total_size == populated.total_size
        assert loaded.total_edges_examined == populated.total_edges_examined

    def test_inverted_index_rebuilt(self, populated, tmp_path):
        path = tmp_path / "coll.npz"
        save_collection(populated, path)
        loaded = load_collection(path)
        counts_before = populated.coverage_counts()
        counts_after = loaded.coverage_counts()
        assert np.array_equal(counts_before, counts_after)

    def test_seed_selection_replays_identically(self, populated, tmp_path):
        """The checkpoint use case: greedy on the loaded collection gives
        the exact same seeds as on the original."""
        path = tmp_path / "coll.npz"
        save_collection(populated, path)
        loaded = load_collection(path)
        original = greedy_max_coverage([populated], 5)
        replayed = greedy_max_coverage([loaded], 5)
        assert original.seeds == replayed.seeds
        assert original.coverage == replayed.coverage

    def test_empty_collection(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_collection(RRCollection(10), path)
        loaded = load_collection(path)
        assert loaded.num_sets == 0
        assert loaded.num_nodes == 10


class TestFlatRoundtrip:
    def test_save_flat_load_reference(self, populated, tmp_path):
        """A flat checkpoint is readable as a reference collection."""
        path = tmp_path / "flat.npz"
        save_collection(FlatRRCollection.from_collection(populated), path)
        loaded = load_collection(path)
        assert loaded.num_sets == populated.num_sets
        for idx in range(populated.num_sets):
            assert np.array_equal(loaded.get(idx), populated.get(idx))

    def test_save_reference_load_flat(self, populated, tmp_path):
        """And the reverse: one on-disk format, either store."""
        path = tmp_path / "ref.npz"
        save_collection(populated, path)
        loaded = load_flat_collection(path)
        assert isinstance(loaded, FlatRRCollection)
        assert loaded.num_sets == populated.num_sets
        assert loaded.total_edges_examined == populated.total_edges_examined
        assert np.array_equal(loaded.coverage_counts(), populated.coverage_counts())

    def test_empty_flat_collection(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_collection(FlatRRCollection(10), path)
        loaded = load_flat_collection(path)
        assert loaded.num_sets == 0
        assert loaded.num_nodes == 10


class TestFormatHeader:
    """Magic/version validation: foreign or stale files fail loudly."""

    @staticmethod
    def _rewrite(path, out, drop=(), **overrides):
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files if name not in drop}
        arrays.update(overrides)
        np.savez(out, **arrays)

    @pytest.fixture
    def saved(self, populated, tmp_path):
        path = tmp_path / "coll.npz"
        save_collection(populated, path)
        return path

    def test_header_fields_written(self, saved):
        with np.load(saved) as data:
            assert str(data["magic"]) == FORMAT_MAGIC
            assert int(data["version"]) == FORMAT_VERSION

    def test_both_loaders_round_trip_header(self, populated, tmp_path):
        for store in (populated, FlatRRCollection.from_collection(populated)):
            path = tmp_path / "rt.npz"
            save_collection(store, path)
            assert load_collection(path).num_sets == populated.num_sets
            assert load_flat_collection(path).num_sets == populated.num_sets

    def test_missing_magic_rejected(self, saved, tmp_path):
        foreign = tmp_path / "foreign.npz"
        self._rewrite(saved, foreign, drop=("magic",))
        with pytest.raises(CheckpointFormatError, match="not an RR-collection checkpoint"):
            load_collection(foreign)

    def test_wrong_magic_rejected(self, saved, tmp_path):
        foreign = tmp_path / "foreign.npz"
        self._rewrite(saved, foreign, magic=np.asarray("someone-elses-format"))
        with pytest.raises(CheckpointFormatError, match="not an RR-collection checkpoint"):
            load_flat_collection(foreign)

    def test_version_mismatch_rejected(self, saved, tmp_path):
        stale = tmp_path / "stale.npz"
        self._rewrite(saved, stale, version=np.int64(FORMAT_VERSION + 1))
        with pytest.raises(CheckpointFormatError, match="format version"):
            load_collection(stale)

    def test_corrupt_file_rejected(self, tmp_path):
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"\x00\x01 not a zip archive")
        with pytest.raises(CheckpointFormatError, match="corrupt or truncated"):
            load_flat_collection(garbage)

    def test_error_is_a_value_error(self, tmp_path):
        """Callers catching ValueError keep working."""
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"junk")
        with pytest.raises(ValueError):
            load_collection(garbage)
