"""Unit tests for RR-collection persistence."""

import numpy as np
import pytest

from repro.coverage import greedy_max_coverage
from repro.ris import (
    FlatRRCollection,
    RRCollection,
    load_collection,
    load_flat_collection,
    make_sampler,
    save_collection,
)


@pytest.fixture
def populated(small_wc_graph, rng):
    sampler = make_sampler(small_wc_graph, "ic")
    collection = RRCollection(small_wc_graph.num_nodes)
    collection.extend(sampler.sample_many(200, rng))
    return collection


class TestRoundtrip:
    def test_membership_preserved(self, populated, tmp_path):
        path = tmp_path / "coll.npz"
        save_collection(populated, path)
        loaded = load_collection(path)
        assert loaded.num_sets == populated.num_sets
        assert loaded.num_nodes == populated.num_nodes
        for idx in range(populated.num_sets):
            assert np.array_equal(loaded.get(idx), populated.get(idx))

    def test_accounting_preserved(self, populated, tmp_path):
        path = tmp_path / "coll.npz"
        save_collection(populated, path)
        loaded = load_collection(path)
        assert loaded.total_size == populated.total_size
        assert loaded.total_edges_examined == populated.total_edges_examined

    def test_inverted_index_rebuilt(self, populated, tmp_path):
        path = tmp_path / "coll.npz"
        save_collection(populated, path)
        loaded = load_collection(path)
        counts_before = populated.coverage_counts()
        counts_after = loaded.coverage_counts()
        assert np.array_equal(counts_before, counts_after)

    def test_seed_selection_replays_identically(self, populated, tmp_path):
        """The checkpoint use case: greedy on the loaded collection gives
        the exact same seeds as on the original."""
        path = tmp_path / "coll.npz"
        save_collection(populated, path)
        loaded = load_collection(path)
        original = greedy_max_coverage([populated], 5)
        replayed = greedy_max_coverage([loaded], 5)
        assert original.seeds == replayed.seeds
        assert original.coverage == replayed.coverage

    def test_empty_collection(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_collection(RRCollection(10), path)
        loaded = load_collection(path)
        assert loaded.num_sets == 0
        assert loaded.num_nodes == 10


class TestFlatRoundtrip:
    def test_save_flat_load_reference(self, populated, tmp_path):
        """A flat checkpoint is readable as a reference collection."""
        path = tmp_path / "flat.npz"
        save_collection(FlatRRCollection.from_collection(populated), path)
        loaded = load_collection(path)
        assert loaded.num_sets == populated.num_sets
        for idx in range(populated.num_sets):
            assert np.array_equal(loaded.get(idx), populated.get(idx))

    def test_save_reference_load_flat(self, populated, tmp_path):
        """And the reverse: one on-disk format, either store."""
        path = tmp_path / "ref.npz"
        save_collection(populated, path)
        loaded = load_flat_collection(path)
        assert isinstance(loaded, FlatRRCollection)
        assert loaded.num_sets == populated.num_sets
        assert loaded.total_edges_examined == populated.total_edges_examined
        assert np.array_equal(loaded.coverage_counts(), populated.coverage_counts())

    def test_empty_flat_collection(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_collection(FlatRRCollection(10), path)
        loaded = load_flat_collection(path)
        assert loaded.num_sets == 0
        assert loaded.num_nodes == 10
