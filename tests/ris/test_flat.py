"""Determinism tests for the CSR-backed FlatRRCollection."""

import numpy as np
import pytest

from repro.ris import FlatRRCollection, RRCollection, make_collection, make_sampler
from repro.ris.flat import gather_rows
from repro.ris.rrset import RRSample


def make_sample(nodes, edges=0):
    arr = np.unique(np.asarray(nodes, dtype=np.int32))
    root = int(arr[0]) if arr.size else 0
    return RRSample(nodes=arr, root=root, edges_examined=edges)


def drawn_samples(graph, count, seed=0, model="ic"):
    sampler = make_sampler(graph, model)
    return sampler.sample_many(count, np.random.default_rng(seed))


class TestGatherRows:
    def test_multi_row_gather(self):
        values = np.asarray([10, 11, 20, 30, 31, 32], dtype=np.int32)
        offsets = np.asarray([0, 2, 3, 3, 6], dtype=np.int64)
        got = gather_rows(values, offsets, np.asarray([0, 2, 3]))
        assert got.tolist() == [10, 11, 30, 31, 32]

    def test_empty_rows(self):
        values = np.asarray([1, 2], dtype=np.int32)
        offsets = np.asarray([0, 2], dtype=np.int64)
        assert gather_rows(values, offsets, np.zeros(0, dtype=np.int64)).size == 0


class TestRoundTrip:
    def test_from_collection_preserves_sets(self, small_wc_graph):
        reference = RRCollection(small_wc_graph.num_nodes)
        reference.extend(drawn_samples(small_wc_graph, 150))
        flat = FlatRRCollection.from_collection(reference)
        assert flat.num_sets == reference.num_sets
        assert flat.total_size == reference.total_size
        assert flat.total_edges_examined == reference.total_edges_examined
        for idx in range(reference.num_sets):
            assert np.array_equal(flat.get(idx), reference.get(idx))

    def test_to_collection_round_trip(self, small_wc_graph):
        flat = FlatRRCollection(small_wc_graph.num_nodes)
        flat.extend(drawn_samples(small_wc_graph, 120, seed=3))
        back = flat.to_collection()
        assert back.num_sets == flat.num_sets
        assert back.total_size == flat.total_size
        assert back.total_edges_examined == flat.total_edges_examined
        for idx in range(flat.num_sets):
            assert np.array_equal(back.get(idx), flat.get(idx))
        again = FlatRRCollection.from_collection(back)
        assert np.array_equal(again.nodes, flat.nodes)
        assert np.array_equal(again.offsets, flat.offsets)

    def test_from_store_accepts_flat(self, small_wc_graph):
        flat = FlatRRCollection(small_wc_graph.num_nodes)
        flat.extend(drawn_samples(small_wc_graph, 40, seed=9))
        copy = FlatRRCollection.from_store(flat)
        assert copy is not flat
        assert np.array_equal(copy.nodes, flat.nodes)


class TestIncrementalAppend:
    def test_waves_match_one_shot(self, small_wc_graph):
        """Appending in DIIMM-style waves gives the same CSR arrays and
        inverted index as building from all samples at once."""
        samples = drawn_samples(small_wc_graph, 200, seed=5)
        one_shot = FlatRRCollection(small_wc_graph.num_nodes)
        one_shot.extend(samples)

        waved = FlatRRCollection(small_wc_graph.num_nodes)
        cut_a, cut_b = 70, 150
        waved.extend(samples[:cut_a])
        # Interleave reads so the index is rebuilt mid-growth.
        assert waved.num_sets == cut_a
        waved.coverage_counts()
        waved.extend(samples[cut_a:cut_b])
        waved.sets_containing(0)
        waved.extend(samples[cut_b:])

        assert np.array_equal(waved.nodes, one_shot.nodes)
        assert np.array_equal(waved.offsets, one_shot.offsets)
        assert np.array_equal(waved.inv_sets, one_shot.inv_sets)
        assert np.array_equal(waved.inv_offsets, one_shot.inv_offsets)

    def test_append_arrays_matches_add(self, small_wc_graph):
        samples = drawn_samples(small_wc_graph, 50, seed=8)
        by_add = FlatRRCollection(small_wc_graph.num_nodes)
        by_add.extend(samples)
        sizes = np.asarray([s.nodes.size for s in samples], dtype=np.int64)
        offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        nodes = np.concatenate([s.nodes for s in samples]).astype(np.int32)
        edges = sum(s.edges_examined for s in samples)
        by_batch = FlatRRCollection(small_wc_graph.num_nodes)
        by_batch.append_arrays(nodes, offsets, edges_examined=edges)
        assert np.array_equal(by_batch.nodes, by_add.nodes)
        assert np.array_equal(by_batch.offsets, by_add.offsets)
        assert by_batch.total_edges_examined == by_add.total_edges_examined

    def test_append_arrays_rejects_bad_offsets(self):
        flat = FlatRRCollection(4)
        with pytest.raises(ValueError, match="offsets"):
            flat.append_arrays(np.asarray([0, 1], dtype=np.int32), np.asarray([0, 1]))


class TestInvertedIndexAgreement:
    @pytest.mark.parametrize("model", ["ic", "lt"])
    def test_index_matches_reference_node_for_node(self, small_wc_graph, model):
        samples = drawn_samples(small_wc_graph, 180, seed=11, model=model)
        reference = RRCollection(small_wc_graph.num_nodes)
        reference.extend(samples)
        flat = FlatRRCollection(small_wc_graph.num_nodes)
        flat.extend(samples)
        for node in range(small_wc_graph.num_nodes):
            assert flat.sets_containing(node).tolist() == reference.sets_containing(node)

    def test_coverage_views_match_reference(self, small_wc_graph):
        samples = drawn_samples(small_wc_graph, 150, seed=13)
        reference = RRCollection(small_wc_graph.num_nodes)
        reference.extend(samples)
        flat = FlatRRCollection(small_wc_graph.num_nodes)
        flat.extend(samples)
        assert np.array_equal(flat.coverage_counts(), reference.coverage_counts())
        assert np.array_equal(
            flat.coverage_counts(start=60), reference.coverage_counts(start=60)
        )
        seeds = [0, 5, 9, 9, 400, -3]
        assert flat.coverage_of(seeds) == reference.coverage_of([0, 5, 9])
        assert flat.coverage_of([]) == 0

    def test_out_of_range_node_is_empty(self):
        flat = FlatRRCollection(5)
        flat.add(make_sample([0, 4]))
        assert flat.sets_containing(7).size == 0
        assert flat.sets_containing(4).tolist() == [0]


class TestValidationAndProtocol:
    def test_invalid_num_nodes(self):
        with pytest.raises(ValueError):
            FlatRRCollection(0)

    def test_add_rejects_out_of_range_ids(self):
        flat = FlatRRCollection(3)
        with pytest.raises(ValueError, match=r"outside \[0, 3\)"):
            flat.add(make_sample([1, 3]))
        with pytest.raises(ValueError, match="outside"):
            flat.add(RRSample(nodes=np.asarray([-1], dtype=np.int32), root=0, edges_examined=0))

    def test_add_returns_index(self):
        flat = FlatRRCollection(3)
        assert flat.add(make_sample([0])) == 0
        assert flat.add(make_sample([1, 2])) == 1

    def test_get_bounds(self):
        flat = FlatRRCollection(3)
        flat.add(make_sample([0, 1]))
        assert flat.get(-1).tolist() == [0, 1]
        with pytest.raises(IndexError):
            flat.get(1)

    def test_iteration_and_len(self):
        flat = FlatRRCollection(5)
        flat.add(make_sample([0, 1]))
        flat.add(make_sample([2]))
        assert len(flat) == 2
        assert [s.tolist() for s in flat] == [[0, 1], [2]]

    def test_empty_set_supported(self):
        flat = FlatRRCollection(3)
        flat.add(RRSample(nodes=np.zeros(0, dtype=np.int32), root=0, edges_examined=0))
        flat.add(make_sample([1]))
        assert flat.get(0).size == 0
        assert flat.coverage_counts().tolist() == [0, 1, 0]

    def test_repr(self):
        flat = FlatRRCollection(3)
        flat.add(make_sample([0]))
        assert "num_sets=1" in repr(flat)

    def test_make_collection_factory(self):
        assert isinstance(make_collection(4, "flat"), FlatRRCollection)
        assert isinstance(make_collection(4, "reference"), RRCollection)
        with pytest.raises(ValueError, match="backend"):
            make_collection(4, "sparse")
