"""Unit tests for RR-set statistics and the Lemma 3 identity."""

import numpy as np
import pytest

from repro.diffusion import IndependentCascade, LinearThreshold
from repro.ris import (
    ICReverseBFSSampler,
    LTReverseWalkSampler,
    RRSetStatistics,
    collect_statistics,
    empirical_eps,
    empirical_ept,
    lemma3_check,
    make_sampler,
)


class TestBasicStatistics:
    def test_empirical_eps(self, small_wc_graph, rng):
        sampler = ICReverseBFSSampler(small_wc_graph)
        samples = sampler.sample_many(100, rng)
        assert empirical_eps(samples) == pytest.approx(
            np.mean([len(s) for s in samples])
        )

    def test_empirical_ept(self, small_wc_graph, rng):
        sampler = ICReverseBFSSampler(small_wc_graph)
        samples = sampler.sample_many(100, rng)
        assert empirical_ept(samples) == pytest.approx(
            np.mean([s.edges_examined for s in samples])
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_eps([])
        with pytest.raises(ValueError):
            empirical_ept([])

    def test_statistics_fields(self, small_wc_graph, rng):
        stats = collect_statistics(ICReverseBFSSampler(small_wc_graph), 50, rng)
        assert stats.num_sets == 50
        assert stats.total_size >= 50  # every RR set has at least the root
        assert stats.max_size >= stats.eps
        assert stats.ept >= 0

    def test_collect_requires_positive_count(self, small_wc_graph, rng):
        with pytest.raises(ValueError):
            collect_statistics(ICReverseBFSSampler(small_wc_graph), 0, rng)

    def test_from_samples_roundtrip(self, small_wc_graph, rng):
        sampler = ICReverseBFSSampler(small_wc_graph)
        samples = sampler.sample_many(40, rng)
        stats = RRSetStatistics.from_samples(samples)
        assert stats.total_size == sum(len(s) for s in samples)


class TestLemma3:
    """EPS equals the average singleton influence spread."""

    def test_ic_identity(self, paper_graph):
        rng = np.random.default_rng(0)
        eps_emp, avg_spread = lemma3_check(
            paper_graph,
            ICReverseBFSSampler(paper_graph),
            IndependentCascade(),
            num_rr_sets=40000,
            num_mc_samples=8000,
            rng=rng,
        )
        assert eps_emp == pytest.approx(avg_spread, rel=0.03)

    def test_lt_identity(self, paper_graph):
        rng = np.random.default_rng(1)
        eps_emp, avg_spread = lemma3_check(
            paper_graph,
            LTReverseWalkSampler(paper_graph),
            LinearThreshold(),
            num_rr_sets=40000,
            num_mc_samples=8000,
            rng=rng,
        )
        assert eps_emp == pytest.approx(avg_spread, rel=0.03)

    def test_ic_identity_random_graph(self, small_wc_graph):
        rng = np.random.default_rng(2)
        eps_emp, avg_spread = lemma3_check(
            small_wc_graph,
            make_sampler(small_wc_graph, "ic"),
            IndependentCascade(),
            num_rr_sets=20000,
            num_mc_samples=300,
            rng=rng,
        )
        assert eps_emp == pytest.approx(avg_spread, rel=0.1)
