"""Property-based tests (hypothesis) for the RIS layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import GraphBuilder, weighted_cascade
from repro.ris import ICReverseBFSSampler, LTReverseWalkSampler, RRCollection, SubsimSampler


@st.composite
def wc_graphs(draw):
    """A random weighted-cascade graph with at least one node."""
    num_nodes = draw(st.integers(min_value=1, max_value=15))
    num_edges = draw(st.integers(min_value=0, max_value=30))
    edges = [
        (draw(st.integers(0, num_nodes - 1)), draw(st.integers(0, num_nodes - 1)))
        for __ in range(num_edges)
    ]
    graph = GraphBuilder.from_edges(edges, num_nodes=num_nodes)
    return weighted_cascade(graph)


@settings(max_examples=50, deadline=None)
@given(graph=wc_graphs(), seed=st.integers(0, 2**16))
def test_rr_sets_contain_root_and_stay_in_range(graph, seed):
    rng = np.random.default_rng(seed)
    for sampler_cls in (ICReverseBFSSampler, SubsimSampler, LTReverseWalkSampler):
        sampler = sampler_cls(graph)
        for __ in range(5):
            sample = sampler.sample(rng)
            assert sample.root in sample
            assert sample.nodes.min() >= 0
            assert sample.nodes.max() < graph.num_nodes
            assert np.all(np.diff(sample.nodes) > 0)  # sorted unique


@settings(max_examples=50, deadline=None)
@given(graph=wc_graphs(), seed=st.integers(0, 2**16))
def test_rr_nodes_can_reach_root(graph, seed):
    """Every node in an RR set must reach the root in the full graph
    (live-edge subgraphs only remove edges)."""
    rng = np.random.default_rng(seed)
    sampler = ICReverseBFSSampler(graph)
    sample = sampler.sample(rng)

    # Reverse BFS over *all* edges gives the superset of any RR set.
    reachable = {sample.root}
    frontier = [sample.root]
    while frontier:
        node = frontier.pop()
        for pred in graph.in_neighbors(node):
            if int(pred) not in reachable:
                reachable.add(int(pred))
                frontier.append(int(pred))
    assert set(sample.nodes.tolist()) <= reachable


@settings(max_examples=50, deadline=None)
@given(graph=wc_graphs(), seed=st.integers(0, 2**16), parts=st.integers(1, 4))
def test_collection_counts_are_partition_invariant(graph, seed, parts):
    """Splitting samples across collections preserves aggregate counts."""
    rng = np.random.default_rng(seed)
    sampler = ICReverseBFSSampler(graph)
    samples = sampler.sample_many(20, rng)

    whole = RRCollection(graph.num_nodes)
    whole.extend(samples)
    pieces = [RRCollection(graph.num_nodes) for __ in range(parts)]
    for idx, sample in enumerate(samples):
        pieces[idx % parts].add(sample)

    combined = sum(
        (p.coverage_counts() for p in pieces),
        start=np.zeros(graph.num_nodes, dtype=np.int64),
    )
    assert np.array_equal(combined, whole.coverage_counts())
    assert sum(p.total_size for p in pieces) == whole.total_size


@settings(max_examples=40, deadline=None)
@given(graph=wc_graphs(), seed=st.integers(0, 2**16))
def test_inverted_index_matches_membership(graph, seed):
    rng = np.random.default_rng(seed)
    sampler = ICReverseBFSSampler(graph)
    collection = RRCollection(graph.num_nodes)
    collection.extend(sampler.sample_many(15, rng))
    for node in range(graph.num_nodes):
        via_index = set(collection.sets_containing(node))
        via_scan = {
            idx for idx in range(collection.num_sets)
            if node in collection.get(idx)
        }
        assert via_index == via_scan
