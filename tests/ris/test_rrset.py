"""Unit tests for the RRSample container and sampler factory."""

import numpy as np
import pytest

from repro.ris import (
    ICReverseBFSSampler,
    LTReverseWalkSampler,
    SubsimSampler,
    make_sampler,
)
from repro.ris.rrset import RRSample


class TestRRSample:
    def test_len_and_contains(self):
        sample = RRSample(nodes=np.array([1, 4, 7]), root=4, edges_examined=5)
        assert len(sample) == 3
        assert 4 in sample
        assert 2 not in sample
        assert 8 not in sample

    def test_contains_boundary(self):
        sample = RRSample(nodes=np.array([0, 9]), root=0, edges_examined=0)
        assert 9 in sample
        assert 10 not in sample


class TestFactory:
    def test_ic_bfs(self, small_wc_graph):
        assert isinstance(make_sampler(small_wc_graph, "ic", "bfs"), ICReverseBFSSampler)

    def test_ic_subsim(self, small_wc_graph):
        assert isinstance(make_sampler(small_wc_graph, "ic", "subsim"), SubsimSampler)

    def test_lt(self, small_wc_graph):
        assert isinstance(make_sampler(small_wc_graph, "lt"), LTReverseWalkSampler)

    def test_lt_subsim_rejected(self, small_wc_graph):
        with pytest.raises(ValueError, match="IC model only"):
            make_sampler(small_wc_graph, "lt", "subsim")

    def test_unknown_model(self, small_wc_graph):
        with pytest.raises(ValueError, match="unknown diffusion model"):
            make_sampler(small_wc_graph, "sir")

    def test_unknown_method(self, small_wc_graph):
        with pytest.raises(ValueError, match="unknown sampling method"):
            make_sampler(small_wc_graph, "ic", "quantum")

    def test_case_insensitive(self, small_wc_graph):
        assert isinstance(make_sampler(small_wc_graph, "IC", "SUBSIM"), SubsimSampler)
