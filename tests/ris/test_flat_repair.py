"""FlatRRCollection repair surface: affected_sets / replace_sets /
invalidate / compact byte accounting."""

import numpy as np
import pytest

from repro.ris import make_sampler
from repro.ris.flat import FlatRRCollection, append_batch, gather_rows
from repro.ris.rrset import FlatBatch, concat_batches, sample_set_range


@pytest.fixture
def store(small_wc_graph):
    sampler = make_sampler(small_wc_graph, model="ic", method="bfs")
    store = FlatRRCollection(small_wc_graph.num_nodes)
    append_batch(store, sample_set_range(sampler, seed=3, machine_id=0, start=0, count=40))
    return store


def snapshot(store):
    return (
        store.nodes.copy(),
        store.offsets.copy(),
        int(store.total_edges_examined),
    )


def make_batch(sets, edges=None):
    """Build a FlatBatch from explicit per-set node lists."""
    nodes = np.concatenate([np.asarray(s, dtype=np.int32) for s in sets]) if any(
        len(s) for s in sets
    ) else np.zeros(0, dtype=np.int32)
    offsets = np.zeros(len(sets) + 1, dtype=np.int64)
    np.cumsum([len(s) for s in sets], out=offsets[1:])
    roots = np.array([s[0] if len(s) else -1 for s in sets], dtype=np.int64)
    if edges is None:
        edges = [len(s) for s in sets]
    return FlatBatch(nodes, offsets, roots, np.asarray(edges, dtype=np.int64))


class TestAffectedSets:
    def test_none_means_every_set(self, store):
        assert np.array_equal(
            store.affected_sets(None), np.arange(store.num_sets, dtype=np.int64)
        )

    def test_matches_membership_scan(self, store):
        touched = np.array([1, 7, 13], dtype=np.int64)
        expected = sorted(
            i
            for i in range(store.num_sets)
            if np.intersect1d(store.get(i), touched).size
        )
        assert store.affected_sets(touched).tolist() == expected

    def test_out_of_range_touched_ignored(self, store):
        inside = store.affected_sets(np.array([2], dtype=np.int64))
        padded = store.affected_sets(
            np.array([-5, 2, store.num_nodes + 10], dtype=np.int64)
        )
        assert np.array_equal(inside, padded)


class TestReplaceSets:
    def test_rewrites_only_named_ids(self, store):
        nodes_before, offsets_before, _ = snapshot(store)
        ids = np.array([3, 11, 12], dtype=np.int64)
        batch = make_batch([[5, 6, 7], [0], [1, 2]])
        store.replace_sets(ids, batch)
        assert store.num_sets == offsets_before.size - 1
        assert store.get(3).tolist() == [5, 6, 7]
        assert store.get(11).tolist() == [0]
        assert store.get(12).tolist() == [1, 2]
        untouched = np.setdiff1d(np.arange(store.num_sets), ids)
        old_rows = gather_rows(nodes_before, offsets_before, untouched)
        new_rows = gather_rows(store.nodes, store.offsets, untouched)
        assert np.array_equal(old_rows, new_rows)

    def test_updates_edge_accounting(self, store):
        before = store.total_edges_examined
        ids = np.array([0], dtype=np.int64)
        old = int(store.edges_examined_upto(1))
        store.replace_sets(ids, make_batch([[4]], edges=[99]))
        assert store.total_edges_examined == before - old + 99

    def test_refreshes_inverted_index(self, store):
        probe = int(store.get(5)[0])
        store.replace_sets(np.array([5], dtype=np.int64), make_batch([[probe + 1]]))
        assert 5 not in store.sets_containing(probe).tolist() or probe in store.get(5)
        assert 5 in store.sets_containing(probe + 1).tolist()

    def test_rejects_non_ascending_ids(self, store):
        with pytest.raises(ValueError, match="ascending"):
            store.replace_sets(
                np.array([4, 2], dtype=np.int64), make_batch([[1], [2]])
            )

    def test_rejects_count_mismatch(self, store):
        with pytest.raises(ValueError, match="batch has"):
            store.replace_sets(np.array([0, 1], dtype=np.int64), make_batch([[1]]))

    def test_rejects_out_of_range_ids(self, store):
        with pytest.raises(IndexError):
            store.replace_sets(
                np.array([store.num_sets], dtype=np.int64), make_batch([[1]])
            )

    def test_empty_ids_noop(self, store):
        before = snapshot(store)
        store.replace_sets(np.zeros(0, dtype=np.int64), make_batch([]))
        after = snapshot(store)
        assert np.array_equal(before[0], after[0])
        assert np.array_equal(before[1], after[1])

    def test_repair_equals_per_set_regeneration(self, small_wc_graph, store):
        # Replacing ids with their own per-set streams is a no-op on bytes:
        # the defining property behind differential repair testing.
        sampler = make_sampler(small_wc_graph, model="ic", method="bfs")
        nodes_before, offsets_before, _ = snapshot(store)
        ids = np.arange(10, 20, dtype=np.int64)
        store.replace_sets(
            ids, sample_set_range(sampler, seed=3, machine_id=0, start=10, count=10)
        )
        assert np.array_equal(store.nodes, nodes_before)
        assert np.array_equal(store.offsets, offsets_before)


class TestInvalidateAndCompact:
    def test_invalidate_tombstones(self, store):
        newly = store.invalidate([4, 9, 4])
        assert newly == 2
        assert store.num_tombstones == 2
        assert store.num_live_sets == store.num_sets - 2
        assert store.get(4).size == 0
        assert store.edges_examined_upto(5) == store.edges_examined_upto(4)

    def test_invalidate_already_tombstoned_counts_zero(self, store):
        store.invalidate([4])
        assert store.invalidate([4]) == 0
        assert store.num_tombstones == 1

    def test_compact_drops_tombstones(self, store):
        total = store.num_sets
        live_ids = [i for i in range(total) if i not in (0, 7, 19)]
        live_rows = [store.get(i).copy() for i in live_ids]
        store.invalidate([0, 7, 19])
        bytes_before = store.nbytes()
        mapping = store.compact()
        assert store.num_sets == total - 3
        assert store.num_tombstones == 0
        assert store.nbytes() <= bytes_before
        assert int(store.offsets[-1]) == store.nodes.size
        # Old -> new mapping: -1 for dropped, dense ascending for kept.
        assert mapping.size == total
        assert all(mapping[i] == -1 for i in (0, 7, 19))
        kept = mapping[mapping >= 0]
        assert np.array_equal(kept, np.arange(total - 3))
        for old_id, row in zip(live_ids, live_rows):
            assert np.array_equal(store.get(int(mapping[old_id])), row)

    def test_compact_without_tombstones_is_identity(self, store):
        nodes_before, offsets_before, _ = snapshot(store)
        mapping = store.compact()
        assert np.array_equal(mapping, np.arange(store.num_sets))
        assert np.array_equal(store.nodes, nodes_before)
        assert np.array_equal(store.offsets, offsets_before)

    def test_views_refresh_after_repair(self, store):
        # Prefix views must be rebuilt after in-place mutation; a fresh
        # view over the repaired store sees the new contents.
        from repro.ris.flat import FlatPrefixView

        store.replace_sets(np.array([2], dtype=np.int64), make_batch([[8, 9]]))
        view = FlatPrefixView(store, limit=5)
        assert view.get(2).tolist() == [8, 9]
        assert 2 in view.sets_containing(8).tolist()


class TestConcatBatches:
    def test_rebases_offsets(self):
        a = make_batch([[1, 2], [3]])
        b = make_batch([[4], [5, 6, 7]])
        merged = concat_batches([a, b])
        assert merged.count == 4
        assert merged.offsets.tolist() == [0, 2, 3, 4, 7]
        assert merged.nodes.tolist() == [1, 2, 3, 4, 5, 6, 7]

    def test_empty(self):
        merged = concat_batches([])
        assert merged.count == 0
        assert merged.offsets.tolist() == [0]
