"""Regression tests for the dtype-capacity guards.

Node ids travel as ``int32`` through the flat CSR layout (store, wire,
samplers); marginal counts travel as ``int64``.  These tests pin the two
guards that keep those widths from wrapping silently once the vectorized
generators push collections toward the boundaries:

* :class:`~repro.ris.flat.FlatRRCollection` rejects graphs whose node
  ids cannot fit ``int32`` *before* allocating anything;
* the coverage kernel rejects non-``int64`` counts buffers, whose
  in-place decrements would otherwise overflow without a warning.

The near-boundary cases monkeypatch :data:`repro.ris.flat.MAX_NODES`
down so a collection can actually be constructed on either side of the
limit without multi-gigabyte allocations.
"""

import numpy as np
import pytest

from repro.coverage.kernel import apply_sparse_delta, mark_and_decrement
from repro.ris import FlatRRCollection, make_sampler
from repro.ris import flat as flat_module
from repro.ris.flat import MAX_NODES


class TestNodeIdCapacity:
    def test_limit_is_int32_id_width(self):
        # Ids lie in [0, num_nodes), so num_nodes == 2**31 is the last
        # size whose largest id (2**31 - 1) still fits int32.
        assert MAX_NODES == 2**31
        assert np.iinfo(np.int32).max == MAX_NODES - 1

    def test_over_limit_raises_before_allocating(self):
        # 2**40 nodes would need ~8 TiB of inverted-index offsets alone;
        # the guard must fire fast, not after an allocation attempt.
        with pytest.raises(ValueError, match="int32"):
            FlatRRCollection(2**40)
        with pytest.raises(ValueError, match="int32"):
            FlatRRCollection(MAX_NODES + 1)

    def test_near_boundary_collection(self, monkeypatch):
        monkeypatch.setattr(flat_module, "MAX_NODES", 1000)
        with pytest.raises(ValueError, match="int32"):
            FlatRRCollection(1001)
        # Exactly at the patched limit: fully usable on both sides of
        # the id range, including the largest representable id.
        store = FlatRRCollection(1000)
        store.append_arrays(
            np.asarray([0, 999, 500, 999], dtype=np.int64),
            np.asarray([0, 2, 4], dtype=np.int64),
            edges_examined=7,
        )
        assert store.num_sets == 2
        assert store.nodes.dtype == np.int32
        np.testing.assert_array_equal(store.get(0), [0, 999])
        np.testing.assert_array_equal(store.sets_containing(999), [0, 1])

    def test_out_of_range_ids_still_rejected(self):
        store = FlatRRCollection(10)
        with pytest.raises(ValueError, match="outside"):
            store.append_arrays(
                np.asarray([3, 10], dtype=np.int64),
                np.asarray([0, 2], dtype=np.int64),
            )


class TestCountsDtypeGuard:
    @pytest.fixture
    def store(self, small_wc_graph):
        store = FlatRRCollection(small_wc_graph.num_nodes)
        sampler = make_sampler(small_wc_graph, model="ic", method="vectorized")
        from repro.ris import append_batch

        append_batch(store, sampler.sample_batch(np.random.default_rng(0), 200))
        return store

    def test_mark_and_decrement_rejects_int32_counts(self, store):
        covered = np.zeros(store.num_sets, dtype=bool)
        counts = store.coverage_counts().astype(np.int32)
        with pytest.raises(TypeError, match="int64"):
            mark_and_decrement(store, 0, covered, counts)
        # The guard fires before any mutation.
        assert not covered.any()

    def test_mark_and_decrement_accepts_int64(self, store):
        covered = np.zeros(store.num_sets, dtype=bool)
        counts = store.coverage_counts()
        assert counts.dtype == np.int64
        gained = mark_and_decrement(store, 0, covered, counts)
        assert gained == covered.sum()

    def test_apply_sparse_delta_rejects_int32_counts(self):
        counts = np.zeros(5, dtype=np.int32)
        with pytest.raises(TypeError, match="int64"):
            apply_sparse_delta(
                counts, np.asarray([1, 2]), np.asarray([3, 4], dtype=np.int64)
            )

    def test_apply_sparse_delta_accepts_int64(self):
        counts = np.zeros(5, dtype=np.int64)
        apply_sparse_delta(counts, np.asarray([1, 2]), np.asarray([3, 4], dtype=np.int64))
        assert counts.tolist() == [0, 3, 4, 0, 0]
