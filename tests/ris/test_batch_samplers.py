"""Differential tests for the batched flat samplers.

Pins the central contract of the batch-generation path: for every
sampler, ``sample_batch(rng, count)`` is *bit-identical* to
``pack_samples(sample_many(count, rng))`` under the same RNG stream —
same nodes, same offsets, same roots, same per-set work counts, and the
generator ends in the same state.  The optimized batch implementations
may reorganize bookkeeping but must never touch the RNG differently.
"""

import numpy as np
import pytest

from repro.diffusion import ICTriggering, LTTriggering
from repro.ris import (
    FlatRRCollection,
    TriggeringRRSampler,
    append_batch,
    make_collection,
    make_sampler,
)
from repro.ris.rrset import pack_samples
from repro.ris.stats import RRSetStatistics

SAMPLER_SPECS = [
    ("ic", "bfs"),
    ("ic", "subsim"),
    ("lt", "bfs"),
    ("triggering-ic", None),
    ("triggering-lt", None),
]
SPEC_IDS = [spec[0] if spec[1] in (None, "bfs") else "ic-subsim" for spec in SAMPLER_SPECS]

# Samplers that share a _visited scratch array across draws (the LT walk
# needs none: a reverse walk tracks its own path).
SCRATCH_SPECS = [spec for spec in SAMPLER_SPECS if spec != ("lt", "bfs")]
SCRATCH_IDS = [i for spec, i in zip(SAMPLER_SPECS, SPEC_IDS) if spec != ("lt", "bfs")]


def build(spec, graph):
    model, method = spec
    if model == "triggering-ic":
        return TriggeringRRSampler(graph, ICTriggering())
    if model == "triggering-lt":
        return TriggeringRRSampler(graph, LTTriggering())
    return make_sampler(graph, model=model, method=method)


def assert_batches_equal(batch, reference):
    np.testing.assert_array_equal(batch.nodes, reference.nodes)
    np.testing.assert_array_equal(batch.offsets, reference.offsets)
    np.testing.assert_array_equal(batch.roots, reference.roots)
    np.testing.assert_array_equal(batch.edges_examined, reference.edges_examined)
    assert batch.nodes.dtype == np.int32
    assert batch.offsets.dtype == np.int64


class TestBitIdentity:
    @pytest.mark.parametrize("spec", SAMPLER_SPECS, ids=SPEC_IDS)
    @pytest.mark.parametrize("seed", [0, 1, 2022])
    def test_batch_equals_per_set_reference(self, small_wc_graph, spec, seed):
        sampler = build(spec, small_wc_graph)
        rng_batch = np.random.default_rng(seed)
        rng_ref = np.random.default_rng(seed)

        batch = sampler.sample_batch(rng_batch, 150)
        reference = pack_samples(sampler.sample_many(150, rng_ref))

        assert_batches_equal(batch, reference)
        # Not just the same draws: the same *number* of draws, so a
        # batch-generated stream can be continued per-set and vice versa.
        assert rng_batch.bit_generator.state == rng_ref.bit_generator.state

    @pytest.mark.parametrize("spec", SAMPLER_SPECS, ids=SPEC_IDS)
    def test_streams_interleave(self, small_wc_graph, spec):
        """batch(30)+batch(20) == per-set(50): no per-call RNG setup."""
        sampler = build(spec, small_wc_graph)
        rng_batch = np.random.default_rng(7)
        rng_ref = np.random.default_rng(7)

        first = sampler.sample_batch(rng_batch, 30)
        second = sampler.sample_batch(rng_batch, 20)
        reference = pack_samples(sampler.sample_many(50, rng_ref))

        stitched_nodes = np.concatenate([first.nodes, second.nodes])
        np.testing.assert_array_equal(stitched_nodes, reference.nodes)
        np.testing.assert_array_equal(
            np.concatenate([first.roots, second.roots]), reference.roots
        )
        assert rng_batch.bit_generator.state == rng_ref.bit_generator.state

    @pytest.mark.parametrize("spec", SAMPLER_SPECS, ids=SPEC_IDS)
    def test_empty_batch(self, small_wc_graph, spec):
        sampler = build(spec, small_wc_graph)
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        batch = sampler.sample_batch(rng, 0)
        assert batch.count == 0
        assert batch.nodes.size == 0
        assert batch.offsets.tolist() == [0]
        assert batch.roots.size == 0 and batch.edges_examined.size == 0
        assert rng.bit_generator.state == before

    @pytest.mark.parametrize("spec", SAMPLER_SPECS, ids=SPEC_IDS)
    def test_negative_count_rejected(self, small_wc_graph, spec):
        sampler = build(spec, small_wc_graph)
        with pytest.raises(ValueError, match=">= 0"):
            sampler.sample_batch(np.random.default_rng(0), -1)

    @pytest.mark.parametrize("spec", SAMPLER_SPECS, ids=SPEC_IDS)
    def test_sets_are_sorted_unique_and_contain_root(self, small_wc_graph, spec):
        sampler = build(spec, small_wc_graph)
        batch = sampler.sample_batch(np.random.default_rng(3), 80)
        for i in range(batch.count):
            nodes = batch.nodes[batch.offsets[i] : batch.offsets[i + 1]]
            assert nodes.size > 0
            assert (np.diff(nodes) > 0).all()  # strictly increasing
            assert batch.roots[i] in nodes


class TestCollectionIntegration:
    def test_append_batch_equals_extend(self, small_wc_graph):
        sampler = make_sampler(small_wc_graph, model="ic", method="bfs")
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)

        via_batch = FlatRRCollection(small_wc_graph.num_nodes)
        append_batch(via_batch, sampler.sample_batch(rng_a, 60))
        via_extend = FlatRRCollection(small_wc_graph.num_nodes)
        via_extend.extend(sampler.sample_many(60, rng_b))

        assert via_batch.num_sets == via_extend.num_sets == 60
        assert via_batch.total_edges_examined == via_extend.total_edges_examined
        for i in range(60):
            np.testing.assert_array_equal(via_batch.get(i), via_extend.get(i))

    def test_append_batch_into_reference_collection(self, small_wc_graph):
        sampler = make_sampler(small_wc_graph, model="lt")
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)

        reference = make_collection(small_wc_graph.num_nodes, "reference")
        append_batch(reference, sampler.sample_batch(rng_a, 40))
        flat = make_collection(small_wc_graph.num_nodes, "flat")
        append_batch(flat, sampler.sample_batch(rng_b, 40))

        assert reference.num_sets == flat.num_sets == 40
        assert reference.total_edges_examined == flat.total_edges_examined
        for i in range(40):
            np.testing.assert_array_equal(reference.get(i), flat.get(i))

    def test_statistics_from_batch(self, small_wc_graph):
        sampler = make_sampler(small_wc_graph, model="ic")
        rng_a = np.random.default_rng(13)
        rng_b = np.random.default_rng(13)

        from_batch = RRSetStatistics.from_batch(sampler.sample_batch(rng_a, 100))
        from_samples = RRSetStatistics.from_samples(sampler.sample_many(100, rng_b))
        assert from_batch == from_samples


class _FlakyRNG:
    """Proxy that raises after a set number of RNG calls, mid-BFS."""

    def __init__(self, inner, fail_after):
        self._inner = inner
        self._calls = 0
        self._fail_after = fail_after

    def __getattr__(self, name):
        target = getattr(self._inner, name)
        if not callable(target):
            return target

        def wrapped(*args, **kwargs):
            self._calls += 1
            if self._calls > self._fail_after:
                raise RuntimeError("injected RNG failure")
            return target(*args, **kwargs)

        return wrapped


class TestScratchStateLeak:
    """A draw that dies mid-BFS must not poison the next draw.

    The samplers share one ``_visited`` scratch array across draws and
    normally reset only the touched entries; after an exception the
    touched set is unknown, so the next draw must fall back to a full
    reset (the ``_scratch_dirty`` flag).
    """

    @pytest.mark.parametrize("spec", SCRATCH_SPECS, ids=SCRATCH_IDS)
    @pytest.mark.parametrize("api", ["sample", "sample_batch"])
    def test_draws_after_midway_failure_are_clean(self, small_wc_graph, spec, api):
        sampler = build(spec, small_wc_graph)
        # Warm up, then kill a draw partway through its RNG usage.
        sampler.sample_many(5, np.random.default_rng(1))
        for fail_after in (1, 2, 3):
            flaky = _FlakyRNG(np.random.default_rng(2), fail_after)
            try:
                if api == "sample":
                    sampler.sample(flaky)
                else:
                    sampler.sample_batch(flaky, 10)
            except RuntimeError:
                pass
            else:
                continue  # draw finished before the injected failure
            # Every subsequent draw must match a pristine sampler's.
            fresh = build(spec, small_wc_graph)
            rng_dirty = np.random.default_rng(40 + fail_after)
            rng_fresh = np.random.default_rng(40 + fail_after)
            assert_batches_equal(
                sampler.sample_batch(rng_dirty, 25),
                fresh.sample_batch(rng_fresh, 25),
            )
            assert rng_dirty.bit_generator.state == rng_fresh.bit_generator.state

    def test_scratch_clean_after_successful_draws(self, small_wc_graph):
        for spec in SCRATCH_SPECS:
            sampler = build(spec, small_wc_graph)
            sampler.sample_batch(np.random.default_rng(0), 20)
            assert not sampler._visited.any()
