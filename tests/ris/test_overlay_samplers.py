"""Overlay traversal == compacted-graph traversal, bit for bit.

The repair contract rests on one equivalence: a sampler walking a
VersionedGraph (base CSR + overlay rows) must produce *exactly* the RR
set that the same per-set stream produces on the compacted graph.  The
compaction order invariant (effective in-rows keep per-target order)
makes this exact, not just statistical.
"""

import numpy as np
import pytest

from repro.graphs import DirectedGraph, GraphDelta, VersionedGraph
from repro.ris import make_sampler
from repro.ris.rrset import sample_set_range


def versioned_with_delta(graph, rng, lt_safe=False):
    wrapped = VersionedGraph(DirectedGraph(graph.num_nodes, *graph.edge_arrays()))
    triples = list(graph.edges())
    picks = rng.choice(len(triples), size=8, replace=False)
    # LT needs per-node in-probability sums <= 1 (weighted cascade sits at
    # exactly 1), so its delta may only remove edges or reweight downward.
    delta = GraphDelta(
        add_edges=[]
        if lt_safe
        else [
            (int(rng.integers(graph.num_nodes)), int(rng.integers(graph.num_nodes)), 0.3)
            for _ in range(4)
        ],
        remove_edges=[(u, v) for u, v, _ in (triples[int(i)] for i in picks[:4])],
        reweight_edges=[
            (u, v, p * 0.5 if lt_safe else 0.8)
            for u, v, p in (triples[int(i)] for i in picks[4:])
        ],
    )
    wrapped.apply(delta)
    return wrapped


def batches_equal(a, b):
    return (
        np.array_equal(a.nodes, b.nodes)
        and np.array_equal(a.offsets, b.offsets)
        and np.array_equal(a.roots, b.roots)
        and np.array_equal(a.edges_examined, b.edges_examined)
    )


@pytest.mark.parametrize(
    "model,method",
    [("ic", "bfs"), ("ic", "subsim"), ("lt", "bfs")],
)
def test_overlay_matches_compacted(small_wc_graph, rng, model, method):
    graph = versioned_with_delta(small_wc_graph, rng, lt_safe=model == "lt")
    compacted = graph.compact()
    overlay_sampler = make_sampler(graph, model=model, method=method)
    compact_sampler = make_sampler(compacted, model=model, method=method)
    for machine_id in (0, 2):
        a = sample_set_range(overlay_sampler, seed=11, machine_id=machine_id, start=0, count=60)
        b = sample_set_range(compact_sampler, seed=11, machine_id=machine_id, start=0, count=60)
        assert batches_equal(a, b)


@pytest.mark.parametrize("model,method", [("ic", "bfs"), ("lt", "bfs")])
def test_clean_wrapper_matches_plain_graph(small_wc_graph, model, method):
    # An overlay-free VersionedGraph is transparent: same bytes as the base.
    graph = VersionedGraph(
        DirectedGraph(small_wc_graph.num_nodes, *small_wc_graph.edge_arrays())
    )
    a = sample_set_range(
        make_sampler(graph, model=model, method=method), seed=5, machine_id=0, start=0, count=40
    )
    b = sample_set_range(
        make_sampler(small_wc_graph, model=model, method=method),
        seed=5,
        machine_id=0,
        start=0,
        count=40,
    )
    assert batches_equal(a, b)


def test_removed_node_never_sampled(small_wc_graph, rng):
    graph = VersionedGraph(
        DirectedGraph(small_wc_graph.num_nodes, *small_wc_graph.edge_arrays())
    )
    victim = int(max(range(graph.num_nodes), key=graph.out_degree))
    graph.apply(GraphDelta(remove_nodes=[victim]))
    sampler = make_sampler(graph, model="ic", method="bfs")
    batch = sample_set_range(sampler, seed=1, machine_id=0, start=0, count=120)
    # The victim may still be a root (node ids are kept) but can never be
    # *reached* through an edge: any appearance is as a singleton root.
    for i in range(batch.count):
        row = batch.nodes[batch.offsets[i] : batch.offsets[i + 1]]
        if victim in row:
            assert int(batch.roots[i]) == victim and row.size == 1


def test_vectorized_refuses_overlay(small_wc_graph):
    graph = VersionedGraph(
        DirectedGraph(small_wc_graph.num_nodes, *small_wc_graph.edge_arrays())
    )
    with pytest.raises(ValueError, match="compact"):
        make_sampler(graph, model="ic", method="vectorized")
