"""Zero-copy data plane: shared graph, persistent pool, shm reclamation.

Three properties pinned here:

* **Bit-identity** — the {copy, zero-copy} x {fork, spawn} matrix of pool
  configurations produces collections and RNG states identical to the
  simulated backend (and hence to each other).
* **Persistence** — the executor's pool (and the workers inside it) live
  across phases; only a phase deadline or :meth:`close` recycles them.
* **Reclamation** — the shared-memory block never outlives the run: it
  is gone from ``/dev/shm`` after a normal close, after a ``kill -9``'d
  worker, after an aborted run, and after checkpoint/resume.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle

import numpy as np
import pytest

from repro.api import run
from repro.cluster import SimulatedCluster
from repro.cluster.executor import (
    GeneratePhase,
    MultiprocessingExecutor,
    SimulatedExecutor,
)
from repro.cluster.faults import CRASH_HARD, FaultToleranceExceeded, RetryPolicy
from repro.cluster.parallel import START_METHOD_ENV, GenerationPool
from repro.core.config import RunConfig
from repro.graphs.digraph import DirectedGraph, _CSR_FIELDS
from repro.ris import make_sampler


def shm_segments() -> set:
    """Names of live POSIX shared-memory segments created by Python."""
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
    except FileNotFoundError:  # non-Linux: fall back to "nothing visible"
        return set()


def snapshot(executor):
    return (
        [
            [m.collection.get(j).tolist() for j in range(m.collection.num_sets)]
            for m in executor.machines
        ],
        [m.rng.bit_generator.state for m in executor.machines],
    )


def build_executor(name, graph, num_machines=3, seed=5, **kwargs):
    cluster = SimulatedCluster(num_machines, seed=seed)
    cluster.init_collections(graph.num_nodes, backend="flat")
    if name == "simulated":
        return SimulatedExecutor(cluster, graph=graph)
    return MultiprocessingExecutor(cluster, graph=graph, **kwargs)


# ----------------------------------------------------------------------
# Shared-memory graph export / attach
# ----------------------------------------------------------------------
class TestSharedGraph:
    def test_round_trip_is_bit_identical(self, small_wc_graph):
        with small_wc_graph.to_shared() as handle:
            attached = DirectedGraph.from_shared(handle.spec)
            assert attached.num_nodes == small_wc_graph.num_nodes
            assert attached.num_edges == small_wc_graph.num_edges
            for field in _CSR_FIELDS:
                np.testing.assert_array_equal(
                    getattr(attached, field), getattr(small_wc_graph, field)
                )

    def test_attached_views_are_read_only(self, small_wc_graph):
        with small_wc_graph.to_shared() as handle:
            attached = DirectedGraph.from_shared(handle.spec)
            for field in _CSR_FIELDS:
                with pytest.raises(ValueError, match="read-only"):
                    getattr(attached, field)[0] = 1

    def test_spec_travels_by_pickle(self, small_wc_graph):
        with small_wc_graph.to_shared() as handle:
            spec = pickle.loads(pickle.dumps(handle.spec))
            attached = DirectedGraph.from_shared(spec)
            np.testing.assert_array_equal(attached.in_indptr, small_wc_graph.in_indptr)

    def test_sampler_on_attached_graph_draws_identically(self, small_wc_graph):
        with small_wc_graph.to_shared() as handle:
            attached = DirectedGraph.from_shared(handle.spec)
            original = make_sampler(small_wc_graph, "ic").sample_batch(
                np.random.default_rng(3), 40
            )
            mirrored = make_sampler(attached, "ic").sample_batch(
                np.random.default_rng(3), 40
            )
        np.testing.assert_array_equal(original.nodes, mirrored.nodes)
        np.testing.assert_array_equal(original.offsets, mirrored.offsets)
        np.testing.assert_array_equal(
            original.edges_examined, mirrored.edges_examined
        )

    def test_unlink_is_idempotent_and_reclaims_the_segment(self, small_wc_graph):
        before = shm_segments()
        handle = small_wc_graph.to_shared()
        assert handle.name in shm_segments() - before
        handle.unlink()
        handle.unlink()  # second call must be a no-op
        assert shm_segments() <= before


# ----------------------------------------------------------------------
# Bit-identity across the broadcast/start-method matrix
# ----------------------------------------------------------------------
class TestPoolConformance:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    @pytest.mark.parametrize("zero_copy", [True, False])
    def test_matches_simulated_backend(self, small_wc_graph, zero_copy, start_method):
        if start_method not in mp.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable")
        reference = build_executor("simulated", small_wc_graph)
        reference.run_phase(GeneratePhase("t/gen", counts=(15, 10, 5)))

        executor = build_executor(
            "multiprocessing",
            small_wc_graph,
            start_method=start_method,
            zero_copy=zero_copy,
        )
        try:
            executor.run_phase(GeneratePhase("t/gen", counts=(15, 10, 5)))
            assert executor.pool.zero_copy == zero_copy
            assert executor.pool.start_method == start_method
            assert snapshot(executor) == snapshot(reference)
        finally:
            executor.close()

    @pytest.mark.parametrize("zero_copy", [True, False])
    def test_fault_directives_in_both_broadcast_modes(self, small_wc_graph, zero_copy):
        from repro.cluster.faults import CORRUPT, CRASH

        with GenerationPool(small_wc_graph, processes=1, zero_copy=zero_copy) as pool:
            outcomes = pool.run(
                "ic",
                "bfs",
                [5, 5, 5],
                [np.random.default_rng(s) for s in (1, 2, 3)],
                directives=[None, CRASH, CORRUPT],
            )
        assert outcomes[0].error is None and outcomes[0].batch.count == 5
        assert outcomes[1].error.startswith("crash:")
        assert outcomes[2].error.startswith("corruption:")
        assert outcomes[2].nbytes > 0  # the corrupted payload did arrive

    def test_env_var_selects_start_method(self, small_wc_graph, monkeypatch):
        monkeypatch.setenv(START_METHOD_ENV, "spawn")
        pool = GenerationPool(small_wc_graph)
        assert pool.start_method == "spawn"

    def test_explicit_method_beats_env_var(self, small_wc_graph, monkeypatch):
        monkeypatch.setenv(START_METHOD_ENV, "spawn")
        pool = GenerationPool(small_wc_graph, start_method="fork")
        assert pool.start_method == "fork"

    def test_unknown_start_method_rejected(self, small_wc_graph):
        with pytest.raises(ValueError, match="unavailable"):
            GenerationPool(small_wc_graph, start_method="teleport")


# ----------------------------------------------------------------------
# Pool persistence and recycling
# ----------------------------------------------------------------------
class TestPersistentPool:
    def test_workers_survive_across_phases(self, small_wc_graph):
        with GenerationPool(small_wc_graph, processes=1) as pool:
            first = pool.run("ic", "bfs", [5], [np.random.default_rng(0)])
            inner = pool._pool
            assert inner is not None
            second = pool.run("lt", "bfs", [5], [np.random.default_rng(1)])
            # Same mp.Pool object: no re-fork, no re-broadcast.
            assert pool._pool is inner
        assert first[0].error is None and second[0].error is None

    def test_executor_owns_one_pool_for_the_run(self, small_wc_graph):
        executor = build_executor("multiprocessing", small_wc_graph)
        try:
            executor.run_phase(GeneratePhase("t/one", counts=(5, 5, 5)))
            pool = executor.pool
            inner = pool._pool
            executor.run_phase(GeneratePhase("t/two", counts=(5, 5, 5)))
            assert executor.pool is pool and pool._pool is inner
        finally:
            executor.close()

    def test_timeout_recycles_the_pool_then_recovers(self, small_wc_graph):
        with GenerationPool(small_wc_graph, processes=1) as pool:
            outcomes = pool.run(
                "ic",
                "bfs",
                [5],
                [np.random.default_rng(0)],
                directives=[CRASH_HARD],
                timeout=5.0,
            )
            assert outcomes[0].error.startswith("timeout")
            assert pool._pool is None  # the dead worker's pool was discarded
            retry = pool.run("ic", "bfs", [5], [np.random.default_rng(0)])
            assert retry[0].error is None and retry[0].batch.count == 5

    def test_closed_pool_rejects_further_phases(self, small_wc_graph):
        pool = GenerationPool(small_wc_graph)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.run("ic", "bfs", [1], [np.random.default_rng(0)])


# ----------------------------------------------------------------------
# Copy-based fallback
# ----------------------------------------------------------------------
class TestFallback:
    def test_degrades_to_copy_when_shared_memory_fails(
        self, small_wc_graph, monkeypatch
    ):
        def broken(self):
            raise OSError("no shared memory here")

        monkeypatch.setattr(DirectedGraph, "to_shared", broken)
        with GenerationPool(small_wc_graph) as pool:
            assert pool.zero_copy  # optimistic until the first export
            outcomes = pool.run(
                "ic", "bfs", [8, 8, 8], [np.random.default_rng(s) for s in (1, 2, 3)]
            )
            assert not pool.zero_copy
            assert all(o.error is None for o in outcomes)
        # Copies or views, the draws are the same bits.
        expected = make_sampler(small_wc_graph, "ic").sample_batch(
            np.random.default_rng(1), 8
        )
        np.testing.assert_array_equal(outcomes[0].batch.nodes, expected.nodes)

    def test_required_zero_copy_raises_instead_of_degrading(
        self, small_wc_graph, monkeypatch
    ):
        def broken(self):
            raise OSError("no shared memory here")

        monkeypatch.setattr(DirectedGraph, "to_shared", broken)
        with GenerationPool(small_wc_graph, zero_copy=True) as pool:
            with pytest.raises(OSError, match="no shared memory"):
                pool.run("ic", "bfs", [1], [np.random.default_rng(0)])


# ----------------------------------------------------------------------
# Shared-memory reclamation on every exit path
# ----------------------------------------------------------------------
class TestShmReclamation:
    def test_normal_close_reclaims(self, small_wc_graph):
        before = shm_segments()
        executor = build_executor("multiprocessing", small_wc_graph)
        executor.run_phase(GeneratePhase("t/gen", counts=(5, 5, 5)))
        assert shm_segments() - before  # the graph block is live mid-run
        executor.close()
        assert shm_segments() <= before

    def test_killed_worker_does_not_leak(self, small_wc_graph):
        before = shm_segments()
        with GenerationPool(small_wc_graph, processes=1) as pool:
            pool.run(
                "ic",
                "bfs",
                [5],
                [np.random.default_rng(0)],
                directives=[CRASH_HARD],
                timeout=5.0,
            )
        assert shm_segments() <= before

    def test_aborted_run_reclaims(self, small_wc_graph):
        before = shm_segments()
        config = RunConfig(
            graph=small_wc_graph,
            k=4,
            machines=2,
            eps=0.7,
            seed=11,
            executor="multiprocessing",
            processes=2,
            faults="crash@m1a*",
            retry=RetryPolicy(max_attempts=2, phase_timeout=20.0, reassign=False),
        )
        with pytest.raises(FaultToleranceExceeded):
            run("diimm", config)
        assert shm_segments() <= before

    def test_checkpoint_resume_reclaims_and_matches(self, small_wc_graph, tmp_path):
        from dataclasses import replace

        before = shm_segments()
        config = RunConfig(
            graph=small_wc_graph,
            k=4,
            machines=2,
            eps=0.7,
            seed=11,
            executor="multiprocessing",
            processes=2,
            checkpoint_dir=str(tmp_path / "run"),
        )
        first = run("diimm", config)
        assert shm_segments() <= before
        resumed = run("diimm", replace(config, resume=True))
        assert resumed.seeds == first.seeds
        assert shm_segments() <= before
