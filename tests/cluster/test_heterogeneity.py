"""Unit tests for heterogeneous-machine simulation."""

import itertools

import numpy as np
import pytest

from repro.cluster import Machine, SimulatedCluster


class TestSlowdown:
    def test_slowdown_scales_metered_time(self):
        clock = itertools.count(start=0.0, step=1.0)
        machine = Machine(
            0, np.random.default_rng(0), clock=lambda: next(clock), slowdown=3.0
        )
        __, elapsed = machine.run(lambda m: None)
        assert elapsed == 3.0

    def test_invalid_slowdown(self):
        with pytest.raises(ValueError):
            Machine(0, np.random.default_rng(0), slowdown=0.0)

    def test_cluster_slowdowns_assigned(self):
        cluster = SimulatedCluster(3, seed=0, slowdowns=[1.0, 2.0, 4.0])
        assert [m.slowdown for m in cluster.machines] == [1.0, 2.0, 4.0]

    def test_cluster_slowdowns_length_checked(self):
        with pytest.raises(ValueError, match="one entry per machine"):
            SimulatedCluster(3, seed=0, slowdowns=[1.0])

    def test_default_homogeneous(self):
        cluster = SimulatedCluster(2, seed=0)
        assert all(m.slowdown == 1.0 for m in cluster.machines)


class TestWeightedSplit:
    def test_homogeneous_matches_even_split(self):
        cluster = SimulatedCluster(4, seed=0)
        assert cluster.split_count_weighted(10) == cluster.split_count(10)

    def test_weighted_favours_fast_machines(self):
        cluster = SimulatedCluster(2, seed=0, slowdowns=[1.0, 3.0])
        shares = cluster.split_count_weighted(100)
        assert sum(shares) == 100
        assert shares[0] == 75  # speed 1 vs 1/3: 3:1 ratio
        assert shares[1] == 25

    def test_sum_exact_with_rounding(self):
        cluster = SimulatedCluster(3, seed=0, slowdowns=[1.0, 2.0, 3.0])
        for total in (1, 7, 100, 101):
            assert sum(cluster.split_count_weighted(total)) == total

    def test_weighted_split_improves_parallel_time(self, small_wc_graph):
        """On a 2-speed cluster, the weighted split's simulated parallel
        generation time beats the even split."""
        from repro.cluster.metrics import GENERATION
        from repro.ris import make_sampler

        sampler = make_sampler(small_wc_graph, "ic")
        times = {}
        for strategy in ("even", "weighted"):
            cluster = SimulatedCluster(4, seed=1, slowdowns=[1, 1, 4, 4])
            cluster.init_collections(small_wc_graph.num_nodes)
            shares = (
                cluster.split_count(2000)
                if strategy == "even"
                else cluster.split_count_weighted(2000)
            )

            def generate(machine):
                machine.collection.extend(
                    sampler.sample_many(shares[machine.machine_id], machine.rng)
                )

            cluster.map(GENERATION, strategy, generate)
            times[strategy] = cluster.metrics.generation_time
        assert times["weighted"] < times["even"]
