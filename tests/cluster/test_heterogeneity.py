"""Unit tests for heterogeneous-machine simulation."""

import itertools

import numpy as np
import pytest

from repro.cluster import (
    GENERATION,
    GeneratePhase,
    Machine,
    SimulatedCluster,
    make_executor,
)


class TestSlowdown:
    def test_slowdown_scales_metered_time(self):
        clock = itertools.count(start=0.0, step=1.0)
        machine = Machine(
            0, np.random.default_rng(0), clock=lambda: next(clock), slowdown=3.0
        )
        __, elapsed = machine.run(lambda m: None)
        assert elapsed == 3.0

    def test_invalid_slowdown(self):
        with pytest.raises(ValueError):
            Machine(0, np.random.default_rng(0), slowdown=0.0)

    def test_cluster_slowdowns_assigned(self):
        cluster = SimulatedCluster(3, seed=0, slowdowns=[1.0, 2.0, 4.0])
        assert [m.slowdown for m in cluster.machines] == [1.0, 2.0, 4.0]

    def test_cluster_slowdowns_length_checked(self):
        with pytest.raises(ValueError, match="one entry per machine"):
            SimulatedCluster(3, seed=0, slowdowns=[1.0])

    def test_default_homogeneous(self):
        cluster = SimulatedCluster(2, seed=0)
        assert all(m.slowdown == 1.0 for m in cluster.machines)


class TestWeightedSplit:
    def test_homogeneous_matches_even_split(self):
        cluster = SimulatedCluster(4, seed=0)
        assert cluster.split_count_weighted(10) == cluster.split_count(10)

    def test_weighted_favours_fast_machines(self):
        cluster = SimulatedCluster(2, seed=0, slowdowns=[1.0, 3.0])
        shares = cluster.split_count_weighted(100)
        assert sum(shares) == 100
        assert shares[0] == 75  # speed 1 vs 1/3: 3:1 ratio
        assert shares[1] == 25

    def test_sum_exact_with_rounding(self):
        cluster = SimulatedCluster(3, seed=0, slowdowns=[1.0, 2.0, 3.0])
        for total in (1, 7, 100, 101):
            assert sum(cluster.split_count_weighted(total)) == total

    def test_zero_total(self):
        cluster = SimulatedCluster(3, seed=0, slowdowns=[1.0, 2.0, 3.0])
        assert cluster.split_count_weighted(0) == [0, 0, 0]

    def test_single_machine_takes_everything(self):
        cluster = SimulatedCluster(1, seed=0, slowdowns=[7.5])
        assert cluster.split_count_weighted(42) == [42]

    def test_uniform_non_unit_slowdowns_split_evenly(self):
        """Equal machines split evenly no matter their absolute speed."""
        cluster = SimulatedCluster(4, seed=0, slowdowns=[2.5] * 4)
        assert cluster.split_count_weighted(10) == cluster.split_count(10)

    def test_weighted_split_improves_parallel_time(self, small_wc_graph):
        """On a 2-speed cluster, the weighted split's simulated parallel
        generation time beats the even split."""
        times = {}
        for strategy in ("even", "weighted"):
            cluster = SimulatedCluster(4, seed=1, slowdowns=[1, 1, 4, 4])
            cluster.init_collections(small_wc_graph.num_nodes)
            executor = make_executor("simulated", cluster, graph=small_wc_graph)
            shares = (
                cluster.split_count(2000)
                if strategy == "even"
                else cluster.split_count_weighted(2000)
            )
            executor.run_phase(GeneratePhase(strategy, counts=tuple(shares)))
            times[strategy] = cluster.metrics.generation_time
        assert times["weighted"] < times["even"]

    @pytest.mark.parametrize("executor_name", ["simulated", "multiprocessing"])
    def test_executor_generation_on_heterogeneous_cluster(
        self, executor_name, small_wc_graph
    ):
        """Both executors honour the weighted split and the slowdown
        metering on a heterogeneous cluster."""
        cluster = SimulatedCluster(3, seed=4, slowdowns=[1.0, 1.0, 50.0])
        cluster.init_collections(small_wc_graph.num_nodes)
        executor = make_executor(executor_name, cluster, graph=small_wc_graph)
        shares = cluster.split_count_weighted(505)
        assert shares[2] < shares[0]
        result = executor.run_phase(GeneratePhase("hetero", counts=tuple(shares)))
        assert [m.collection.num_sets for m in cluster.machines] == shares
        record = cluster.metrics.phases_in(GENERATION)[-1]
        assert record.machine_times == result.machine_times
        # Machine 2 draws ~1/50 of the work but is metered 50x slower, so
        # it still dominates neither by a huge margin nor trivially; at
        # minimum its per-set cost must exceed the fast machines'.
        per_set = [t / s for t, s in zip(result.machine_times, shares)]
        assert per_set[2] > per_set[0]
