"""Shared conformance suite for the Executor layer.

Every test in :class:`TestExecutorConformance` runs against both
executors; the central contract is that for a fixed cluster seed the two
backends produce bit-identical collections, identical RNG end states and
the same recorded phase structure.
"""

import numpy as np
import pytest

from repro.cluster import (
    GENERATION,
    BroadcastPhase,
    GatherPhase,
    GeneratePhase,
    MachineFailure,
    MapPhase,
    MasterPhase,
    MultiprocessingExecutor,
    SimulatedCluster,
    SimulatedExecutor,
    as_executor,
    make_executor,
    run_generation_pool,
)
from repro.core import diimm

EXECUTOR_NAMES = ("simulated", "multiprocessing", "socket")


def build_executor(name, graph, num_machines=3, seed=5, backend="flat", **kwargs):
    cluster = SimulatedCluster(num_machines, seed=seed)
    cluster.init_collections(graph.num_nodes, backend=backend)
    return make_executor(name, cluster, graph=graph, **kwargs)


@pytest.fixture(params=EXECUTOR_NAMES)
def executor_name(request):
    return request.param


class TestExecutorConformance:
    def test_generate_respects_counts(self, executor_name, small_wc_graph):
        executor = build_executor(executor_name, small_wc_graph)
        counts = (10, 0, 25)
        result = executor.run_phase(GeneratePhase("t/gen", counts=counts))
        assert result.results == list(counts)
        assert [m.collection.num_sets for m in executor.machines] == list(counts)

    @pytest.mark.parametrize("backend", ["flat", "reference"])
    @pytest.mark.parametrize(
        "model,method",
        [
            ("ic", "bfs"),
            ("lt", "bfs"),
            ("ic", "subsim"),
            ("ic", "vectorized"),
            ("lt", "vectorized"),
        ],
    )
    def test_backends_agree_bit_for_bit(self, small_wc_graph, backend, model, method):
        """Same seed => same collections and same machine RNG end states."""
        snapshots = {}
        for name in EXECUTOR_NAMES:
            executor = build_executor(name, small_wc_graph, backend=backend)
            executor.run_phase(
                GeneratePhase(
                    "t/gen", counts=(20, 13, 7), model=model, method=method
                )
            )
            snapshots[name] = (
                [
                    [m.collection.get(j).tolist() for j in range(m.collection.num_sets)]
                    for m in executor.machines
                ],
                [m.collection.total_edges_examined for m in executor.machines],
                [m.rng.bit_generator.state for m in executor.machines],
            )
        sim, mp_ = snapshots["simulated"], snapshots["multiprocessing"]
        assert sim[0] == mp_[0]
        assert sim[1] == mp_[1]
        assert sim[2] == mp_[2]

    def test_generation_phase_recorded(self, executor_name, small_wc_graph):
        executor = build_executor(executor_name, small_wc_graph)
        executor.run_phase(GeneratePhase("t/gen", counts=(5, 5, 5)))
        phases = executor.metrics.phases_in(GENERATION)
        assert [p.label for p in phases] == ["t/gen"]
        assert len(phases[0].machine_times) == 3
        assert all(t >= 0.0 for t in phases[0].machine_times)
        assert phases[0].parallel_time == max(phases[0].machine_times)

    def test_slowdown_scales_generation_times(self, executor_name, small_wc_graph):
        cluster = SimulatedCluster(2, seed=5, slowdowns=[1.0, 100.0])
        cluster.init_collections(small_wc_graph.num_nodes)
        executor = make_executor(executor_name, cluster, graph=small_wc_graph)
        result = executor.run_phase(GeneratePhase("t/gen", counts=(200, 200)))
        # Machine 1 draws the same work but is metered 100x slower.
        assert result.machine_times[1] > result.machine_times[0]

    def test_generate_into_state_targets(self, executor_name, small_wc_graph):
        from repro.ris import make_collection

        executor = build_executor(executor_name, small_wc_graph)
        for machine in executor.machines:
            machine.state["R2"] = make_collection(small_wc_graph.num_nodes, "flat")
        targets = tuple(m.state["R2"] for m in executor.machines)
        executor.run_phase(GeneratePhase("t/gen", counts=(4, 4, 4), targets=targets))
        assert [t.num_sets for t in targets] == [4, 4, 4]
        # default collections untouched
        assert [m.collection.num_sets for m in executor.machines] == [0, 0, 0]

    def test_counts_length_validated(self, executor_name, small_wc_graph):
        executor = build_executor(executor_name, small_wc_graph)
        with pytest.raises(ValueError, match="generation counts"):
            executor.run_phase(GeneratePhase("t/gen", counts=(1, 2)))

    def test_targets_length_validated(self, executor_name, small_wc_graph):
        executor = build_executor(executor_name, small_wc_graph)
        with pytest.raises(ValueError, match="generation targets"):
            executor.run_phase(
                GeneratePhase(
                    "t/gen",
                    counts=(1, 1, 1),
                    targets=(executor.machines[0].collection,),
                )
            )

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            GeneratePhase("t/gen", counts=(3, -1, 2))

    def test_generation_failure_names_the_machine(self, executor_name, small_wc_graph):
        executor = build_executor(executor_name, small_wc_graph)
        executor.machines[1].rng = object()  # draws raise AttributeError
        with pytest.raises(MachineFailure) as info:
            executor.run_phase(GeneratePhase("t/gen", counts=(2, 2, 2)))
        assert info.value.machine_id == 1
        assert info.value.__cause__ is not None

    def test_map_phase(self, executor_name, small_wc_graph):
        executor = build_executor(executor_name, small_wc_graph)
        result = executor.run_phase(MapPhase("t/map", lambda m: m.machine_id + 10))
        assert result.results == [10, 11, 12]
        assert result.category == "computation"
        assert len(result.machine_times) == 3

    def test_map_phase_failure(self, executor_name, small_wc_graph):
        executor = build_executor(executor_name, small_wc_graph)

        def boom(machine):
            if machine.machine_id == 1:
                raise RuntimeError("kaput")
            return 0

        with pytest.raises(MachineFailure) as info:
            executor.run_phase(MapPhase("t/map", boom))
        assert info.value.machine_id == 1

    def test_gather_and_broadcast_phases(self, executor_name, small_wc_graph):
        executor = build_executor(executor_name, small_wc_graph)
        gathered = executor.run_phase(GatherPhase("t/gather", (100, 200, 300)))
        assert gathered.num_bytes == 600
        assert gathered.category == "communication"
        broadcast = executor.run_phase(BroadcastPhase("t/bcast", 8))
        assert broadcast.num_bytes == 24

    def test_master_phase(self, executor_name, small_wc_graph):
        executor = build_executor(executor_name, small_wc_graph)
        result = executor.run_phase(MasterPhase("t/master", lambda: {"x": 1}))
        assert result.results == {"x": 1}
        assert result.category == "computation"

    def test_unknown_phase_rejected(self, executor_name, small_wc_graph):
        executor = build_executor(executor_name, small_wc_graph)
        with pytest.raises(TypeError, match="unknown phase plan"):
            executor.run_phase(object())

    def test_generate_without_collections(self, executor_name, small_wc_graph):
        cluster = SimulatedCluster(2, seed=0)
        executor = make_executor(executor_name, cluster, graph=small_wc_graph)
        with pytest.raises(ValueError, match="no collection"):
            executor.run_phase(GeneratePhase("t/gen", counts=(1, 1)))


class TestFactories:
    def test_make_executor_unknown_name(self, small_wc_graph):
        cluster = SimulatedCluster(2, seed=0)
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("mpi", cluster, graph=small_wc_graph)

    def test_multiprocessing_requires_graph(self):
        cluster = SimulatedCluster(2, seed=0)
        with pytest.raises(ValueError, match="requires the graph"):
            MultiprocessingExecutor(cluster)

    def test_simulated_without_graph_rejects_generation(self, small_wc_graph):
        cluster = SimulatedCluster(2, seed=0)
        cluster.init_collections(small_wc_graph.num_nodes)
        executor = SimulatedExecutor(cluster)
        with pytest.raises(ValueError, match="needs a graph"):
            executor.run_phase(GeneratePhase("t/gen", counts=(1, 1)))

    def test_as_executor_wraps_cluster(self):
        cluster = SimulatedCluster(2, seed=0)
        executor = as_executor(cluster)
        assert isinstance(executor, SimulatedExecutor)
        assert executor.cluster is cluster

    def test_as_executor_passthrough(self, small_wc_graph):
        cluster = SimulatedCluster(2, seed=0)
        executor = SimulatedExecutor(cluster, graph=small_wc_graph)
        assert as_executor(executor) is executor

    def test_as_executor_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_executor("cluster")

    def test_sampler_cache_reused(self, small_wc_graph):
        cluster = SimulatedCluster(2, seed=0)
        executor = SimulatedExecutor(cluster, graph=small_wc_graph)
        assert executor.sampler("ic", "bfs") is executor.sampler("ic", "bfs")
        assert executor.sampler("ic", "bfs") is not executor.sampler("lt", "bfs")


class TestGenerationPool:
    def test_counts_rngs_length_checked(self, small_wc_graph):
        with pytest.raises(ValueError, match="same length"):
            run_generation_pool(
                small_wc_graph, "ic", "bfs", [1, 2], [np.random.default_rng(0)]
            )

    def test_empty_counts(self, small_wc_graph):
        assert run_generation_pool(small_wc_graph, "ic", "bfs", [], []) == []

    def test_worker_error_captured_per_machine(self, small_wc_graph):
        # object() is picklable but has no .random, so the draw raises
        # inside the worker; the pool reports it per machine instead of
        # blowing up the whole map.
        outcomes = run_generation_pool(
            small_wc_graph,
            "ic",
            "bfs",
            [3, 3],
            [np.random.default_rng(0), object()],
        )
        assert len(outcomes) == 2
        ok = outcomes[0]
        assert ok.error is None and ok.batch.count == 3 and ok.rng_state is not None
        assert ok.nbytes > 0
        bad = outcomes[1]
        assert bad.batch is None and bad.rng_state is None and bad.nbytes == 0
        assert "AttributeError" in bad.error

    def test_caller_rngs_not_advanced(self, small_wc_graph):
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        run_generation_pool(small_wc_graph, "ic", "bfs", [5], [rng])
        assert rng.bit_generator.state == before


class TestEndToEnd:
    def test_diimm_identical_across_executors(self, small_wc_graph):
        results = {
            name: diimm(
                small_wc_graph,
                5,
                num_machines=3,
                eps=0.7,
                seed=11,
                executor=name,
            )
            for name in EXECUTOR_NAMES
        }
        sim, mp_ = results["simulated"], results["multiprocessing"]
        assert sim.seeds == mp_.seeds
        assert sim.num_rr_sets == mp_.num_rr_sets
        assert sim.total_rr_size == mp_.total_rr_size
        assert sim.estimated_spread == pytest.approx(mp_.estimated_spread)
        assert sim.params["executor"] == "simulated"
        assert mp_.params["executor"] == "multiprocessing"
        # identical phase structure, backend-independent
        assert [p.label for p in sim.metrics.phases] == [
            p.label for p in mp_.metrics.phases
        ]
