"""Fault-tolerance tests: injection, recovery, and seed-set invariance.

The tentpole guarantee: for *every* fault plan the executors recover
from, the final RR collections — and therefore the selected seed set and
its spread estimate — are bit-identical to a fault-free run.  Faults
change only the metered times and the recovery log.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import run
from repro.cluster import SimulatedCluster
from repro.cluster.executor import GeneratePhase, MultiprocessingExecutor, SimulatedExecutor
from repro.cluster.faults import (
    CORRUPT,
    CRASH,
    CRASH_HARD,
    DEFAULT_RETRY,
    DROP,
    FAULT_KINDS,
    STRAGGLER,
    FaultPlan,
    FaultSpec,
    FaultToleranceExceeded,
    PhaseTimeoutError,
    RetryPolicy,
)
from repro.cluster.tracing import summarize_recovery
from repro.core.config import RunConfig
from repro.ris import FlatRRCollection
from repro.ris.serialization import (
    MESSAGE_HEADER_BYTES,
    PayloadCorruptionError,
    pack_message,
    unpack_message,
)

RETRY = RetryPolicy(max_attempts=3, phase_timeout=30.0)


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan units
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_matches_keys_on_machine_round_attempt(self):
        spec = FaultSpec(CRASH, machine=1, round_index=2, attempt=1)
        assert spec.matches(1, 2, 1)
        assert not spec.matches(0, 2, 1)
        assert not spec.matches(1, 3, 1)
        assert not spec.matches(1, 2, 2)

    def test_wildcards_match_every_round_and_attempt(self):
        spec = FaultSpec(CRASH, machine=0, round_index=None, attempt=None)
        for round_index in (None, 1, 7):
            for attempt in (1, 2, 3):
                assert spec.matches(0, round_index, attempt)

    def test_round_none_only_matches_round_none(self):
        spec = FaultSpec(CRASH, machine=0, round_index=3, attempt=1)
        assert not spec.matches(0, None, 1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="meteor", machine=0),
            dict(kind=CRASH, machine=-1),
            dict(kind=CRASH, machine=0, round_index=0),
            dict(kind=CRASH, machine=0, attempt=0),
            dict(kind=STRAGGLER, machine=0, factor=1.0),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_describe_roundtrips_through_parse(self):
        specs = [
            FaultSpec(CRASH, 1, round_index=2, attempt=1),
            FaultSpec(CRASH_HARD, 0),
            FaultSpec(STRAGGLER, 3, attempt=None, factor=3.5),
            FaultSpec(CORRUPT, 2, round_index=1),
            FaultSpec(DROP, 4, attempt=None),
        ]
        plan = FaultPlan(specs)
        assert FaultPlan.parse(plan.describe()) == plan


class TestFaultPlan:
    def test_parse_grammar(self):
        plan = FaultPlan.parse("crash@m1r2; straggler@m0x3.5, corrupt@m2a*")
        assert plan.specs == (
            FaultSpec(CRASH, 1, round_index=2, attempt=1),
            FaultSpec(STRAGGLER, 0, attempt=None, factor=3.5),
            FaultSpec(CORRUPT, 2, attempt=None),
        )

    def test_parse_empty_string_is_empty_plan(self):
        plan = FaultPlan.parse("")
        assert len(plan) == 0
        assert plan == FaultPlan()

    @pytest.mark.parametrize("text", ["crash", "crash@1", "boom@m1", "crash@m1r*a", "@m0"])
    def test_parse_rejects_malformed_specs(self, text):
        with pytest.raises(ValueError, match="cannot parse fault spec"):
            FaultPlan.parse(text)

    def test_failure_for_prefers_hard_failures_over_corruption(self):
        plan = FaultPlan.parse("corrupt@m1;crash@m1")
        fault = plan.failure_for(1, None, 1)
        assert fault is not None and fault.kind == CRASH

    def test_failure_for_ignores_stragglers(self):
        plan = FaultPlan.parse("straggler@m0x2")
        assert plan.failure_for(0, None, 1) is None
        assert plan.straggler_factor(0, None, 1) == 2.0

    def test_straggler_factors_multiply(self):
        plan = FaultPlan.parse("straggler@m0x2;straggler@m0x3")
        assert plan.straggler_factor(0, None, 1) == pytest.approx(6.0)
        assert plan.straggler_factor(1, None, 1) == 1.0

    def test_seeded_plan_is_reproducible(self):
        a = FaultPlan.seeded(7, num_machines=4, num_rounds=3)
        b = FaultPlan.seeded(7, num_machines=4, num_rounds=3)
        c = FaultPlan.seeded(8, num_machines=4, num_rounds=3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert all(spec.kind in FAULT_KINDS for spec in a.specs)


class TestRetryPolicy:
    def test_backoff_is_exponential_after_first_attempt(self):
        policy = RetryPolicy(backoff=0.5)
        assert policy.delay_before(1) == 0.0
        assert policy.delay_before(2) == pytest.approx(0.5)
        assert policy.delay_before(3) == pytest.approx(1.0)
        assert policy.delay_before(4) == pytest.approx(2.0)

    def test_zero_backoff_never_delays(self):
        assert DEFAULT_RETRY.delay_before(5) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [dict(max_attempts=0), dict(phase_timeout=0.0), dict(backoff=-1.0)],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


# ----------------------------------------------------------------------
# CRC32 wire framing
# ----------------------------------------------------------------------
class TestMessageFraming:
    def test_roundtrip(self):
        payload = {"arrays": np.arange(5), "text": "hello"}
        restored = unpack_message(pack_message(payload))
        assert restored["text"] == "hello"
        np.testing.assert_array_equal(restored["arrays"], np.arange(5))

    def test_flipped_body_byte_fails_crc(self):
        blob = bytearray(pack_message([1, 2, 3]))
        blob[MESSAGE_HEADER_BYTES] ^= 0xFF
        with pytest.raises(PayloadCorruptionError, match="checksum"):
            unpack_message(bytes(blob))

    def test_bad_magic_rejected(self):
        blob = bytearray(pack_message("x"))
        blob[0] ^= 0xFF
        with pytest.raises(PayloadCorruptionError):
            unpack_message(bytes(blob))

    def test_truncated_message_rejected(self):
        blob = pack_message("payload")
        with pytest.raises(PayloadCorruptionError):
            unpack_message(blob[: MESSAGE_HEADER_BYTES - 2])
        with pytest.raises(PayloadCorruptionError):
            unpack_message(blob[:-1])


# ----------------------------------------------------------------------
# Crash matrix: seed-set invariance under every fault kind
# ----------------------------------------------------------------------
#: Plans the matrix proves invariant.  Each exercises a distinct recovery
#: path: transient crash (retry), persistent crash (reassignment),
#: straggler (no retry, time only), corruption (retransmission), silent
#: drop (timeout detection), and a pile-up of all of them at once.
MATRIX_PLANS = [
    "crash@m1",
    "crash@m2a*",
    "crash-hard@m1",
    "straggler@m0x3",
    "corrupt@m3",
    "drop@m1a*",
    "crash@m1r2",
    "crash@m0a*;drop@m1a*;corrupt@m2;straggler@m3x2",
]


def _diimm_config(graph, **overrides) -> RunConfig:
    base = dict(graph=graph, k=4, machines=4, eps=0.5, seed=11)
    base.update(overrides)
    return RunConfig(**base)


@pytest.fixture(scope="module")
def baseline(small_wc_graph):
    """The fault-free DIIMM run every matrix entry must reproduce."""
    return run("diimm", _diimm_config(small_wc_graph))


class TestCrashMatrixSimulated:
    @pytest.mark.parametrize("plan", MATRIX_PLANS)
    def test_seed_set_invariant_under_faults(self, small_wc_graph, baseline, plan):
        result = run("diimm", _diimm_config(small_wc_graph, faults=plan, retry=RETRY))
        assert result.seeds == baseline.seeds
        assert result.estimated_spread == baseline.estimated_spread
        assert result.num_rr_sets == baseline.num_rr_sets
        assert result.total_rr_size == baseline.total_rr_size
        assert result.metrics.recovery_events, "injected faults must be recorded"

    def test_empty_plan_changes_nothing_and_records_nothing(self, small_wc_graph, baseline):
        result = run("diimm", _diimm_config(small_wc_graph, faults=FaultPlan()))
        assert result.seeds == baseline.seeds
        assert result.estimated_spread == baseline.estimated_spread
        assert result.metrics.recovery_events == []

    def test_transient_crash_records_crash_events(self, small_wc_graph):
        result = run("diimm", _diimm_config(small_wc_graph, faults="crash@m1", retry=RETRY))
        crashes = result.metrics.recovery_events_of("crash")
        assert crashes and all(event.machine_id == 1 for event in crashes)
        assert result.metrics.recovery_time > 0.0
        # Transient: the retry succeeded, so no quota was reassigned.
        assert result.metrics.degraded_machines == ()

    def test_persistent_crash_triggers_reassignment(self, small_wc_graph):
        result = run("diimm", _diimm_config(small_wc_graph, faults="crash@m2a*", retry=RETRY))
        reassignments = result.metrics.recovery_events_of("reassignment")
        assert reassignments and all(event.machine_id == 2 for event in reassignments)
        assert 2 in result.metrics.degraded_machines
        breakdown = result.metrics.failure_breakdown()
        assert breakdown.get("crash", 0.0) > 0.0
        assert breakdown["degraded_machines"] >= 1.0

    def test_corruption_records_retransmission(self, small_wc_graph):
        result = run("diimm", _diimm_config(small_wc_graph, faults="corrupt@m3", retry=RETRY))
        corruptions = result.metrics.recovery_events_of("corruption")
        assert corruptions and corruptions[0].machine_id == 3

    def test_straggler_records_wait_and_slows_generation(self, small_wc_graph, baseline):
        result = run(
            "diimm", _diimm_config(small_wc_graph, faults="straggler@m0x3", retry=RETRY)
        )
        waits = result.metrics.recovery_events_of("straggler-wait")
        assert waits and waits[0].machine_id == 0
        assert result.metrics.generation_time > baseline.metrics.generation_time

    def test_round_targeted_fault_fires_only_in_that_round(self, small_wc_graph):
        result = run("diimm", _diimm_config(small_wc_graph, faults="crash@m1r2", retry=RETRY))
        crashes = result.metrics.recovery_events_of("crash")
        assert crashes and all(event.round_index == 2 for event in crashes)

    def test_reassign_false_fails_fast(self, small_wc_graph):
        strict = RetryPolicy(max_attempts=2, reassign=False)
        with pytest.raises(FaultToleranceExceeded) as info:
            run("diimm", _diimm_config(small_wc_graph, faults="crash@m1a*", retry=strict))
        assert 1 in info.value.machine_ids

    def test_summarize_recovery_rows(self, small_wc_graph):
        result = run(
            "diimm",
            _diimm_config(small_wc_graph, faults="crash@m1;straggler@m0x2", retry=RETRY),
        )
        rows = summarize_recovery(result.metrics)
        kinds = {(row["kind"], row["machine"]) for row in rows}
        assert ("crash", 1) in kinds
        assert ("straggler-wait", 0) in kinds
        assert all(row["events"] >= 1 for row in rows)


class TestSeededPlanInvariance:
    def test_randomized_plan_still_invariant(self, small_wc_graph, baseline):
        plan = FaultPlan.seeded(3, num_machines=4, num_rounds=4, p_crash=0.4, p_corrupt=0.3)
        assert len(plan) > 0
        result = run("diimm", _diimm_config(small_wc_graph, faults=plan, retry=RETRY))
        assert result.seeds == baseline.seeds
        assert result.estimated_spread == baseline.estimated_spread


class TestGenerateLevelInvariance:
    """Invariance at the executor layer, independent of any algorithm."""

    def _generate(self, graph, faults, retry=RETRY, machines=4, count=200):
        cluster = SimulatedCluster(machines, seed=5)
        executor = SimulatedExecutor(cluster, graph=graph, faults=faults, retry=retry)
        targets = tuple(FlatRRCollection(graph.num_nodes) for _ in range(machines))
        executor.run_phase(
            GeneratePhase(label="gen", counts=(count,) * machines, targets=targets)
        )
        follow_up = [m.rng.integers(1 << 30) for m in executor.machines]
        return targets, follow_up, executor.metrics

    @pytest.mark.parametrize("plan", MATRIX_PLANS)
    def test_collections_and_rng_streams_invariant(self, small_wc_graph, plan):
        reference, rng_after, _ = self._generate(small_wc_graph, faults=None)
        faulty, faulty_rng_after, metrics = self._generate(
            small_wc_graph, faults=FaultPlan.parse(plan)
        )
        for ref, got in zip(reference, faulty):
            np.testing.assert_array_equal(ref.nodes, got.nodes)
            np.testing.assert_array_equal(ref.offsets, got.offsets)
            assert ref.total_edges_examined == got.total_edges_examined
        # The machines' RNG streams stay in lockstep, so later rounds
        # (driven outside this phase) also draw identically.
        assert faulty_rng_after == rng_after
        # Round-targeted specs never fire outside a driver round.
        fires = any(spec.round_index is None for spec in FaultPlan.parse(plan).specs)
        assert bool(metrics.recovery_events) == fires


# ----------------------------------------------------------------------
# Multiprocessing executor: real processes, real timeouts
# ----------------------------------------------------------------------
def _mp_generate(graph, faults, retry, machines=2, count=60):
    cluster = SimulatedCluster(machines, seed=5)
    executor = MultiprocessingExecutor(
        cluster, graph=graph, processes=machines, faults=faults, retry=retry
    )
    targets = tuple(FlatRRCollection(graph.num_nodes) for _ in range(machines))
    executor.run_phase(GeneratePhase(label="gen", counts=(count,) * machines, targets=targets))
    return targets, executor.metrics


@pytest.mark.slow
class TestCrashMatrixMultiprocessing:
    MP_PLANS = ["crash@m1", "corrupt@m1", "crash@m0a*", "crash-hard@m1", "drop@m0a*"]

    @pytest.mark.parametrize("plan", MP_PLANS)
    def test_collections_invariant(self, small_wc_graph, plan):
        retry = RetryPolicy(max_attempts=2, phase_timeout=20.0)
        reference, _ = _mp_generate(small_wc_graph, faults=None, retry=None)
        faulty, metrics = _mp_generate(
            small_wc_graph, faults=FaultPlan.parse(plan), retry=retry
        )
        for ref, got in zip(reference, faulty):
            np.testing.assert_array_equal(ref.nodes, got.nodes)
            np.testing.assert_array_equal(ref.offsets, got.offsets)
        assert metrics.recovery_events

    def test_diimm_end_to_end_matches_simulated(self, small_wc_graph, baseline):
        result = run(
            "diimm",
            _diimm_config(
                small_wc_graph,
                executor="multiprocessing",
                processes=2,
                faults="crash@m1",
                retry=RetryPolicy(max_attempts=3, phase_timeout=30.0),
            ),
        )
        assert result.seeds == baseline.seeds
        assert result.num_rr_sets == baseline.num_rr_sets
        assert result.metrics.recovery_events_of("crash")

    def test_worker_death_hits_phase_timeout(self, small_wc_graph):
        """Satellite: a kill -9'd worker is detected by the wall-clock
        deadline and, with reassignment disabled, surfaces as
        PhaseTimeoutError naming the dead machine."""
        retry = RetryPolicy(max_attempts=2, phase_timeout=3.0, reassign=False)
        with pytest.raises(PhaseTimeoutError) as info:
            _mp_generate(
                small_wc_graph, faults=FaultPlan.parse("crash-hard@m1a*"), retry=retry
            )
        assert 1 in info.value.machine_ids
        assert info.value.timeout == pytest.approx(3.0)

    def test_worker_death_recovers_via_reassignment(self, small_wc_graph):
        retry = RetryPolicy(max_attempts=2, phase_timeout=3.0)
        reference, _ = _mp_generate(small_wc_graph, faults=None, retry=None)
        faulty, metrics = _mp_generate(
            small_wc_graph, faults=FaultPlan.parse("crash-hard@m1a*"), retry=retry
        )
        for ref, got in zip(reference, faulty):
            np.testing.assert_array_equal(ref.nodes, got.nodes)
        timeouts = metrics.recovery_events_of("timeout")
        assert timeouts and all(event.machine_id == 1 for event in timeouts)
        assert metrics.recovery_events_of("reassignment")


# ----------------------------------------------------------------------
# Checkpoint integration: the recovery log survives resume
# ----------------------------------------------------------------------
class TestCheckpointRecoveryLog:
    def test_recovery_log_persisted_and_restored(self, small_wc_graph, tmp_path):
        ckpt = tmp_path / "run"
        first = run(
            "diimm",
            _diimm_config(
                small_wc_graph, faults="crash@m1", retry=RETRY, checkpoint_dir=str(ckpt)
            ),
        )
        assert first.metrics.recovery_events
        snapshots = sorted(p for p in ckpt.iterdir() if p.name.startswith("round-"))
        with open(snapshots[-1] / "state.json") as handle:
            state = json.load(handle)
        assert state["recovery"], "snapshot must carry the recovery log"
        assert state["recovery"][0]["kind"] == "crash"

        resumed = run(
            "diimm",
            _diimm_config(
                small_wc_graph,
                faults="crash@m1",
                retry=RETRY,
                checkpoint_dir=str(ckpt),
                resume=True,
            ),
        )
        assert resumed.seeds == first.seeds
        # Events recorded before the snapshot reappear in the resumed log.
        restored_kinds = [event.kind for event in resumed.metrics.recovery_events]
        assert "crash" in restored_kinds
