"""SocketExecutor: loopback conformance, fault matrix, wire accounting.

The socket backend must be bit-identical to the simulated and
multiprocessing executors — healthy and under every injected fault kind —
while recording *measured* transport traffic (``wire_sent`` /
``wire_received`` / ``round_trips``) alongside the backend-neutral
``num_bytes`` payload accounting.
"""

import multiprocessing as mp
import socket as socket_mod

import numpy as np
import pytest

from repro.cluster import (
    GENERATION,
    FaultPlan,
    GeneratePhase,
    RetryPolicy,
    SimulatedCluster,
    SocketExecutor,
    SocketSpec,
    make_executor,
    serve_worker,
)
from repro.ris.serialization import pack_message, read_frame

MACHINES = 3
COUNTS = (14, 9, 21)


def build(name, graph, num_machines=MACHINES, seed=5, **kwargs):
    cluster = SimulatedCluster(num_machines, seed=seed)
    cluster.init_collections(graph.num_nodes, backend="flat")
    return make_executor(name, cluster, graph=graph, **kwargs)


def snapshot(executor):
    return (
        [m.collection.nodes[: m.collection.offsets[m.collection.num_sets]].tolist()
         for m in executor.machines],
        [m.collection.num_sets for m in executor.machines],
        [m.rng.bit_generator.state for m in executor.machines],
    )


def run_and_snapshot(name, graph, plan, **kwargs):
    with build(name, graph, **kwargs) as executor:
        executor.run_phase(plan)
        return snapshot(executor), executor.metrics


class TestLoopbackConformance:
    @pytest.mark.parametrize(
        "model,method", [("ic", "bfs"), ("lt", "bfs"), ("ic", "subsim")]
    )
    def test_bit_identical_to_other_backends(self, small_wc_graph, model, method):
        plan = GeneratePhase("t/gen", counts=COUNTS, model=model, method=method)
        golden, _ = run_and_snapshot("simulated", small_wc_graph, plan)
        for name in ("multiprocessing", "socket"):
            got, _ = run_and_snapshot(name, small_wc_graph, plan)
            assert got == golden, name

    def test_per_set_scheme_bit_identical(self, small_wc_graph):
        plan = GeneratePhase(
            "t/perset", counts=COUNTS, rng_scheme="per-set", seed=123,
            starts=(0, 14, 23),
        )
        golden, _ = run_and_snapshot("simulated", small_wc_graph, plan)
        got, _ = run_and_snapshot("socket", small_wc_graph, plan)
        # Per-set draws never touch the machine streams, so compare
        # collections only; the RNG states are unchanged on both sides.
        assert got == golden

    def test_sequential_phases_share_connection(self, small_wc_graph):
        with build("socket", small_wc_graph) as executor:
            executor.run_phase(GeneratePhase("t/one", counts=COUNTS))
            executor.run_phase(GeneratePhase("t/two", counts=(5, 5, 5)))
            phases = executor.metrics.phases_in(GENERATION)
            assert len(phases) == 2
            # Enrollment happens once, on the first phase.
            assert phases[0].round_trips > phases[1].round_trips
            assert [m.collection.num_sets for m in executor.machines] == [
                c + 5 for c in COUNTS
            ]

    def test_heartbeat(self, small_wc_graph):
        with build("socket", small_wc_graph) as executor:
            executor.run_phase(GeneratePhase("t/gen", counts=(2, 2, 2)))
            latencies = executor.heartbeat()
            assert latencies and all(
                lat is not None and lat >= 0.0 for lat in latencies
            )


class TestWireAccounting:
    def test_payload_bytes_match_mp_accounting_and_wire_overhead(
        self, small_wc_graph
    ):
        plan = GeneratePhase("t/gen", counts=COUNTS)
        _, mp_metrics = run_and_snapshot("multiprocessing", small_wc_graph, plan)
        with build("socket", small_wc_graph) as executor:
            executor.run_phase(plan)
            batches = [
                (m.collection.nodes[: m.collection.offsets[m.collection.num_sets]],
                 m.collection.offsets[: m.collection.num_sets + 1])
                for m in executor.machines
            ]
            record = executor.metrics.phases_in(GENERATION)[-1]

        mp_record = mp_metrics.phases_in(GENERATION)[-1]
        # num_bytes is the backend-neutral payload accounting: identical
        # to the multiprocessing backend for the same phase.
        assert record.num_bytes == mp_record.num_bytes
        # The multiprocessing backend has no wire.
        assert mp_record.wire_sent == mp_record.wire_received == 0

        # The payload is the delta+varint batch encoding plus a bounded
        # envelope (frame header, pickle scaffolding, RNG state) — far
        # below the raw (u64 node, u64 offset) tuple-vector size the
        # naive wire format would ship.
        raw = sum(
            8 * len(nodes) + 8 * len(offsets) for nodes, offsets in batches
        )
        assert 0 < record.num_bytes < raw

        # Measured socket traffic: responses carry each inner payload in
        # one outer frame, so received >= payload and the overhead is
        # bounded; requests went out and round trips completed.
        assert record.round_trips >= MACHINES
        assert record.wire_received >= record.num_bytes
        assert record.wire_received <= record.num_bytes + record.round_trips * 512
        assert record.wire_sent > 0

    def test_run_metrics_wire_summary(self, small_wc_graph):
        with build("socket", small_wc_graph) as executor:
            executor.run_phase(GeneratePhase("t/gen", counts=COUNTS))
            summary = executor.metrics.wire_summary()
        assert summary["wire_sent"] > 0
        assert summary["wire_received"] > 0
        assert summary["round_trips"] >= MACHINES
        # Simulated runs stay wire-free.
        with build("simulated", small_wc_graph) as executor:
            executor.run_phase(GeneratePhase("t/gen", counts=COUNTS))
            assert executor.metrics.wire_summary() == {
                "wire_sent": 0, "wire_received": 0, "round_trips": 0,
            }


RETRY = RetryPolicy(max_attempts=3, phase_timeout=5.0, backoff=0.0)

FAULT_MATRIX = [
    ("disconnect@m1", "disconnect"),
    ("crash@m0", "crash"),
    ("corrupt@m2", "corruption"),
    ("crash-hard@m0", "disconnect"),
    ("disconnect@m0;corrupt@m1;crash@m2", None),
]


class TestFaultMatrix:
    @pytest.mark.parametrize("plan_text,expected_kind", FAULT_MATRIX)
    def test_recovery_is_bit_identical(
        self, small_wc_graph, plan_text, expected_kind
    ):
        plan = GeneratePhase("t/gen", counts=COUNTS)
        golden, _ = run_and_snapshot(
            "socket", small_wc_graph, plan, faults=FaultPlan.parse(""), retry=RETRY
        )
        got, metrics = run_and_snapshot(
            "socket", small_wc_graph, plan,
            faults=FaultPlan.parse(plan_text), retry=RETRY,
        )
        assert got == golden, plan_text
        assert metrics.recovery_events, plan_text
        if expected_kind is not None:
            assert any(
                e.kind == expected_kind for e in metrics.recovery_events
            ), (plan_text, [e.kind for e in metrics.recovery_events])

    def test_drop_detected_by_deadline(self, small_wc_graph):
        retry = RetryPolicy(max_attempts=3, phase_timeout=1.5, backoff=0.0)
        plan = GeneratePhase("t/gen", counts=(4, 4, 4))
        golden, _ = run_and_snapshot(
            "socket", small_wc_graph, plan, faults=FaultPlan.parse(""), retry=retry
        )
        got, metrics = run_and_snapshot(
            "socket", small_wc_graph, plan,
            faults=FaultPlan.parse("drop@m1"), retry=retry,
        )
        assert got == golden
        assert any(e.kind == "timeout" for e in metrics.recovery_events)

    def test_matches_simulated_under_faults(self, small_wc_graph):
        plan = GeneratePhase("t/gen", counts=COUNTS)
        faults = "crash@m1;corrupt@m0"
        sim, _ = run_and_snapshot(
            "simulated", small_wc_graph, plan,
            faults=FaultPlan.parse(faults), retry=RETRY,
        )
        sock, _ = run_and_snapshot(
            "socket", small_wc_graph, plan,
            faults=FaultPlan.parse(faults), retry=RETRY,
        )
        assert sock == sim


class TestLifecycle:
    def test_context_manager_and_double_close(self, small_wc_graph):
        executor = build("socket", small_wc_graph)
        with executor as entered:
            assert entered is executor
            executor.run_phase(GeneratePhase("t/gen", counts=(2, 2, 2)))
        executor.close()  # second close is a no-op
        executor.close()

    def test_close_after_abort(self, small_wc_graph):
        executor = build("socket", small_wc_graph)
        boom = GeneratePhase("t/gen", counts=(2, 2))  # wrong machine count
        with pytest.raises(ValueError):
            with executor:
                executor.run_phase(boom)
                raise AssertionError("run_phase should have rejected the plan")
        executor.close()

    def test_refresh_graph_reenrolls(self, small_wc_graph):
        with build("socket", small_wc_graph) as executor:
            executor.run_phase(GeneratePhase("t/one", counts=(2, 2, 2)))
            executor.refresh_graph()
            executor.run_phase(GeneratePhase("t/two", counts=(2, 2, 2)))
            assert [m.collection.num_sets for m in executor.machines] == [4, 4, 4]


class TestExternalWorkers:
    def test_enroll_against_external_worker(self, small_wc_graph):
        ready: mp.Queue = mp.Queue()
        proc = mp.Process(
            target=serve_worker,
            args=("127.0.0.1", 0),
            kwargs={"ready": ready.put},
            daemon=True,
        )
        proc.start()
        port = ready.get(timeout=15)
        try:
            plan = GeneratePhase("t/gen", counts=COUNTS)
            golden, _ = run_and_snapshot("simulated", small_wc_graph, plan)
            cluster = SimulatedCluster(MACHINES, seed=5)
            cluster.init_collections(small_wc_graph.num_nodes, backend="flat")
            spec = SocketSpec(addresses=(("127.0.0.1", port),))
            with SocketExecutor(
                cluster, graph=small_wc_graph, spec=spec
            ) as executor:
                executor.run_phase(plan)
                assert snapshot(executor) == golden
            # close() must leave externally owned workers running.
            assert proc.is_alive()
            with socket_mod.create_connection(("127.0.0.1", port), timeout=5) as s:
                s.sendall(pack_message(("ping", 1, None)))
                op, seq, _ = read_frame(s.recv)
                assert (op, seq) == ("pong", 1)
        finally:
            proc.terminate()
            proc.join(timeout=5)

    def test_worker_protocol_rejects_unknown_token(self):
        ready: mp.Queue = mp.Queue()
        proc = mp.Process(
            target=serve_worker,
            args=("127.0.0.1", 0),
            kwargs={"ready": ready.put},
            daemon=True,
        )
        proc.start()
        port = ready.get(timeout=15)
        try:
            with socket_mod.create_connection(("127.0.0.1", port), timeout=5) as s:
                request = {
                    "token": "nope", "model": "ic", "method": "bfs",
                    "rng": None, "count": 1,
                }
                s.sendall(pack_message(("generate", 7, request)))
                op, seq, body = read_frame(s.recv)
                assert op == "error" and seq == 7
                assert "unknown enrollment token" in body[0]
        finally:
            proc.terminate()
            proc.join(timeout=5)
