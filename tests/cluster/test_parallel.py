"""Tests for the real multiprocessing RR-generation backend."""

import numpy as np
import pytest

from repro.cluster import generate_batch, generate_parallel


class TestGenerateParallel:
    def test_counts_respected(self, small_wc_graph):
        batches = generate_parallel(
            small_wc_graph, counts=[10, 20], seeds=[1, 2], processes=2
        )
        assert [len(b) for b in batches] == [10, 20]

    def test_matches_single_process_reference(self, small_wc_graph):
        """A worker with seed s produces exactly generate_batch(..., s)."""
        parallel = generate_parallel(
            small_wc_graph, counts=[15], seeds=[7], processes=1
        )[0]
        reference = generate_batch(small_wc_graph, "ic", "bfs", 15, 7)
        assert len(parallel) == len(reference)
        for a, b in zip(parallel, reference):
            assert np.array_equal(a.nodes, b.nodes)
            assert a.root == b.root
            assert a.edges_examined == b.edges_examined

    def test_lt_model(self, small_wc_graph):
        batches = generate_parallel(
            small_wc_graph, counts=[5], seeds=[3], model="lt", processes=1
        )
        assert len(batches[0]) == 5

    def test_mismatched_lengths_rejected(self, small_wc_graph):
        with pytest.raises(ValueError, match="same length"):
            generate_parallel(small_wc_graph, counts=[1, 2], seeds=[1])

    def test_empty_input(self, small_wc_graph):
        assert generate_parallel(small_wc_graph, counts=[], seeds=[]) == []
