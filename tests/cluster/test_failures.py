"""Failure-injection tests: worker errors surface with attribution."""

import pytest

from repro.cluster import COMPUTATION, MachineFailure, SimulatedCluster


class TestMachineFailure:
    def test_failure_carries_machine_id_and_label(self):
        cluster = SimulatedCluster(3, seed=0)

        def work(machine):
            if machine.machine_id == 1:
                raise ValueError("disk on fire")
            return machine.machine_id

        with pytest.raises(MachineFailure) as info:
            cluster.map(COMPUTATION, "risky-phase", work)
        assert info.value.machine_id == 1
        assert info.value.label == "risky-phase"
        assert isinstance(info.value.__cause__, ValueError)

    def test_no_phase_recorded_on_failure(self):
        cluster = SimulatedCluster(2, seed=0)

        def work(machine):
            raise RuntimeError("boom")

        with pytest.raises(MachineFailure):
            cluster.map(COMPUTATION, "phase", work)
        assert cluster.metrics.phases == []

    def test_successful_map_unaffected(self):
        cluster = SimulatedCluster(2, seed=0)
        results = cluster.map(COMPUTATION, "fine", lambda m: m.machine_id)
        assert results == [0, 1]

    def test_failure_mid_algorithm_attributes_machine(self, small_wc_graph):
        """A store that errors during the map stage surfaces as a
        MachineFailure naming the guilty machine, not an anonymous
        traceback."""
        from repro.coverage import newgreedi
        from repro.ris import RRCollection

        class PoisonedStore(RRCollection):
            def coverage_counts(self, start: int = 0):
                raise OSError("simulated storage failure")

        cluster = SimulatedCluster(2, seed=0)
        healthy = RRCollection(small_wc_graph.num_nodes)
        poisoned = PoisonedStore(small_wc_graph.num_nodes)
        with pytest.raises(MachineFailure) as info:
            newgreedi(cluster, 2, stores=[healthy, poisoned], backend="reference")
        assert info.value.machine_id == 1
        assert isinstance(info.value.__cause__, OSError)

    def test_flat_conversion_failure_attributes_machine(self, small_wc_graph):
        """With the flat backend the CSR conversion runs inside the metered
        reset phase, so a store erroring there is attributed too."""
        import numpy as np

        from repro.coverage import newgreedi
        from repro.ris import RRCollection
        from repro.ris.rrset import RRSample

        class PoisonedStore(RRCollection):
            def get(self, idx: int):
                raise OSError("simulated storage failure")

        cluster = SimulatedCluster(2, seed=0)
        sample = RRSample(
            nodes=np.asarray([0], dtype=np.int32), root=0, edges_examined=0
        )
        healthy = RRCollection(small_wc_graph.num_nodes)
        healthy.add(sample)
        poisoned = PoisonedStore(small_wc_graph.num_nodes)
        poisoned.add(sample)
        with pytest.raises(MachineFailure) as info:
            newgreedi(cluster, 2, stores=[healthy, poisoned], backend="flat")
        assert info.value.machine_id == 1
        assert isinstance(info.value.__cause__, OSError)
