"""Unit tests for the simulated cluster and machines."""

import itertools

import numpy as np
import pytest

from repro.cluster import (
    COMPUTATION,
    GENERATION,
    Machine,
    NetworkModel,
    SimulatedCluster,
)


class TestMachine:
    def test_run_returns_result_and_time(self):
        clock = itertools.count(start=0.0, step=1.0)
        machine = Machine(0, np.random.default_rng(0), clock=lambda: next(clock))
        result, elapsed = machine.run(lambda m: m.machine_id + 41)
        assert result == 41
        assert elapsed == 1.0

    def test_init_collection(self):
        machine = Machine(2, np.random.default_rng(0))
        coll = machine.init_collection(10)
        assert machine.collection is coll
        assert coll.num_nodes == 10

    def test_repr(self):
        machine = Machine(1, np.random.default_rng(0))
        assert "id=1" in repr(machine)


class TestClusterBasics:
    def test_machine_count(self):
        cluster = SimulatedCluster(4, seed=0)
        assert cluster.num_machines == 4

    def test_requires_at_least_one_machine(self):
        with pytest.raises(ValueError):
            SimulatedCluster(0)

    def test_machines_have_independent_rngs(self):
        cluster = SimulatedCluster(3, seed=0)
        draws = [m.rng.random() for m in cluster.machines]
        assert len(set(draws)) == 3

    def test_reproducible_for_fixed_seed(self):
        first = SimulatedCluster(3, seed=5)
        second = SimulatedCluster(3, seed=5)
        for a, b in zip(first.machines, second.machines):
            assert a.rng.random() == b.rng.random()

    def test_split_count_even(self):
        cluster = SimulatedCluster(4, seed=0)
        assert cluster.split_count(8) == [2, 2, 2, 2]

    def test_split_count_remainder(self):
        cluster = SimulatedCluster(4, seed=0)
        shares = cluster.split_count(10)
        assert sum(shares) == 10
        assert max(shares) - min(shares) <= 1

    def test_split_count_fewer_items_than_machines(self):
        cluster = SimulatedCluster(4, seed=0)
        assert cluster.split_count(2) == [1, 1, 0, 0]

    def test_init_collections(self):
        cluster = SimulatedCluster(2, seed=0)
        cluster.init_collections(7)
        assert all(m.collection.num_nodes == 7 for m in cluster.machines)


class TestMeteredExecution:
    def test_map_returns_in_machine_order(self):
        cluster = SimulatedCluster(3, seed=0)
        results = cluster.map(COMPUTATION, "ids", lambda m: m.machine_id)
        assert results == [0, 1, 2]

    def test_map_records_phase(self):
        cluster = SimulatedCluster(2, seed=0)
        cluster.map(GENERATION, "work", lambda m: sum(range(1000)))
        assert len(cluster.metrics.phases) == 1
        assert cluster.metrics.phases[0].category == GENERATION
        assert len(cluster.metrics.phases[0].machine_times) == 2

    def test_run_on_master_records_computation(self):
        cluster = SimulatedCluster(2, seed=0)
        value = cluster.run_on_master("merge", lambda: 42)
        assert value == 42
        assert cluster.metrics.computation_time >= 0.0
        assert cluster.metrics.phases[-1].category == COMPUTATION


class TestCommunication:
    def test_gather_charges_network(self):
        net = NetworkModel(bandwidth=1000.0, latency=0.1)
        cluster = SimulatedCluster(2, network=net, seed=0)
        cluster.gather("g", [1000, 2000])
        assert cluster.metrics.communication_time == pytest.approx(3.2)
        assert cluster.metrics.total_bytes == 3000

    def test_gather_validates_payload_count(self):
        cluster = SimulatedCluster(2, seed=0)
        with pytest.raises(ValueError, match="payload sizes"):
            cluster.gather("g", [100])

    def test_broadcast_charges_per_slave(self):
        net = NetworkModel(bandwidth=1000.0, latency=0.1)
        cluster = SimulatedCluster(3, network=net, seed=0)
        cluster.broadcast("b", 100)
        assert cluster.metrics.communication_time == pytest.approx(0.6)
        assert cluster.metrics.total_bytes == 300

    def test_default_network_is_shared_memory(self):
        cluster = SimulatedCluster(1, seed=0)
        assert cluster.network.name == "shared-memory"
