"""ExecutorSpec: parsing, validation, coercion, and the deprecation shims.

The declarative spec API replaces the old ``executor=<name>`` string plus
``processes=``/``start_method=``/``zero_copy=`` keyword plumbing; these
tests pin the shorthand grammar (parse/describe round-trips), the
validation messages, and that every legacy keyword still works behind a
:class:`DeprecationWarning`.
"""

import dataclasses

import pytest

from repro.cluster import (
    EXECUTOR_KINDS,
    EXECUTOR_SPECS,
    ExecutorSpec,
    MultiprocessingSpec,
    SimulatedCluster,
    SimulatedExecutor,
    SimulatedSpec,
    SocketSpec,
    as_spec,
    fold_legacy_executor_kwargs,
    make_executor,
    spec_summary,
)
from repro.core.config import RunConfig
from repro.core.pool import SamplePool
from repro.serve.service import InfluenceService


class TestRegistry:
    def test_all_kinds_registered(self):
        assert set(EXECUTOR_KINDS) == {"simulated", "multiprocessing", "socket"}
        assert set(EXECUTOR_SPECS) == set(EXECUTOR_KINDS)

    def test_specs_are_frozen(self):
        spec = MultiprocessingSpec(processes=2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.processes = 4


class TestParseDescribe:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("simulated", SimulatedSpec()),
            ("multiprocessing", MultiprocessingSpec()),
            ("multiprocessing:4", MultiprocessingSpec(processes=4)),
            ("socket", SocketSpec()),
            ("socket:3", SocketSpec(workers=3)),
            (
                "socket:127.0.0.1:9100,9101",
                SocketSpec(addresses=(("127.0.0.1", 9100), ("127.0.0.1", 9101))),
            ),
            (
                "socket:a:1;b:2,3",
                SocketSpec(addresses=(("a", 1), ("b", 2), ("b", 3))),
            ),
        ],
    )
    def test_parse(self, text, expected):
        assert ExecutorSpec.parse(text) == expected

    @pytest.mark.parametrize(
        "text",
        [
            "simulated",
            "multiprocessing",
            "multiprocessing:4",
            "socket",
            "socket:3",
            "socket:127.0.0.1:9100,9101",
            "socket:a:1;b:2,3",
        ],
    )
    def test_describe_round_trips(self, text):
        spec = ExecutorSpec.parse(text)
        assert ExecutorSpec.parse(spec.describe()) == spec
        assert str(spec) == spec.describe()

    @pytest.mark.parametrize(
        "text", ["", "mpi", "simulated:2", "socket:host", "multiprocessing:x"]
    )
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            ExecutorSpec.parse(text)


class TestValidateCoerce:
    def test_as_spec_identity_and_default(self):
        spec = SocketSpec(workers=2)
        assert as_spec(spec) is spec
        assert as_spec(None) == SimulatedSpec()
        assert as_spec("multiprocessing:2") == MultiprocessingSpec(processes=2)

    def test_as_spec_rejects_garbage(self):
        with pytest.raises(ValueError):
            as_spec(42)

    @pytest.mark.parametrize(
        "spec",
        [
            MultiprocessingSpec(processes=0),
            SocketSpec(workers=0),
            SocketSpec(workers=2, addresses=(("h", 1),)),
            SocketSpec(addresses=(("h", 0),)),
            SocketSpec(connect_timeout=0.0),
            SocketSpec(heartbeat_timeout=-1.0),
            MultiprocessingSpec(start_method="greenlet"),
        ],
    )
    def test_validate_rejects(self, spec):
        with pytest.raises(ValueError):
            spec.validate()

    def test_with_overrides(self):
        spec = SocketSpec().with_overrides(workers=3)
        assert spec.workers == 3 and spec.kind == "socket"

    def test_spec_summary_is_compact(self):
        assert spec_summary(SimulatedSpec()) == {"kind": "simulated"}
        assert spec_summary(MultiprocessingSpec(processes=2)) == {
            "kind": "multiprocessing",
            "processes": 2,
        }


class TestFactory:
    def test_make_executor_accepts_spec_and_string(self, small_wc_graph):
        cluster = SimulatedCluster(2, seed=3)
        with make_executor(SimulatedSpec(), cluster, graph=small_wc_graph) as ex:
            assert isinstance(ex, SimulatedExecutor)
        with make_executor("simulated", cluster, graph=small_wc_graph) as ex:
            assert ex.name == "simulated"

    def test_make_executor_legacy_processes_warns(self, small_wc_graph):
        cluster = SimulatedCluster(2, seed=3)
        with pytest.warns(DeprecationWarning, match="processes= keyword"):
            ex = make_executor(
                "multiprocessing", cluster, graph=small_wc_graph, processes=2
            )
        with ex:
            assert ex.pool.processes == 2

    def test_spec_option_wins_over_legacy_kwarg(self):
        with pytest.warns(DeprecationWarning):
            spec = fold_legacy_executor_kwargs(
                MultiprocessingSpec(processes=3), processes=7
            )
        assert spec.processes == 3

    def test_legacy_kwarg_on_wrong_backend_raises(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="does not apply"):
                fold_legacy_executor_kwargs(SimulatedSpec(), processes=2)


class TestRunConfigShims:
    def test_executor_string_coerced_to_spec(self, small_wc_graph):
        config = RunConfig(graph=small_wc_graph, k=2, executor="multiprocessing:2")
        assert config.executor == MultiprocessingSpec(processes=2)

    def test_bad_executor_keeps_canonical_message(self, small_wc_graph):
        config = RunConfig(graph=small_wc_graph, k=2, executor="mpi")
        with pytest.raises(ValueError, match="config.executor must be one of"):
            config.validate()

    def test_processes_deprecated_and_folded(self, small_wc_graph):
        with pytest.warns(DeprecationWarning, match="RunConfig.processes"):
            config = RunConfig(
                graph=small_wc_graph, k=2, executor="multiprocessing", processes=2
            )
        assert config.executor_spec() == MultiprocessingSpec(processes=2)

    def test_processes_ignored_for_simulated(self, small_wc_graph):
        # The historical keyword was a silent no-op off the mp backend.
        with pytest.warns(DeprecationWarning):
            config = RunConfig(graph=small_wc_graph, k=2, processes=2)
        assert config.executor_spec() == SimulatedSpec()

    def test_invalid_spec_surfaces_in_validate(self, small_wc_graph):
        config = RunConfig(
            graph=small_wc_graph, k=2, executor=SocketSpec(workers=2, addresses=(("h", 1),))
        )
        with pytest.raises(ValueError, match="config.executor is invalid"):
            config.validate()

    def test_describe_uses_shorthand(self, small_wc_graph):
        config = RunConfig(graph=small_wc_graph, k=2, executor="multiprocessing:2")
        assert config.describe()["executor"] == "multiprocessing:2"


class TestPoolAndServiceShims:
    def test_sample_pool_accepts_spec(self, small_wc_graph):
        with SamplePool(small_wc_graph, 2, executor=SimulatedSpec()) as pool:
            assert pool.executor.name == "simulated"

    def test_sample_pool_processes_warns(self, small_wc_graph):
        with pytest.warns(DeprecationWarning, match="SamplePool"):
            with SamplePool(
                small_wc_graph, 2, executor="multiprocessing", processes=2
            ) as pool:
                assert pool.executor.pool.processes == 2

    def test_sample_pool_init_failure_closes_executor(self, small_wc_graph):
        class Boom(Exception):
            pass

        def bad_factory(graph):
            raise Boom

        closed = []
        import repro.core.pool as pool_mod

        original = pool_mod.make_executor

        def tracking(*args, **kwargs):
            ex = original(*args, **kwargs)
            real_close = ex.close
            ex.close = lambda: (closed.append(True), real_close())
            return ex

        pool_mod.make_executor = tracking
        try:
            with pytest.raises(Boom):
                SamplePool(small_wc_graph, 1, sampler_factory=bad_factory)
        finally:
            pool_mod.make_executor = original
        assert closed

    def test_service_processes_warns(self, small_wc_graph):
        with pytest.warns(DeprecationWarning, match="InfluenceService"):
            service = InfluenceService(
                small_wc_graph, machines=2, executor="multiprocessing", processes=2
            )
        service.close()
        service.close()  # idempotent
