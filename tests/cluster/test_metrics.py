"""Unit tests for RunMetrics accounting."""

import pytest

from repro.cluster import COMMUNICATION, COMPUTATION, GENERATION, RunMetrics


@pytest.fixture
def metrics():
    m = RunMetrics()
    m.record_compute_phase(GENERATION, "gen", [1.0, 3.0, 2.0])
    m.record_compute_phase(COMPUTATION, "sel", [0.5, 0.25, 0.75])
    m.record_communication("gather", num_bytes=1024, elapsed=0.1)
    return m


class TestRecording:
    def test_parallel_time_is_max(self, metrics):
        assert metrics.generation_time == 3.0
        assert metrics.computation_time == 0.75

    def test_communication_time(self, metrics):
        assert metrics.communication_time == pytest.approx(0.1)

    def test_total(self, metrics):
        assert metrics.total_time == pytest.approx(3.85)

    def test_total_bytes(self, metrics):
        assert metrics.total_bytes == 1024

    def test_sequential_time_sums_machines(self, metrics):
        # 6.0 generation + 1.5 computation; communication excluded.
        assert metrics.sequential_time == pytest.approx(7.5)

    def test_breakdown_keys(self, metrics):
        breakdown = metrics.breakdown()
        assert set(breakdown) == {GENERATION, COMPUTATION, COMMUNICATION, "total"}

    def test_invalid_compute_category(self, metrics):
        with pytest.raises(ValueError):
            metrics.record_compute_phase(COMMUNICATION, "x", [1.0])

    def test_time_in_unknown_category(self, metrics):
        with pytest.raises(ValueError):
            metrics.time_in("io")

    def test_empty_phase_list(self):
        m = RunMetrics()
        m.record_compute_phase(GENERATION, "empty", [])
        assert m.generation_time == 0.0


class TestMerge:
    def test_merge_appends(self, metrics):
        other = RunMetrics()
        other.record_compute_phase(GENERATION, "more", [4.0])
        metrics.merge(other)
        assert metrics.generation_time == 7.0

    def test_phase_record_total(self, metrics):
        phase = metrics.phases[0]
        assert phase.total_machine_time == pytest.approx(6.0)
        assert phase.parallel_time == pytest.approx(3.0)
