"""Unit tests for RunMetrics accounting."""

import pytest

from repro.cluster import COMMUNICATION, COMPUTATION, GENERATION, RunMetrics


@pytest.fixture
def metrics():
    m = RunMetrics()
    m.record_compute_phase(GENERATION, "gen", [1.0, 3.0, 2.0])
    m.record_compute_phase(COMPUTATION, "sel", [0.5, 0.25, 0.75])
    m.record_communication("gather", num_bytes=1024, elapsed=0.1)
    return m


class TestRecording:
    def test_parallel_time_is_max(self, metrics):
        assert metrics.generation_time == 3.0
        assert metrics.computation_time == 0.75

    def test_communication_time(self, metrics):
        assert metrics.communication_time == pytest.approx(0.1)

    def test_total(self, metrics):
        assert metrics.total_time == pytest.approx(3.85)

    def test_total_bytes(self, metrics):
        assert metrics.total_bytes == 1024

    def test_sequential_time_sums_machines(self, metrics):
        # 6.0 generation + 1.5 computation; communication excluded.
        assert metrics.sequential_time == pytest.approx(7.5)

    def test_breakdown_keys(self, metrics):
        breakdown = metrics.breakdown()
        assert set(breakdown) == {GENERATION, COMPUTATION, COMMUNICATION, "total"}

    def test_invalid_compute_category(self, metrics):
        with pytest.raises(ValueError):
            metrics.record_compute_phase(COMMUNICATION, "x", [1.0])

    def test_time_in_unknown_category(self, metrics):
        with pytest.raises(ValueError):
            metrics.time_in("io")

    def test_empty_phase_list(self):
        m = RunMetrics()
        m.record_compute_phase(GENERATION, "empty", [])
        assert m.generation_time == 0.0


class TestMerge:
    def test_merge_appends(self, metrics):
        other = RunMetrics()
        other.record_compute_phase(GENERATION, "more", [4.0])
        metrics.merge(other)
        assert metrics.generation_time == 7.0

    def test_merge_appends_recovery_events(self, metrics):
        other = RunMetrics()
        other.record_recovery("crash", machine_id=1, label="gen", attempt=1, time_lost=0.5)
        metrics.merge(other)
        assert [e.kind for e in metrics.recovery_events] == ["crash"]
        assert metrics.recovery_time == pytest.approx(0.5)

    def test_phase_record_total(self, metrics):
        phase = metrics.phases[0]
        assert phase.total_machine_time == pytest.approx(6.0)
        assert phase.parallel_time == pytest.approx(3.0)


class TestRoundAnnotations:
    def test_annotated_stamps_phases(self):
        m = RunMetrics()
        with m.annotated(round_index=0, rule="imm"):
            m.record_compute_phase(GENERATION, "gen0", [1.0])
        with m.annotated(round_index=1, rule="imm"):
            m.record_compute_phase(GENERATION, "gen1", [2.0])
            m.record_communication("gather1", num_bytes=10, elapsed=0.1)
        m.record_compute_phase(COMPUTATION, "outside", [0.5])
        assert [p.label for p in m.phases_in_round(0)] == ["gen0"]
        assert [p.label for p in m.phases_in_round(1)] == ["gen1", "gather1"]
        assert m.rounds() == [0, 1]
        assert m.phases[-1].round_index is None

    def test_current_round_and_nesting(self):
        m = RunMetrics()
        assert m.current_round is None
        with m.annotated(round_index=3, rule="outer"):
            assert m.current_round == 3
            with m.annotated(round_index=7, rule="inner"):
                assert m.current_round == 7
                m.record_compute_phase(COMPUTATION, "deep", [1.0])
            assert m.current_round == 3
        assert m.current_round is None
        assert m.phases[0].rule == "inner"

    def test_rounds_deduplicates_in_order(self):
        m = RunMetrics()
        for idx in (2, 0, 2, 1):
            with m.annotated(round_index=idx):
                m.record_compute_phase(GENERATION, f"g{idx}", [1.0])
        assert m.rounds() == [2, 0, 1]


class TestRecoveryAccounting:
    @pytest.fixture
    def faulty(self):
        m = RunMetrics()
        with m.annotated(round_index=1, rule="imm"):
            m.record_recovery("crash", machine_id=0, label="gen", attempt=1, time_lost=1.5)
            m.record_recovery("timeout", machine_id=2, label="gen", attempt=2, time_lost=0.5)
            m.record_recovery(
                "reassignment", machine_id=0, label="gen", attempt=3, time_lost=2.0
            )
            m.record_recovery(
                "reassignment", machine_id=0, label="sel", attempt=1, time_lost=1.0
            )
        return m

    def test_events_of_kind(self, faulty):
        assert len(faulty.recovery_events_of("reassignment")) == 2
        assert faulty.recovery_events_of("corruption") == []

    def test_recovery_time_sums_losses(self, faulty):
        assert faulty.recovery_time == pytest.approx(5.0)

    def test_degraded_machines_deduplicated(self, faulty):
        assert faulty.degraded_machines == (0,)

    def test_failure_breakdown(self, faulty):
        breakdown = faulty.failure_breakdown()
        assert breakdown["crash"] == pytest.approx(1.5)
        assert breakdown["reassignment"] == pytest.approx(3.0)
        assert breakdown["total_lost"] == pytest.approx(5.0)
        assert breakdown["events"] == 4.0
        assert breakdown["degraded_machines"] == 1.0

    def test_events_carry_round_annotation(self, faulty):
        assert all(e.round_index == 1 and e.rule == "imm" for e in faulty.recovery_events)

    def test_recovery_state_roundtrip(self, faulty):
        snapshot = faulty.recovery_state()
        assert all(isinstance(entry, dict) for entry in snapshot)
        fresh = RunMetrics()
        fresh.record_recovery("crash", machine_id=9, label="later", attempt=1)
        fresh.restore_recovery(snapshot)
        # Restored events are prepended before the fresh run's own.
        assert len(fresh.recovery_events) == 5
        assert fresh.recovery_events[0].kind == "crash"
        assert fresh.recovery_events[-1].machine_id == 9
        assert fresh.recovery_events[:4] == faulty.recovery_events
