"""Unit tests for run tracing."""

import pytest

from repro.cluster import (
    COMPUTATION,
    GENERATION,
    RunMetrics,
    render_timeline,
    summarize_phases,
)
from repro.cluster.tracing import summarize_recovery, summarize_rounds


@pytest.fixture
def metrics():
    m = RunMetrics()
    m.record_compute_phase(GENERATION, "search-1/generate", [1.0, 2.0])
    m.record_compute_phase(COMPUTATION, "search-1/newgreedi/map", [0.5])
    m.record_communication("search-1/newgreedi/gather", 100, 0.1)
    m.record_compute_phase(GENERATION, "final/generate", [4.0])
    return m


class TestSummarize:
    def test_depth_one_groups(self, metrics):
        rows = summarize_phases(metrics, depth=1)
        assert [row["group"] for row in rows] == ["search-1", "final"]
        assert rows[0]["parallel_s"] == pytest.approx(2.6)
        assert rows[0]["phases"] == 3
        assert rows[0]["bytes"] == 100

    def test_depth_two_splits(self, metrics):
        rows = summarize_phases(metrics, depth=2)
        groups = [row["group"] for row in rows]
        assert "search-1/generate" in groups
        assert "search-1/newgreedi" in groups

    def test_categories_merged(self, metrics):
        rows = summarize_phases(metrics, depth=1)
        assert "communication" in rows[0]["categories"]
        assert "generation" in rows[0]["categories"]

    def test_invalid_depth(self, metrics):
        with pytest.raises(ValueError):
            summarize_phases(metrics, depth=0)

    def test_category_filter(self, metrics):
        rows = summarize_phases(metrics, depth=1, category=GENERATION)
        assert [row["group"] for row in rows] == ["search-1", "final"]
        # Only the generation phases: 1.0+2.0 then 4.0, no bytes.
        assert rows[0]["parallel_s"] == pytest.approx(2.0)
        assert rows[0]["phases"] == 1
        assert rows[0]["bytes"] == 0
        assert rows[0]["categories"] == GENERATION
        assert rows[1]["parallel_s"] == pytest.approx(4.0)

    def test_empty_metrics_summarize(self):
        assert summarize_phases(RunMetrics()) == []


class TestSummarizeRounds:
    @pytest.fixture
    def annotated_metrics(self):
        m = RunMetrics()
        with m.annotated(round_index=0, rule="imm-search"):
            m.record_compute_phase(GENERATION, "r0/generate", [1.0, 3.0])
            m.record_compute_phase(COMPUTATION, "r0/select", [0.5])
            m.record_communication("r0/gather", 200, 0.25)
        with m.annotated(round_index=1, rule="imm-final"):
            m.record_compute_phase(GENERATION, "r1/generate", [2.0])
        m.record_compute_phase(COMPUTATION, "setup", [0.125])
        return m

    def test_one_row_per_round_plus_overhead(self, annotated_metrics):
        rows = summarize_rounds(annotated_metrics)
        assert [(row["round"], row["rule"]) for row in rows] == [
            (0, "imm-search"),
            (1, "imm-final"),
            (None, None),
        ]

    def test_per_category_times(self, annotated_metrics):
        rows = summarize_rounds(annotated_metrics)
        first = rows[0]
        assert first["generation_s"] == pytest.approx(3.0)  # max of [1, 3]
        assert first["computation_s"] == pytest.approx(0.5)
        assert first["communication_s"] == pytest.approx(0.25)
        assert first["parallel_s"] == pytest.approx(3.75)
        assert first["phases"] == 3
        assert first["bytes"] == 200

    def test_unannotated_phases_trail(self, annotated_metrics):
        rows = summarize_rounds(annotated_metrics)
        overhead = rows[-1]
        assert overhead["round"] is None
        assert overhead["computation_s"] == pytest.approx(0.125)
        # Every phase lands in exactly one row: totals reconcile.
        total = sum(row["parallel_s"] for row in rows)
        assert total == pytest.approx(annotated_metrics.total_time)

    def test_empty_metrics(self):
        assert summarize_rounds(RunMetrics()) == []

    def test_real_run_rounds(self, small_wc_graph):
        from repro.core import diimm

        result = diimm(small_wc_graph, 3, 2, eps=0.5, seed=0)
        rows = summarize_rounds(result.metrics)
        annotated = [row for row in rows if row["round"] is not None]
        assert annotated, "driver rounds must be annotated"
        assert [row["round"] for row in annotated] == sorted(
            row["round"] for row in annotated
        )


class TestSummarizeRecovery:
    def test_empty_for_fault_free_run(self):
        assert summarize_recovery(RunMetrics()) == []

    def test_groups_by_kind_and_machine(self):
        m = RunMetrics()
        m.record_recovery("crash", 1, "r0/gen", attempt=1, time_lost=2.0, detail="boom")
        m.record_recovery("crash", 1, "r1/gen", attempt=2, time_lost=3.0)
        m.record_recovery("straggler", 0, "r1/gen", attempt=1, time_lost=0.5)
        rows = summarize_recovery(m)
        assert [(row["kind"], row["machine"]) for row in rows] == [
            ("crash", 1),
            ("straggler", 0),
        ]
        crash = rows[0]
        assert crash["events"] == 2
        assert crash["time_lost_s"] == pytest.approx(5.0)
        # The detail sticks even when later events carry none.
        assert crash["detail"] == "boom"

    def test_rounds_deduplicated(self):
        m = RunMetrics()
        with m.annotated(round_index=2, rule="dssa"):
            m.record_recovery("drop", 0, "r2/gen", attempt=1, time_lost=1.0)
            m.record_recovery("drop", 0, "r2/gen", attempt=2, time_lost=1.0)
        with m.annotated(round_index=3, rule="dssa"):
            m.record_recovery("drop", 0, "r3/gen", attempt=1, time_lost=1.0)
        (row,) = summarize_recovery(m)
        assert row["rounds"] == [2, 3]
        assert row["events"] == 3


class TestRenderTimeline:
    def test_contains_groups_and_total(self, metrics):
        text = render_timeline(metrics)
        assert "search-1" in text
        assert "final" in text
        assert "total" in text

    def test_bars_proportional(self, metrics):
        text = render_timeline(metrics, width=40)
        lines = text.splitlines()
        final_bar = lines[1].count("#")
        search_bar = lines[0].count("#")
        # final (4.0s) gets a longer bar than search-1 (2.6s).
        assert final_bar > search_bar

    def test_empty_metrics(self):
        assert render_timeline(RunMetrics()) == "(empty timeline)"

    def test_width_validation(self, metrics):
        with pytest.raises(ValueError):
            render_timeline(metrics, width=5)

    def test_real_run_timeline(self, small_wc_graph):
        from repro.core import diimm

        result = diimm(small_wc_graph, 3, 2, eps=0.5, seed=0)
        text = render_timeline(result.metrics)
        assert "final" in text
        assert "%" in text
