"""Unit tests for run tracing."""

import pytest

from repro.cluster import (
    COMPUTATION,
    GENERATION,
    RunMetrics,
    render_timeline,
    summarize_phases,
)


@pytest.fixture
def metrics():
    m = RunMetrics()
    m.record_compute_phase(GENERATION, "search-1/generate", [1.0, 2.0])
    m.record_compute_phase(COMPUTATION, "search-1/newgreedi/map", [0.5])
    m.record_communication("search-1/newgreedi/gather", 100, 0.1)
    m.record_compute_phase(GENERATION, "final/generate", [4.0])
    return m


class TestSummarize:
    def test_depth_one_groups(self, metrics):
        rows = summarize_phases(metrics, depth=1)
        assert [row["group"] for row in rows] == ["search-1", "final"]
        assert rows[0]["parallel_s"] == pytest.approx(2.6)
        assert rows[0]["phases"] == 3
        assert rows[0]["bytes"] == 100

    def test_depth_two_splits(self, metrics):
        rows = summarize_phases(metrics, depth=2)
        groups = [row["group"] for row in rows]
        assert "search-1/generate" in groups
        assert "search-1/newgreedi" in groups

    def test_categories_merged(self, metrics):
        rows = summarize_phases(metrics, depth=1)
        assert "communication" in rows[0]["categories"]
        assert "generation" in rows[0]["categories"]

    def test_invalid_depth(self, metrics):
        with pytest.raises(ValueError):
            summarize_phases(metrics, depth=0)


class TestRenderTimeline:
    def test_contains_groups_and_total(self, metrics):
        text = render_timeline(metrics)
        assert "search-1" in text
        assert "final" in text
        assert "total" in text

    def test_bars_proportional(self, metrics):
        text = render_timeline(metrics, width=40)
        lines = text.splitlines()
        final_bar = lines[1].count("#")
        search_bar = lines[0].count("#")
        # final (4.0s) gets a longer bar than search-1 (2.6s).
        assert final_bar > search_bar

    def test_empty_metrics(self):
        assert render_timeline(RunMetrics()) == "(empty timeline)"

    def test_width_validation(self, metrics):
        with pytest.raises(ValueError):
            render_timeline(metrics, width=5)

    def test_real_run_timeline(self, small_wc_graph):
        from repro.core import diimm

        result = diimm(small_wc_graph, 3, 2, eps=0.5, seed=0)
        text = render_timeline(result.metrics)
        assert "final" in text
        assert "%" in text
