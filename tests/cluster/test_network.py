"""Unit tests for the network cost model."""

import pytest

from repro.cluster import NetworkModel, gigabit_cluster, shared_memory_server


class TestNetworkModel:
    def test_transfer_time(self):
        net = NetworkModel(bandwidth=1000.0, latency=0.5)
        assert net.transfer_time(2000) == pytest.approx(2.5)

    def test_zero_bytes_costs_latency(self):
        net = NetworkModel(bandwidth=1000.0, latency=0.1)
        assert net.transfer_time(0) == pytest.approx(0.1)

    def test_sequential_transfers_sum(self):
        net = NetworkModel(bandwidth=1000.0, latency=0.1)
        assert net.sequential_transfers([1000, 1000]) == pytest.approx(2.2)

    def test_negative_bytes_rejected(self):
        net = NetworkModel(bandwidth=1.0, latency=0.0)
        with pytest.raises(ValueError):
            net.transfer_time(-1)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0.0, latency=0.0)

    def test_invalid_latency_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=1.0, latency=-1.0)


class TestPresets:
    def test_gigabit_bandwidth(self):
        net = gigabit_cluster()
        # 1 Gbps = 125 MB/s: one megabyte takes ~8 ms.
        assert net.transfer_time(1_000_000) == pytest.approx(0.008, rel=0.01)

    def test_shared_memory_faster_than_cluster(self):
        size = 1_000_000
        assert shared_memory_server().transfer_time(size) < gigabit_cluster().transfer_time(size)

    def test_names(self):
        assert gigabit_cluster().name == "1Gbps-cluster"
        assert shared_memory_server().name == "shared-memory"
