"""Cross-module integration tests: the full pipeline on one graph.

These tests walk the complete paper pipeline — graph, weighting, RR
sampling, distributed collection, NEWGREEDI selection, Monte-Carlo
validation — asserting the pieces agree with each other rather than any
single module in isolation.
"""

import math

import numpy as np
import pytest

from repro import (
    SimulatedCluster,
    diimm,
    estimate_spread,
    evaluate_seeds,
    get_model,
    greedy_max_coverage,
    imm,
    load_dataset,
    make_sampler,
    newgreedi,
    weighted_cascade,
)
from repro.graphs import erdos_renyi


@pytest.fixture(scope="module")
def pipeline_graph():
    return weighted_cascade(erdos_renyi(1500, 9000, np.random.default_rng(31)))


class TestRISPipeline:
    def test_rr_estimate_agrees_with_forward_simulation(self, pipeline_graph):
        """Lemma 1 glue test: coverage-based and forward MC spread agree."""
        sampler = make_sampler(pipeline_graph, "ic")
        rng = np.random.default_rng(0)
        samples = sampler.sample_many(20000, rng)
        seeds = [0, 1, 2]
        covered = sum(1 for s in samples if any(v in s for v in seeds))
        ris_estimate = pipeline_graph.num_nodes * covered / len(samples)
        mc = estimate_spread(pipeline_graph, seeds, get_model("ic"), 3000, rng)
        assert ris_estimate == pytest.approx(mc.mean, rel=0.1)

    def test_distributed_collections_cover_like_central(self, pipeline_graph):
        sampler = make_sampler(pipeline_graph, "ic")
        cluster = SimulatedCluster(5, seed=2)
        cluster.init_collections(pipeline_graph.num_nodes)
        for machine in cluster.machines:
            machine.collection.extend(sampler.sample_many(400, machine.rng))
        distributed = newgreedi(cluster, 8)
        central = greedy_max_coverage([m.collection for m in cluster.machines], 8)
        assert distributed.seeds == central.seeds


class TestAlgorithmsAgree:
    def test_imm_and_diimm_select_similar_quality(self, pipeline_graph):
        rng = np.random.default_rng(5)
        model = get_model("ic")
        imm_seeds = imm(pipeline_graph, 8, eps=0.5, seed=7).seeds
        diimm_seeds = diimm(pipeline_graph, 8, 4, eps=0.5, seed=7).seeds
        imm_mc = estimate_spread(pipeline_graph, imm_seeds, model, 1500, rng)
        diimm_mc = estimate_spread(pipeline_graph, diimm_seeds, model, 1500, rng)
        assert diimm_mc.mean == pytest.approx(imm_mc.mean, rel=0.1)

    def test_greedy_beats_random_and_degree_heuristics(self, pipeline_graph):
        """Sanity: DIIMM seeds outperform random seeds and match or beat
        the top-out-degree heuristic."""
        rng = np.random.default_rng(6)
        model = get_model("ic")
        k = 8
        result = diimm(pipeline_graph, k, 4, eps=0.5, seed=9)
        random_seeds = rng.choice(pipeline_graph.num_nodes, size=k, replace=False)
        degree_seeds = np.argsort(pipeline_graph.out_degrees())[-k:]
        ours = estimate_spread(pipeline_graph, result.seeds, model, 1500, rng).mean
        rand = estimate_spread(pipeline_graph, random_seeds, model, 1500, rng).mean
        deg = estimate_spread(pipeline_graph, degree_seeds, model, 1500, rng).mean
        assert ours > rand
        assert ours >= 0.95 * deg


class TestDatasetsEndToEnd:
    def test_facebook_quick_run(self):
        ds = load_dataset("facebook")
        result = diimm(ds.graph, 10, 4, eps=0.6, seed=0)
        assert len(result.seeds) == 10
        mc = evaluate_seeds(
            ds.graph, result.seeds, "ic", 300, np.random.default_rng(0)
        )
        assert mc.mean == pytest.approx(result.estimated_spread, rel=0.2)

    def test_theoretical_guarantee_parameters_propagate(self):
        ds = load_dataset("facebook")
        result = diimm(ds.graph, 10, 4, eps=0.6, seed=0)
        assert result.params["eps"] == 0.6
        assert result.params["delta"] == pytest.approx(1 / ds.num_nodes)
        assert result.lower_bound > 1.0
        assert result.search_rounds <= int(math.log2(ds.num_nodes)) - 1
