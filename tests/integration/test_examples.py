"""Run every example script end-to-end (reduced parameters)."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example(
            "quickstart.py", "--k", "5", "--machines", "4", "--eps", "0.6",
            "--mc-samples", "100",
        )
        assert proc.returncode == 0, proc.stderr
        assert "selected 5 seeds" in proc.stdout
        assert "Monte-Carlo validation" in proc.stdout

    def test_viral_marketing_campaign(self):
        proc = run_example(
            "viral_marketing_campaign.py",
            "--dataset", "facebook",
            "--budget", "8",
            "--machines", "2",
            "--eps", "0.6",
            "--mc-samples", "100",
        )
        assert proc.returncode == 0, proc.stderr
        assert "Strategy comparison" in proc.stdout
        assert "Diffusion-model sensitivity" in proc.stdout

    def test_cluster_scaling_study(self):
        proc = run_example(
            "cluster_scaling_study.py",
            "--dataset", "facebook",
            "--k", "5",
            "--eps", "0.6",
            "--machines", "1", "2",
            "--skip-multiprocessing",
        )
        assert proc.returncode == 0, proc.stderr
        assert "DIIMM scaling" in proc.stdout

    def test_influence_applications(self):
        proc = run_example(
            "influence_applications.py",
            "--dataset", "facebook",
            "--machines", "2",
            "--rr-sets", "2000",
            "--k", "5",
        )
        assert proc.returncode == 0, proc.stderr
        assert "targeted IM" in proc.stdout
        assert "profit maximization" in proc.stdout

    def test_checkpoint_and_resume(self):
        proc = run_example(
            "checkpoint_and_resume.py",
            "--dataset", "facebook",
            "--machines", "2",
            "--rr-sets", "2000",
            "--budgets", "5", "10",
        )
        assert proc.returncode == 0, proc.stderr
        assert "replay verified" in proc.stdout
        assert "Budget sweep" in proc.stdout

    def test_max_coverage_comparison(self):
        proc = run_example(
            "max_coverage_comparison.py",
            "--dataset", "facebook",
            "--k", "5",
            "--cores", "2",
        )
        assert proc.returncode == 0, proc.stderr
        assert "NEWGREEDI" in proc.stdout
        assert "coverage ratio is always exactly 1.0" in proc.stdout
