"""Unit tests for the heuristic seed-selection baselines."""

import pytest

from repro.baselines import (
    degree_discount,
    max_degree,
    pagerank_seeds,
    single_discount,
)
from repro.graphs import (
    GraphBuilder,
    cycle_graph,
    path_graph,
    star_graph,
    uniform,
)


class TestMaxDegree:
    def test_star_hub_first(self):
        assert max_degree(star_graph(5), 1) == [0]

    def test_ties_break_to_lowest_id(self):
        graph = cycle_graph(5)  # all out-degrees equal
        assert max_degree(graph, 3) == [0, 1, 2]

    def test_k_validation(self):
        with pytest.raises(ValueError):
            max_degree(star_graph(3), 0)
        with pytest.raises(ValueError):
            max_degree(star_graph(3), 100)


class TestSingleDiscount:
    def test_discount_avoids_clustered_picks(self):
        # Two hubs: 0 -> {2..6}, 1 -> {2..6} overlapping completely, and a
        # third independent hub 7 -> {8, 9, 10}.  After picking hub 0,
        # hub 1's discounted degree (5 - 0: no selected out-neighbors...)
        builder = GraphBuilder(num_nodes=11)
        for leaf in range(2, 7):
            builder.add_edge(0, leaf)
            builder.add_edge(1, leaf)
        for leaf in range(8, 11):
            builder.add_edge(7, leaf)
        graph = builder.build()
        seeds = single_discount(graph, 2)
        assert seeds[0] == 0  # degree 5, lowest id

    def test_degenerates_to_max_degree_without_overlap(self):
        graph = star_graph(4)
        assert single_discount(graph, 2)[0] == max_degree(graph, 2)[0]

    def test_returns_k_distinct(self, small_wc_graph):
        seeds = single_discount(small_wc_graph, 10)
        assert len(seeds) == 10
        assert len(set(seeds)) == 10


class TestDegreeDiscount:
    def test_returns_k_distinct(self, small_wc_graph):
        seeds = degree_discount(small_wc_graph, 10, p=0.05)
        assert len(seeds) == 10
        assert len(set(seeds)) == 10

    def test_hub_first(self):
        assert degree_discount(star_graph(6), 1)[0] == 0

    def test_p_validation(self):
        with pytest.raises(ValueError):
            degree_discount(star_graph(3), 1, p=0.0)

    def test_discount_formula_shifts_choice(self):
        # Node 1 is an out-neighbor of the first seed 0, so its discounted
        # degree drops (d=3, t=1 -> 1 - 2p) below the untouched hub 9's 3.
        builder = GraphBuilder(num_nodes=13)
        for leaf in range(1, 6):
            builder.add_edge(0, leaf)  # hub 0, degree 5 (includes node 1)
        for leaf in range(6, 9):
            builder.add_edge(1, leaf)  # node 1, degree 3
        for leaf in range(10, 13):
            builder.add_edge(9, leaf)  # node 9, degree 3
        graph = builder.build()
        seeds = degree_discount(graph, 2, p=0.2)
        assert seeds[0] == 0
        assert 9 in seeds  # node 1 was discounted; fresh hub 9 wins


class TestPageRank:
    def test_path_source_ranks_highest(self):
        # On the reversed path, mass accumulates at the original source.
        graph = uniform(path_graph(6), 1.0)
        assert pagerank_seeds(graph, 1) == [0]

    def test_ranks_sum_preserved(self, small_wc_graph):
        seeds = pagerank_seeds(small_wc_graph, 5)
        assert len(seeds) == 5
        assert len(set(seeds)) == 5

    def test_damping_validation(self):
        with pytest.raises(ValueError):
            pagerank_seeds(star_graph(3), 1, damping=1.0)

    def test_uniform_on_cycle(self):
        # Perfect symmetry: lowest ids win by the deterministic tie-break.
        assert pagerank_seeds(cycle_graph(6), 2) == [0, 1]
