"""Unit tests for the CELF Monte-Carlo greedy baseline."""

import numpy as np
import pytest

from repro.baselines import celf_greedy
from repro.diffusion import exact_optimum
from repro.graphs import erdos_renyi, star_graph, uniform, weighted_cascade


class TestCelf:
    def test_star_hub_first(self):
        graph = uniform(star_graph(8), 1.0)
        assert celf_greedy(graph, 1, num_samples=30)[0] == 0

    def test_returns_k_distinct(self, small_wc_graph):
        seeds = celf_greedy(small_wc_graph, 4, num_samples=20)
        assert len(seeds) == 4
        assert len(set(seeds)) == 4

    def test_near_optimal_on_tiny_graph(self):
        graph = weighted_cascade(erdos_renyi(9, 16, np.random.default_rng(1)))
        seeds = celf_greedy(graph, 2, num_samples=600, seed=0)
        from repro.diffusion import exact_spread_ic

        __, opt = exact_optimum(graph, 2, model="ic")
        assert exact_spread_ic(graph, seeds) >= 0.85 * opt

    def test_lt_model_accepted(self, small_wc_graph):
        seeds = celf_greedy(small_wc_graph, 2, model="lt", num_samples=10)
        assert len(seeds) == 2

    def test_k_validation(self, small_wc_graph):
        with pytest.raises(ValueError):
            celf_greedy(small_wc_graph, 0)

    def test_agrees_with_ris_selection_on_small_graph(self):
        """CELF and DIIMM pick seeds of comparable quality — two fully
        independent algorithm stacks validating each other."""
        from repro.core import diimm
        from repro.diffusion import exact_spread_ic

        graph = weighted_cascade(erdos_renyi(10, 20, np.random.default_rng(7)))
        celf_seeds = celf_greedy(graph, 2, num_samples=500, seed=1)
        ris_seeds = diimm(graph, 2, 2, eps=0.3, seed=1).seeds
        celf_value = exact_spread_ic(graph, celf_seeds)
        ris_value = exact_spread_ic(graph, ris_seeds)
        assert abs(celf_value - ris_value) <= 0.25 * max(celf_value, ris_value)
