"""The ``repro.api.run`` facade: dispatch, validation, shim equivalence.

The legacy keyword entry points are now thin shims over the same
``*_from_config`` implementations the facade dispatches to, so both
call styles must return bit-identical results for equal parameters.
"""

from __future__ import annotations

import pytest

import repro
from repro.api import ALGORITHMS, RunConfig, run
from repro.cluster.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.core import diimm, distributed_opimc, distributed_ssa, distributed_subsim, imm
from repro.core.config import BACKENDS, METHODS, MODELS, STOPPINGS


def assert_same_result(a, b):
    assert a.seeds == b.seeds
    assert a.estimated_spread == b.estimated_spread
    assert a.num_rr_sets == b.num_rr_sets
    assert a.total_rr_size == b.total_rr_size
    assert a.algorithm == b.algorithm


class TestDispatch:
    def test_algorithms_registry(self):
        assert ALGORITHMS == ("imm", "diimm", "dssa", "dsubsim", "dopimc")

    def test_unknown_algorithm_rejected(self, small_wc_graph):
        config = RunConfig(graph=small_wc_graph, k=2)
        with pytest.raises(ValueError, match="unknown algorithm 'greedy'"):
            run("greedy", config)

    @pytest.mark.parametrize("name", ["DIIMM", "di-imm", "DI_IMM", "diimm"])
    def test_names_normalize(self, small_wc_graph, name):
        config = RunConfig(graph=small_wc_graph, k=2, machines=2, seed=3)
        reference = run("diimm", config)
        assert_same_result(run(name, config), reference)

    def test_exported_from_package_root(self):
        assert repro.run is run
        assert repro.RunConfig is RunConfig
        assert repro.ALGORITHMS is ALGORITHMS


class TestShimEquivalence:
    """facade(config) == legacy keyword shim, for every algorithm."""

    def test_imm(self, small_wc_graph):
        via_facade = run("imm", RunConfig(graph=small_wc_graph, k=3, eps=0.5, seed=7))
        via_shim = imm(small_wc_graph, 3, eps=0.5, seed=7)
        assert_same_result(via_facade, via_shim)

    def test_diimm(self, small_wc_graph):
        via_facade = run(
            "diimm", RunConfig(graph=small_wc_graph, k=3, machines=3, eps=0.5, seed=7)
        )
        via_shim = diimm(small_wc_graph, 3, 3, eps=0.5, seed=7)
        assert_same_result(via_facade, via_shim)

    def test_dssa(self, small_wc_graph):
        via_facade = run(
            "dssa", RunConfig(graph=small_wc_graph, k=3, machines=3, eps=0.5, seed=7)
        )
        via_shim = distributed_ssa(small_wc_graph, 3, 3, eps=0.5, seed=7)
        assert_same_result(via_facade, via_shim)

    def test_dsubsim(self, small_wc_graph):
        via_facade = run(
            "dsubsim", RunConfig(graph=small_wc_graph, k=3, machines=3, eps=0.5, seed=7)
        )
        via_shim = distributed_subsim(small_wc_graph, 3, 3, eps=0.5, seed=7)
        assert_same_result(via_facade, via_shim)

    def test_dopimc(self, small_wc_graph):
        via_facade = run(
            "dopimc", RunConfig(graph=small_wc_graph, k=3, machines=3, eps=0.5, seed=7)
        )
        via_shim = distributed_opimc(small_wc_graph, 3, 3, eps=0.5, seed=7)
        assert_same_result(via_facade, via_shim)

    def test_shim_forwards_fault_kwargs(self, small_wc_graph):
        """The legacy shims accept faults/retry and stay invariant."""
        reference = diimm(small_wc_graph, 3, 3, eps=0.5, seed=7)
        faulty = diimm(
            small_wc_graph, 3, 3, eps=0.5, seed=7,
            faults="crash@m1", retry=RetryPolicy(max_attempts=3),
        )
        assert_same_result(faulty, reference)
        assert faulty.metrics.recovery_events_of("crash")


class TestExternalResources:
    """run() borrows executors/pools it is handed and never closes them."""

    def test_lent_executor_is_reused_not_closed(self, small_wc_graph):
        from repro.cluster.cluster import SimulatedCluster
        from repro.cluster.executor import make_executor

        config = RunConfig(graph=small_wc_graph, k=3, machines=3, eps=0.5, seed=7)
        cold = run("diimm", config)
        cluster = SimulatedCluster(3, seed=7)
        executor = make_executor("simulated", cluster, graph=small_wc_graph)
        try:
            first = run("diimm", config, executor=executor)
            assert_same_result(first, cold)
            # Still open: the same executor serves further runs.  The lent
            # RNG streams are never rewound (warm pools depend on them
            # continuing), so the repeat draws fresh samples — it must
            # succeed, not repeat bit-for-bit.
            again = run("diimm", config, executor=executor)
            assert len(again.seeds) == 3
            # Per-run metrics fold into the lender's lifetime metrics.
            assert len(cluster.metrics.phases) == (
                len(first.metrics.phases) + len(again.metrics.phases)
            )
        finally:
            executor.close()

    def test_lent_executor_machine_count_must_match(self, small_wc_graph):
        from repro.cluster.cluster import SimulatedCluster
        from repro.cluster.executor import make_executor

        cluster = SimulatedCluster(2, seed=7)
        executor = make_executor("simulated", cluster, graph=small_wc_graph)
        try:
            with pytest.raises(ValueError, match="machines"):
                run(
                    "diimm",
                    RunConfig(graph=small_wc_graph, k=3, machines=4, seed=7),
                    executor=executor,
                )
        finally:
            executor.close()

    @pytest.mark.parametrize("algorithm", ["dssa", "dopimc"])
    def test_lent_executor_works_for_unpoolable_algorithms(
        self, small_wc_graph, algorithm
    ):
        from repro.cluster.cluster import SimulatedCluster
        from repro.cluster.executor import make_executor

        config = RunConfig(graph=small_wc_graph, k=3, machines=3, eps=0.5, seed=7)
        cold = run(algorithm, config)
        cluster = SimulatedCluster(3, seed=7)
        executor = make_executor("simulated", cluster, graph=small_wc_graph)
        try:
            assert_same_result(run(algorithm, config, executor=executor), cold)
        finally:
            executor.close()


class TestValidation:
    """Every validate() branch raises a ValueError naming the field."""

    @pytest.mark.parametrize(
        ("overrides", "message"),
        [
            (dict(graph=None), "config.graph"),
            (dict(k=0), "config.k must be >= 1"),
            (dict(eps=0.0), r"config.eps must be in \(0, 1\)"),
            (dict(eps=1.0), r"config.eps must be in \(0, 1\)"),
            (dict(machines=0), "config.machines must be >= 1"),
            (dict(delta=0.0), r"config.delta must be in \(0, 1\) or None"),
            (dict(delta=1.5), r"config.delta must be in \(0, 1\) or None"),
            (dict(model="sir"), "config.model must be one of"),
            (dict(method="dfs"), "config.method must be one of"),
            (dict(backend="sqlite"), "config.backend must be one of"),
            (dict(executor="mpi"), "config.executor must be one of"),
            (dict(processes=0), "config.processes must be >= 1 or None"),
            (dict(theta_initial=0), "config.theta_initial must be >= 1 or None"),
            (dict(resume=True), "config.resume requires config.checkpoint_dir"),
        ],
    )
    def test_each_branch(self, small_wc_graph, overrides, message):
        base = dict(graph=small_wc_graph, k=2)
        base.update(overrides)
        config = RunConfig(**base)
        with pytest.raises(ValueError, match=message):
            config.validate()

    def test_dsubsim_rejects_lt(self, small_wc_graph):
        config = RunConfig(graph=small_wc_graph, k=2, model="lt")
        with pytest.raises(ValueError, match="config.model must be 'ic' for dsubsim"):
            run("dsubsim", config)
        config.validate()  # fine without the per-algorithm constraint

    def test_facade_validates_before_running(self, small_wc_graph):
        with pytest.raises(ValueError, match="config.k must be >= 1"):
            run("diimm", RunConfig(graph=small_wc_graph, k=0))

    def test_validate_returns_self_for_chaining(self, small_wc_graph):
        config = RunConfig(graph=small_wc_graph, k=2)
        assert config.validate() is config

    def test_vocabulary_constants(self):
        assert BACKENDS == ("flat", "reference", "sketch")
        assert MODELS == ("ic", "lt")
        assert METHODS == ("bfs", "subsim", "vectorized")
        assert STOPPINGS == ("schedule", "error-adaptive")


class TestRunConfig:
    def test_fault_string_parsed_on_construction(self, small_wc_graph):
        config = RunConfig(graph=small_wc_graph, k=2, faults="crash@m1;straggler@m0x2")
        assert isinstance(config.faults, FaultPlan)
        assert config.faults.specs[0] == FaultSpec("crash", 1)

    def test_bad_fault_string_rejected_on_construction(self, small_wc_graph):
        with pytest.raises(ValueError, match="cannot parse fault spec"):
            RunConfig(graph=small_wc_graph, k=2, faults="meteor@m1")

    def test_with_overrides_copies(self, small_wc_graph):
        config = RunConfig(graph=small_wc_graph, k=2, model="ic")
        other = config.with_overrides(model="lt", machines=4)
        assert (other.model, other.machines) == ("lt", 4)
        assert (config.model, config.machines) == ("ic", 1)

    def test_frozen(self, small_wc_graph):
        config = RunConfig(graph=small_wc_graph, k=2)
        with pytest.raises(AttributeError):
            config.k = 3

    def test_describe_is_json_friendly(self, small_wc_graph):
        import json

        config = RunConfig(
            graph=small_wc_graph,
            k=2,
            faults="crash@m1",
            retry=RetryPolicy(max_attempts=2),
        )
        description = config.describe()
        assert description["graph"] == f"graph(n={small_wc_graph.num_nodes})"
        assert description["faults"] == "crash@m1"
        json.dumps(description)
