"""Unit tests for CoverageInstance."""

import numpy as np
import pytest

from repro.coverage import CoverageInstance
from repro.graphs import GraphBuilder, paper_coverage_example


@pytest.fixture
def instance(paper_instance):
    return paper_instance


class TestConstruction:
    def test_counts(self, instance):
        assert instance.num_nodes == 5
        assert instance.num_sets == 6
        assert len(instance) == 6

    def test_total_size(self, instance):
        assert instance.total_size == 12

    def test_duplicate_members_collapsed(self):
        inst = CoverageInstance(3, [[1, 1, 2]])
        assert inst.get(0).tolist() == [1, 2]

    def test_out_of_range_member_rejected(self):
        with pytest.raises(ValueError, match="member ids"):
            CoverageInstance(2, [[5]])

    def test_invalid_universe_rejected(self):
        with pytest.raises(ValueError):
            CoverageInstance(0, [])

    def test_empty_element_allowed(self):
        inst = CoverageInstance(3, [[]])
        assert inst.num_sets == 1
        assert inst.get(0).size == 0


class TestQueries:
    def test_sets_containing(self, instance):
        assert instance.sets_containing(0) == [0, 2, 4]  # v1 covers R1, R3, R5

    def test_coverage_counts(self, instance):
        counts = instance.coverage_counts()
        assert counts[0] == 3  # v1
        assert counts[1] == 4  # v2

    def test_coverage_counts_start(self, instance):
        counts = instance.coverage_counts(start=4)
        assert counts.sum() == 4

    def test_coverage_of(self, instance):
        assert instance.coverage_of([0, 1]) == 6  # {v1, v2} covers all
        assert instance.coverage_of([0, 3]) == 4  # {v1, v4}: R1, R3, R5, R6

    def test_repr(self, instance):
        assert "elements=6" in repr(instance)


class TestFromGraph:
    def test_neighborhood_sets(self):
        graph = GraphBuilder.from_edges([(0, 1), (0, 2), (1, 2)], num_nodes=3)
        inst = CoverageInstance.from_graph(graph)
        # Element v lists v's in-neighbors.
        assert inst.get(1).tolist() == [0]
        assert inst.get(2).tolist() == [0, 1]
        assert inst.get(0).size == 0
        # Set u covers u's out-neighbors.
        assert inst.sets_containing(0) == [1, 2]

    def test_include_self(self):
        graph = GraphBuilder.from_edges([(0, 1)], num_nodes=2)
        inst = CoverageInstance.from_graph(graph, include_self=True)
        assert inst.coverage_of([0]) == 2

    def test_total_size_equals_edges(self):
        graph = GraphBuilder.from_edges([(0, 1), (0, 2), (1, 2)], num_nodes=3)
        assert CoverageInstance.from_graph(graph).total_size == 3


class TestSplit:
    def test_round_robin_partition(self, instance):
        parts = instance.split(3)
        assert [p.num_sets for p in parts] == [2, 2, 2]

    def test_random_partition_preserves_elements(self, instance):
        parts = instance.split(4, rng=np.random.default_rng(0))
        assert sum(p.num_sets for p in parts) == 6
        assert sum(p.total_size for p in parts) == instance.total_size

    def test_single_part_is_whole(self, instance):
        (part,) = instance.split(1)
        assert part.num_sets == instance.num_sets

    def test_invalid_parts(self, instance):
        with pytest.raises(ValueError):
            instance.split(0)

    def test_subinstance_reindexes(self, instance):
        sub = instance.subinstance([0, 5])
        assert sub.num_sets == 2
        assert sub.get(1).tolist() == sorted(paper_coverage_example()[5])


class TestEdgeCases:
    """Coverage gaps: empty collections and degenerate reads."""

    def test_instance_with_no_elements(self):
        empty = CoverageInstance(4, [])
        assert empty.num_sets == 0 and len(empty) == 0
        assert empty.total_size == 0
        assert empty.coverage_of([0, 1, 2, 3]) == 0
        assert empty.coverage_counts().tolist() == [0, 0, 0, 0]
        assert empty.sets_containing(2) == []
        with pytest.raises(IndexError):
            empty.get(0)

    def test_split_of_empty_instance(self):
        parts = CoverageInstance(4, []).split(3)
        assert [p.num_sets for p in parts] == [0, 0, 0]

    def test_coverage_of_empty_and_duplicate_seed_sets(self, instance):
        assert instance.coverage_of([]) == 0
        assert instance.coverage_of([1, 1, 1]) == instance.coverage_of([1])

    def test_coverage_counts_start_past_end(self, instance):
        assert instance.coverage_counts(start=instance.num_sets).sum() == 0

    def test_subinstance_of_nothing(self, instance):
        sub = instance.subinstance([])
        assert sub.num_sets == 0 and sub.num_nodes == instance.num_nodes
