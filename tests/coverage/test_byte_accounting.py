"""Backend-independence of the communication accounting.

The paper's traffic numbers (sparse ``(node, decrement)`` tuples, one
broadcast seed id per round) are a property of the *protocol*, not of the
kernel executing the map stage.  These tests pin that down: a NEWGREEDI
run charges byte-for-byte the same communication whether the map stage is
the reference dict loop or the flat CSR kernel.
"""

import numpy as np
import pytest

from repro.cluster import COMMUNICATION, SimulatedCluster
from repro.coverage import greedi, newgreedi
from repro.coverage.newgreedi import SEED_BYTES, TUPLE_BYTES
from repro.graphs import erdos_renyi, weighted_cascade
from repro.ris import RRCollection, make_sampler

MACHINES = 4


def build_stores(seed: int, count: int = 120):
    graph = weighted_cascade(erdos_renyi(60, 300, np.random.default_rng(seed)))
    samples = make_sampler(graph, "ic").sample_many(count, np.random.default_rng(seed))
    stores = [RRCollection(graph.num_nodes) for __ in range(MACHINES)]
    for idx, sample in enumerate(samples):
        stores[idx % MACHINES].add(sample)
    return graph, stores


def comm_phases(metrics):
    return [
        (p.label, p.num_bytes) for p in metrics.phases if p.category == COMMUNICATION
    ]


class TestNewGreediBytes:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_identical_bytes_both_backends(self, seed):
        graph, stores = build_stores(seed)
        ref_cluster = SimulatedCluster(MACHINES, seed=0)
        flat_cluster = SimulatedCluster(MACHINES, seed=0)
        ref = newgreedi(ref_cluster, 8, stores=list(stores), backend="reference")
        flat = newgreedi(flat_cluster, 8, stores=list(stores), backend="flat")
        assert flat.seeds == ref.seeds
        # Phase-by-phase: same labels, same payload bytes, same order.
        assert comm_phases(flat_cluster.metrics) == comm_phases(ref_cluster.metrics)
        assert flat_cluster.metrics.total_bytes == ref_cluster.metrics.total_bytes

    def test_gather_bytes_are_compressed_sparse_vectors(self):
        """Round r's gather charges the delta + varint size of each
        machine's sparse vector — strictly below the raw TUPLE_BYTES
        per distinct node it used to charge, and never zero (the length
        header always ships)."""
        __, stores = build_stores(5)
        cluster = SimulatedCluster(MACHINES, seed=0)
        result = newgreedi(cluster, 3, stores=list(stores), backend="flat")
        gathers = [
            p.num_bytes
            for p in cluster.metrics.phases
            if p.category == COMMUNICATION and p.label == "newgreedi/gather"
        ]
        assert len(gathers) == len(result.marginals)
        assert all(size > 0 for size in gathers)
        # Upper bound: even a dense response (every node, one tuple each)
        # in the old raw format — compression must only ever shrink.
        for size in gathers:
            assert size < TUPLE_BYTES * stores[0].num_nodes * MACHINES
        broadcasts = [
            p.num_bytes
            for p in cluster.metrics.phases
            if p.category == COMMUNICATION and p.label == "newgreedi/seed"
        ]
        assert broadcasts == [SEED_BYTES * MACHINES] * len(result.marginals)


class TestGreediBytes:
    def test_identical_bytes_both_backends(self):
        from repro.ris.rrset import RRSample

        __, stores = build_stores(9)
        # RRCollection iterates bare node arrays; rebuild samples to merge.
        merged = RRCollection(stores[0].num_nodes)
        for store in stores:
            for idx in range(store.num_sets):
                nodes = np.asarray(store.get(idx), dtype=np.int32)
                merged.add(
                    RRSample(nodes=nodes, root=int(nodes[0]), edges_examined=0)
                )
        ref_cluster = SimulatedCluster(MACHINES, seed=0)
        flat_cluster = SimulatedCluster(MACHINES, seed=0)
        ref = greedi(ref_cluster, merged, 6, backend="reference")
        flat = greedi(flat_cluster, merged, 6, backend="flat")
        assert flat.seeds == ref.seeds
        assert comm_phases(flat_cluster.metrics) == comm_phases(ref_cluster.metrics)
