"""Unit tests for the lazy bucket greedy and its naive oracle."""

import pytest

from repro.coverage import (
    BucketQueue,
    CoverageInstance,
    greedy_max_coverage,
    naive_greedy_max_coverage,
)

import numpy as np


class TestBucketQueue:
    def test_pops_max_count(self):
        counts = np.array([1, 5, 3], dtype=np.int64)
        queue = BucketQueue(counts)
        assert queue.pop_max() == 1

    def test_ties_break_to_lowest_id(self):
        counts = np.array([4, 4, 4], dtype=np.int64)
        queue = BucketQueue(counts)
        assert queue.pop_max() == 0
        assert queue.pop_max() == 1

    def test_lazy_refile(self):
        counts = np.array([5, 4], dtype=np.int64)
        queue = BucketQueue(counts)
        counts[0] = 1  # stale record: 0 sits in bucket 5 but is worth 1
        assert queue.pop_max() == 1
        assert queue.pop_max() == 0

    def test_exhaustion_returns_none(self):
        counts = np.array([1], dtype=np.int64)
        queue = BucketQueue(counts)
        assert queue.pop_max() == 0
        assert queue.pop_max() is None

    def test_zero_counts_never_enqueued(self):
        counts = np.array([0, 0, 2], dtype=np.int64)
        queue = BucketQueue(counts)
        assert queue.pop_max() == 2
        assert queue.pop_max() is None

    def test_candidates_restriction(self):
        counts = np.array([9, 5, 7], dtype=np.int64)
        queue = BucketQueue(counts, candidates=[1, 2])
        assert queue.pop_max() == 2
        assert queue.pop_max() == 1
        assert queue.pop_max() is None

    def test_count_decayed_to_zero_skipped(self):
        counts = np.array([3, 2], dtype=np.int64)
        queue = BucketQueue(counts)
        counts[0] = 0
        assert queue.pop_max() == 1
        assert queue.pop_max() is None


class TestGreedyExample3:
    """Paper Example 3: {v1, v2} covers all six RR sets."""

    def test_selects_optimal_pair(self, paper_instance):
        result = greedy_max_coverage([paper_instance], 2)
        assert sorted(result.seeds) == [0, 1]
        assert result.coverage == 6
        assert result.fraction == 1.0

    def test_first_pick_is_v2(self, paper_instance):
        # v2 covers four RR sets, more than any other node.
        result = greedy_max_coverage([paper_instance], 1)
        assert result.seeds == [1]
        assert result.coverage == 4

    def test_marginals_decrease(self, paper_instance):
        result = greedy_max_coverage([paper_instance], 3)
        assert result.marginals == sorted(result.marginals, reverse=True)


class TestGreedyGeneral:
    def test_rejects_bad_k(self, paper_instance):
        with pytest.raises(ValueError):
            greedy_max_coverage([paper_instance], 0)

    def test_rejects_empty_stores(self):
        with pytest.raises(ValueError, match="at least one"):
            greedy_max_coverage([], 1)

    def test_rejects_mismatched_universes(self, paper_instance):
        other = CoverageInstance(3, [[0]])
        with pytest.raises(ValueError, match="same universe"):
            greedy_max_coverage([paper_instance, other], 1)

    def test_multiple_stores_equivalent_to_union(self, rng):
        from tests.conftest import make_random_instance

        inst = make_random_instance(rng)
        parts = inst.split(3, rng=rng)
        merged = greedy_max_coverage(parts, 4)
        single = greedy_max_coverage([inst], 4)
        assert merged.coverage == single.coverage
        assert merged.seeds == single.seeds

    def test_padding_when_everything_covered(self):
        inst = CoverageInstance(5, [[4]])
        result = greedy_max_coverage([inst], 3)
        assert result.seeds == [4, 0, 1]
        assert result.coverage == 1

    def test_k_larger_than_universe(self):
        inst = CoverageInstance(2, [[0], [1]])
        result = greedy_max_coverage([inst], 5)
        assert result.seeds == [0, 1]

    def test_fraction_empty_store(self):
        inst = CoverageInstance(2, [])
        result = greedy_max_coverage([inst], 1)
        assert result.fraction == 0.0


class TestNaiveOracleAgreement:
    def test_agreement_on_random_instances(self):
        from tests.conftest import make_random_instance

        rng = np.random.default_rng(99)
        for __ in range(25):
            inst = make_random_instance(rng)
            k = int(rng.integers(1, 6))
            fast = greedy_max_coverage([inst], k)
            slow = naive_greedy_max_coverage([inst], k)
            assert fast.seeds == slow.seeds
            assert fast.coverage == slow.coverage

    def test_naive_rejects_bad_k(self, paper_instance):
        with pytest.raises(ValueError):
            naive_greedy_max_coverage([paper_instance], 0)


class TestApproximationGuarantee:
    def test_greedy_at_least_1_minus_1_over_e(self):
        """Greedy coverage >= (1 - 1/e) * optimal coverage (exhaustive)."""
        import itertools
        import math

        from tests.conftest import make_random_instance

        rng = np.random.default_rng(5)
        for __ in range(10):
            inst = make_random_instance(rng, max_sets=10, max_elements=25)
            k = 3
            result = greedy_max_coverage([inst], k)
            best = max(
                inst.coverage_of(combo)
                for combo in itertools.combinations(range(inst.num_nodes), min(k, inst.num_nodes))
            )
            assert result.coverage >= (1 - 1 / math.e) * best - 1e-9
