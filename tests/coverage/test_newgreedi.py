"""Unit tests for NEWGREEDI (Algorithm 1)."""

import numpy as np
import pytest

from repro.cluster import COMMUNICATION, SimulatedCluster, gigabit_cluster
from repro.coverage import (
    CoverageInstance,
    gather_coverage_counts,
    greedy_max_coverage,
    newgreedi,
)
from repro.ris import make_sampler
from tests.conftest import make_random_instance


def run_split(instance, k, num_machines, seed=0):
    cluster = SimulatedCluster(num_machines, network=gigabit_cluster(), seed=seed)
    parts = instance.split(num_machines, rng=np.random.default_rng(seed))
    return newgreedi(cluster, k, stores=parts), cluster


class TestLemma2Equivalence:
    """NEWGREEDI returns exactly the centralized greedy solution."""

    def test_paper_example(self, paper_instance):
        result, __ = run_split(paper_instance, 2, 3)
        central = greedy_max_coverage([paper_instance], 2)
        assert result.seeds == central.seeds
        assert result.coverage == central.coverage == 6

    @pytest.mark.parametrize("num_machines", [1, 2, 3, 7])
    def test_random_instances(self, num_machines):
        rng = np.random.default_rng(17)
        for trial in range(10):
            inst = make_random_instance(rng)
            k = int(rng.integers(1, 6))
            central = greedy_max_coverage([inst], k)
            result, __ = run_split(inst, k, num_machines, seed=trial)
            assert result.seeds == central.seeds
            assert result.coverage == central.coverage

    def test_rr_collection_stores(self, small_wc_graph):
        """End-to-end with real RR collections distributed over machines."""
        sampler = make_sampler(small_wc_graph, "ic")
        cluster = SimulatedCluster(4, seed=3)
        cluster.init_collections(small_wc_graph.num_nodes)
        for machine in cluster.machines:
            machine.collection.extend(sampler.sample_many(100, machine.rng))
        result = newgreedi(cluster, 5)
        merged = greedy_max_coverage(
            [m.collection for m in cluster.machines], 5
        )
        assert result.seeds == merged.seeds
        assert result.coverage == merged.coverage

    def test_initial_counts_shortcut(self, paper_instance):
        """Passing precomputed counts must not change the outcome."""
        cluster = SimulatedCluster(2, seed=0)
        parts = paper_instance.split(2)
        counts = parts[0].coverage_counts() + parts[1].coverage_counts()
        result = newgreedi(cluster, 2, stores=parts, initial_counts=counts)
        central = greedy_max_coverage([paper_instance], 2)
        assert result.seeds == central.seeds

    def test_initial_counts_not_mutated(self, paper_instance):
        cluster = SimulatedCluster(2, seed=0)
        parts = paper_instance.split(2)
        counts = parts[0].coverage_counts() + parts[1].coverage_counts()
        snapshot = counts.copy()
        newgreedi(cluster, 2, stores=parts, initial_counts=counts)
        assert np.array_equal(counts, snapshot)


class TestProtocolAccounting:
    def test_communication_recorded(self, paper_instance):
        __, cluster = run_split(paper_instance, 2, 3)
        comm = [p for p in cluster.metrics.phases if p.category == COMMUNICATION]
        assert comm  # at least the init gather and per-seed rounds
        assert cluster.metrics.total_bytes > 0

    def test_traffic_grows_with_machines(self, small_wc_graph):
        """Total gathered bytes grow with the machine count (same elements,
        more sparse vectors)."""
        sampler = make_sampler(small_wc_graph, "ic")
        samples = sampler.sample_many(400, np.random.default_rng(0))
        totals = {}
        for num_machines in (1, 4):
            cluster = SimulatedCluster(num_machines, seed=0)
            cluster.init_collections(small_wc_graph.num_nodes)
            for idx, sample in enumerate(samples):
                cluster.machines[idx % num_machines].collection.add(sample)
            newgreedi(cluster, 5)
            totals[num_machines] = cluster.metrics.total_bytes
        assert totals[4] >= totals[1]

    def test_covered_per_machine_sums_to_coverage(self, paper_instance):
        result, __ = run_split(paper_instance, 2, 3)
        assert sum(result.covered_per_machine) == result.coverage


class TestValidation:
    def test_k_must_be_positive(self, paper_instance):
        cluster = SimulatedCluster(2, seed=0)
        with pytest.raises(ValueError):
            newgreedi(cluster, 0, stores=paper_instance.split(2))

    def test_store_count_must_match(self, paper_instance):
        cluster = SimulatedCluster(3, seed=0)
        with pytest.raises(ValueError, match="expected 3 stores"):
            newgreedi(cluster, 1, stores=paper_instance.split(2))

    def test_missing_collections_detected(self):
        cluster = SimulatedCluster(2, seed=0)
        with pytest.raises(ValueError, match="no RR collection"):
            newgreedi(cluster, 1)

    def test_mismatched_universe_rejected(self):
        cluster = SimulatedCluster(2, seed=0)
        stores = [CoverageInstance(3, [[0]]), CoverageInstance(4, [[1]])]
        with pytest.raises(ValueError, match="same universe"):
            newgreedi(cluster, 1, stores=stores)

    def test_wrong_initial_counts_length(self, paper_instance):
        cluster = SimulatedCluster(2, seed=0)
        with pytest.raises(ValueError, match="wrong length"):
            newgreedi(
                cluster,
                1,
                stores=paper_instance.split(2),
                initial_counts=np.zeros(3, dtype=np.int64),
            )


class TestGatherCoverageCounts:
    def test_matches_direct_sum(self, paper_instance):
        cluster = SimulatedCluster(2, seed=0)
        parts = paper_instance.split(2)
        gathered = gather_coverage_counts(cluster, parts)
        direct = parts[0].coverage_counts() + parts[1].coverage_counts()
        assert np.array_equal(gathered, direct)

    def test_start_indices_limit_scope(self, small_wc_graph):
        sampler = make_sampler(small_wc_graph, "ic")
        cluster = SimulatedCluster(2, seed=1)
        cluster.init_collections(small_wc_graph.num_nodes)
        for machine in cluster.machines:
            machine.collection.extend(sampler.sample_many(50, machine.rng))
        sizes = [m.collection.num_sets for m in cluster.machines]
        for machine in cluster.machines:
            machine.collection.extend(sampler.sample_many(30, machine.rng))
        partial = gather_coverage_counts(cluster, start_indices=sizes)
        expected = sum(
            (m.collection.coverage_counts(start=sizes[i]) for i, m in enumerate(cluster.machines)),
            start=np.zeros(small_wc_graph.num_nodes, dtype=np.int64),
        )
        assert np.array_equal(partial, expected)

    def test_bad_start_indices_length(self, paper_instance):
        cluster = SimulatedCluster(2, seed=0)
        with pytest.raises(ValueError, match="one entry per machine"):
            gather_coverage_counts(cluster, paper_instance.split(2), start_indices=[0])
