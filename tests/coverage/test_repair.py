"""CoverageState.repair: retraction deltas versus the full-rebuild oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import SimulatedCluster, SimulatedExecutor
from repro.coverage import CoverageState
from repro.ris import make_collection, make_sampler
from repro.ris.flat import append_batch, gather_rows
from repro.ris.rrset import sample_set_range


def per_set_stores(graph, num_machines, seed=3, count=30):
    sampler = make_sampler(graph, model="ic", method="bfs")
    stores = [make_collection(graph.num_nodes, "flat") for _ in range(num_machines)]
    for mid, store in enumerate(stores):
        append_batch(store, sample_set_range(sampler, seed, mid, 0, count))
    return sampler, stores


def ingested_state(graph, stores):
    cluster = SimulatedCluster(len(stores), seed=5)
    executor = SimulatedExecutor(cluster)
    state = CoverageState(graph.num_nodes, len(stores))
    state.ingest(executor, stores)
    return state


def repair_machine(state, store, sampler, machine_id, ids, seed=3):
    """Regenerate ``ids`` in place and feed the retraction to ``state``."""
    ids = np.asarray(ids, dtype=np.int64)
    old_nodes = gather_rows(store.nodes, store.offsets, ids)
    runs = np.split(ids, np.flatnonzero(np.diff(ids) != 1) + 1)
    batches = [
        sample_set_range(sampler, seed, machine_id, int(run[0]), run.size)
        for run in runs
    ]
    from repro.ris.rrset import concat_batches

    batch = concat_batches(batches)
    store.replace_sets(ids, batch)
    state.repair(machine_id, old_nodes, batch.nodes)


class TestRepair:
    def test_matches_rebuild_after_in_place_replacement(self, small_wc_graph):
        sampler, stores = per_set_stores(small_wc_graph, 3)
        state = ingested_state(small_wc_graph, stores)
        # Repairing against the *same* graph regenerates identical bytes,
        # so counts are provably unchanged — and equal to the oracle.
        before = state.counts.copy()
        for mid, ids in enumerate([[0, 1, 2], [5, 9], [29]]):
            repair_machine(state, stores[mid], sampler, mid, ids)
        np.testing.assert_array_equal(state.counts, before)
        np.testing.assert_array_equal(state.counts, state.rebuild_from(stores))

    def test_matches_rebuild_with_changed_contents(self, small_wc_graph):
        sampler, stores = per_set_stores(small_wc_graph, 2)
        state = ingested_state(small_wc_graph, stores)
        # Force genuinely different contents by repairing from a different
        # seed stream; counts must still track the stores exactly.
        for mid, ids in enumerate([[3, 4, 5, 11], [0, 19]]):
            repair_machine(state, stores[mid], sampler, mid, ids, seed=99)
        np.testing.assert_array_equal(state.counts, state.rebuild_from(stores))
        assert state.watermarks == [store.num_sets for store in stores]

    def test_only_below_watermark_rows_need_retraction(self, small_wc_graph):
        sampler, stores = per_set_stores(small_wc_graph, 1, count=20)
        state = ingested_state(small_wc_graph, stores)
        assert state.watermarks == [20]
        # Grow the store beyond the watermark, then repair a mix of
        # ingested and never-ingested sets: only the ingested prefix is
        # retracted (the pool's searchsorted split).
        append_batch(stores[0], sample_set_range(sampler, 3, 0, 20, 10))
        ids = np.array([5, 6, 24, 25], dtype=np.int64)
        old_nodes = gather_rows(stores[0].nodes, stores[0].offsets, ids)
        old_bounds = np.concatenate(
            ([0], np.cumsum(stores[0].offsets[ids + 1] - stores[0].offsets[ids]))
        )
        from repro.ris.rrset import concat_batches

        batch = concat_batches(
            [
                sample_set_range(sampler, 99, 0, 5, 2),
                sample_set_range(sampler, 99, 0, 24, 2),
            ]
        )
        stores[0].replace_sets(ids, batch)
        below = int(np.searchsorted(ids, state.watermarks[0]))
        assert below == 2
        state.repair(0, old_nodes[: old_bounds[below]], batch.nodes[: batch.offsets[below]])
        # After ingesting the tail, counts equal the oracle again.
        cluster = SimulatedCluster(1, seed=5)
        state.ingest(SimulatedExecutor(cluster), stores)
        np.testing.assert_array_equal(state.counts, state.rebuild_from(stores))

    def test_rejects_bad_machine_id(self, small_wc_graph):
        state = CoverageState(small_wc_graph.num_nodes, 2)
        with pytest.raises(ValueError, match="out of range"):
            state.repair(2, np.zeros(0), np.zeros(0))

    def test_fork_copy_on_write_isolation(self, small_wc_graph):
        sampler, stores = per_set_stores(small_wc_graph, 1)
        state = ingested_state(small_wc_graph, stores)
        child = state.fork()
        assert child.counts is state.counts  # shared until first write
        parent_before = state.counts.copy()
        repair_machine(child, stores[0], sampler, 0, [0, 1], seed=7)
        # The child copied before mutating; the parent still sees the
        # pristine aggregate.
        assert child.counts is not state.counts
        np.testing.assert_array_equal(state.counts, parent_before)
        np.testing.assert_array_equal(child.counts, child.rebuild_from(stores))
