"""CoverageState: incremental wave ingestion versus the full-rebuild oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import SimulatedCluster, SimulatedExecutor
from repro.coverage import CoverageState
from repro.coverage.kernel import apply_sparse_delta, sparse_coverage_delta
from repro.ris import make_collection, make_sampler


def grown_stores(graph, rng, num_machines, backend="flat"):
    """Per-machine stores plus a callable growing them by one wave."""
    sampler = make_sampler(graph, model="ic", method="bfs")
    stores = [make_collection(graph.num_nodes, backend) for _ in range(num_machines)]

    def grow(counts):
        for store, count in zip(stores, counts):
            for sample in sampler.sample_many(count, rng):
                store.add(sample)
        return stores

    return stores, grow


@pytest.mark.parametrize("backend", ["flat", "reference"])
def test_incremental_ingest_matches_rebuild(small_wc_graph, rng, backend):
    cluster = SimulatedCluster(3, seed=5)
    executor = SimulatedExecutor(cluster)
    stores, grow = grown_stores(small_wc_graph, rng, 3, backend=backend)
    state = CoverageState(small_wc_graph.num_nodes, 3)

    for wave, counts in enumerate([(40, 30, 20), (10, 0, 25), (0, 0, 0), (7, 7, 7)]):
        grow(counts)
        state.ingest(executor, stores, label=f"wave-{wave}")
        np.testing.assert_array_equal(state.counts, state.rebuild_from(stores))
        assert state.watermarks == [store.num_sets for store in stores]


def test_ingest_phases_and_bytes(small_wc_graph, rng):
    """One map, one gather (the compressed sparse vector), one reduce."""
    from repro.ris.wire import tuple_vector_nbytes

    cluster = SimulatedCluster(2, seed=5)
    executor = SimulatedExecutor(cluster)
    stores, grow = grown_stores(small_wc_graph, rng, 2)
    grow((25, 25))
    state = CoverageState(small_wc_graph.num_nodes, 2)
    state.ingest(executor, stores, label="wave")

    labels = [p.label for p in cluster.metrics.phases]
    assert labels == ["wave/map", "wave/gather", "wave/reduce"]
    expected_bytes = 0
    for store in stores:
        counts = store.coverage_counts()
        nodes = np.flatnonzero(counts)
        expected_bytes += tuple_vector_nbytes(nodes, counts[nodes])
    assert cluster.metrics.total_bytes == expected_bytes
    # The compressed vector must beat the raw 8-bytes-per-tuple format.
    raw_bytes = sum(
        8 * int(np.count_nonzero(store.coverage_counts())) for store in stores
    )
    assert 0 < expected_bytes < raw_bytes


def test_ingest_without_new_sets_is_free(small_wc_graph, rng):
    cluster = SimulatedCluster(2, seed=5)
    executor = SimulatedExecutor(cluster)
    stores, grow = grown_stores(small_wc_graph, rng, 2)
    grow((10, 10))
    state = CoverageState(small_wc_graph.num_nodes, 2)
    state.ingest(executor, stores)
    phases_before = len(cluster.metrics.phases)
    state.ingest(executor, stores)
    assert len(cluster.metrics.phases) == phases_before


def test_local_ingest_moves_no_bytes(small_wc_graph, rng):
    cluster = SimulatedCluster(1, seed=5)
    executor = SimulatedExecutor(cluster)
    stores, grow = grown_stores(small_wc_graph, rng, 1)
    grow((30,))
    state = CoverageState(small_wc_graph.num_nodes, 1)
    state.ingest(executor, stores, communicate=False)
    np.testing.assert_array_equal(state.counts, state.rebuild_from(stores))
    assert cluster.metrics.total_bytes == 0
    assert cluster.metrics.communication_time == 0.0


def test_selection_counts_is_reusable_scratch(small_wc_graph, rng):
    cluster = SimulatedCluster(2, seed=5)
    executor = SimulatedExecutor(cluster)
    stores, grow = grown_stores(small_wc_graph, rng, 2)
    grow((20, 20))
    state = CoverageState(small_wc_graph.num_nodes, 2)
    state.ingest(executor, stores)

    scratch = state.selection_counts()
    np.testing.assert_array_equal(scratch, state.counts)
    scratch[:] = -1  # a selection round trashes the scratch...
    np.testing.assert_array_equal(state.counts, state.rebuild_from(stores))
    again = state.selection_counts()  # ...and the next borrow is pristine
    assert again is scratch
    np.testing.assert_array_equal(again, state.counts)


def test_state_dict_round_trip(small_wc_graph, rng):
    cluster = SimulatedCluster(2, seed=5)
    executor = SimulatedExecutor(cluster)
    stores, grow = grown_stores(small_wc_graph, rng, 2)
    grow((15, 5))
    state = CoverageState(small_wc_graph.num_nodes, 2)
    state.ingest(executor, stores)

    restored = CoverageState(small_wc_graph.num_nodes, 2)
    restored.load_state_dict(state.state_dict())
    np.testing.assert_array_equal(restored.counts, state.counts)
    assert restored.watermarks == state.watermarks


def test_load_state_dict_validates_shape():
    state = CoverageState(10, 2)
    with pytest.raises(ValueError, match="nodes"):
        state.load_state_dict(
            {"counts": np.zeros(5, dtype=np.int64), "watermarks": np.zeros(2)}
        )
    with pytest.raises(ValueError, match="machines"):
        state.load_state_dict(
            {"counts": np.zeros(10, dtype=np.int64), "watermarks": np.zeros(3)}
        )


def test_constructor_and_ingest_validation():
    with pytest.raises(ValueError, match="num_nodes"):
        CoverageState(0, 1)
    with pytest.raises(ValueError, match="num_machines"):
        CoverageState(10, 0)
    state = CoverageState(10, 2)
    cluster = SimulatedCluster(2, seed=0)
    with pytest.raises(ValueError, match="stores"):
        state.ingest(SimulatedExecutor(cluster), [make_collection(10, "flat")])


def test_sparse_delta_round_trip(small_wc_graph, rng):
    """kernel-level check: delta-apply equals direct aggregation."""
    sampler = make_sampler(small_wc_graph, model="ic", method="bfs")
    store = make_collection(small_wc_graph.num_nodes, "flat")
    for sample in sampler.sample_many(50, rng):
        store.add(sample)

    counts = store.coverage_counts(start=0).copy()
    nodes, deltas = sparse_coverage_delta(store, start=20)
    partial = store.coverage_counts(start=0) - store.coverage_counts(start=20)
    rebuilt = partial.copy()
    apply_sparse_delta(rebuilt, nodes, deltas)
    np.testing.assert_array_equal(rebuilt, counts)
    apply_sparse_delta(rebuilt, nodes, deltas, sign=-1)
    np.testing.assert_array_equal(rebuilt, partial)
    with pytest.raises(ValueError, match="sign"):
        apply_sparse_delta(rebuilt, nodes, deltas, sign=0)
