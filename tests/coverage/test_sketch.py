"""Unit tests for the HyperLogLog sketch coverage backend.

Covers the register arithmetic (hashing, bit lengths, merge algebra),
the estimator's accuracy in both the linear-counting and harmonic
regimes, the per-machine store's append/journal/prune protocol, the
master-side state's ingest-versus-rebuild oracle, and the CELF-style
lazy greedy over register banks.
"""

import numpy as np
import pytest

from repro.cluster import SimulatedCluster, make_executor
from repro.coverage.sketch import (
    MAX_PRECISION,
    MIN_PRECISION,
    SketchCoverageState,
    SketchRRCollection,
    _bit_length,
    estimate_bank_degrees,
    hll_estimate,
    hll_relative_error,
    merge_register_updates,
    register_updates,
    sketch_lazy_greedy,
    splitmix64,
)
from repro.ris import make_collection
from repro.ris.rrset import RRSample


class TestRegisterArithmetic:
    def test_splitmix64_is_deterministic_and_spreads(self):
        ids = np.arange(1000, dtype=np.uint64)
        a = splitmix64(ids)
        b = splitmix64(ids)
        np.testing.assert_array_equal(a, b)
        # Sequential inputs must not produce sequential outputs.
        assert np.unique(a).size == 1000
        assert np.abs(np.diff(a.astype(np.float64))).min() > 1

    def test_bit_length_matches_python_exactly(self):
        values = np.array(
            [0, 1, 2, 3, 4, 255, 256, (1 << 53) - 1, 1 << 53, (1 << 53) + 1,
             (1 << 63) - 1, 1 << 63, (1 << 64) - 1],
            dtype=np.uint64,
        )
        expected = [int(v).bit_length() for v in values]
        assert _bit_length(values).tolist() == expected

    def test_register_updates_shapes_and_ranges(self):
        registers, rhos = register_updates(np.arange(5000, dtype=np.uint64), 10)
        assert registers.min() >= 0 and registers.max() < 1024
        # rho is the rank over the remaining 54 bits: 1..55.
        assert rhos.min() >= 1 and rhos.max() <= 55

    def test_merge_register_updates_keeps_max_per_key(self):
        keys = np.array([7, 3, 7, 3, 9], dtype=np.int64)
        rhos = np.array([2, 5, 6, 1, 4], dtype=np.int64)
        merged_keys, merged_rhos = merge_register_updates(keys, rhos)
        assert merged_keys.tolist() == [3, 7, 9]
        assert merged_rhos.tolist() == [5, 6, 4]

    def test_merge_register_updates_empty(self):
        keys, rhos = merge_register_updates(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert keys.size == 0 and rhos.size == 0


class TestEstimator:
    def test_small_range_is_near_exact(self):
        row = np.zeros(1024, dtype=np.uint8)
        registers, rhos = register_updates(np.arange(50, dtype=np.uint64), 10)
        np.maximum.at(row, registers, rhos.astype(np.uint8))
        assert hll_estimate(row) == pytest.approx(50, rel=0.08)

    def test_large_range_within_standard_error(self):
        precision, count = 10, 100_000
        row = np.zeros(1 << precision, dtype=np.uint8)
        registers, rhos = register_updates(
            np.arange(count, dtype=np.uint64), precision
        )
        np.maximum.at(row, registers, rhos.astype(np.uint8))
        estimate = hll_estimate(row)
        # 1.04/sqrt(1024) ~ 3.25%; allow 3 standard errors.
        assert abs(estimate - count) / count < 3 * hll_relative_error(precision)

    def test_stacked_rows_estimate_along_last_axis(self):
        bank = np.zeros((3, 256), dtype=np.uint8)
        registers, rhos = register_updates(np.arange(200, dtype=np.uint64), 8)
        np.maximum.at(bank[1], registers, rhos.astype(np.uint8))
        estimates = hll_estimate(bank)
        assert estimates.shape == (3,)
        assert estimates[0] == 0.0 and estimates[2] == 0.0
        assert estimates[1] == pytest.approx(200, rel=3 * hll_relative_error(8))

    def test_estimate_bank_degrees_matches_unchunked(self):
        rng = np.random.default_rng(4)
        bank = rng.integers(0, 12, size=(100, 64), dtype=np.uint8)
        np.testing.assert_allclose(
            estimate_bank_degrees(bank, chunk=7), hll_estimate(bank)
        )

    def test_relative_error_halves_per_two_precision_bits(self):
        assert hll_relative_error(12) == pytest.approx(hll_relative_error(10) / 2)


class TestSketchRRCollection:
    def make_batch(self, rng, num_sets, num_nodes):
        lengths = rng.integers(1, 6, size=num_sets)
        nodes = rng.integers(0, num_nodes, size=int(lengths.sum()))
        offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
        return nodes.astype(np.int64), offsets

    def test_validation(self):
        with pytest.raises(ValueError, match="num_nodes"):
            SketchRRCollection(0)
        with pytest.raises(ValueError, match="precision"):
            SketchRRCollection(10, precision=MIN_PRECISION - 1)
        with pytest.raises(ValueError, match="precision"):
            SketchRRCollection(10, precision=MAX_PRECISION + 1)
        with pytest.raises(ValueError, match="machine_id"):
            SketchRRCollection(10, machine_id=-1)
        store = SketchRRCollection(10)
        with pytest.raises(ValueError, match="offsets"):
            store.append_arrays(np.array([1]), np.array([0, 2]))
        with pytest.raises(ValueError, match="node ids"):
            store.append_arrays(np.array([10]), np.array([0, 1]))
        with pytest.raises(ValueError, match="edges_examined"):
            store.append_arrays(
                np.array([1, 2]), np.array([0, 1, 2]), edges_examined=[1, 2, 3]
            )

    def test_accounting_mirrors_flat_protocol(self):
        store = SketchRRCollection(20, precision=6)
        nodes = np.array([0, 3, 5, 1], dtype=np.int64)
        store.append_arrays(nodes, np.array([0, 3, 4]), edges_examined=[7, 2])
        assert store.num_sets == 2 and len(store) == 2
        assert store.total_size == 4
        assert store.total_edges_examined == 9
        store.append_arrays(
            np.zeros(0, dtype=np.int64), np.array([0]), edges_examined=5
        )
        assert store.num_sets == 2 and store.total_edges_examined == 14

    def test_add_matches_append_arrays_bit_for_bit(self):
        rng = np.random.default_rng(9)
        nodes, offsets = self.make_batch(rng, 40, 30)
        batched = SketchRRCollection(30, precision=8)
        batched.append_arrays(nodes, offsets)
        one_by_one = SketchRRCollection(30, precision=8)
        one_by_one.extend(
            RRSample(
                nodes=nodes[offsets[i] : offsets[i + 1]].astype(np.int32),
                root=int(nodes[offsets[i]]),
                edges_examined=0,
            )
            for i in range(40)
        )
        np.testing.assert_array_equal(batched.registers, one_by_one.registers)

    def test_coverage_of_is_a_capped_estimate(self):
        store = SketchRRCollection(5, precision=10)
        # Every set contains node 0; node 4 never appears.
        for _ in range(30):
            store.append_arrays(np.array([0, 1]), np.array([0, 2]))
        assert store.coverage_of([]) == 0.0
        assert store.coverage_of([4]) == 0.0
        assert store.coverage_of([0]) == pytest.approx(30, rel=0.15)
        assert store.coverage_of([0, 1, 4]) <= 30.0

    def test_register_delta_and_journal_pruning(self):
        rng = np.random.default_rng(2)
        store = SketchRRCollection(25, precision=6)
        nodes, offsets = self.make_batch(rng, 10, 25)
        store.append_arrays(nodes, offsets)
        wave1_keys, wave1_rhos = store.register_delta(start=0)
        nodes, offsets = self.make_batch(rng, 15, 25)
        store.append_arrays(nodes, offsets)
        # Replaying from 0 must cover both waves' registers.
        both_keys, _ = store.register_delta(start=0)
        assert set(wave1_keys.tolist()) <= set(both_keys.tolist())
        # Replaying the merged delta reproduces the bank exactly.
        replayed = np.zeros_like(store.registers)
        keys, rhos = store.register_delta(start=0)
        replayed[keys] = rhos.astype(np.uint8)
        np.testing.assert_array_equal(replayed, store.registers)
        # Prune, then aligned deltas still work and misaligned ones raise.
        nbytes_before = store.nbytes()
        store.prune_journal(upto=10)
        assert store.nbytes() <= nbytes_before
        tail_keys, _ = store.register_delta(start=10)
        assert tail_keys.size > 0
        empty_keys, empty_rhos = store.register_delta(start=store.num_sets)
        assert empty_keys.size == 0 and empty_rhos.size == 0
        with pytest.raises(ValueError, match="register journal cannot replay"):
            store.register_delta(start=0)
        with pytest.raises(ValueError, match="register journal cannot replay"):
            store.register_delta(start=13)
        store.prune_journal()
        assert store.nbytes() == store.registers.nbytes

    def test_machine_ids_decorrelate_identical_local_waves(self):
        nodes = np.arange(10, dtype=np.int64)
        offsets = np.array([0, 10], dtype=np.int64)
        a = SketchRRCollection(10, precision=10, machine_id=0)
        b = SketchRRCollection(10, precision=10, machine_id=1)
        a.append_arrays(nodes, offsets)
        b.append_arrays(nodes, offsets)
        assert not np.array_equal(a.registers, b.registers)

    def test_make_collection_dispatch(self):
        store = make_collection(12, "sketch", machine_id=2, sketch_precision=7)
        assert isinstance(store, SketchRRCollection)
        assert store.machine_id == 2 and store.precision == 7


class TestSketchCoverageState:
    def fill_stores(self, rng, stores, waves, sets_per_wave):
        for _ in range(waves):
            for store in stores:
                lengths = rng.integers(1, 5, size=sets_per_wave)
                nodes = rng.integers(0, store.num_nodes, size=int(lengths.sum()))
                offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
                store.append_arrays(nodes.astype(np.int64), offsets)

    def test_validation(self):
        with pytest.raises(ValueError, match="num_nodes"):
            SketchCoverageState(0, 1)
        with pytest.raises(ValueError, match="num_machines"):
            SketchCoverageState(5, 0)
        with pytest.raises(ValueError, match="precision"):
            SketchCoverageState(5, 1, precision=2)
        state = SketchCoverageState(5, 2)
        with pytest.raises(ValueError, match="expected 2 stores"):
            state.ingest(None, [SketchRRCollection(5)])

    @pytest.mark.parametrize("communicate", [True, False])
    def test_incremental_ingest_matches_rebuild_oracle(self, communicate):
        rng = np.random.default_rng(17)
        num_nodes, machines = 40, 3
        cluster = SimulatedCluster(machines, seed=0)
        executor = make_executor("simulated", cluster)
        stores = [
            SketchRRCollection(num_nodes, precision=8, machine_id=i)
            for i in range(machines)
        ]
        state = SketchCoverageState(num_nodes, machines, precision=8)
        try:
            self.fill_stores(rng, stores, waves=1, sets_per_wave=20)
            state.ingest(executor, stores, communicate=communicate)
            np.testing.assert_array_equal(
                state.registers, state.rebuild_from(stores)
            )
            assert state.watermarks == [20] * machines
            # The journal is pruned after ingest: stores hold only banks.
            assert all(s.nbytes() == s.registers.nbytes for s in stores)
            # Incremental waves keep matching the full-rebuild oracle.
            self.fill_stores(rng, stores, waves=2, sets_per_wave=15)
            state.ingest(executor, stores, communicate=communicate)
            np.testing.assert_array_equal(
                state.registers, state.rebuild_from(stores)
            )
            assert state.watermarks == [50] * machines
            # No-op ingest when nothing grew.
            before = state.registers.copy()
            state.ingest(executor, stores, communicate=communicate)
            np.testing.assert_array_equal(state.registers, before)
        finally:
            executor.close()

    def test_gather_phase_charges_delta_bytes(self):
        rng = np.random.default_rng(23)
        cluster = SimulatedCluster(2, seed=0)
        executor = make_executor("simulated", cluster)
        stores = [
            SketchRRCollection(30, precision=6, machine_id=i) for i in range(2)
        ]
        state = SketchCoverageState(30, 2, precision=6)
        try:
            self.fill_stores(rng, stores, waves=1, sets_per_wave=25)
            state.ingest(executor, stores, label="wave-0")
            gathers = [
                p for p in executor.metrics.phases if p.label == "wave-0/gather"
            ]
            assert len(gathers) == 1
            assert executor.metrics.total_bytes > 0
        finally:
            executor.close()

    def test_estimate_from_merged_bank(self):
        stores = [SketchRRCollection(6, precision=10, machine_id=i) for i in range(2)]
        for store in stores:
            for _ in range(20):
                store.append_arrays(np.array([0, 2]), np.array([0, 2]))
        state = SketchCoverageState(6, 2, precision=10)
        state.registers = state.rebuild_from(stores)
        assert state.estimate([]) == 0.0
        assert state.estimate([0]) == pytest.approx(40, rel=0.15)


class TestSketchLazyGreedy:
    def bank_for(self, rows, precision=10):
        """A bank where node i covers the distinct id-set ``rows[i]``."""
        num_registers = 1 << precision
        bank = np.zeros((len(rows), num_registers), dtype=np.uint8)
        for i, ids in enumerate(rows):
            if len(ids):
                registers, rhos = register_updates(
                    np.asarray(ids, dtype=np.uint64), precision
                )
                np.maximum.at(bank[i], registers, rhos.astype(np.uint8))
        return bank

    def test_picks_dominating_node_first(self):
        big = list(range(400))
        bank = self.bank_for([big[:50], big, big[200:260], []])
        result = sketch_lazy_greedy(bank, 2, num_elements=400)
        assert result.seeds[0] == 1
        assert result.coverage == pytest.approx(400, rel=0.15)
        assert len(result.marginals) == 2
        assert result.marginals[0] >= result.marginals[1]

    def test_ties_break_to_lowest_node_id(self):
        shared = list(range(300))
        bank = self.bank_for([[], shared, shared])
        result = sketch_lazy_greedy(bank, 1, num_elements=300)
        assert result.seeds[0] == 1

    def test_pads_when_k_exceeds_nodes(self):
        bank = self.bank_for([list(range(100)), list(range(100, 160))])
        result = sketch_lazy_greedy(bank, 5, num_elements=160)
        assert sorted(result.seeds) == [0, 1]
        assert len(result.marginals) == 2

    def test_guard_smaller_than_n_still_finds_best(self):
        rows = [list(range(i * 10, i * 10 + 5)) for i in range(30)]
        rows[17] = list(range(2000))  # the clear winner, far from index 0
        bank = self.bank_for(rows)
        assert sketch_lazy_greedy(bank, 1, 2000, guard=2).seeds[0] == 17

    def test_validation(self):
        bank = self.bank_for([[1, 2]])
        with pytest.raises(ValueError, match="k must be"):
            sketch_lazy_greedy(bank, 0, 2)
        with pytest.raises(ValueError, match="guard"):
            sketch_lazy_greedy(bank, 1, 2, guard=0)
        with pytest.raises(ValueError, match="2-D"):
            sketch_lazy_greedy(bank[0], 1, 2)

    def test_pure_function_of_the_bank(self):
        rng = np.random.default_rng(5)
        rows = [
            rng.integers(0, 5000, size=rng.integers(0, 400)).tolist()
            for _ in range(25)
        ]
        bank = self.bank_for(rows)
        first = sketch_lazy_greedy(bank, 6, 5000)
        second = sketch_lazy_greedy(bank.copy(), 6, 5000)
        assert first.seeds == second.seeds
        assert first.coverage == second.coverage
        assert first.marginals == second.marginals
