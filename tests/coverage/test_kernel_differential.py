"""Differential harness: flat CSR kernel vs the reference dict backend.

Every test here runs the same coverage problem through ``backend="flat"``
(the vectorized CSR kernel) and ``backend="reference"`` (the original
dict-walking loops) and asserts bit-identical results: seed sequences,
per-iteration marginals, ``covered_per_machine`` attribution, and final
coverage.  Inputs span all three diffusion models (IC, LT, and the
general triggering sampler) plus adversarial synthetic collections with
empty sets, singleton sets, and duplicate-heavy sets.

Together with the seeded sweeps, the hypothesis block pushes the harness
past 200 randomized cases per run.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import SimulatedCluster
from repro.coverage import greedi, greedy_max_coverage, newgreedi
from repro.diffusion.triggering import ICTriggering, LTTriggering
from repro.graphs import erdos_renyi, weighted_cascade
from repro.ris import RRCollection, make_sampler
from repro.ris.rrset import RRSample
from repro.ris.triggering_sampler import TriggeringRRSampler

MODELS = ("ic", "lt", "trig-ic", "trig-lt")
MACHINES = 3
SEEDED_CASES_PER_MODEL = 20


def build_sampler(graph, model: str):
    if model == "trig-ic":
        return TriggeringRRSampler(graph, ICTriggering())
    if model == "trig-lt":
        return TriggeringRRSampler(graph, LTTriggering())
    return make_sampler(graph, model)


def random_graph(rng: np.random.Generator):
    n = int(rng.integers(8, 40))
    m = int(rng.integers(n, 4 * n))
    return weighted_cascade(erdos_renyi(n, m, rng))


def sample_of(nodes, num_nodes: int) -> RRSample:
    arr = np.unique(np.asarray(nodes, dtype=np.int32))
    root = int(arr[0]) if arr.size else 0
    return RRSample(nodes=arr, root=root, edges_examined=int(arr.size))


def split_round_robin(samples, num_nodes: int, machines: int = MACHINES):
    stores = [RRCollection(num_nodes) for __ in range(machines)]
    for idx, sample in enumerate(samples):
        stores[idx % machines].add(sample)
    return stores


def assert_backends_agree(samples, num_nodes: int, k: int) -> None:
    """Run all three algorithms under both backends; demand equality."""
    stores = split_round_robin(samples, num_nodes)
    merged = RRCollection(num_nodes)
    merged.extend(samples)

    ref = greedy_max_coverage(stores, k, backend="reference")
    flat = greedy_max_coverage(stores, k, backend="flat")
    assert flat.seeds == ref.seeds
    assert flat.marginals == ref.marginals
    assert flat.coverage == ref.coverage

    ref_new = newgreedi(
        SimulatedCluster(MACHINES, seed=0), k, stores=list(stores), backend="reference"
    )
    flat_new = newgreedi(
        SimulatedCluster(MACHINES, seed=0), k, stores=list(stores), backend="flat"
    )
    assert flat_new.seeds == ref_new.seeds
    assert flat_new.marginals == ref_new.marginals
    assert flat_new.covered_per_machine == ref_new.covered_per_machine
    assert flat_new.coverage == ref_new.coverage
    # Both match the sequential greedy (Lemma 2's exact equivalence).
    assert flat_new.seeds == ref.seeds

    ref_gre = greedi(SimulatedCluster(MACHINES, seed=0), merged, k, backend="reference")
    flat_gre = greedi(SimulatedCluster(MACHINES, seed=0), merged, k, backend="flat")
    assert flat_gre.seeds == ref_gre.seeds
    assert flat_gre.coverage == ref_gre.coverage


class TestSampledCollections:
    """Seeded sweeps over RR collections drawn from real samplers."""

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("case", range(SEEDED_CASES_PER_MODEL))
    def test_backends_agree(self, model, case):
        rng = np.random.default_rng(1000 * MODELS.index(model) + case)
        graph = random_graph(rng)
        sampler = build_sampler(graph, model)
        count = int(rng.integers(5, 80))
        samples = sampler.sample_many(count, rng)
        k = int(rng.integers(1, 8))
        assert_backends_agree(samples, graph.num_nodes, k)


class TestSyntheticCollections:
    """Hypothesis-generated adversarial collections (no sampler in the
    loop, so empty sets, singletons, and duplicates appear freely)."""

    @settings(max_examples=125, deadline=None)
    @given(data=st.data())
    def test_backends_agree(self, data):
        num_nodes = data.draw(st.integers(2, 15), label="num_nodes")
        raw_sets = data.draw(
            st.lists(
                st.lists(
                    st.integers(0, num_nodes - 1), min_size=0, max_size=num_nodes
                ),
                min_size=0,
                max_size=25,
            ),
            label="sets",
        )
        k = data.draw(st.integers(1, num_nodes), label="k")
        samples = [sample_of(nodes, num_nodes) for nodes in raw_sets]
        assert_backends_agree(samples, num_nodes, k)


class TestEdgeShapes:
    def test_empty_collection(self):
        assert_backends_agree([], num_nodes=6, k=3)

    def test_all_empty_sets(self):
        samples = [sample_of([], 5) for __ in range(7)]
        assert_backends_agree(samples, num_nodes=5, k=2)

    def test_singleton_sets(self):
        rng = np.random.default_rng(42)
        samples = [sample_of([int(rng.integers(0, 9))], 9) for __ in range(30)]
        assert_backends_agree(samples, num_nodes=9, k=4)

    def test_duplicate_heavy_sets(self):
        """Many copies of a handful of distinct sets — stresses tie-breaks,
        since whole blocks of marginals collapse at once."""
        rng = np.random.default_rng(7)
        distinct = [
            sample_of(rng.integers(0, 12, size=int(rng.integers(1, 5))), 12)
            for __ in range(4)
        ]
        samples = [distinct[int(rng.integers(0, 4))] for __ in range(60)]
        assert_backends_agree(samples, num_nodes=12, k=5)

    def test_mixed_empty_and_full(self):
        samples = (
            [sample_of([], 8) for __ in range(5)]
            + [sample_of(range(8), 8)]
            + [sample_of([3], 8) for __ in range(4)]
        )
        assert_backends_agree(samples, num_nodes=8, k=3)

    def test_ties_resolve_to_lowest_id(self):
        """Symmetric instance: both backends must pin the lowest node id."""
        samples = [sample_of([0, 1], 4), sample_of([2, 3], 4)]
        stores = split_round_robin(samples, 4)
        ref = greedy_max_coverage(stores, 1, backend="reference")
        flat = greedy_max_coverage(stores, 1, backend="flat")
        assert ref.seeds == flat.seeds == [0]

    def test_invalid_backend_rejected(self):
        stores = split_round_robin([sample_of([0], 3)], 3)
        with pytest.raises(ValueError, match="backend"):
            greedy_max_coverage(stores, 1, backend="dense")
        with pytest.raises(ValueError, match="backend"):
            newgreedi(SimulatedCluster(MACHINES, seed=0), 1, stores=stores, backend="x")
