"""Unit tests for the GREEDI / RANDGREEDI baselines."""

import math

import numpy as np
import pytest

from repro.cluster import COMMUNICATION, SimulatedCluster
from repro.coverage import (
    CoverageInstance,
    greedi,
    greedy_max_coverage,
    partition_sets,
    randgreedi,
)
from tests.conftest import make_random_instance


class TestPartition:
    def test_round_robin_covers_everything(self):
        parts = partition_sets(10, 3)
        combined = sorted(np.concatenate(parts).tolist())
        assert combined == list(range(10))

    def test_balanced_sizes(self):
        parts = partition_sets(10, 3)
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_random_partition_is_permutation(self):
        parts = partition_sets(10, 4, rng=np.random.default_rng(0))
        combined = sorted(np.concatenate(parts).tolist())
        assert combined == list(range(10))


class TestGreedi:
    def test_paper_example(self, paper_instance):
        cluster = SimulatedCluster(2, seed=0)
        result = greedi(cluster, paper_instance, 2)
        assert len(result.seeds) == 2
        assert result.coverage <= 6

    def test_never_beats_optimum(self):
        """GREEDI stays below the exhaustive optimum (it may occasionally
        edge out the centralized *greedy*, which is itself suboptimal)."""
        import itertools

        rng = np.random.default_rng(1)
        for trial in range(15):
            inst = make_random_instance(rng, max_sets=10, max_elements=30)
            k = int(rng.integers(1, 4))
            best = max(
                inst.coverage_of(combo)
                for combo in itertools.combinations(
                    range(inst.num_nodes), min(k, inst.num_nodes)
                )
            )
            cluster = SimulatedCluster(3, seed=trial)
            result = greedi(cluster, inst, k)
            assert result.coverage <= best

    def test_single_machine_equals_centralized(self, paper_instance):
        cluster = SimulatedCluster(1, seed=0)
        result = greedi(cluster, paper_instance, 2)
        central = greedy_max_coverage([paper_instance], 2)
        assert result.coverage == central.coverage

    def test_candidate_traffic_charged(self, paper_instance):
        cluster = SimulatedCluster(2, seed=0)
        greedi(cluster, paper_instance, 2)
        comm = [p for p in cluster.metrics.phases if p.category == COMMUNICATION]
        assert sum(p.num_bytes for p in comm) > 0

    def test_kappa_defaults_to_k(self, paper_instance):
        cluster = SimulatedCluster(2, seed=0)
        result = greedi(cluster, paper_instance, 3)
        assert len(result.seeds) == 3

    def test_invalid_k(self, paper_instance):
        cluster = SimulatedCluster(2, seed=0)
        with pytest.raises(ValueError):
            greedi(cluster, paper_instance, 0)

    def test_worst_case_guarantee_holds(self):
        """GREEDI coverage >= (1-1/e)^2 / min(l, k) of the optimum."""
        import itertools

        rng = np.random.default_rng(4)
        for trial in range(10):
            inst = make_random_instance(rng, max_sets=10, max_elements=25)
            k = 3
            num_machines = 2
            best = max(
                inst.coverage_of(combo)
                for combo in itertools.combinations(
                    range(inst.num_nodes), min(k, inst.num_nodes)
                )
            )
            cluster = SimulatedCluster(num_machines, seed=trial)
            result = greedi(cluster, inst, k)
            bound = (1 - 1 / math.e) ** 2 / min(num_machines, k)
            assert result.coverage >= bound * best - 1e-9


class TestRandGreedi:
    def test_runs_and_respects_k(self, paper_instance):
        cluster = SimulatedCluster(2, seed=0)
        result = randgreedi(cluster, paper_instance, 2, rng=np.random.default_rng(0))
        assert len(result.seeds) == 2

    def test_shuffle_changes_partition_outcome_possible(self):
        # Adversarial instance where round-robin and a random partition can
        # differ; we only check both run and stay below centralized.
        inst = CoverageInstance(
            6, [[0, 1], [0, 2], [3, 4], [3, 5], [1, 4], [2, 5]]
        )
        import itertools

        best = max(
            inst.coverage_of(combo)
            for combo in itertools.combinations(range(6), 2)
        )
        cluster = SimulatedCluster(3, seed=0)
        result = randgreedi(cluster, inst, 2, rng=np.random.default_rng(8))
        assert result.coverage <= best


class TestEdgeCases:
    """Coverage gaps: empty instances, k > set count, tie-breaking."""

    def test_empty_instance_pads_seeds(self):
        cluster = SimulatedCluster(2, seed=0)
        empty = CoverageInstance(5, [])
        result = greedi(cluster, empty, 3)
        assert len(result.seeds) == len(set(result.seeds)) == 3
        assert result.coverage == 0
        assert result.num_elements == 0

    def test_k_exceeding_set_count_pads_deterministically(self, paper_instance):
        # k = num sets: every set is selected (or padded in), no repeats.
        cluster = SimulatedCluster(2, seed=0)
        result = greedi(cluster, paper_instance, paper_instance.num_nodes)
        assert sorted(result.seeds) == list(range(paper_instance.num_nodes))

    def test_tie_breaking_is_lowest_id_and_deterministic(self):
        # Four sets covering identical element counts: pure tie.  The
        # bucket queue breaks ties to the lowest set id on both the
        # per-partition and the merge stage.
        inst = CoverageInstance(4, [[0], [1], [2], [3]])
        results = [
            greedi(SimulatedCluster(2, seed=0), inst, 2) for _ in range(3)
        ]
        assert all(r.seeds == [0, 1] for r in results)

    def test_backends_agree_on_edge_cases(self):
        inst = CoverageInstance(5, [[0, 1], [1, 2], [3], [3], [3]])
        for k in (1, 3, 5):
            flat = greedi(SimulatedCluster(2, seed=0), inst, k, backend="flat")
            ref = greedi(SimulatedCluster(2, seed=0), inst, k, backend="reference")
            assert flat.seeds == ref.seeds
            assert flat.coverage == ref.coverage

    def test_centralized_greedy_empty_and_overfull(self):
        empty = CoverageInstance(3, [])
        result = greedy_max_coverage([empty], 2)
        assert sorted(result.seeds) == [0, 1] and result.coverage == 0
        inst = CoverageInstance(3, [[0], [0, 1]])
        result = greedy_max_coverage([inst], 5)
        assert sorted(result.seeds) == [0, 1, 2]
        assert result.coverage == 2
