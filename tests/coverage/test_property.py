"""Property-based tests (hypothesis) for the coverage layer.

The central properties:

* coverage is monotone and submodular as a set function;
* the lazy bucket greedy equals the naive re-scan oracle exactly;
* NEWGREEDI equals the centralized greedy for every machine count
  (Lemma 2), under both round-robin and random element distribution.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import SimulatedCluster
from repro.coverage import (
    CoverageInstance,
    greedy_max_coverage,
    naive_greedy_max_coverage,
    newgreedi,
)


@st.composite
def coverage_instances(draw):
    num_sets = draw(st.integers(min_value=2, max_value=15))
    num_elements = draw(st.integers(min_value=1, max_value=25))
    elements = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=num_sets - 1),
                min_size=1,
                max_size=min(5, num_sets),
            )
        )
        for __ in range(num_elements)
    ]
    return CoverageInstance(num_sets, elements)


@settings(max_examples=60, deadline=None)
@given(instance=coverage_instances(), data=st.data())
def test_coverage_is_monotone(instance, data):
    base = data.draw(
        st.sets(st.integers(0, instance.num_nodes - 1), max_size=4)
    )
    extra = data.draw(st.integers(0, instance.num_nodes - 1))
    assert instance.coverage_of(base | {extra}) >= instance.coverage_of(base)


@settings(max_examples=60, deadline=None)
@given(instance=coverage_instances(), data=st.data())
def test_coverage_is_submodular(instance, data):
    """f(A + x) - f(A) >= f(B + x) - f(B) whenever A is a subset of B."""
    small = data.draw(st.sets(st.integers(0, instance.num_nodes - 1), max_size=3))
    additional = data.draw(
        st.sets(st.integers(0, instance.num_nodes - 1), max_size=3)
    )
    big = small | additional
    x = data.draw(st.integers(0, instance.num_nodes - 1))
    gain_small = instance.coverage_of(small | {x}) - instance.coverage_of(small)
    gain_big = instance.coverage_of(big | {x}) - instance.coverage_of(big)
    assert gain_small >= gain_big


@settings(max_examples=50, deadline=None)
@given(instance=coverage_instances(), k=st.integers(min_value=1, max_value=6))
def test_lazy_greedy_equals_naive_oracle(instance, k):
    fast = greedy_max_coverage([instance], k)
    slow = naive_greedy_max_coverage([instance], k)
    assert fast.seeds == slow.seeds
    assert fast.coverage == slow.coverage


@settings(max_examples=40, deadline=None)
@given(
    instance=coverage_instances(),
    k=st.integers(min_value=1, max_value=5),
    num_machines=st.integers(min_value=1, max_value=5),
    shuffle_seed=st.integers(min_value=0, max_value=2**16),
)
def test_newgreedi_equals_centralized_greedy(instance, k, num_machines, shuffle_seed):
    """Lemma 2, property-based: any distribution of elements, any l."""
    central = greedy_max_coverage([instance], k)
    cluster = SimulatedCluster(num_machines, seed=0)
    parts = instance.split(num_machines, rng=np.random.default_rng(shuffle_seed))
    result = newgreedi(cluster, k, stores=parts)
    assert result.seeds == central.seeds
    assert result.coverage == central.coverage


@settings(max_examples=40, deadline=None)
@given(instance=coverage_instances(), k=st.integers(min_value=1, max_value=5))
def test_greedy_coverage_matches_reported_seeds(instance, k):
    """The reported coverage equals an independent recount of the seeds."""
    result = greedy_max_coverage([instance], k)
    assert result.coverage == instance.coverage_of(result.seeds)


@settings(max_examples=40, deadline=None)
@given(instance=coverage_instances(), k=st.integers(min_value=1, max_value=6))
def test_greedy_returns_exactly_k_distinct_seeds(instance, k):
    result = greedy_max_coverage([instance], k)
    expected = min(k, instance.num_nodes)
    assert len(result.seeds) == expected
    assert len(set(result.seeds)) == expected
