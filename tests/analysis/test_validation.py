"""Unit tests for seed-quality validation helpers."""

import pytest

from repro.analysis import (
    approximation_ratio_exact,
    compare_seed_sets,
    evaluate_seeds,
)
from repro.diffusion import exact_spread_ic


class TestEvaluateSeeds:
    def test_model_by_name(self, diamond_graph, rng):
        estimate = evaluate_seeds(diamond_graph, [0], "ic", 50, rng)
        assert estimate.mean == 4.0

    def test_model_by_instance(self, diamond_graph, rng):
        from repro.diffusion import IndependentCascade

        estimate = evaluate_seeds(diamond_graph, [0], IndependentCascade(), 50, rng)
        assert estimate.mean == 4.0

    def test_compare_orders_preserved(self, paper_graph, rng):
        estimates = compare_seed_sets(paper_graph, [[0], [3]], "ic", 4000, rng)
        assert estimates[0].mean > estimates[1].mean


class TestApproximationReport:
    def test_optimal_solution_has_ratio_one(self, paper_graph):
        report = approximation_ratio_exact(paper_graph, [0], model="ic")
        assert report.optimal_seeds == (0,)
        assert report.ratio == pytest.approx(1.0)

    def test_suboptimal_solution_below_one(self, paper_graph):
        report = approximation_ratio_exact(paper_graph, [3], model="ic")
        assert report.ratio < 1.0
        assert report.seed_spread == pytest.approx(
            exact_spread_ic(paper_graph, [3])
        )

    def test_lt_model(self, paper_graph):
        report = approximation_ratio_exact(paper_graph, [0], model="lt")
        assert report.ratio == pytest.approx(1.0)

    def test_duplicate_seeds_deduplicated(self, paper_graph):
        report = approximation_ratio_exact(paper_graph, [0, 0], model="ic")
        assert report.seeds == (0,)
