"""Unit tests for the martingale concentration utilities."""

import math

import numpy as np
import pytest

from repro.analysis import (
    empirical_workload_balance,
    martingale_tail,
    rr_size_lower_tail,
    rr_size_upper_tail,
    workload_concentration,
)
from repro.ris import make_sampler


class TestClosedForms:
    def test_martingale_tail_formula(self):
        value = martingale_tail(10.0, variance_sum=100.0, step_bound=2.0)
        assert value == pytest.approx(math.exp(-100 / (2 * (100 + 20 / 3))))

    def test_martingale_tail_validation(self):
        with pytest.raises(ValueError):
            martingale_tail(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            martingale_tail(1.0, -1.0, 1.0)

    def test_upper_tail_formula(self):
        value = rr_size_upper_tail(1000, 0.1, 500, 5.0)
        expected = math.exp(-(0.01 * 1000 * 5) / (2 * 500 * (1 + 0.1 / 3)))
        assert value == pytest.approx(expected)

    def test_lower_tail_tighter_than_upper(self):
        upper = rr_size_upper_tail(1000, 0.1, 500, 5.0)
        lower = rr_size_lower_tail(1000, 0.1, 500, 5.0)
        assert lower <= upper

    def test_bounds_shrink_with_more_samples(self):
        small = workload_concentration(100, 0.1, 500, 5.0)
        large = workload_concentration(100_000, 0.1, 500, 5.0)
        assert large < small

    def test_bounds_are_probabilities_eventually(self):
        assert 0 <= workload_concentration(10**7, 0.2, 1000, 10.0) <= 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            rr_size_upper_tail(0, 0.1, 10, 1.0)
        with pytest.raises(ValueError):
            rr_size_lower_tail(10, 0.1, 10, 0.0)


class TestEmpiricalBalance:
    def test_perfectly_balanced(self):
        balance = empirical_workload_balance([10.0, 10.0, 10.0])
        assert balance.max_over_mean == 1.0
        assert balance.relative_spread == 0.0

    def test_imbalance_reported(self):
        balance = empirical_workload_balance([5.0, 15.0])
        assert balance.mean == 10.0
        assert balance.max_over_mean == 1.5
        assert balance.min_over_mean == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_workload_balance([])

    def test_zero_workloads(self):
        balance = empirical_workload_balance([0.0, 0.0])
        assert balance.max_over_mean == 1.0


class TestConcentrationInPractice:
    def test_rr_workload_concentrates(self, small_wc_graph):
        """Corollary 1 in action: per-machine totals of equal sample counts
        stay close to each other."""
        sampler = make_sampler(small_wc_graph, "ic")
        totals = []
        for machine_seed in range(8):
            rng = np.random.default_rng(machine_seed)
            samples = sampler.sample_many(2000, rng)
            totals.append(sum(len(s) for s in samples))
        balance = empirical_workload_balance(totals)
        assert balance.relative_spread < 0.15
