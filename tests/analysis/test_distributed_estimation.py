"""Unit tests for distributed Monte-Carlo influence estimation."""

import numpy as np
import pytest

from repro.analysis import distributed_spread_estimate
from repro.diffusion import estimate_spread, exact_spread_ic, get_model


class TestDistributedEstimation:
    def test_deterministic_graph_exact(self, diamond_graph):
        estimate = distributed_spread_estimate(
            diamond_graph, [0], num_machines=3, num_samples=30
        )
        assert estimate.mean == 4.0
        assert estimate.stderr == 0.0
        assert estimate.num_samples == 30

    def test_matches_exact_value(self, paper_graph):
        estimate = distributed_spread_estimate(
            paper_graph, [0], num_machines=4, num_samples=40000, seed=1
        )
        assert estimate.mean == pytest.approx(
            exact_spread_ic(paper_graph, [0]), abs=0.05
        )

    def test_matches_single_machine_estimator(self, small_wc_graph):
        distributed = distributed_spread_estimate(
            small_wc_graph, [0, 1], num_machines=5, num_samples=4000, seed=2
        )
        single = estimate_spread(
            small_wc_graph, [0, 1], get_model("ic"), 4000, np.random.default_rng(3)
        )
        assert distributed.mean == pytest.approx(single.mean, rel=0.1)
        assert distributed.stderr == pytest.approx(single.stderr, rel=0.35)

    def test_lt_model_by_name(self, paper_graph):
        estimate = distributed_spread_estimate(
            paper_graph, [0], num_machines=2, num_samples=20000, model="lt"
        )
        assert estimate.mean == pytest.approx(3.9, abs=0.06)

    def test_invalid_samples(self, paper_graph):
        with pytest.raises(ValueError):
            distributed_spread_estimate(paper_graph, [0], 2, 0)

    def test_machine_count_does_not_bias(self, paper_graph):
        means = [
            distributed_spread_estimate(
                paper_graph, [0], num_machines=m, num_samples=20000, seed=7
            ).mean
            for m in (1, 3, 7)
        ]
        for mean in means:
            assert mean == pytest.approx(3.664, abs=0.07)
