"""Ablations for the design choices DESIGN.md calls out (not paper figures).

* lazy bucket greedy vs naive re-scan;
* sparse tuple traffic vs dense vectors (Section III-C optimisation);
* SUBSIM vs plain reverse BFS generation (Fig 7's mechanism);
* per-machine workload balance vs the Corollary 1 bound.
"""

import pytest
from conftest import QUICK

from repro.experiments import (
    communication_scaling,
    epsilon_sweep,
    heterogeneity,
    lazy_vs_naive_greedy,
    seed_quality_comparison,
    static_vs_dynamic_updates,
    subsim_vs_bfs_generation,
    traffic_tuple_vs_dense,
    workload_balance,
)


def test_ablation_lazy_vs_naive(benchmark, record_rows):
    rows = benchmark.pedantic(
        lazy_vs_naive_greedy,
        kwargs={"dataset": "facebook", "k_values": (10, 50)},
        rounds=1,
        iterations=1,
    )
    record_rows("ablation_lazy_vs_naive", rows, "Ablation — lazy bucket vs naive greedy")
    assert all(row["speedup"] > 1.0 for row in rows)


def test_ablation_traffic(benchmark, record_rows):
    rows = benchmark.pedantic(
        traffic_tuple_vs_dense,
        kwargs={"dataset": "facebook", "machine_counts": (4,) if QUICK else (4, 16)},
        rounds=1,
        iterations=1,
    )
    record_rows("ablation_traffic", rows, "Ablation — tuple vs dense communication")
    assert all(row["saving_factor"] >= 1.0 for row in rows)


def test_ablation_subsim_generation(benchmark, record_rows):
    rows = benchmark.pedantic(
        subsim_vs_bfs_generation,
        kwargs={"num_rr_sets": 1000 if QUICK else 3000},
        rounds=1,
        iterations=1,
    )
    record_rows("ablation_subsim", rows, "Ablation — SUBSIM vs reverse-BFS generation")
    assert any(row["speedup"] > 1.0 for row in rows)


def test_ablation_heterogeneity(benchmark, record_rows):
    rows = benchmark.pedantic(
        heterogeneity,
        kwargs={"dataset": "facebook", "num_machines": 8, "num_rr_sets": 4000},
        rounds=1,
        iterations=1,
    )
    record_rows(
        "ablation_heterogeneity",
        rows,
        "Ablation — even vs weighted split on a heterogeneous cluster",
    )
    even = next(r for r in rows if r["strategy"] == "even")
    assert even["vs_weighted"] > 1.0


def test_ablation_seed_quality(benchmark, record_rows):
    rows = benchmark.pedantic(
        seed_quality_comparison,
        kwargs={
            "datasets": ("facebook",) if QUICK else ("facebook", "twitter"),
            "k": 50,
            "eps": 0.5,
            "mc_samples": 100 if QUICK else 300,
        },
        rounds=1,
        iterations=1,
    )
    record_rows(
        "ablation_seed_quality",
        rows,
        "Extension — DIIMM vs heuristic baselines (MC spread)",
    )
    diimm_rows = [r for r in rows if r["strategy"] == "DIIMM"]
    assert all(r["vs_best"] >= 0.9 for r in diimm_rows)


def test_ablation_communication_scaling(benchmark, record_rows):
    rows = benchmark.pedantic(
        communication_scaling,
        kwargs={
            "dataset": "facebook" if QUICK else "livejournal",
            "machine_counts": (1, 4) if QUICK else (1, 2, 4, 8, 16),
            "num_rr_sets": 4000 if QUICK else 20000,
        },
        rounds=1,
        iterations=1,
    )
    record_rows(
        "ablation_communication",
        rows,
        "Ablation — NEWGREEDI communication vs machines (fixed RR pool)",
    )
    # Communication grows with machines; identical coverage throughout.
    assert rows[-1]["communication_s"] >= rows[0]["communication_s"]
    assert len({row["coverage"] for row in rows}) == 1


def test_ablation_epsilon_sweep(benchmark, record_rows):
    rows = benchmark.pedantic(
        epsilon_sweep,
        kwargs={
            "dataset": "facebook",
            "eps_values": (0.6, 0.4) if QUICK else (0.6, 0.5, 0.4, 0.3),
        },
        rounds=1,
        iterations=1,
    )
    record_rows("ablation_epsilon", rows, "Ablation — RR-set budget vs eps (1/eps^2 law)")
    # theta grows when eps shrinks, tracking the 1/eps^2 prediction.
    last = rows[-1]
    assert last["theta_ratio"] == pytest.approx(last["expected_ratio"], rel=0.5)


def test_ablation_workload_balance(benchmark, record_rows):
    rows = benchmark.pedantic(
        workload_balance,
        kwargs={
            "dataset": "facebook" if QUICK else "livejournal",
            "machine_counts": (4,) if QUICK else (4, 16, 64),
            "num_rr_sets": 4000 if QUICK else 20000,
        },
        rounds=1,
        iterations=1,
    )
    record_rows("ablation_workload", rows, "Ablation — workload balance (Corollary 1)")
    for row in rows:
        assert row["max_over_mean"] < 1.6


def test_ablation_static_vs_dynamic(benchmark, record_rows):
    rows = benchmark.pedantic(
        static_vs_dynamic_updates,
        kwargs={
            "dataset": "facebook",
            "machines": 2,
            "sets_per_machine": 400 if QUICK else 600,
            "num_updates": 2 if QUICK else 3,
            "edges_per_update": 2,
        },
        rounds=1,
        iterations=1,
    )
    record_rows(
        "ablation_static_vs_dynamic",
        rows,
        "Ablation — static recompute vs dynamic in-place repair",
    )
    assert all(row["speedup"] > 1.0 for row in rows)
