"""Ablations for the design choices DESIGN.md calls out (not paper figures).

Registry-driven: every ablation is one declarative :class:`Ablation`
entry — runner, QUICK/full kwargs, result-file name, and an acceptance
check over the rows — and a single parametrized test executes the whole
registry.  Adding an ablation is adding a row, not a function.

The sweep covers the classic single-axis ablations (lazy greedy, tuple
traffic, SUBSIM generation, heterogeneity, seed quality, communication
and workload scaling, the eps law, dynamic repair) plus the full
``{flat, sketch} x {bfs, vectorized} x executor`` matrix with
per-component speedup and memory columns.
"""

from dataclasses import dataclass, field
from typing import Callable, Sequence

import pytest
from conftest import QUICK

from repro.experiments import (
    backend_method_matrix,
    communication_scaling,
    epsilon_sweep,
    heterogeneity,
    lazy_vs_naive_greedy,
    seed_quality_comparison,
    static_vs_dynamic_updates,
    subsim_vs_bfs_generation,
    traffic_tuple_vs_dense,
    workload_balance,
)


@dataclass(frozen=True)
class Ablation:
    """One registry entry: what to run, with what, and what must hold."""

    name: str  # result-file stem under benchmarks/results/
    title: str  # table heading
    runner: Callable[..., list]
    kwargs: dict = field(default_factory=dict)
    quick_kwargs: dict = field(default_factory=dict)  # overrides when REPRO_QUICK
    check: Callable[[list], None] = lambda rows: None

    def resolved_kwargs(self) -> dict:
        return {**self.kwargs, **(self.quick_kwargs if QUICK else {})}


def _check_lazy(rows):
    assert all(row["speedup"] > 1.0 for row in rows)


def _check_traffic(rows):
    assert all(row["saving_factor"] >= 1.0 for row in rows)


def _check_subsim(rows):
    assert any(row["speedup"] > 1.0 for row in rows)


def _check_heterogeneity(rows):
    even = next(r for r in rows if r["strategy"] == "even")
    assert even["vs_weighted"] > 1.0


def _check_seed_quality(rows):
    diimm_rows = [r for r in rows if r["strategy"] == "DIIMM"]
    assert all(r["vs_best"] >= 0.9 for r in diimm_rows)


def _check_communication(rows):
    # Communication grows with machines; identical coverage throughout.
    assert rows[-1]["communication_s"] >= rows[0]["communication_s"]
    assert len({row["coverage"] for row in rows}) == 1


def _check_epsilon(rows):
    # theta grows when eps shrinks, tracking the 1/eps^2 prediction.
    last = rows[-1]
    assert last["theta_ratio"] == pytest.approx(last["expected_ratio"], rel=0.5)


def _check_workload(rows):
    for row in rows:
        assert row["max_over_mean"] < 1.6


def _check_dynamic(rows):
    assert all(row["speedup"] > 1.0 for row in rows)


def _check_backend_matrix(rows):
    # Every cell of the matrix ran, and every run answered the query.
    assert {(r["backend"], r["method"]) for r in rows} >= {
        ("flat", "bfs"),
        ("flat", "vectorized"),
        ("sketch", "bfs"),
        ("sketch", "vectorized"),
    }
    assert all(r["spread"] > 0 for r in rows)
    # The lossy backend must not lose answer quality: every sketch cell's
    # spread stays within 10% of its flat counterpart.  (The memory win
    # is a scale effect — bench_sketch gates it on the livejournal
    # stand-in; the facebook matrix here is too small for banks to pay.)
    by_key = {(r["backend"], r["method"], r["executor"]): r for r in rows}
    for (backend, method, executor), row in by_key.items():
        if backend != "sketch":
            continue
        flat_row = by_key[("flat", method, executor)]
        assert row["spread"] >= 0.9 * flat_row["spread"]
        assert row["store_mb"] > 0 and row["coverage_mb"] > 0


REGISTRY: Sequence[Ablation] = (
    Ablation(
        name="ablation_lazy_vs_naive",
        title="Ablation — lazy bucket vs naive greedy",
        runner=lazy_vs_naive_greedy,
        kwargs={"dataset": "facebook", "k_values": (10, 50)},
        check=_check_lazy,
    ),
    Ablation(
        name="ablation_traffic",
        title="Ablation — tuple vs dense communication",
        runner=traffic_tuple_vs_dense,
        kwargs={"dataset": "facebook", "machine_counts": (4, 16)},
        quick_kwargs={"machine_counts": (4,)},
        check=_check_traffic,
    ),
    Ablation(
        name="ablation_subsim",
        title="Ablation — SUBSIM vs reverse-BFS generation",
        runner=subsim_vs_bfs_generation,
        kwargs={"num_rr_sets": 3000},
        quick_kwargs={"num_rr_sets": 1000},
        check=_check_subsim,
    ),
    Ablation(
        name="ablation_heterogeneity",
        title="Ablation — even vs weighted split on a heterogeneous cluster",
        runner=heterogeneity,
        kwargs={"dataset": "facebook", "num_machines": 8, "num_rr_sets": 4000},
        check=_check_heterogeneity,
    ),
    Ablation(
        name="ablation_seed_quality",
        title="Extension — DIIMM vs heuristic baselines (MC spread)",
        runner=seed_quality_comparison,
        kwargs={
            "datasets": ("facebook", "twitter"),
            "k": 50,
            "eps": 0.5,
            "mc_samples": 300,
        },
        quick_kwargs={"datasets": ("facebook",), "mc_samples": 100},
        check=_check_seed_quality,
    ),
    Ablation(
        name="ablation_communication",
        title="Ablation — NEWGREEDI communication vs machines (fixed RR pool)",
        runner=communication_scaling,
        kwargs={
            "dataset": "livejournal",
            "machine_counts": (1, 2, 4, 8, 16),
            "num_rr_sets": 20000,
        },
        quick_kwargs={
            "dataset": "facebook",
            "machine_counts": (1, 4),
            "num_rr_sets": 4000,
        },
        check=_check_communication,
    ),
    Ablation(
        name="ablation_epsilon",
        title="Ablation — RR-set budget vs eps (1/eps^2 law)",
        runner=epsilon_sweep,
        kwargs={"dataset": "facebook", "eps_values": (0.6, 0.5, 0.4, 0.3)},
        quick_kwargs={"eps_values": (0.6, 0.4)},
        check=_check_epsilon,
    ),
    Ablation(
        name="ablation_workload",
        title="Ablation — workload balance (Corollary 1)",
        runner=workload_balance,
        kwargs={
            "dataset": "livejournal",
            "machine_counts": (4, 16, 64),
            "num_rr_sets": 20000,
        },
        quick_kwargs={
            "dataset": "facebook",
            "machine_counts": (4,),
            "num_rr_sets": 4000,
        },
        check=_check_workload,
    ),
    Ablation(
        name="ablation_static_vs_dynamic",
        title="Ablation — static recompute vs dynamic in-place repair",
        runner=static_vs_dynamic_updates,
        kwargs={
            "dataset": "facebook",
            "machines": 2,
            "sets_per_machine": 600,
            "num_updates": 3,
            "edges_per_update": 2,
        },
        quick_kwargs={"sets_per_machine": 400, "num_updates": 2},
        check=_check_dynamic,
    ),
    Ablation(
        name="ablation_backend_matrix",
        title="Ablation — backend x method x executor matrix",
        runner=backend_method_matrix,
        kwargs={
            "dataset": "facebook",
            "backends": ("flat", "sketch"),
            "methods": ("bfs", "vectorized"),
            "executors": ("simulated", "multiprocessing"),
            "k": 20,
            "eps": 0.5,
            "machines": 4,
        },
        quick_kwargs={"executors": ("simulated",), "k": 10},
        check=_check_backend_matrix,
    ),
)


@pytest.mark.parametrize("ablation", REGISTRY, ids=[a.name for a in REGISTRY])
def test_ablation(benchmark, record_rows, ablation):
    rows = benchmark.pedantic(
        ablation.runner,
        kwargs=ablation.resolved_kwargs(),
        rounds=1,
        iterations=1,
    )
    record_rows(ablation.name, rows, ablation.title)
    ablation.check(rows)
