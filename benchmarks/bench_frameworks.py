"""Extension: the four distributed RIS frameworks side by side.

Quantifies the paper's Section IV-B remark — DIIMM, DSSA, DOPIM-C and
DSUBSIM differ in how many RR sets they generate (and how), not in
solution quality.  Expect DOPIM-C/DSSA to use markedly fewer RR sets than
DIIMM, DSUBSIM to generate fastest, and all spreads within a few percent.
"""

from conftest import EPS, K, QUICK

from repro.experiments import framework_comparison


def test_framework_comparison(benchmark, record_rows):
    rows = benchmark.pedantic(
        framework_comparison,
        kwargs={
            "datasets": ("facebook",) if QUICK else ("facebook", "twitter"),
            "k": K,
            "eps": EPS,
            "mc_samples": 100 if QUICK else 300,
        },
        rounds=1,
        iterations=1,
    )
    record_rows("extension_frameworks", rows, "Extension — distributed framework comparison")
    for row in rows:
        assert row["vs_best_spread"] >= 0.9
