"""Micro-benchmarks of the hot inner components.

Unlike the figure benchmarks (single metered sweep each), these use
pytest-benchmark's statistical machinery — multiple rounds over small
fixed workloads — to track the throughput of the primitives every
experiment is built from: RR-set generation (three samplers), forward
cascade simulation, and the lazy bucket greedy.
"""

import numpy as np
import pytest

from repro.coverage import CoverageInstance, greedy_max_coverage
from repro.diffusion import IndependentCascade, LinearThreshold
from repro.graphs import load_dataset
from repro.ris import make_sampler

BATCH = 200


@pytest.fixture(scope="module")
def graph():
    return load_dataset("facebook").graph


@pytest.fixture(scope="module")
def instance(graph):
    return CoverageInstance.from_graph(graph)


def test_micro_ic_bfs_sampler(benchmark, graph):
    sampler = make_sampler(graph, "ic", "bfs")
    rng = np.random.default_rng(0)
    benchmark(sampler.sample_many, BATCH, rng)


def test_micro_ic_subsim_sampler(benchmark, graph):
    sampler = make_sampler(graph, "ic", "subsim")
    rng = np.random.default_rng(0)
    benchmark(sampler.sample_many, BATCH, rng)


def test_micro_lt_walk_sampler(benchmark, graph):
    sampler = make_sampler(graph, "lt")
    rng = np.random.default_rng(0)
    benchmark(sampler.sample_many, BATCH, rng)


def test_micro_ic_forward_simulation(benchmark, graph):
    model = IndependentCascade()
    rng = np.random.default_rng(0)
    seeds = list(range(10))

    def run():
        for __ in range(20):
            model.simulate(graph, seeds, rng)

    benchmark(run)


def test_micro_lt_forward_simulation(benchmark, graph):
    model = LinearThreshold()
    rng = np.random.default_rng(0)
    seeds = list(range(10))

    def run():
        for __ in range(20):
            model.simulate(graph, seeds, rng)

    benchmark(run)


def test_micro_lazy_greedy(benchmark, instance):
    benchmark(greedy_max_coverage, [instance], 50)
