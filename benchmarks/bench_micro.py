"""Micro-benchmarks of the hot inner components.

Unlike the figure benchmarks (single metered sweep each), these use
pytest-benchmark's statistical machinery — multiple rounds over small
fixed workloads — to track the throughput of the primitives every
experiment is built from: RR-set generation (three samplers), forward
cascade simulation, and the lazy bucket greedy under both coverage
backends.  ``test_micro_kernel_backend_speedup`` additionally records the
reference-vs-flat comparison to ``results/micro_kernel_backends`` and
*fails* if the flat CSR kernel is ever slower than the reference loops —
the CI regression gate for the vectorized backend.
"""

import time

import numpy as np
import pytest

from repro.cluster import SimulatedCluster
from repro.coverage import CoverageInstance, greedy_max_coverage, newgreedi
from repro.coverage.kernel import as_flat
from repro.diffusion import IndependentCascade, LinearThreshold
from repro.graphs import load_dataset
from repro.ris import make_sampler

BATCH = 200


@pytest.fixture(scope="module")
def graph():
    return load_dataset("facebook").graph


@pytest.fixture(scope="module")
def instance(graph):
    return CoverageInstance.from_graph(graph)


@pytest.fixture(scope="module")
def flat_instance(instance):
    return as_flat(instance)


def test_micro_ic_bfs_sampler(benchmark, graph):
    sampler = make_sampler(graph, "ic", "bfs")
    rng = np.random.default_rng(0)
    benchmark(sampler.sample_many, BATCH, rng)


def test_micro_ic_subsim_sampler(benchmark, graph):
    sampler = make_sampler(graph, "ic", "subsim")
    rng = np.random.default_rng(0)
    benchmark(sampler.sample_many, BATCH, rng)


def test_micro_lt_walk_sampler(benchmark, graph):
    sampler = make_sampler(graph, "lt")
    rng = np.random.default_rng(0)
    benchmark(sampler.sample_many, BATCH, rng)


def test_micro_ic_forward_simulation(benchmark, graph):
    model = IndependentCascade()
    rng = np.random.default_rng(0)
    seeds = list(range(10))

    def run():
        for __ in range(20):
            model.simulate(graph, seeds, rng)

    benchmark(run)


def test_micro_lt_forward_simulation(benchmark, graph):
    model = LinearThreshold()
    rng = np.random.default_rng(0)
    seeds = list(range(10))

    def run():
        for __ in range(20):
            model.simulate(graph, seeds, rng)

    benchmark(run)


def test_micro_lazy_greedy(benchmark, instance):
    benchmark(greedy_max_coverage, [instance], 50, backend="reference")


def test_micro_lazy_greedy_flat(benchmark, flat_instance):
    benchmark(greedy_max_coverage, [flat_instance], 50, backend="flat")


def _best_of(callable_, repeats=3):
    best = float("inf")
    result = None
    for __ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_micro_batch_generation_speedup(record_rows, graph):
    """Per-set generation (sample_many + extend) vs the batched flat path
    (sample_batch + append_batch) on identical RNG streams; regression
    gate: the batch path must never be slower.  The tentpole target is
    >= 1.5x on the BFS samplers."""
    from repro.ris import FlatRRCollection, append_batch

    count = 2000
    rows = []
    for label, model, method in [
        ("ic-bfs", "ic", "bfs"),
        ("lt-walk", "lt", "bfs"),
        ("ic-subsim", "ic", "subsim"),
    ]:
        sampler = make_sampler(graph, model, method)

        def per_set():
            collection = FlatRRCollection(graph.num_nodes)
            collection.extend(sampler.sample_many(count, np.random.default_rng(0)))
            return collection

        def batched():
            collection = FlatRRCollection(graph.num_nodes)
            append_batch(collection, sampler.sample_batch(np.random.default_rng(0), count))
            return collection

        per_set_s, reference = _best_of(per_set)
        batch_s, result = _best_of(batched)
        assert result.num_sets == reference.num_sets == count
        assert result.total_edges_examined == reference.total_edges_examined
        rows.append(
            {
                "sampler": f"{label}(facebook, {count} sets)",
                "per_set_s": round(per_set_s, 4),
                "batch_s": round(batch_s, 4),
                "speedup": round(per_set_s / batch_s, 2),
            }
        )
    record_rows(
        "micro_batch_generation",
        rows,
        "RR-set generation: per-set RRSample path vs batched flat path",
    )
    for row in rows:
        assert row["speedup"] >= 1.0, f"batch path slower on {row['sampler']}"


def test_micro_vectorized_generation(record_rows):
    """Batched scalar generation (``sample_batch`` on the reference
    samplers) vs the blocked frontier kernels on the livejournal
    stand-in — the graph large enough that per-node Python overhead,
    not cache traffic, dominates the scalar path.  CI floor: >= 3x on
    every model (local target: 5x on IC)."""
    import os

    from repro.graphs import load_dataset
    from repro.ris import FlatRRCollection, append_batch

    graph = load_dataset("livejournal").graph
    count = 1500 if os.environ.get("REPRO_QUICK", "") not in ("", "0") else 4000

    rows = []
    for label, model in [("ic", "ic"), ("lt", "lt")]:
        scalar = make_sampler(graph, model, "bfs")
        vectorized = make_sampler(graph, model, "vectorized")

        def run(sampler):
            collection = FlatRRCollection(graph.num_nodes)
            append_batch(collection, sampler.sample_batch(np.random.default_rng(0), count))
            return collection

        scalar_s, reference = _best_of(lambda: run(scalar))
        vectorized_s, result = _best_of(lambda: run(vectorized))
        assert result.num_sets == reference.num_sets == count
        # Different RNG consumption order => statistically equivalent, not
        # bit-identical; sanity-check the workloads are the same scale.
        assert 0.5 < result.nodes.size / max(reference.nodes.size, 1) < 2.0
        rows.append(
            {
                "model": f"{label}(livejournal, {count} sets)",
                "scalar_batch_s": round(scalar_s, 4),
                "vectorized_s": round(vectorized_s, 4),
                "speedup": round(scalar_s / vectorized_s, 2),
            }
        )
    record_rows(
        "micro_vectorized_generation",
        rows,
        "RR-set generation: scalar sample_batch vs blocked frontier kernels",
    )
    for row in rows:
        assert row["speedup"] >= 3.0, (
            f"vectorized kernel speedup {row['speedup']}x below the 3x CI floor "
            f"on {row['model']}"
        )


def test_micro_kernel_backend_speedup(record_rows, instance, flat_instance):
    """Reference vs flat CSR kernel on identical workloads; regression
    gate: the flat backend must never be slower."""
    k = 50
    machines = 4

    ref_greedy_s, ref_greedy = _best_of(
        lambda: greedy_max_coverage([instance], k, backend="reference")
    )
    flat_greedy_s, flat_greedy = _best_of(
        lambda: greedy_max_coverage([flat_instance], k, backend="flat")
    )
    assert flat_greedy.seeds == ref_greedy.seeds

    rng = np.random.default_rng(0)
    parts = instance.split(machines, rng=rng)
    flat_parts = [as_flat(part) for part in parts]

    def run_newgreedi(stores, backend):
        cluster = SimulatedCluster(machines, seed=0)
        return newgreedi(cluster, k, stores=list(stores), backend=backend)

    ref_new_s, ref_new = _best_of(lambda: run_newgreedi(parts, "reference"))
    flat_new_s, flat_new = _best_of(lambda: run_newgreedi(flat_parts, "flat"))
    assert flat_new.seeds == ref_new.seeds

    rows = [
        {
            "component": "lazy_greedy(facebook, k=50)",
            "reference_s": round(ref_greedy_s, 4),
            "flat_s": round(flat_greedy_s, 4),
            "speedup": round(ref_greedy_s / flat_greedy_s, 2),
        },
        {
            "component": f"newgreedi(facebook, k=50, m={machines})",
            "reference_s": round(ref_new_s, 4),
            "flat_s": round(flat_new_s, 4),
            "speedup": round(ref_new_s / flat_new_s, 2),
        },
    ]
    record_rows(
        "micro_kernel_backends",
        rows,
        "Coverage kernel: reference dict loops vs flat CSR backend",
    )
    for row in rows:
        assert row["speedup"] >= 1.0, f"flat backend slower on {row['component']}"


def test_micro_incremental_coverage_speedup(record_rows, graph):
    """Round-driver coverage maintenance: per-round full re-aggregation
    (what D-SSA/D-OPIM-C did before the driver) vs the incremental
    CoverageState fed sparse wave deltas; regression gate: the
    incremental path must never be slower."""
    from repro.cluster import SimulatedExecutor
    from repro.coverage import CoverageState
    from repro.ris import FlatRRCollection, append_batch

    machines = 4
    # Per-machine totals after each round, doubling like the adaptive loops.
    totals = [1000, 2000, 4000, 8000, 16000, 32000]
    sampler = make_sampler(graph, "ic", "bfs")

    # Pre-build (outside the timed region — generation is its own phase in
    # a real run) each round's store snapshots: round r holds the first
    # totals[r] sets of every machine, exactly like a growing collection.
    stores_at_round = []
    stores = [FlatRRCollection(graph.num_nodes) for __ in range(machines)]
    previous = 0
    for total in totals:
        round_stores = []
        for m, store in enumerate(stores):
            batch = sampler.sample_batch(
                np.random.default_rng(97 * m + total), total - previous
            )
            append_batch(store, batch)
            snapshot = FlatRRCollection(graph.num_nodes)
            snapshot.append_arrays(
                store.nodes.copy(), store.offsets.copy(),
                edges_examined=store.total_edges_examined,
            )
            snapshot.coverage_counts()  # materialize up front
            round_stores.append(snapshot)
        stores_at_round.append(round_stores)
        previous = total

    def incremental():
        state = CoverageState(graph.num_nodes, machines)
        executor = SimulatedExecutor(SimulatedCluster(machines, seed=0))
        for round_stores in stores_at_round:
            state.ingest(executor, round_stores, communicate=False)
            state.selection_counts()  # the round's working copy
        return state.counts.copy()

    def rebuild():
        state = CoverageState(graph.num_nodes, machines)
        counts = None
        for round_stores in stores_at_round:
            counts = state.rebuild_from(round_stores)
        return counts

    incremental_s, incremental_counts = _best_of(incremental)
    rebuild_s, rebuild_counts = _best_of(rebuild)
    assert np.array_equal(incremental_counts, rebuild_counts)

    rows = [
        {
            "workload": f"facebook, m={machines}, rounds={len(totals)}, "
            f"{totals[-1] * machines} sets",
            "rebuild_s": round(rebuild_s, 4),
            "incremental_s": round(incremental_s, 4),
            "speedup": round(rebuild_s / incremental_s, 2),
        }
    ]
    record_rows(
        "micro_incremental_coverage",
        rows,
        "Coverage maintenance: per-round full rebuild vs incremental deltas",
    )
    for row in rows:
        assert row["speedup"] >= 1.0, "incremental coverage maintenance slower than rebuild"


def test_micro_dataplane(record_rows, graph):
    """The pre-data-plane IPC path (a throwaway pool per generation
    phase, graph broadcast to every worker, pickled arrays on the wire)
    vs the persistent zero-copy pool with the delta + varint wire codec.
    CI floors: >= 2x wall-clock on the many-phase generation scenario,
    >= 1.5x payload byte reduction (targets: 3x / 2x)."""
    from repro.cluster.parallel import GenerationPool, run_generation_pool
    from repro.ris.serialization import pack_message
    from repro.ris.wire import encode_batch

    phases = 16
    count = 10
    workload = f"facebook, {phases} phases x {count} sets, 1 worker"

    def per_phase_pools():
        # One throwaway pool per phase, shared-memory broadcast disabled —
        # exactly what every generation phase used to pay.
        outcomes = []
        for phase in range(phases):
            outcomes.extend(
                run_generation_pool(
                    graph,
                    "ic",
                    "bfs",
                    [count],
                    [np.random.default_rng(phase)],
                    processes=1,
                    zero_copy=False,
                )
            )
        return outcomes

    def persistent_zero_copy():
        outcomes = []
        with GenerationPool(graph, processes=1, zero_copy=True) as pool:
            for phase in range(phases):
                outcomes.extend(
                    pool.run("ic", "bfs", [count], [np.random.default_rng(phase)])
                )
        return outcomes

    baseline_s, reference = _best_of(per_phase_pools)
    pooled_s, pooled = _best_of(persistent_zero_copy)
    for ref, got in zip(reference, pooled):
        assert ref.error is None and got.error is None
        np.testing.assert_array_equal(ref.batch.nodes, got.batch.nodes)
        np.testing.assert_array_equal(ref.batch.offsets, got.batch.offsets)
    speedup = baseline_s / pooled_s

    # Payload size: the same framed envelope around pickled FlatBatch
    # arrays (the old wire format) vs the delta + varint encoding.
    rng = np.random.default_rng(0)
    batch = make_sampler(graph, "ic", "bfs").sample_batch(rng, 2000)
    state = rng.bit_generator.state
    raw_bytes = len(pack_message((batch, state)))
    wire_bytes = len(pack_message((encode_batch(batch), state)))
    reduction = raw_bytes / wire_bytes

    rows = [
        {
            "metric": "generation wall-clock (s)",
            "workload": workload,
            "per_phase_pool": round(baseline_s, 4),
            "dataplane": round(pooled_s, 4),
            "improvement_x": round(speedup, 2),
        },
        {
            "metric": "payload size (bytes)",
            "workload": "facebook, one 2000-set batch",
            "per_phase_pool": raw_bytes,
            "dataplane": wire_bytes,
            "improvement_x": round(reduction, 2),
        },
    ]
    record_rows(
        "micro_dataplane",
        rows,
        "Data plane: per-phase copy pools + pickled arrays vs "
        "persistent zero-copy pool + varint wire format",
    )
    assert speedup >= 2.0, f"data plane speedup {speedup:.2f}x below the 2x floor"
    assert reduction >= 1.5, f"payload reduction {reduction:.2f}x below the 1.5x floor"


def test_micro_socket_overhead(record_rows, graph):
    """The TCP socket backend vs the multiprocessing pool on the same
    generation workload (loopback workers, shared-memory graph).  Both
    backends ship the identical delta+varint payload, so ``num_bytes``
    must agree exactly; the socket's *measured* transport counters then
    expose the true framing cost.  CI gates: payload accounting parity,
    framing overhead <= 2 KiB per round trip, and wall-clock within 1.5x
    of the multiprocessing pool."""
    from repro.cluster import GENERATION, GeneratePhase, make_executor

    machines = 4
    count = 1500
    counts = (count,) * machines

    def generate(name):
        cluster = SimulatedCluster(machines, seed=0)
        cluster.init_collections(graph.num_nodes, backend="flat")
        with make_executor(name, cluster, graph=graph) as executor:
            executor.run_phase(GeneratePhase("bench/gen", counts=counts))
            record = executor.metrics.phases_in(GENERATION)[-1]
            sets = [m.collection.num_sets for m in executor.machines]
        return record, sets

    mp_s, (mp_record, mp_sets) = _best_of(lambda: generate("multiprocessing"))
    socket_s, (socket_record, socket_sets) = _best_of(lambda: generate("socket"))

    assert socket_sets == mp_sets == list(counts)
    # Backend-neutral payload accounting is identical byte for byte.
    assert socket_record.num_bytes == mp_record.num_bytes
    assert mp_record.wire_sent == mp_record.wire_received == 0

    wire_total = socket_record.wire_sent + socket_record.wire_received
    framing = wire_total - socket_record.num_bytes
    framing_per_rt = framing / max(socket_record.round_trips, 1)
    overhead_pct = (socket_s / mp_s - 1.0) * 100.0

    rows = [
        {
            "workload": f"generate(facebook, m={machines}, {count * machines} sets)",
            "mp_s": round(mp_s, 4),
            "socket_s": round(socket_s, 4),
            "overhead_pct": round(overhead_pct, 2),
            "payload_bytes": socket_record.num_bytes,
            "wire_bytes": wire_total,
            "framing_per_rt": round(framing_per_rt, 1),
        }
    ]
    record_rows(
        "micro_socket_overhead",
        rows,
        "Socket executor: loopback TCP transport vs the multiprocessing pool",
    )
    assert framing_per_rt <= 2048, (
        f"socket framing overhead {framing_per_rt:.0f} B/round-trip above the 2 KiB bound"
    )
    assert socket_s <= mp_s * 1.5, (
        f"socket backend {overhead_pct:.1f}% slower than multiprocessing, above the 50% bound"
    )


def test_micro_fault_overhead(record_rows, graph):
    """Fault-tolerance bookkeeping on the healthy path: generation with
    ``faults=None`` (the original code path) vs an *empty* ``FaultPlan``
    (attempt loops, RNG snapshots, event accounting armed but idle);
    regression gate: the armed path costs at most 5% throughput."""
    from repro.cluster import FaultPlan, SimulatedExecutor
    from repro.cluster.executor import GeneratePhase
    from repro.ris import FlatRRCollection

    machines = 4
    count = 4000

    def generate(faults):
        cluster = SimulatedCluster(machines, seed=0)
        executor = SimulatedExecutor(cluster, graph=graph, faults=faults)
        targets = tuple(FlatRRCollection(graph.num_nodes) for __ in range(machines))
        executor.run_phase(
            GeneratePhase(label="bench", counts=(count,) * machines, targets=targets)
        )
        return targets

    baseline_s, reference = _best_of(lambda: generate(None), repeats=5)
    armed_s, armed = _best_of(lambda: generate(FaultPlan()), repeats=5)
    for ref, got in zip(reference, armed):
        assert np.array_equal(ref.nodes, got.nodes)
        assert np.array_equal(ref.offsets, got.offsets)

    overhead_pct = (armed_s / baseline_s - 1.0) * 100.0
    rows = [
        {
            "workload": f"generate(facebook, m={machines}, {count * machines} sets)",
            "baseline_s": round(baseline_s, 4),
            "fault_armed_s": round(armed_s, 4),
            "overhead_pct": round(overhead_pct, 2),
        }
    ]
    record_rows(
        "micro_fault_overhead",
        rows,
        "Fault tolerance: healthy-path generation, faults=None vs empty FaultPlan",
    )
    assert overhead_pct <= 5.0, f"fault-armed healthy path {overhead_pct:.1f}% slower"
