"""Load-generator benchmark for the warm influence service.

A fixed repeated-query workload (mixed traffic: DIIMM at several ``k``
plus the budgeted and profit applications) is replayed two ways:

``cold``
    Every query pays full pool lifetime: a fresh
    :class:`~repro.serve.InfluenceService` per request, so the RR-sample
    pool is generated from scratch and torn down each time.  This is
    what scripting ``repro run`` per request costs.

``warm``
    One persistent service answers the whole stream.  The shared pool is
    built once (an untimed warm-up pass), after which repeats are served
    from the resident collections and the query cache.

The row per mode records QPS and p50/p95/p99 latency; a third row
measures warm-but-uncached queries (fresh ``k`` values that miss the
cache but select from the resident pool).  CI regression gate: the warm
p50 must be at least **3x** better than cold (the tentpole target is
orders of magnitude on cache hits).
"""

import time

from conftest import QUICK

from repro.graphs import load_dataset
from repro.serve import InfluenceService, Query, default_costs

MACHINES = 4
SEED = 0

REPEATS = 3 if QUICK else 8
COLD_REPEATS = 1 if QUICK else 2


def _workload(graph):
    """One pass of mixed traffic: seed selection plus two applications."""
    costs = default_costs(graph)
    return [
        Query(kind="diimm", k=10),
        Query(kind="diimm", k=25),
        Query(kind="diimm", k=50),
        Query(kind="budgeted", budget=50.0, costs=costs, num_rr_sets=20000),
        Query(kind="profit", costs=costs, num_rr_sets=20000),
    ]


def _timed(service, queries):
    latencies = []
    for query in queries:
        start = time.perf_counter()
        service.query(query)
        latencies.append(time.perf_counter() - start)
    return latencies


def _percentile(latencies, q):
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
    return ordered[index]


def _row(mode, latencies):
    total = sum(latencies)
    return {
        "mode": mode,
        "queries": len(latencies),
        "qps": round(len(latencies) / total, 2),
        "p50_ms": round(_percentile(latencies, 50) * 1e3, 3),
        "p95_ms": round(_percentile(latencies, 95) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 99) * 1e3, 3),
    }


def test_bench_serving_cold_vs_warm(record_rows):
    graph = load_dataset("facebook").graph
    pattern = _workload(graph)

    # Cold: a fresh service (and therefore a fresh pool) per query.
    cold_latencies = []
    for __ in range(COLD_REPEATS):
        for query in pattern:
            start = time.perf_counter()
            with InfluenceService(graph, machines=MACHINES, seed=SEED) as service:
                service.query(query)
            cold_latencies.append(time.perf_counter() - start)

    with InfluenceService(graph, machines=MACHINES, seed=SEED) as service:
        _timed(service, pattern)  # untimed warm-up pass builds the pool
        warm_latencies = []
        for __ in range(REPEATS):
            warm_latencies.extend(_timed(service, pattern))
        # Fresh k values every pass: cache misses served from the
        # resident pool (selection work only, no generation).
        uncached = _timed(
            service, [Query(kind="diimm", k=11 + step) for step in range(REPEATS)]
        )
        stats = service.describe()

    rows = [
        _row(f"cold (service per query, m={MACHINES})", cold_latencies),
        _row("warm (persistent service)", warm_latencies),
        _row("warm uncached (fresh k, pool hit)", uncached),
    ]
    speedup = rows[0]["p50_ms"] / rows[1]["p50_ms"]
    rows.append(
        {
            "mode": "p50 improvement warm vs cold",
            "queries": stats["queries"],
            "qps": "",
            "p50_ms": "",
            "p95_ms": "",
            "p99_ms": f"{speedup:.1f}x",
        }
    )
    record_rows(
        "serving_cold_vs_warm",
        rows,
        "repro.serve: repeated mixed-traffic workload, cold vs warm pool",
    )
    assert stats["cache_hits"] >= (REPEATS - 1) * len(pattern)
    assert speedup >= 3.0, (
        f"warm p50 improvement {speedup:.1f}x below the 3x CI floor"
    )
