"""Graph-update throughput: incremental RR-set repair vs full recompute.

A warm per-set :class:`~repro.core.pool.SamplePool` over the
LiveJournal stand-in absorbs a stream of mixed edge batches
(insert + delete + reweight).  Each update is answered two ways:

``dynamic``
    :meth:`SamplePool.apply_update` — redraw only the RR sets whose
    reverse traversal consulted a changed in-row, splice them in place.

``static``
    Full recompute — regenerate every resident RR set on the updated
    graph, which is all a pool without per-set substreams can do.

The runner differentially checks both paths produce bit-identical
collections before timing is trusted, so the speedup measures identical
work.  Affected sets are size-biased (a big RR set is more likely to
contain any touched node), so per-update speedups vary with which rows
an update lands on; the CI regression gate is therefore on the
**median** over the stream, which must stay at least **3x**.
"""

import statistics

from conftest import QUICK

from repro.experiments import static_vs_dynamic_updates

MACHINES = 2
DATASET = "facebook" if QUICK else "livejournal"
SETS_PER_MACHINE = 600 if QUICK else 2000
NUM_UPDATES = 3 if QUICK else 5
EDGES_PER_UPDATE = 2 if QUICK else 3


def test_bench_update_repair_vs_recompute(record_rows):
    rows = static_vs_dynamic_updates(
        dataset=DATASET,
        machines=MACHINES,
        sets_per_machine=SETS_PER_MACHINE,
        num_updates=NUM_UPDATES,
        edges_per_update=EDGES_PER_UPDATE,
    )
    record_rows(
        "updates_repair_vs_recompute",
        rows,
        "Dynamic graphs — incremental repair vs full recompute",
    )
    # Incrementality: repairs must touch a strict minority of the pool.
    assert all(0 < row["sets_repaired"] < row["sets_total"] for row in rows)
    median = statistics.median(row["speedup"] for row in rows)
    assert median >= 3.0, f"median repair speedup {median} below the 3x floor"
