"""Fig 5: DIIMM running time on a 1 Gbps cluster, IC model.

Paper shape: total time drops roughly in inverse proportion to the
machine count (~3.5x at 4 machines, ~14x at 16); RR-set generation
dominates; communication stays an order of magnitude below computation.
"""

from conftest import CLUSTER_MACHINES, DATASETS, EPS, K

from repro.experiments import fig5_cluster_ic


def test_fig5_cluster_ic(benchmark, record_rows):
    rows = benchmark.pedantic(
        fig5_cluster_ic,
        kwargs={
            "datasets": DATASETS,
            "machine_counts": CLUSTER_MACHINES,
            "k": K,
            "eps": EPS,
        },
        rounds=1,
        iterations=1,
    )
    record_rows("fig5_cluster_ic", rows, "Fig 5 — DIIMM, cluster network, IC model")
    # Shape checks: distribution always helps at the largest machine count.
    for dataset in DATASETS:
        series = [r for r in rows if r["dataset"] == dataset]
        assert series[-1]["total_s"] < series[0]["total_s"]
        assert series[-1]["speedup"] > 1.5
