"""Table IV: number and total size of RR sets under the IC model.

Comparison target (paper): LiveJournal needs by far the most RR sets and
the largest total size; Facebook the fewest; average RR-set sizes are
single-digit to tens of nodes.  Absolute counts scale with ``n / eps^2``.
"""

from conftest import DATASETS, EPS, K

from repro.experiments import table4_rows


def test_table4_rrsets(benchmark, record_rows):
    rows = benchmark.pedantic(
        table4_rows,
        kwargs={"datasets": DATASETS, "k": K, "eps": EPS},
        rounds=1,
        iterations=1,
    )
    record_rows("table4_rrsets", rows, "Table IV — RR sets under IC (ours vs paper)")
    for row in rows:
        assert row["num_rr_sets"] > 0
        assert row["total_size"] >= row["num_rr_sets"]
