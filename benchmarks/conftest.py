"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding :mod:`repro.experiments` runner under pytest-benchmark,
prints the rows (visible with ``-s``), and always writes them to
``benchmarks/results/<name>.{txt,json}`` so the numbers survive output
capturing.

Set ``REPRO_QUICK=1`` to run reduced sweeps (fewer datasets and machine
counts) when iterating on the suite itself.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import format_table, write_json

RESULTS_DIR = Path(__file__).resolve().parent / "results"

QUICK = os.environ.get("REPRO_QUICK", "") not in ("", "0")

#: Sweep parameters, switched by REPRO_QUICK.
DATASETS = (
    ("facebook", "twitter") if QUICK else ("facebook", "googleplus", "livejournal", "twitter")
)
CLUSTER_MACHINES = (1, 4) if QUICK else (1, 2, 4, 8, 16)
SERVER_CORES = (1, 16) if QUICK else (1, 4, 16, 64)
K = 50
# eps drives the RR-set budget (~1/eps^2). 0.4 keeps the full suite near
# ten minutes while giving per-machine batches large enough that the
# 64-core points are not dominated by max-of-small-samples noise (see
# docs/reproduction_guide.md).
EPS = 0.4


@pytest.fixture(scope="session")
def record_rows():
    """Returns a callable that prints and persists experiment rows."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, rows: list[dict], title: str) -> None:
        text = format_table(rows, title=title)
        print("\n" + text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        write_json(rows, RESULTS_DIR / f"{name}.json")

    return _record
