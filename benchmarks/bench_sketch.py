"""Sketch coverage backend benchmarks and the CI memory gate.

Two claims, both on the livejournal stand-in:

* ``test_micro_sketch_memory`` — the headline perf claim.  The same RR
  sample goes into the exact flat CSR store and a HyperLogLog register
  bank; the bank must be at least **3x** smaller (the CI floor — the
  committed full-mode results record >= 5x) while the sketch greedy's
  seeds, judged on the *exact* store (the differential oracle), cover
  within **2%** of the exact greedy's.  The flat store grows with theta;
  the bank does not — the ratio in the committed results is the
  ``theta`` point the sweep pins, and it only improves at paper scale.
* ``test_error_adaptive_stops_earlier`` — the adaptive stopping rule
  certifies its error and stops with strictly fewer RR sets than the
  worst-case IMM schedule on the same query, at matched spread.

Everything is fixed-seed and single-pass, so the recorded numbers are
deterministic run to run.
"""

import numpy as np
from conftest import QUICK

from repro.api import RunConfig, run
from repro.coverage import greedy_max_coverage
from repro.coverage.sketch import (
    SketchRRCollection,
    hll_relative_error,
    sketch_lazy_greedy,
)
from repro.graphs import load_dataset
from repro.ris import FlatRRCollection, append_batch, make_sampler

#: CI gate: the flat/sketch memory ratio every run must clear.
MEMORY_FLOOR = 3.0
#: Spread-quality gate: sketch seeds on the exact oracle, relative loss.
SPREAD_TOLERANCE = 0.02

# Full mode pins the committed >= 5x point; QUICK keeps the same gates
# at a quarter of the generation work.
NUM_SETS = 250_000 if QUICK else 700_000
PRECISION = 9 if QUICK else 10
K = 5 if QUICK else 10
SEED = 2022


def test_micro_sketch_memory(benchmark, record_rows):
    graph = load_dataset("livejournal").graph

    def measure() -> list[dict]:
        batch = make_sampler(graph, model="ic", method="vectorized").sample_batch(
            np.random.default_rng(SEED), NUM_SETS
        )
        flat = FlatRRCollection(graph.num_nodes)
        append_batch(flat, batch)
        sketch = SketchRRCollection(graph.num_nodes, precision=PRECISION)
        sketch.append_arrays(batch.nodes, batch.offsets, batch.edges_examined)
        sketch.prune_journal()

        exact_pick = greedy_max_coverage([flat], K)
        sketch_pick = sketch_lazy_greedy(sketch.register_bank(), K, NUM_SETS)
        # Judge both on the exact store — the flat differential oracle.
        exact_value = flat.coverage_of(exact_pick.seeds)
        sketch_value = flat.coverage_of(sketch_pick.seeds)
        return [
            {
                "dataset": "livejournal",
                "num_rr_sets": NUM_SETS,
                "precision": PRECISION,
                "k": K,
                "flat_mb": round(flat.nbytes() / 1e6, 2),
                "sketch_mb": round(sketch.nbytes() / 1e6, 2),
                "memory_ratio": round(flat.nbytes() / sketch.nbytes(), 2),
                "exact_coverage": int(exact_value),
                "sketch_coverage": int(sketch_value),
                "spread_loss": round(1.0 - sketch_value / exact_value, 4),
                "sketch_rel_error": round(hll_relative_error(PRECISION), 4),
            }
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_rows(
        "micro_sketch_memory",
        rows,
        "Micro — sketch register bank vs flat CSR store (livejournal stand-in)",
    )
    (row,) = rows
    assert row["memory_ratio"] >= MEMORY_FLOOR, (
        f"sketch bank saves only {row['memory_ratio']}x over the flat "
        f"store; the CI floor is {MEMORY_FLOOR}x"
    )
    assert row["spread_loss"] <= SPREAD_TOLERANCE, (
        f"sketch seeds lose {row['spread_loss']:.1%} spread on the exact "
        f"oracle; the gate is {SPREAD_TOLERANCE:.0%}"
    )


def test_error_adaptive_stops_earlier(benchmark, record_rows):
    graph = load_dataset("livejournal").graph
    base = dict(graph=graph, k=20 if QUICK else 50, machines=4, eps=0.5, seed=SEED)

    def measure() -> list[dict]:
        rows = []
        for stopping in ("schedule", "error-adaptive"):
            result = run("diimm", RunConfig(**base, stopping=stopping))
            rows.append(
                {
                    "dataset": "livejournal",
                    "stopping": stopping,
                    "k": base["k"],
                    "eps": base["eps"],
                    "num_rr_sets": result.num_rr_sets,
                    "estimated_spread": round(result.estimated_spread, 1),
                    "search_rounds": result.search_rounds,
                    "total_s": round(result.metrics.total_time, 4),
                }
            )
        schedule, adaptive = rows
        adaptive["theta_saving"] = round(
            schedule["num_rr_sets"] / adaptive["num_rr_sets"], 2
        )
        schedule["theta_saving"] = 1.0
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_rows(
        "sketch_error_adaptive",
        rows,
        "Micro — error-adaptive stopping vs the IMM theta schedule",
    )
    schedule, adaptive = rows
    assert adaptive["num_rr_sets"] < schedule["num_rr_sets"]
    # Earlier stopping must not cost answer quality.
    assert adaptive["estimated_spread"] >= 0.9 * schedule["estimated_spread"]
