"""Fig 8: DIIMM running time on a 1 Gbps cluster, LT model.

Paper shape: same scaling trends as Fig 5, with shorter absolute times
than the IC runs because LT RR sets (reverse random walks) are cheaper to
generate.
"""

from conftest import CLUSTER_MACHINES, DATASETS, EPS, K

from repro.experiments import fig8_cluster_lt


def test_fig8_cluster_lt(benchmark, record_rows):
    rows = benchmark.pedantic(
        fig8_cluster_lt,
        kwargs={
            "datasets": DATASETS,
            "machine_counts": CLUSTER_MACHINES,
            "k": K,
            "eps": EPS,
        },
        rounds=1,
        iterations=1,
    )
    record_rows("fig8_cluster_lt", rows, "Fig 8 — DIIMM, cluster network, LT model")
    for dataset in DATASETS:
        series = [r for r in rows if r["dataset"] == dataset]
        assert series[-1]["total_s"] < series[0]["total_s"]
