"""Fig 6: DIIMM running time on a multi-core server, IC model.

Paper shape: near-inverse-proportional scaling up to 64 cores with
speedups of 31x-56x over vanilla IMM; communication negligible in shared
memory.
"""

from conftest import DATASETS, EPS, K, SERVER_CORES

from repro.experiments import fig6_server_ic


def test_fig6_server_ic(benchmark, record_rows):
    rows = benchmark.pedantic(
        fig6_server_ic,
        kwargs={
            "datasets": DATASETS,
            "machine_counts": SERVER_CORES,
            "k": K,
            "eps": EPS,
        },
        rounds=1,
        iterations=1,
    )
    record_rows("fig6_server_ic", rows, "Fig 6 — DIIMM, multi-core server, IC model")
    for dataset in DATASETS:
        series = [r for r in rows if r["dataset"] == dataset]
        # Monotone improvement from 1 core to the maximum swept.
        assert series[-1]["total_s"] < series[0]["total_s"]
        # Communication stays below computation in shared memory.
        assert series[-1]["communication_s"] <= series[-1]["computation_s"]
