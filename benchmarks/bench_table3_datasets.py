"""Table III: dataset statistics (stand-ins vs the paper's originals)."""

from conftest import DATASETS

from repro.experiments import table3_rows


def test_table3_datasets(benchmark, record_rows):
    rows = benchmark.pedantic(table3_rows, rounds=1, iterations=1)
    rows = [row for row in rows if row["dataset"] in DATASETS]
    record_rows("table3_datasets", rows, "Table III — datasets (ours vs paper)")
    assert len(rows) == len(DATASETS)
