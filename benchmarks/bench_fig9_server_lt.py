"""Fig 9: DIIMM running time on a multi-core server, LT model.

Paper shape: as Fig 6, with LT totals below the corresponding IC totals.
"""

from conftest import DATASETS, EPS, K, SERVER_CORES

from repro.experiments import fig9_server_lt


def test_fig9_server_lt(benchmark, record_rows):
    rows = benchmark.pedantic(
        fig9_server_lt,
        kwargs={
            "datasets": DATASETS,
            "machine_counts": SERVER_CORES,
            "k": K,
            "eps": EPS,
        },
        rounds=1,
        iterations=1,
    )
    record_rows("fig9_server_lt", rows, "Fig 9 — DIIMM, multi-core server, LT model")
    for dataset in DATASETS:
        series = [r for r in rows if r["dataset"] == dataset]
        assert series[-1]["total_s"] < series[0]["total_s"]
