"""Fig 7: distributed SUBSIM on a multi-core server, IC model.

Paper shape: SUBSIM's absolute times are below DIIMM's (cheaper RR-set
generation) and the distributed speedup ratio mirrors DIIMM's over IMM.
"""

from conftest import DATASETS, EPS, K, SERVER_CORES

from repro.experiments import fig7_server_subsim


def test_fig7_server_subsim(benchmark, record_rows):
    rows = benchmark.pedantic(
        fig7_server_subsim,
        kwargs={
            "datasets": DATASETS,
            "machine_counts": SERVER_CORES,
            "k": K,
            "eps": EPS,
        },
        rounds=1,
        iterations=1,
    )
    record_rows("fig7_server_subsim", rows, "Fig 7 — distributed SUBSIM, IC model")
    for dataset in DATASETS:
        series = [r for r in rows if r["dataset"] == dataset]
        assert series[-1]["speedup"] > 1.5
