"""Fig 10: maximum coverage — NEWGREEDI vs GREEDI vs sequential greedy.

Paper shapes: (a) NEWGREEDI time falls with cores; (b) speedup ~3.5x at 4
cores, 10-18x at 64 on the larger datasets (lower on Facebook whose run is
sub-hundredth-of-a-second); (c) GREEDI's coverage ratio <= 1 and NEWGREEDI
always matches the centralized greedy exactly.
"""

from conftest import DATASETS, K, SERVER_CORES

from repro.experiments import fig10_maxcover


def test_fig10_maxcover(benchmark, record_rows):
    rows = benchmark.pedantic(
        fig10_maxcover,
        kwargs={"datasets": DATASETS, "core_counts": SERVER_CORES, "k": K},
        rounds=1,
        iterations=1,
    )
    record_rows("fig10_maxcover", rows, "Fig 10 — maximum coverage comparison")
    for row in rows:
        # NEWGREEDI == centralized greedy (the runner itself asserts it).
        # GREEDI usually matches or falls below; since greedy itself is
        # only (1-1/e)-optimal, GREEDI may edge it out by a sliver, so the
        # bound here allows a small overshoot.
        assert row["coverage_ratio"] <= 1.02
