"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Print Table III (the stand-in datasets vs the paper's).
``run``
    Run one influence-maximization algorithm on a dataset and print the
    result summary (seeds, spread estimate, time breakdown).
``experiment``
    Regenerate one of the paper's tables/figures and print its rows.
``validate``
    Monte-Carlo validate a comma-separated seed list on a dataset.
``app``
    Run an influence-based application (paper Section VI).
``serve``
    Start the warm influence service (``--dynamic`` accepts graph
    updates).
``worker``
    Start one socket-executor worker process for ``--executor socket:...``.
``update``
    Send graph updates to a running dynamic service.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed influence maximization (ICDE 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print Table III dataset statistics")

    run = sub.add_parser("run", help="run an algorithm on a dataset")
    run.add_argument("--dataset", default="facebook")
    run.add_argument(
        "--algorithm",
        choices=("imm", "diimm", "dsubsim", "dopimc", "dssa"),
        default="diimm",
    )
    run.add_argument("--k", type=int, default=50)
    run.add_argument("--machines", type=int, default=16)
    run.add_argument("--eps", type=float, default=0.5)
    run.add_argument("--model", choices=("ic", "lt"), default="ic")
    run.add_argument(
        "--method",
        choices=("bfs", "subsim", "vectorized"),
        default="bfs",
        help="RR-set generation procedure: per-set reverse BFS/walk, "
        "SUBSIM subset sampling (ic only; dsubsim always uses it), or "
        "the blocked vectorized frontier kernels",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--network", choices=("cluster", "server"), default="server"
    )
    run.add_argument(
        "--executor",
        default="simulated",
        metavar="SPEC",
        help="phase-plan executor spec: 'simulated', 'multiprocessing[:N]' "
        "or 'socket[:N | :HOST:PORT,PORT;HOST:PORT]' (workers started with "
        "'repro worker'; ignored by imm, which is single-machine)",
    )
    run.add_argument(
        "--backend",
        choices=("flat", "reference", "sketch"),
        default="flat",
        help="RR-set store / coverage backend: the exact CSR store, the "
        "dict-indexed reference oracle (seeds identical to flat), or "
        "per-node HyperLogLog register banks (memory-bounded estimates; "
        "imm ignores the exact flavours but honours sketch)",
    )
    run.add_argument(
        "--sketch-precision",
        type=int,
        default=10,
        metavar="P",
        help="registers per node for --backend sketch (m = 2**P bytes; "
        "relative error ~ 1.04/sqrt(2**P); default 10)",
    )
    run.add_argument(
        "--stopping",
        choices=("schedule", "error-adaptive"),
        default="schedule",
        help="stopping policy for imm/diimm/dsubsim: the precomputed "
        "theta schedule, or doubling until the measured relative error "
        "(sampling + sketch noise) satisfies eps",
    )
    run.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for per-round driver snapshots; a killed run can "
        "be continued from the latest one with --resume",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest snapshot in --checkpoint-dir "
        "(finishing with the identical seed set a fresh run would)",
    )
    run.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="inject faults: ';'-separated kind@m<id>[r<round>][a<attempt>]"
        "[x<factor>] with kind one of crash, crash-hard, straggler, corrupt, "
        "drop (e.g. 'crash@m1r2;straggler@m0x3'); the seed set is identical "
        "to a fault-free run",
    )
    run.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="attempts each machine gets per generation phase before its "
        "quota is reassigned (default 3; only meaningful with --fault-plan)",
    )
    run.add_argument(
        "--phase-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="deadline after which an unresponsive machine is declared lost "
        "(wall-clock under --executor multiprocessing, simulated time "
        "otherwise; only meaningful with --fault-plan)",
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure or an extension"
    )
    experiment.add_argument(
        "name",
        choices=(
            "table3", "table4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "quality", "frameworks",
        ),
    )
    experiment.add_argument(
        "--datasets", nargs="+", default=None, help="subset of datasets"
    )
    experiment.add_argument("--k", type=int, default=50)
    experiment.add_argument("--eps", type=float, default=0.5)

    app = sub.add_parser(
        "app", help="run an influence-based application (paper Section VI)"
    )
    app.add_argument(
        "name",
        choices=("targeted", "budgeted", "seedmin", "profit", "adaptive"),
    )
    app.add_argument("--dataset", default="facebook")
    app.add_argument("--machines", type=int, default=8)
    app.add_argument("--rr-sets", type=int, default=20000)
    app.add_argument("--k", type=int, default=20, help="seeds (targeted/adaptive)")
    app.add_argument("--budget", type=float, default=25.0, help="budgeted IM budget")
    app.add_argument(
        "--required-spread", type=float, default=None,
        help="seed-minimization target (defaults to 20%% of n)",
    )
    app.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve",
        help="start a warm influence service answering queries over a "
        "shared RR-sample pool (JSON lines over TCP)",
    )
    serve.add_argument("--dataset", default="facebook")
    serve.add_argument("--machines", type=int, default=8)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--model", choices=("ic", "lt"), default="ic")
    serve.add_argument(
        "--method",
        choices=("bfs", "subsim"),
        default="bfs",
        help="RR-set generation for the IMM-family pools (warm pools "
        "need per-set samplers, so 'vectorized' is not offered)",
    )
    serve.add_argument(
        "--executor",
        default="simulated",
        metavar="SPEC",
        help="executor spec for the pools: 'simulated', 'multiprocessing[:N]' "
        "or 'socket:...' (see the run command)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7313, help="TCP port (0 picks a free one)"
    )
    serve.add_argument(
        "--cache-size", type=int, default=128, help="memoized query results"
    )
    serve.add_argument(
        "--dynamic",
        action="store_true",
        help="serve a mutable graph: pools use per-set RNG substreams and "
        "the service accepts 'update' requests (see the update command) "
        "that repair resident RR sets in place",
    )

    update = sub.add_parser(
        "update",
        help="send graph updates to a running dynamic service "
        "(started with serve --dynamic)",
    )
    update.add_argument("--host", default="127.0.0.1")
    update.add_argument(
        "--port", type=int, default=7313, help="port the service listens on"
    )
    update.add_argument(
        "--updates",
        default=None,
        metavar="FILE",
        help="JSONL file of GraphDelta payloads (keys add_edges, "
        "remove_edges, reweight_edges, remove_nodes, add_nodes), "
        "sent in order",
    )
    update.add_argument(
        "--add-edge", action="append", default=[], metavar="U:V:P",
        help="insert edge u->v with probability p (repeatable)",
    )
    update.add_argument(
        "--remove-edge", action="append", default=[], metavar="U:V",
        help="delete edge u->v (repeatable)",
    )
    update.add_argument(
        "--reweight-edge", action="append", default=[], metavar="U:V:P",
        help="set edge u->v's probability to p (repeatable)",
    )
    update.add_argument(
        "--remove-node", action="append", default=[], metavar="ID", type=int,
        help="isolate a node, dropping all its edges (repeatable)",
    )
    update.add_argument(
        "--add-nodes", type=int, default=0, help="append this many fresh nodes"
    )
    update.add_argument(
        "--compact",
        action="store_true",
        help="fold the service's overlay into a fresh base CSR afterwards",
    )

    worker = sub.add_parser(
        "worker",
        help="start one socket-executor worker; point a master at it with "
        "--executor socket:HOST:PORT",
    )
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument(
        "--port", type=int, default=0, help="TCP port (0 picks a free one)"
    )

    validate = sub.add_parser("validate", help="Monte-Carlo validate seeds")
    validate.add_argument("--dataset", default="facebook")
    validate.add_argument("--seeds", required=True, help="comma-separated node ids")
    validate.add_argument("--model", choices=("ic", "lt"), default="ic")
    validate.add_argument("--samples", type=int, default=1000)

    return parser


def _cmd_datasets() -> int:
    from .experiments import print_table, table3_rows

    print_table(table3_rows(), title="Table III — datasets (ours vs paper)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .api import RunConfig, run
    from .cluster import RetryPolicy, gigabit_cluster, shared_memory_server
    from .cluster.tracing import summarize_recovery
    from .experiments import print_table
    from .graphs import load_dataset

    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    dataset = load_dataset(args.dataset)
    network = gigabit_cluster() if args.network == "cluster" else shared_memory_server()
    retry = None
    if args.max_retries is not None or args.phase_timeout is not None:
        retry = RetryPolicy(
            max_attempts=args.max_retries if args.max_retries is not None else 3,
            phase_timeout=args.phase_timeout,
        )
    try:
        config = RunConfig(
            graph=dataset.graph,
            k=args.k,
            machines=args.machines,
            eps=args.eps,
            model="ic" if args.algorithm == "dsubsim" else args.model,
            method=args.method,
            seed=args.seed,
            backend=args.backend,
            sketch_precision=args.sketch_precision,
            stopping=args.stopping,
            executor=args.executor,
            network=network,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            faults=args.fault_plan,
            retry=retry,
        )
        result = run(args.algorithm, config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print_table([result.summary_row()], title=f"{result.algorithm} on {args.dataset}")
    recovery = summarize_recovery(result.metrics)
    if recovery:
        print()
        print_table(recovery, title="Fault recovery")
    memory = result.metrics.memory_summary()
    if memory["peak_nbytes"]:
        print(
            f"\npeak memory: rr_store {memory['rr_store_nbytes'] / 1e6:.2f} MB, "
            f"coverage {memory['coverage_nbytes'] / 1e6:.2f} MB "
            f"(total {memory['peak_nbytes'] / 1e6:.2f} MB)"
        )
    print(f"\nseeds: {result.seeds}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import (
        fig5_cluster_ic,
        fig6_server_ic,
        fig7_server_subsim,
        fig8_cluster_lt,
        fig9_server_lt,
        fig10_maxcover,
        framework_comparison,
        print_table,
        seed_quality_comparison,
        table3_rows,
        table4_rows,
    )
    from .graphs import DATASET_NAMES

    datasets = tuple(args.datasets) if args.datasets else DATASET_NAMES
    if args.name == "table3":
        rows = [r for r in table3_rows() if r["dataset"] in datasets]
    elif args.name == "table4":
        rows = table4_rows(datasets=datasets, k=args.k, eps=args.eps)
    elif args.name == "fig10":
        rows = fig10_maxcover(datasets=datasets, k=args.k)
    elif args.name == "quality":
        rows = seed_quality_comparison(datasets=datasets, k=args.k, eps=args.eps)
    elif args.name == "frameworks":
        rows = framework_comparison(datasets=datasets, k=args.k, eps=args.eps)
    else:
        runner = {
            "fig5": fig5_cluster_ic,
            "fig6": fig6_server_ic,
            "fig7": fig7_server_subsim,
            "fig8": fig8_cluster_lt,
            "fig9": fig9_server_lt,
        }[args.name]
        rows = runner(datasets=datasets, k=args.k, eps=args.eps)
    print_table(rows, title=args.name)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .analysis import evaluate_seeds
    from .graphs import load_dataset

    dataset = load_dataset(args.dataset)
    try:
        seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    except ValueError:
        print(f"error: cannot parse seed list {args.seeds!r}", file=sys.stderr)
        return 2
    estimate = evaluate_seeds(
        dataset.graph, seeds, args.model, args.samples, np.random.default_rng(0)
    )
    low, high = estimate.ci()
    print(
        f"sigma({seeds}) ~= {estimate.mean:.1f} nodes "
        f"(95% CI [{low:.1f}, {high:.1f}], {args.samples} cascades, "
        f"{args.model.upper()} model)"
    )
    return 0


def _cmd_app(args: argparse.Namespace) -> int:
    from .applications import (
        adaptive_influence_maximization,
        budgeted_influence_maximization,
        profit_maximization,
        seed_minimization,
        targeted_influence_maximization,
    )
    from .experiments import print_table
    from .graphs import load_dataset

    dataset = load_dataset(args.dataset)
    graph = dataset.graph
    n = graph.num_nodes
    rng = np.random.default_rng(args.seed)
    if args.name == "targeted":
        targets = rng.choice(n, size=max(n // 10, 1), replace=False)
        result = targeted_influence_maximization(
            graph, targets, k=args.k, num_machines=args.machines,
            num_rr_sets=args.rr_sets, seed=args.seed,
        )
    elif args.name == "budgeted":
        costs = 1.0 + graph.out_degrees() / max(int(graph.out_degrees().max()), 1) * 9.0
        result = budgeted_influence_maximization(
            graph, costs, budget=args.budget, num_machines=args.machines,
            num_rr_sets=args.rr_sets, seed=args.seed,
        )
    elif args.name == "seedmin":
        required = args.required_spread if args.required_spread else 0.2 * n
        result = seed_minimization(
            graph, required_spread=required, num_machines=args.machines,
            num_rr_sets=args.rr_sets, seed=args.seed,
        )
    elif args.name == "profit":
        costs = 1.0 + graph.out_degrees() / max(int(graph.out_degrees().max()), 1) * 9.0
        result = profit_maximization(
            graph, costs, num_machines=args.machines,
            num_rr_sets=args.rr_sets, seed=args.seed,
        )
    else:
        result = adaptive_influence_maximization(
            graph, k=args.k, num_machines=args.machines,
            rr_sets_per_round=max(args.rr_sets // max(args.k, 1), 100),
            seed=args.seed,
        )
    print_table([result.summary_row()], title=f"{result.application} on {args.dataset}")
    print(f"\nseeds: {result.seeds}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .graphs import load_dataset
    from .serve import InfluenceService, ServingFrontend

    dataset = load_dataset(args.dataset)
    try:
        service = InfluenceService(
            dataset.graph,
            machines=args.machines,
            seed=args.seed,
            model=args.model,
            method=args.method,
            executor=args.executor,
            cache_size=args.cache_size,
            dynamic=args.dynamic,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    async def run_server() -> None:
        frontend = ServingFrontend(service, host=args.host, port=args.port)
        await frontend.start()
        mode = "dynamic" if args.dynamic else "static"
        print(
            f"serving {args.dataset} (n={dataset.graph.num_nodes}, "
            f"machines={args.machines}, {mode}) on {args.host}:{frontend.port} — "
            'send {"op": "query", "kind": "diimm", "k": 20} per line; '
            "Ctrl-C to stop"
        )
        await frontend.serve_forever()

    try:
        asyncio.run(run_server())
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        service.close()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .cluster import serve_worker

    def announce(port: int) -> None:
        print(
            f"worker listening on {args.host}:{port} — enroll it with "
            f"--executor socket:{args.host}:{port}; Ctrl-C to stop",
            flush=True,
        )

    try:
        serve_worker(args.host, args.port, ready=announce)
    except KeyboardInterrupt:
        print("\nshutting down")
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    import json

    from .serve import request

    def parse_edge(spec: str, with_prob: bool):
        parts = spec.split(":")
        expected = 3 if with_prob else 2
        if len(parts) != expected:
            raise ValueError(
                f"expected {'U:V:P' if with_prob else 'U:V'}, got {spec!r}"
            )
        edge = [int(parts[0]), int(parts[1])]
        if with_prob:
            edge.append(float(parts[2]))
        return edge

    payloads = []
    try:
        if args.updates is not None:
            with open(args.updates, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        payloads.append(json.loads(line))
        inline = {
            "add_edges": [parse_edge(s, True) for s in args.add_edge],
            "remove_edges": [parse_edge(s, False) for s in args.remove_edge],
            "reweight_edges": [parse_edge(s, True) for s in args.reweight_edge],
            "remove_nodes": list(args.remove_node),
            "add_nodes": args.add_nodes,
        }
        inline = {k: v for k, v in inline.items() if v}
        if inline:
            payloads.append(inline)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not payloads and not args.compact:
        print("error: no updates given (see --updates / --add-edge ...)", file=sys.stderr)
        return 2
    for payload in payloads:
        reply = request(args.port, {"op": "update", **payload}, host=args.host)
        if not reply.get("ok"):
            print(f"error: {reply.get('error')}", file=sys.stderr)
            return 1
        print(
            f"graph v{reply['graph_version']}: {reply['num_changes']} changes, "
            f"repaired {reply['repaired']}, evicted {reply['evicted']} cached results"
        )
    if args.compact:
        reply = request(args.port, {"op": "compact"}, host=args.host)
        if not reply.get("ok"):
            print(f"error: {reply.get('error')}", file=sys.stderr)
            return 1
        print(
            f"graph v{reply['graph_version']}: compacted to "
            f"{reply['num_edges']} edges"
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "app":
        return _cmd_app(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "update":
        return _cmd_update(args)
    return 2  # unreachable: argparse enforces the choices
