"""Distributed budgeted influence maximization.

Budgeted IM (Bian et al., VLDB 2020; Leskovec et al., KDD 2007) attaches a
cost ``c(v)`` to every node and replaces the cardinality constraint by a
budget ``B``: maximise the spread subject to ``sum_{v in S} c(v) <= B``.

The standard treatment runs *cost-effective lazy greedy*: each iteration
picks the affordable node with the largest marginal-coverage-per-cost
ratio; the classical guarantee comes from taking the better of this
solution and the best single affordable node.  Distribution-wise nothing
changes: marginal coverages still live as aggregated counts at the master
and are maintained by exactly NEWGREEDI's map/reduce decrement rounds —
the master simply ranks by ``Delta(v) / c(v)`` instead of ``Delta(v)``.
"""

from __future__ import annotations

import heapq
from typing import Dict, Sequence

import numpy as np

from ..cluster.cluster import SimulatedCluster
from ..cluster.machine import Machine
from ..cluster.metrics import COMPUTATION, GENERATION
from ..cluster.network import NetworkModel
from ..coverage.newgreedi import SEED_BYTES, TUPLE_BYTES, gather_coverage_counts
from ..graphs.digraph import DirectedGraph
from ..ris import make_sampler
from .common import prepare_cluster
from .result import ApplicationResult

__all__ = ["budgeted_influence_maximization"]


def budgeted_influence_maximization(
    graph: DirectedGraph,
    costs: Sequence[float],
    budget: float,
    num_machines: int,
    num_rr_sets: int,
    model: str = "ic",
    network: NetworkModel | None = None,
    seed: int = 0,
    cluster: SimulatedCluster | None = None,
    collections: Sequence | None = None,
) -> ApplicationResult:
    """Greedy budgeted seed selection over distributed RR sets.

    Parameters
    ----------
    costs:
        Per-node seeding cost, length ``n``; all costs must be positive.
    budget:
        Total budget ``B``.
    cluster:
        Optional lent cluster to run on (must have ``num_machines``
        machines); the caller keeps ownership of its RNG streams and
        metrics.
    collections:
        Optional pre-generated per-machine RR collections (one per
        machine, e.g. warm-pool prefix views); generation is skipped and
        ``num_rr_sets`` is taken from their actual total size.

    Returns
    -------
    ApplicationResult
        ``seeds`` may be any size with total cost within budget;
        ``objective`` is the RIS spread estimate ``n * F_R(S)``.
    """
    cost_arr = np.asarray(list(costs), dtype=np.float64)
    if cost_arr.size != graph.num_nodes:
        raise ValueError("costs must have one entry per node")
    if np.any(cost_arr <= 0):
        raise ValueError("all costs must be positive")
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")

    cluster = prepare_cluster(graph, num_machines, network, seed, cluster, collections)
    if collections is None:
        sampler = make_sampler(graph, model=model)
        shares = cluster.split_count(num_rr_sets)

        def generate(machine: Machine) -> None:
            machine.collection.extend(
                sampler.sample_many(shares[machine.machine_id], machine.rng)
            )

        cluster.map(GENERATION, "budgeted/generate", generate)
    else:
        num_rr_sets = sum(store.num_sets for store in collections)
    counts = gather_coverage_counts(cluster, label="budgeted/init")

    def reset(machine: Machine) -> int:
        machine.state["covered"] = np.zeros(machine.collection.num_sets, dtype=bool)
        return machine.collection.num_sets

    total_elements = sum(cluster.map(COMPUTATION, "budgeted/reset", reset))

    # Cost-effective lazy greedy: a max-heap on ratio with lazy
    # re-evaluation (marginals only decrease, so a stale top is re-pushed
    # with its fresh ratio).
    heap = [
        (-counts[v] / cost_arr[v], v)
        for v in range(graph.num_nodes)
        if counts[v] > 0 and cost_arr[v] <= budget
    ]
    heapq.heapify(heap)
    heap_counts = {v: int(counts[v]) for __, v in heap}

    seeds: list[int] = []
    remaining = float(budget)
    coverage = 0

    def run_map_round(seed_node: int) -> int:
        cluster.broadcast("budgeted/seed", SEED_BYTES)

        def map_stage(machine: Machine) -> tuple[Dict[int, int], int]:
            store = machine.collection
            covered = machine.state["covered"]
            delta: Dict[int, int] = {}
            newly = 0
            for element in store.sets_containing(seed_node):
                if covered[element]:
                    continue
                covered[element] = True
                newly += 1
                for node in store.get(element).tolist():
                    delta[node] = delta.get(node, 0) + 1
            return delta, newly

        responses = cluster.map(COMPUTATION, "budgeted/map", map_stage)
        cluster.gather(
            "budgeted/gather", [TUPLE_BYTES * len(d) for d, __ in responses]
        )

        def reduce_stage() -> int:
            gained = 0
            for delta, newly in responses:
                gained += newly
                for node, dec in delta.items():
                    counts[node] -= dec
            return gained

        return cluster.run_on_master("budgeted/reduce", reduce_stage)

    while heap:
        neg_ratio, candidate = heapq.heappop(heap)
        if candidate in seeds or cost_arr[candidate] > remaining:
            continue
        current = int(counts[candidate])
        if current <= 0:
            continue
        recorded = heap_counts.get(candidate, current)
        if current < recorded:
            # Stale ratio: re-file with the fresh marginal.
            heap_counts[candidate] = current
            heapq.heappush(heap, (-current / cost_arr[candidate], candidate))
            continue
        seeds.append(candidate)
        remaining -= float(cost_arr[candidate])
        coverage += run_map_round(candidate)

    # Classical safeguard: compare against the best affordable singleton.
    affordable = np.flatnonzero(cost_arr <= budget)
    if affordable.size:
        initial_counts = gather_coverage_counts(cluster, label="budgeted/single")
        best_single = int(affordable[np.argmax(initial_counts[affordable])])
        single_cov = sum(
            m.collection.coverage_of([best_single]) for m in cluster.machines
        )
        if single_cov > coverage:
            seeds = [best_single]
            coverage = single_cov

    fraction = coverage / total_elements if total_elements else 0.0
    return ApplicationResult(
        application="budgeted-influence-maximization",
        seeds=seeds,
        objective=graph.num_nodes * fraction,
        num_rr_sets=num_rr_sets,
        metrics=cluster.metrics,
        params={
            "budget": budget,
            "spent": round(float(cost_arr[seeds].sum()), 4) if seeds else 0.0,
            "num_machines": num_machines,
            "model": model,
        },
    )
