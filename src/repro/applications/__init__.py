"""Influence-based applications accelerated by the distributed machinery.

The paper's conclusion (Section VI) claims its distributed RIS +
NEWGREEDI approach extends beyond plain influence maximization to the
greedy algorithms of several influence-based applications.  This package
substantiates the claim for four of them:

* :func:`targeted_influence_maximization` — only a target subset counts;
* :func:`budgeted_influence_maximization` — per-node costs, total budget;
* :func:`seed_minimization` — fewest seeds reaching a required spread;
* :func:`profit_maximization` — spread benefit minus seeding cost.

Each reuses the same distributed building blocks: per-machine RR
collections, master-side aggregated marginals, and NEWGREEDI's
map/reduce decrement rounds.
"""

from .adaptive import adaptive_influence_maximization
from .budgeted import budgeted_influence_maximization
from .profit import profit_maximization
from .result import ApplicationResult
from .seedmin import seed_minimization
from .targeted import TargetedSampler, targeted_influence_maximization

__all__ = [
    "ApplicationResult",
    "targeted_influence_maximization",
    "TargetedSampler",
    "budgeted_influence_maximization",
    "seed_minimization",
    "profit_maximization",
    "adaptive_influence_maximization",
]
