"""Shared plumbing for the application-level algorithms.

The applications (budgeted, profit, targeted) all run the same prologue:
build (or borrow) a simulated cluster and give each machine its RR
collection — either a fresh empty store that the application then fills,
or a pre-generated one (a warm pool's per-query prefix view), in which
case generation is skipped entirely.  This module keeps that prologue in
one place so the three entry points cannot drift apart.
"""

from __future__ import annotations

from typing import Sequence

from ..cluster.cluster import SimulatedCluster
from ..cluster.network import NetworkModel
from ..graphs.digraph import DirectedGraph

__all__ = ["prepare_cluster"]


def prepare_cluster(
    graph: DirectedGraph,
    num_machines: int,
    network: NetworkModel | None,
    seed: int,
    cluster: SimulatedCluster | None,
    collections: Sequence | None,
) -> SimulatedCluster:
    """Return a cluster whose machines carry their RR collections.

    With ``cluster=None`` a fresh ``SimulatedCluster`` is built from
    ``(num_machines, network, seed)``; a lent cluster is used as-is after
    a machine-count check (its RNG streams and metrics stay the caller's
    responsibility).  With ``collections=None`` every machine gets a
    fresh empty flat store; otherwise the given stores — one per machine,
    any object with the read surface of a flat collection, e.g. a
    :class:`~repro.ris.flat.FlatPrefixView` — are attached directly and
    the caller is expected to skip generation.
    """
    if cluster is None:
        cluster = SimulatedCluster(num_machines, network=network, seed=seed)
    elif cluster.num_machines != num_machines:
        raise ValueError(
            f"num_machines={num_machines} but the lent cluster has "
            f"{cluster.num_machines} machines"
        )
    if collections is None:
        cluster.init_collections(graph.num_nodes)
    else:
        if len(collections) != cluster.num_machines:
            raise ValueError(
                f"expected {cluster.num_machines} collections, "
                f"got {len(collections)}"
            )
        for machine, store in zip(cluster.machines, collections):
            machine.collection = store
    return cluster
