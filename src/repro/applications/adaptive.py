"""Distributed adaptive influence maximization (full-adoption feedback).

The paper's related work points to the adaptive setting (Han et al., VLDB
2018; Huang et al., VLDB J. 2020): seeds are selected *one at a time*, and
after each selection the advertiser observes the realized cascade before
choosing the next seed.  Under full-adoption feedback the observed nodes
can never be influenced again, so each round works on the *residual*
graph with all previously activated nodes removed.

The AdaptGreedy pattern distributes exactly like DIIMM's inner loop:

1. generate fresh RR sets on the residual graph across machines
   (distributed RIS, rooted only at still-inactive nodes);
2. pick the single node with the largest aggregated coverage (a ``k=1``
   NEWGREEDI call);
3. observe the seed's true cascade (one forward simulation on the ground
   truth), shrink the residual graph, and repeat.

Because the graph shrinks between rounds, samples cannot be reused — the
per-round regeneration *is* the adaptive setting's cost, which is why the
paper's distributed sampling matters even more here.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import SimulatedCluster
from ..cluster.machine import Machine
from ..cluster.metrics import GENERATION
from ..cluster.network import NetworkModel
from ..coverage.newgreedi import newgreedi
from ..diffusion.base import get_model
from ..graphs.digraph import DirectedGraph
from ..ris import make_sampler
from .result import ApplicationResult
from .targeted import TargetedSampler

__all__ = ["adaptive_influence_maximization"]


def adaptive_influence_maximization(
    graph: DirectedGraph,
    k: int,
    num_machines: int,
    rr_sets_per_round: int,
    model: str = "ic",
    method: str = "bfs",
    network: NetworkModel | None = None,
    seed: int = 0,
) -> ApplicationResult:
    """Adaptively select ``k`` seeds with full-adoption feedback.

    Parameters
    ----------
    rr_sets_per_round:
        RR sets regenerated (across machines) for each seed decision.
    method:
        RR-set generation procedure, as in :func:`repro.ris.make_sampler`;
        the per-round regeneration cost makes ``"vectorized"`` attractive
        on large residual graphs.
    seed:
        Drives both the sampling RNGs and the simulated ground-truth
        cascades, so a run is fully reproducible.

    Returns
    -------
    ApplicationResult
        ``seeds`` in selection order; ``objective`` is the *realized*
        number of activated nodes (not an estimate — adaptivity observes
        the true cascades).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if rr_sets_per_round < 1:
        raise ValueError(f"rr_sets_per_round must be >= 1, got {rr_sets_per_round}")
    diffusion = get_model(model)
    reality_rng = np.random.default_rng(seed + 777)

    activated: set[int] = set()
    seeds: list[int] = []
    residual = graph
    cluster = SimulatedCluster(num_machines, network=network, seed=seed)
    total_rr = 0

    for round_idx in range(k):
        inactive = [v for v in range(graph.num_nodes) if v not in activated]
        if not inactive:
            break
        base = make_sampler(residual, model=model, method=method)
        sampler = TargetedSampler(base, inactive)
        cluster.init_collections(graph.num_nodes)
        shares = cluster.split_count(rr_sets_per_round)
        total_rr += rr_sets_per_round

        def generate(machine: Machine) -> None:
            machine.collection.extend(
                sampler.sample_many(shares[machine.machine_id], machine.rng)
            )

        cluster.map(GENERATION, f"adaptive-{round_idx}/generate", generate)
        selection = newgreedi(cluster, 1, label=f"adaptive-{round_idx}/newgreedi")
        chosen = selection.seeds[0]
        seeds.append(chosen)

        # Observe the realized cascade on the residual ground truth.
        cascade = diffusion.simulate(residual, [chosen], reality_rng)
        newly = set(int(v) for v in cascade) - activated
        activated.update(newly)
        residual = residual.without_nodes(list(activated))

    return ApplicationResult(
        application="adaptive-influence-maximization",
        seeds=seeds,
        objective=float(len(activated)),
        num_rr_sets=total_rr,
        metrics=cluster.metrics,
        params={
            "k": k,
            "num_machines": num_machines,
            "rr_sets_per_round": rr_sets_per_round,
            "model": model,
            "method": method,
        },
    )
