"""Distributed seed minimization.

Seed minimization (Long & Wong, ICDM 2011; Zhang et al., KDD 2014)
inverts influence maximization: given a required expected spread ``Q``,
find the *smallest* seed set achieving it.  On RR samples the requirement
``sigma(S) >= Q`` becomes a coverage threshold
``F_R(S) >= Q / n`` — a partial-cover instance the greedy solves with an
``O(ln)``-factor guarantee.

The distributed story is identical to NEWGREEDI's: the master keeps
aggregated marginals, every accepted seed triggers one map/reduce
decrement round, and the loop simply stops on the coverage threshold
instead of a seed count.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..cluster.cluster import SimulatedCluster
from ..cluster.machine import Machine
from ..cluster.metrics import COMPUTATION, GENERATION
from ..cluster.network import NetworkModel
from ..coverage.greedy import BucketQueue
from ..coverage.newgreedi import SEED_BYTES, TUPLE_BYTES, gather_coverage_counts
from ..graphs.digraph import DirectedGraph
from ..ris import make_sampler
from .result import ApplicationResult

__all__ = ["seed_minimization"]


def seed_minimization(
    graph: DirectedGraph,
    required_spread: float,
    num_machines: int,
    num_rr_sets: int,
    model: str = "ic",
    network: NetworkModel | None = None,
    seed: int = 0,
    max_seeds: int | None = None,
) -> ApplicationResult:
    """Select the (greedily) smallest seed set with ``sigma(S) >= Q``.

    Parameters
    ----------
    required_spread:
        The target expected spread ``Q`` (in nodes, ``1 <= Q <= n``).
    max_seeds:
        Optional hard cap on the seed count; defaults to ``n``.

    Notes
    -----
    If even covering every coverable RR set cannot certify ``Q`` on the
    drawn samples, the loop stops once marginals hit zero and the result
    reports the spread actually certified.
    """
    n = graph.num_nodes
    if not 1.0 <= required_spread <= n:
        raise ValueError(f"required_spread must lie in [1, n], got {required_spread}")
    cap = n if max_seeds is None else max_seeds
    if cap < 1:
        raise ValueError(f"max_seeds must be >= 1, got {max_seeds}")

    sampler = make_sampler(graph, model=model)
    cluster = SimulatedCluster(num_machines, network=network, seed=seed)
    cluster.init_collections(n)
    shares = cluster.split_count(num_rr_sets)

    def generate(machine: Machine) -> None:
        machine.collection.extend(
            sampler.sample_many(shares[machine.machine_id], machine.rng)
        )

    cluster.map(GENERATION, "seedmin/generate", generate)
    counts = gather_coverage_counts(cluster, label="seedmin/init")

    def reset(machine: Machine) -> int:
        machine.state["covered"] = np.zeros(machine.collection.num_sets, dtype=bool)
        return machine.collection.num_sets

    total_elements = sum(cluster.map(COMPUTATION, "seedmin/reset", reset))
    required_coverage = int(np.ceil(required_spread / n * total_elements))

    queue = BucketQueue(counts)
    seeds: list[int] = []
    coverage = 0
    while coverage < required_coverage and len(seeds) < cap:
        candidate = queue.pop_max()
        if candidate is None:
            break
        seeds.append(candidate)
        cluster.broadcast("seedmin/seed", SEED_BYTES)

        def map_stage(machine: Machine, seed_node: int = candidate) -> tuple[Dict[int, int], int]:
            store = machine.collection
            covered = machine.state["covered"]
            delta: Dict[int, int] = {}
            newly = 0
            for element in store.sets_containing(seed_node):
                if covered[element]:
                    continue
                covered[element] = True
                newly += 1
                for node in store.get(element).tolist():
                    delta[node] = delta.get(node, 0) + 1
            return delta, newly

        responses = cluster.map(COMPUTATION, "seedmin/map", map_stage)
        cluster.gather(
            "seedmin/gather", [TUPLE_BYTES * len(d) for d, __ in responses]
        )

        def reduce_stage() -> int:
            gained = 0
            for delta, newly in responses:
                gained += newly
                for node, dec in delta.items():
                    counts[node] -= dec
            return gained

        coverage += cluster.run_on_master("seedmin/reduce", reduce_stage)

    fraction = coverage / total_elements if total_elements else 0.0
    return ApplicationResult(
        application="seed-minimization",
        seeds=seeds,
        objective=n * fraction,
        num_rr_sets=num_rr_sets,
        metrics=cluster.metrics,
        params={
            "required_spread": required_spread,
            "achieved": round(n * fraction, 2),
            "num_machines": num_machines,
            "model": model,
        },
    )
