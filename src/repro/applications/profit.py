"""Distributed profit maximization.

Profit maximization (Tang et al., ICNP 2016 / TKDE 2018) drops the
cardinality constraint: each seeded node costs ``c(v)`` and the objective
is ``profit(S) = sigma(S) - sum_{v in S} c(v)`` — an *unconstrained*
(non-monotone once costs bite) submodular objective.  The simple greedy
keeps seeding while the best marginal spread gain exceeds the node's
cost, which is the double-greedy-style heuristic those papers build on.

On RR samples a marginal coverage of ``Delta(v)`` elements is worth
``Delta(v) * n / theta`` expected nodes, so the stopping rule becomes
``Delta(v) * n / theta > c(v)``.  Distribution again reuses the NEWGREEDI
round structure verbatim.
"""

from __future__ import annotations

import heapq
from typing import Dict, Sequence

import numpy as np

from ..cluster.cluster import SimulatedCluster
from ..cluster.machine import Machine
from ..cluster.metrics import COMPUTATION, GENERATION
from ..cluster.network import NetworkModel
from ..coverage.newgreedi import SEED_BYTES, TUPLE_BYTES, gather_coverage_counts
from ..graphs.digraph import DirectedGraph
from ..ris import make_sampler
from .common import prepare_cluster
from .result import ApplicationResult

__all__ = ["profit_maximization"]


def profit_maximization(
    graph: DirectedGraph,
    costs: Sequence[float],
    num_machines: int,
    num_rr_sets: int,
    model: str = "ic",
    network: NetworkModel | None = None,
    seed: int = 0,
    cluster: SimulatedCluster | None = None,
    collections: Sequence | None = None,
) -> ApplicationResult:
    """Greedy profit-maximizing seed selection over distributed RR sets.

    Stops as soon as no node's estimated marginal spread exceeds its cost;
    the returned seed set can be empty when seeding anyone is unprofitable.
    ``objective`` reports the estimated profit
    ``n * F_R(S) - sum_{v in S} c(v)``.  ``cluster`` lends a pre-built
    cluster; ``collections`` attaches pre-generated per-machine stores
    (e.g. warm-pool prefix views) and skips generation, with
    ``num_rr_sets`` taken from their actual total size.
    """
    n = graph.num_nodes
    cost_arr = np.asarray(list(costs), dtype=np.float64)
    if cost_arr.size != n:
        raise ValueError("costs must have one entry per node")
    if np.any(cost_arr < 0):
        raise ValueError("costs must be non-negative")

    cluster = prepare_cluster(graph, num_machines, network, seed, cluster, collections)
    if collections is None:
        sampler = make_sampler(graph, model=model)
        shares = cluster.split_count(num_rr_sets)

        def generate(machine: Machine) -> None:
            machine.collection.extend(
                sampler.sample_many(shares[machine.machine_id], machine.rng)
            )

        cluster.map(GENERATION, "profit/generate", generate)
    else:
        num_rr_sets = sum(store.num_sets for store in collections)
    counts = gather_coverage_counts(cluster, label="profit/init")

    def reset(machine: Machine) -> int:
        machine.state["covered"] = np.zeros(machine.collection.num_sets, dtype=bool)
        return machine.collection.num_sets

    total_elements = sum(cluster.map(COMPUTATION, "profit/reset", reset))
    if total_elements == 0:
        raise ValueError("num_rr_sets must be >= 1")
    spread_per_element = n / total_elements

    # Lazy greedy on the profit gain Delta(v) * n/theta - c(v): marginals
    # only decrease, so a stale heap top re-files with its fresh gain and
    # the loop stops as soon as the best fresh gain is non-positive.
    def gain_of(node: int) -> float:
        return float(counts[node]) * spread_per_element - float(cost_arr[node])

    heap = [(-gain_of(v), v) for v in range(n) if gain_of(v) > 0]
    heapq.heapify(heap)
    recorded = {v: -g for g, v in heap}

    seeds: list[int] = []
    coverage = 0
    while heap:
        neg_gain, candidate = heapq.heappop(heap)
        fresh = gain_of(candidate)
        if fresh <= 0:
            continue
        if fresh < recorded[candidate] - 1e-12:
            recorded[candidate] = fresh
            heapq.heappush(heap, (-fresh, candidate))
            continue
        seeds.append(candidate)
        cluster.broadcast("profit/seed", SEED_BYTES)

        def map_stage(machine: Machine, seed_node: int = candidate) -> tuple[Dict[int, int], int]:
            store = machine.collection
            covered = machine.state["covered"]
            delta: Dict[int, int] = {}
            newly = 0
            for element in store.sets_containing(seed_node):
                if covered[element]:
                    continue
                covered[element] = True
                newly += 1
                for node in store.get(element).tolist():
                    delta[node] = delta.get(node, 0) + 1
            return delta, newly

        responses = cluster.map(COMPUTATION, "profit/map", map_stage)
        cluster.gather(
            "profit/gather", [TUPLE_BYTES * len(d) for d, __ in responses]
        )

        def reduce_stage() -> int:
            gained = 0
            for delta, newly in responses:
                gained += newly
                for node, dec in delta.items():
                    counts[node] -= dec
            return gained

        coverage += cluster.run_on_master("profit/reduce", reduce_stage)

    spread_estimate = coverage * spread_per_element
    profit = spread_estimate - float(cost_arr[seeds].sum()) if seeds else 0.0
    return ApplicationResult(
        application="profit-maximization",
        seeds=seeds,
        objective=profit,
        num_rr_sets=num_rr_sets,
        metrics=cluster.metrics,
        params={
            "spread_estimate": round(spread_estimate, 2),
            "total_cost": round(float(cost_arr[seeds].sum()), 2) if seeds else 0.0,
            "num_machines": num_machines,
            "model": model,
        },
    )
