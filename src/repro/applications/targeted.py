"""Distributed targeted influence maximization.

The paper's conclusion lists targeted influence maximization (Li et al.,
VLDB 2015) among the applications its distributed machinery accelerates:
only a subset ``T`` of users matters to the advertiser, and the objective
is the expected number of *targeted* users activated.

RIS adapts by rooting RR sets at targeted nodes only: for a root drawn
uniformly from ``T``, Lemma 1 becomes
``sigma_T(S) = |T| * Pr[S covers R]``.  Everything downstream — the
distributed generation, the element-distributed NEWGREEDI selection — is
unchanged, which is precisely why the paper's claim holds.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..cluster.cluster import SimulatedCluster
from ..cluster.machine import Machine
from ..cluster.metrics import GENERATION
from ..cluster.network import NetworkModel
from ..coverage.newgreedi import newgreedi
from ..graphs.digraph import DirectedGraph
from ..ris import make_sampler
from ..ris.rrset import RRSampler
from .common import prepare_cluster
from .result import ApplicationResult

__all__ = ["TargetedSampler", "targeted_influence_maximization"]


class TargetedSampler(RRSampler):
    """Wraps a base sampler, drawing roots uniformly from the target set."""

    def __init__(self, base: RRSampler, targets: Sequence[int]) -> None:
        super().__init__(base.graph)
        self._base = base
        self._targets = np.unique(np.asarray(list(targets), dtype=np.int64))
        if self._targets.size == 0:
            raise ValueError("target set must not be empty")
        if self._targets[0] < 0 or self._targets[-1] >= base.graph.num_nodes:
            raise ValueError("target ids must lie in [0, num_nodes)")

    @property
    def num_targets(self) -> int:
        return int(self._targets.size)

    def sample(self, rng: np.random.Generator):
        root = int(self._targets[rng.integers(0, self._targets.size)])
        return self._base.sample(rng, root=root)


def targeted_influence_maximization(
    graph: DirectedGraph,
    targets: Iterable[int],
    k: int,
    num_machines: int,
    num_rr_sets: int,
    model: str = "ic",
    network: NetworkModel | None = None,
    seed: int = 0,
    cluster: SimulatedCluster | None = None,
    collections: Sequence | None = None,
) -> ApplicationResult:
    """Select ``k`` seeds maximising the targeted influence spread.

    Parameters
    ----------
    graph:
        Weighted directed graph.
    targets:
        The user subset whose activation counts.
    k:
        Seed-set size.
    num_machines:
        Simulated machine count.
    num_rr_sets:
        Total targeted RR sets to generate (fixed-budget variant; the
        IMM-style adaptive schedule of :func:`repro.core.diimm.diimm`
        applies unchanged if a guarantee is required).
    cluster:
        Optional lent cluster to run on (the caller keeps ownership).
    collections:
        Optional pre-generated per-machine *targeted* RR stores (one per
        machine, e.g. warm-pool prefix views grown with a
        :class:`TargetedSampler` over the same target set); generation is
        skipped and ``num_rr_sets`` is taken from their actual total size.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if num_rr_sets < 1:
        raise ValueError(f"num_rr_sets must be >= 1, got {num_rr_sets}")
    sampler = TargetedSampler(make_sampler(graph, model=model), list(targets))
    cluster = prepare_cluster(graph, num_machines, network, seed, cluster, collections)
    if collections is None:
        shares = cluster.split_count(num_rr_sets)

        def generate(machine: Machine) -> None:
            machine.collection.extend(
                sampler.sample_many(shares[machine.machine_id], machine.rng)
            )

        cluster.map(GENERATION, "targeted/generate", generate)
    else:
        num_rr_sets = sum(store.num_sets for store in collections)
    selection = newgreedi(cluster, k, label="targeted/newgreedi")
    estimated = sampler.num_targets * selection.fraction
    return ApplicationResult(
        application="targeted-influence-maximization",
        seeds=selection.seeds,
        objective=estimated,
        num_rr_sets=num_rr_sets,
        metrics=cluster.metrics,
        params={
            "k": k,
            "num_machines": num_machines,
            "num_targets": sampler.num_targets,
            "model": model,
        },
    )
