"""Shared result container for the influence-based applications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..cluster.metrics import RunMetrics

__all__ = ["ApplicationResult"]


@dataclass
class ApplicationResult:
    """Outcome of one distributed influence-application run.

    Attributes
    ----------
    application:
        Which problem was solved (e.g. ``"budgeted-influence-maximization"``).
    seeds:
        The selected seed set (size varies by application).
    objective:
        The application's objective value estimated on the RR samples
        (targeted spread, plain spread, profit, ...).
    num_rr_sets:
        Total RR sets generated across machines.
    metrics:
        Timing/traffic breakdown of the distributed run.
    params:
        Scalar run parameters for reporting.
    """

    application: str
    seeds: List[int]
    objective: float
    num_rr_sets: int
    metrics: RunMetrics
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def breakdown(self) -> Dict[str, float]:
        """Generation / computation / communication / total times."""
        return self.metrics.breakdown()

    def summary_row(self) -> Dict[str, object]:
        """Flat dict for table printing."""
        row: Dict[str, object] = {
            "application": self.application,
            "num_seeds": len(self.seeds),
            "objective": round(self.objective, 2),
            "num_rr_sets": self.num_rr_sets,
        }
        row.update(self.params)
        row.update({key: round(value, 4) for key, value in self.breakdown.items()})
        return row
