"""Edge weighting schemes for influence propagation probabilities.

The paper (Section IV-A) sets ``p_{u,v}`` to the reciprocal of ``v``'s
in-degree — the *weighted cascade* (WC) setting used by most influence
maximization studies.  We also provide the two other common settings from
the literature, *trivalency* (TR) and *uniform* (UN), so ablations can vary
the weighting scheme.

All functions return a new :class:`DirectedGraph`; the input is untouched.
"""

from __future__ import annotations

import numpy as np

from .digraph import DirectedGraph

__all__ = [
    "weighted_cascade",
    "trivalency",
    "uniform",
    "TRIVALENCY_CHOICES",
]

#: The canonical trivalency probabilities of Chen et al. (KDD 2010).
TRIVALENCY_CHOICES: tuple[float, float, float] = (0.1, 0.01, 0.001)


def weighted_cascade(graph: DirectedGraph) -> DirectedGraph:
    """Assign ``p_{u,v} = 1 / indeg(v)`` to every edge (the paper's setting).

    Under the LT interpretation the incoming probabilities of every node sum
    to exactly one, which satisfies the LT constraint
    ``sum_{u in N_v^in} p_{u,v} <= 1`` with equality.
    """
    sources, targets, __ = graph.edge_arrays()
    indeg = graph.in_degrees().astype(np.float64)
    # Nodes with zero in-degree never appear as a target, so the division
    # below only ever reads positive degrees; guard anyway for empty graphs.
    safe = np.where(indeg > 0, indeg, 1.0)
    probs = 1.0 / safe[targets]
    return graph.with_probabilities(probs)


def trivalency(
    graph: DirectedGraph,
    rng: np.random.Generator,
    choices: tuple[float, ...] = TRIVALENCY_CHOICES,
) -> DirectedGraph:
    """Assign each edge a probability drawn uniformly from ``choices``.

    This is the TR model of Chen et al.; note it does not satisfy the LT
    constraint in general and should only be paired with the IC model.
    """
    probs = rng.choice(np.asarray(choices, dtype=np.float64), size=graph.num_edges)
    return graph.with_probabilities(probs)


def uniform(graph: DirectedGraph, prob: float) -> DirectedGraph:
    """Assign the same probability ``prob`` to every edge."""
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"prob must lie in [0, 1], got {prob}")
    probs = np.full(graph.num_edges, prob, dtype=np.float64)
    return graph.with_probabilities(probs)
