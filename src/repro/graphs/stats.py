"""Structural graph statistics.

Used to characterise the synthetic stand-ins against the qualitative
properties the paper's datasets are known for: heavy-tailed degrees
(Google+/Twitter), a dominant weakly-connected component, and the degree
summary reported in Table III.  All routines are iterative (no recursion)
so they handle the larger stand-ins without hitting Python's stack limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .digraph import DirectedGraph

__all__ = [
    "DegreeSummary",
    "degree_summary",
    "weakly_connected_components",
    "largest_wcc_fraction",
    "strongly_connected_components",
    "powerlaw_tail_exponent",
]


@dataclass(frozen=True)
class DegreeSummary:
    """Moments and extremes of a degree sequence."""

    mean: float
    median: float
    maximum: int
    p99: float
    gini: float

    @classmethod
    def from_degrees(cls, degrees: np.ndarray) -> "DegreeSummary":
        if degrees.size == 0:
            return cls(0.0, 0.0, 0, 0.0, 0.0)
        sorted_deg = np.sort(degrees.astype(np.float64))
        total = sorted_deg.sum()
        if total > 0:
            # Gini coefficient of the degree distribution: 0 = uniform,
            # -> 1 = hub-dominated.
            ranks = np.arange(1, sorted_deg.size + 1)
            gini = float(
                (2 * (ranks * sorted_deg).sum() / (sorted_deg.size * total))
                - (sorted_deg.size + 1) / sorted_deg.size
            )
        else:
            gini = 0.0
        return cls(
            mean=float(sorted_deg.mean()),
            median=float(np.median(sorted_deg)),
            maximum=int(sorted_deg[-1]),
            p99=float(np.percentile(sorted_deg, 99)),
            gini=gini,
        )


def degree_summary(graph: DirectedGraph, direction: str = "out") -> DegreeSummary:
    """Summarise the out- or in-degree distribution."""
    if direction not in ("out", "in"):
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    degrees = graph.out_degrees() if direction == "out" else graph.in_degrees()
    return DegreeSummary.from_degrees(degrees)


def weakly_connected_components(graph: DirectedGraph) -> np.ndarray:
    """Component label per node, ignoring edge direction (iterative BFS)."""
    n = graph.num_nodes
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for start in range(n):
        if labels[start] != -1:
            continue
        labels[start] = current
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in np.concatenate(
                (graph.out_neighbors(node), graph.in_neighbors(node))
            ):
                neighbor = int(neighbor)
                if labels[neighbor] == -1:
                    labels[neighbor] = current
                    stack.append(neighbor)
        current += 1
    return labels


def largest_wcc_fraction(graph: DirectedGraph) -> float:
    """Fraction of nodes inside the largest weakly-connected component."""
    if graph.num_nodes == 0:
        return 0.0
    labels = weakly_connected_components(graph)
    counts = np.bincount(labels)
    return float(counts.max() / graph.num_nodes)


def strongly_connected_components(graph: DirectedGraph) -> np.ndarray:
    """Component label per node (iterative Tarjan).

    Labels are arbitrary but consistent: two nodes share a label iff they
    are mutually reachable.
    """
    n = graph.num_nodes
    index_of = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    labels = np.full(n, -1, dtype=np.int64)
    stack: list[int] = []
    next_index = 0
    next_label = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        # Iterative Tarjan: work entries are (node, iterator position).
        work = [(root, 0)]
        while work:
            node, edge_pos = work.pop()
            if edge_pos == 0:
                index_of[node] = lowlink[node] = next_index
                next_index += 1
                stack.append(node)
                on_stack[node] = True
            neighbors = graph.out_neighbors(node)
            advanced = False
            for pos in range(edge_pos, neighbors.size):
                neighbor = int(neighbors[pos])
                if index_of[neighbor] == -1:
                    work.append((node, pos + 1))
                    work.append((neighbor, 0))
                    advanced = True
                    break
                if on_stack[neighbor]:
                    lowlink[node] = min(lowlink[node], index_of[neighbor])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    labels[member] = next_label
                    if member == node:
                        break
                next_label += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return labels


def powerlaw_tail_exponent(degrees: np.ndarray, tail_fraction: float = 0.1) -> float:
    """Hill estimator of the degree distribution's tail exponent ``alpha``.

    Heavy-tailed (power-law-like) graphs give ``alpha`` roughly in
    ``(1.5, 3.5)``; light-tailed ones drift far higher.  Only the largest
    ``tail_fraction`` of positive degrees enter the estimate.
    """
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError(f"tail_fraction must lie in (0, 1], got {tail_fraction}")
    positive = np.sort(degrees[degrees > 0].astype(np.float64))
    if positive.size < 10:
        raise ValueError("need at least 10 positive degrees for a tail estimate")
    tail_size = max(int(positive.size * tail_fraction), 5)
    tail = positive[-tail_size:]
    threshold = tail[0]
    # Hill: alpha = 1 + k / sum(log(x_i / x_min)).
    logs = np.log(tail / threshold)
    total = logs.sum()
    if total <= 0:
        return float("inf")
    return float(1.0 + tail_size / total)
