"""Synthetic graph generators.

These generators produce the stand-in workloads for the paper's SNAP
datasets (see DESIGN.md).  All of them draw randomness from an explicit
``numpy.random.Generator`` so runs are reproducible, and all return a
:class:`~repro.graphs.digraph.DirectedGraph` with zero edge probabilities
(apply a scheme from :mod:`repro.graphs.weights` afterwards).

The heavy-tailed generators matter most: RR-set generation cost under the
weighted-cascade setting is driven by the in-degree distribution, so the
Chung-Lu and R-MAT generators are what make the scaled stand-ins behave
like Google+/Twitter.
"""

from __future__ import annotations

import numpy as np

from .builder import GraphBuilder
from .digraph import DirectedGraph

__all__ = [
    "paper_example_graph",
    "paper_coverage_example",
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "chung_lu",
    "rmat",
    "star_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
]


def paper_example_graph() -> DirectedGraph:
    """The 4-node graph of the paper's Fig. 1 with its edge probabilities.

    Nodes ``0..3`` map to the paper's ``v1..v4``.  Under the IC model
    ``sigma({v1}) = 3.664``; under LT ``sigma({v1}) = 3.9`` (Example 1).
    """
    edges = [
        (0, 1, 1.0),  # v1 -> v2
        (0, 2, 1.0),  # v1 -> v3
        (0, 3, 0.4),  # v1 -> v4
        (1, 3, 0.3),  # v2 -> v4
        (2, 3, 0.2),  # v3 -> v4
    ]
    return GraphBuilder.from_edges(edges, num_nodes=4)


def paper_coverage_example() -> list[set[int]]:
    """The 6 RR sets of the paper's Fig. 2 (Example 3), nodes as ``0..4``.

    Selecting ``{v1, v2}`` (ids ``{0, 1}``) covers all six RR sets.
    """
    return [
        {0, 1},  # R1: v1, v2
        {1, 2},  # R2: v2, v3
        {0, 2},  # R3: v1, v3
        {1, 4},  # R4: v2, v5
        {0, 3},  # R5: v1, v4
        {1, 3},  # R6: v2, v4
    ]


def _dedup_random_edges(
    num_nodes: int,
    sources: np.ndarray,
    targets: np.ndarray,
) -> DirectedGraph:
    """Drop self loops and duplicates from sampled endpoint arrays."""
    keep = sources != targets
    sources, targets = sources[keep], targets[keep]
    keys = sources.astype(np.int64) * num_nodes + targets
    __, unique_idx = np.unique(keys, return_index=True)
    return DirectedGraph(num_nodes, sources[unique_idx], targets[unique_idx])


def erdos_renyi(
    num_nodes: int,
    num_edges: int,
    rng: np.random.Generator,
) -> DirectedGraph:
    """Directed G(n, M) graph: ``num_edges`` edges sampled uniformly.

    Self loops and duplicates are removed, so the realised edge count can be
    slightly below ``num_edges`` for dense requests.
    """
    if num_nodes <= 1:
        return DirectedGraph(num_nodes, [], [])
    sources = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    targets = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    return _dedup_random_edges(num_nodes, sources, targets)


def barabasi_albert(
    num_nodes: int,
    attach: int,
    rng: np.random.Generator,
) -> DirectedGraph:
    """Undirected preferential attachment, mirrored into a directed graph.

    Each arriving node connects to ``attach`` existing nodes chosen with
    probability proportional to their current degree (implemented with the
    standard repeated-endpoints trick).  Produces the Facebook-like
    stand-in: heavy clustering of early nodes, undirected edges.
    """
    if attach < 1:
        raise ValueError(f"attach must be >= 1, got {attach}")
    if num_nodes <= attach:
        raise ValueError("num_nodes must exceed attach")
    # repeated_nodes holds one entry per half-edge: sampling uniformly from
    # it is sampling proportionally to degree.
    repeated: list[int] = []
    builder = GraphBuilder(num_nodes=num_nodes, undirected=True)
    for new_node in range(attach, num_nodes):
        if not repeated:
            chosen = set(range(attach))
        else:
            chosen = set()
            while len(chosen) < attach:
                chosen.add(int(repeated[rng.integers(0, len(repeated))]))
        for node in chosen:
            builder.add_edge(new_node, node)
            repeated.append(new_node)
            repeated.append(node)
    return builder.build()


def watts_strogatz(
    num_nodes: int,
    neighbors: int,
    rewire_prob: float,
    rng: np.random.Generator,
) -> DirectedGraph:
    """Small-world ring lattice with random rewiring, mirrored directed.

    Each node starts connected to its ``neighbors // 2`` clockwise ring
    neighbours; each lattice edge is rewired to a random target with
    probability ``rewire_prob``.
    """
    if neighbors % 2 or neighbors < 2:
        raise ValueError(f"neighbors must be even and >= 2, got {neighbors}")
    if not 0.0 <= rewire_prob <= 1.0:
        raise ValueError(f"rewire_prob must lie in [0, 1], got {rewire_prob}")
    half = neighbors // 2
    builder = GraphBuilder(num_nodes=num_nodes, undirected=True)
    for u in range(num_nodes):
        for offset in range(1, half + 1):
            v = (u + offset) % num_nodes
            if rng.random() < rewire_prob:
                v = int(rng.integers(0, num_nodes))
                while v == u:
                    v = int(rng.integers(0, num_nodes))
            builder.add_edge(u, v)
    return builder.build()


def chung_lu(
    num_nodes: int,
    num_edges: int,
    rng: np.random.Generator,
    exponent: float = 2.5,
    min_weight: float = 1.0,
) -> DirectedGraph:
    """Directed Chung-Lu graph with Pareto(``exponent``) expected degrees.

    Endpoints of each edge are drawn independently in proportion to per-node
    weights ``w_i ~ Pareto``, giving a power-law in- and out-degree
    distribution — the LiveJournal-like stand-in.
    """
    if exponent <= 1.0:
        raise ValueError(f"exponent must exceed 1, got {exponent}")
    weights = min_weight * (1.0 + rng.pareto(exponent - 1.0, size=num_nodes))
    prob = weights / weights.sum()
    sources = rng.choice(num_nodes, size=num_edges, p=prob).astype(np.int64)
    targets = rng.choice(num_nodes, size=num_edges, p=prob).astype(np.int64)
    return _dedup_random_edges(num_nodes, sources, targets)


def rmat(
    scale: int,
    edge_factor: int,
    rng: np.random.Generator,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> DirectedGraph:
    """R-MAT / stochastic Kronecker graph on ``2**scale`` nodes.

    The recursive quadrant probabilities ``(a, b, c, d)`` default to the
    Graph500 values, producing the skewed, hub-dominated structure of the
    Twitter follower graph.  ``d = 1 - a - b - c``.
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("quadrant probabilities must sum to at most 1")
    num_nodes = 1 << scale
    num_edges = num_nodes * edge_factor
    sources = np.zeros(num_edges, dtype=np.int64)
    targets = np.zeros(num_edges, dtype=np.int64)
    # Vectorised recursive descent: one random draw per (edge, bit).
    for bit in range(scale):
        draws = rng.random(num_edges)
        src_bit = (draws >= a + b).astype(np.int64)
        # Within each half, the right quadrant is chosen with prob b/(a+b)
        # (top) or d/(c+d) (bottom).
        top_right = (draws >= a) & (draws < a + b)
        bottom_right = draws >= a + b + c
        dst_bit = (top_right | bottom_right).astype(np.int64)
        sources = (sources << 1) | src_bit
        targets = (targets << 1) | dst_bit
    return _dedup_random_edges(num_nodes, sources, targets)


# ----------------------------------------------------------------------
# Deterministic small graphs (test fixtures)
# ----------------------------------------------------------------------
def star_graph(num_leaves: int, outward: bool = True) -> DirectedGraph:
    """Star with hub node ``0``; edges point hub->leaf when ``outward``."""
    edges = []
    for leaf in range(1, num_leaves + 1):
        edges.append((0, leaf) if outward else (leaf, 0))
    return GraphBuilder.from_edges(edges, num_nodes=num_leaves + 1)


def path_graph(num_nodes: int) -> DirectedGraph:
    """Directed path ``0 -> 1 -> ... -> n-1``."""
    edges = [(i, i + 1) for i in range(num_nodes - 1)]
    return GraphBuilder.from_edges(edges, num_nodes=num_nodes)


def cycle_graph(num_nodes: int) -> DirectedGraph:
    """Directed cycle on ``num_nodes`` nodes."""
    edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    return GraphBuilder.from_edges(edges, num_nodes=num_nodes)


def complete_graph(num_nodes: int) -> DirectedGraph:
    """Complete directed graph (both directions, no self loops)."""
    edges = [(u, v) for u in range(num_nodes) for v in range(num_nodes) if u != v]
    return GraphBuilder.from_edges(edges, num_nodes=num_nodes)
