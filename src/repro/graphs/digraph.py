"""Compact directed graph in compressed sparse row (CSR) form.

The whole library operates on :class:`DirectedGraph`: an immutable directed
graph whose out-adjacency and in-adjacency are both stored as CSR arrays.
Influence propagation needs the out-adjacency (forward simulation), while
reverse influence sampling walks the in-adjacency, so both directions are
materialised once at construction time.

Each edge ``<u, v>`` carries a propagation probability ``p_{u,v}`` stored in
parallel to the adjacency arrays.  Probabilities default to zero until a
weighting scheme from :mod:`repro.graphs.weights` assigns them.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Sequence, Tuple

import numpy as np

__all__ = ["DirectedGraph", "SharedGraphHandle"]

#: The six CSR arrays that fully describe a graph, in block layout order.
_CSR_FIELDS = (
    "out_indptr",
    "out_indices",
    "out_probs",
    "in_indptr",
    "in_indices",
    "in_probs",
)


class SharedGraphHandle:
    """Owner of one shared-memory block holding a graph's CSR arrays.

    Created by :meth:`DirectedGraph.to_shared` in the master process; its
    picklable :attr:`spec` travels to workers, which attach read-only
    views via :meth:`DirectedGraph.from_shared` instead of unpickling a
    graph copy.  The handle owns the segment's lifetime: call
    :meth:`unlink` (idempotent, also invoked by ``__del__`` as a
    backstop) when no process needs the block any more.
    """

    def __init__(self, shm: Any, spec: Dict[str, Any]) -> None:
        self._shm = shm
        self.spec = spec

    @property
    def name(self) -> str:
        return self.spec["name"]

    def unlink(self) -> None:
        """Unmap and remove the segment.  Safe to call more than once."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # already removed (e.g. stale tmpdir)
                pass

    def __enter__(self) -> "SharedGraphHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.unlink()

    def __del__(self) -> None:
        try:
            self.unlink()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "unlinked" if self._shm is None else f"name={self.name!r}"
        return f"SharedGraphHandle({state})"


class DirectedGraph:
    """An immutable directed graph with per-edge propagation probabilities.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``.  Nodes are the integers ``0 .. n - 1``.
    sources, targets:
        Parallel integer arrays of length ``m`` describing the edge list.
    probs:
        Optional parallel float array of propagation probabilities.  When
        omitted every edge probability is zero (assign weights later with
        :mod:`repro.graphs.weights`).

    Notes
    -----
    The constructor sorts the edge list twice (once by source, once by
    target) to build both CSR directions.  Use
    :class:`repro.graphs.builder.GraphBuilder` for incremental construction.
    """

    __slots__ = (
        "_n",
        "_m",
        "out_indptr",
        "out_indices",
        "out_probs",
        "in_indptr",
        "in_indices",
        "in_probs",
        "_in_prob_sums",
        "_shm",
    )

    def __init__(
        self,
        num_nodes: int,
        sources: Sequence[int],
        targets: Sequence[int],
        probs: Sequence[float] | None = None,
    ) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        src = np.asarray(sources, dtype=np.int64)
        dst = np.asarray(targets, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("sources and targets must be 1-D arrays of equal length")
        if probs is None:
            prob = np.zeros(src.shape[0], dtype=np.float64)
        else:
            prob = np.asarray(probs, dtype=np.float64)
            if prob.shape != src.shape:
                raise ValueError("probs must have the same length as the edge list")
        if src.size:
            if src.min() < 0 or dst.min() < 0:
                raise ValueError("node ids must be non-negative")
            if src.max() >= num_nodes or dst.max() >= num_nodes:
                raise ValueError("node id exceeds num_nodes - 1")
            if prob.min() < 0.0 or prob.max() > 1.0:
                raise ValueError("edge probabilities must lie in [0, 1]")

        self._n = int(num_nodes)
        self._m = int(src.size)

        # Out-adjacency: edges sorted by source node.
        order = np.argsort(src, kind="stable")
        self.out_indptr = self._build_indptr(src[order])
        self.out_indices = np.ascontiguousarray(dst[order], dtype=np.int32)
        self.out_probs = np.ascontiguousarray(prob[order])

        # In-adjacency: edges sorted by target node.
        order = np.argsort(dst, kind="stable")
        self.in_indptr = self._build_indptr(dst[order])
        self.in_indices = np.ascontiguousarray(src[order], dtype=np.int32)
        self.in_probs = np.ascontiguousarray(prob[order])

        self._in_prob_sums: np.ndarray | None = None
        self._shm = None

    def _build_indptr(self, sorted_keys: np.ndarray) -> np.ndarray:
        counts = np.bincount(sorted_keys, minlength=self._n) if self._n else np.zeros(0, np.int64)
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m``."""
        return self._m

    def nodes(self) -> range:
        """All node ids as a range."""
        return range(self._n)

    def out_neighbors(self, u: int) -> np.ndarray:
        """Targets of edges leaving ``u`` (view, do not mutate)."""
        return self.out_indices[self.out_indptr[u] : self.out_indptr[u + 1]]

    def out_probabilities(self, u: int) -> np.ndarray:
        """Probabilities of edges leaving ``u``, parallel to out_neighbors."""
        return self.out_probs[self.out_indptr[u] : self.out_indptr[u + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of edges entering ``v`` (view, do not mutate)."""
        return self.in_indices[self.in_indptr[v] : self.in_indptr[v + 1]]

    def in_probabilities(self, v: int) -> np.ndarray:
        """Probabilities of edges entering ``v``, parallel to in_neighbors."""
        return self.in_probs[self.in_indptr[v] : self.in_indptr[v + 1]]

    def out_degree(self, u: int) -> int:
        """Number of edges leaving ``u``."""
        return int(self.out_indptr[u + 1] - self.out_indptr[u])

    def in_degree(self, v: int) -> int:
        """Number of edges entering ``v``."""
        return int(self.in_indptr[v + 1] - self.in_indptr[v])

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node as an array."""
        return np.diff(self.out_indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node as an array."""
        return np.diff(self.in_indptr)

    def in_probability_sum(self, v: int) -> float:
        """Sum of incoming edge probabilities of ``v`` (LT stop threshold)."""
        return float(self.in_probability_sums()[v])

    def in_probability_sums(self) -> np.ndarray:
        """Cached per-node sums of incoming edge probabilities."""
        if self._in_prob_sums is None:
            if self._m:
                targets = np.repeat(np.arange(self._n), np.diff(self.in_indptr))
                sums = np.bincount(targets, weights=self.in_probs, minlength=self._n)
            else:
                sums = np.zeros(self._n, dtype=np.float64)
            self._in_prob_sums = sums
        return self._in_prob_sums

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over ``(u, v, p)`` triples in out-CSR order."""
        for u in range(self._n):
            start, stop = self.out_indptr[u], self.out_indptr[u + 1]
            for idx in range(start, stop):
                yield u, int(self.out_indices[idx]), float(self.out_probs[idx])

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(sources, targets, probs)`` arrays in out-CSR order."""
        sources = np.repeat(np.arange(self._n, dtype=np.int32), np.diff(self.out_indptr))
        return sources, self.out_indices.copy(), self.out_probs.copy()

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``<u, v>`` exists."""
        neighbors = self.out_neighbors(u)
        return bool(np.any(neighbors == v))

    def edge_probability(self, u: int, v: int) -> float:
        """Probability of edge ``<u, v>``; raises ``KeyError`` if absent."""
        start, stop = self.out_indptr[u], self.out_indptr[u + 1]
        for idx in range(start, stop):
            if self.out_indices[idx] == v:
                return float(self.out_probs[idx])
        raise KeyError(f"edge <{u}, {v}> not in graph")

    # ------------------------------------------------------------------
    # Shared-memory export / attach (zero-copy worker broadcast)
    # ------------------------------------------------------------------
    def to_shared(self) -> SharedGraphHandle:
        """Export the six CSR arrays into one shared-memory block.

        Returns a :class:`SharedGraphHandle` whose picklable ``spec``
        lets any process on the machine rebuild this graph with
        :meth:`from_shared` at zero copy cost.  Raises whatever the
        platform raises when POSIX shared memory is unavailable
        (``ImportError``/``OSError``) — callers that want the copy-based
        fallback catch and degrade.
        """
        from multiprocessing import shared_memory

        arrays = {field: getattr(self, field) for field in _CSR_FIELDS}
        layout: Dict[str, Tuple[int, str, int]] = {}
        offset = 0
        for field, array in arrays.items():
            # Align each array to its itemsize so the views are cheap.
            align = array.dtype.itemsize
            offset = (offset + align - 1) // align * align
            layout[field] = (offset, array.dtype.str, int(array.size))
            offset += array.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for field, array in arrays.items():
            start, dtype, size = layout[field]
            view = np.ndarray(size, dtype=dtype, buffer=shm.buf, offset=start)
            view[:] = array
        spec = {
            "name": shm.name,
            "num_nodes": self._n,
            "num_edges": self._m,
            "arrays": layout,
        }
        return SharedGraphHandle(shm, spec)

    @classmethod
    def from_shared(cls, spec: Dict[str, Any]) -> "DirectedGraph":
        """Attach to a block exported by :meth:`to_shared` (read-only).

        The returned graph's CSR arrays are immutable views into the
        shared block — no data is copied.  Attaching re-registers the
        segment with the ``resource_tracker``; within one process tree
        the tracker (inherited by fork and spawn alike) keeps a *set* of
        names, so this is an idempotent no-op and the exporting
        :class:`SharedGraphHandle` remains the sole owner: its
        ``unlink`` both removes the segment and retires the single
        tracker entry.
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=spec["name"], create=False)
        graph = object.__new__(cls)
        graph._n = int(spec["num_nodes"])
        graph._m = int(spec["num_edges"])
        for field, (start, dtype, size) in spec["arrays"].items():
            view = np.ndarray(size, dtype=dtype, buffer=shm.buf, offset=start)
            view.flags.writeable = False
            setattr(graph, field, view)
        graph._in_prob_sums = None
        graph._shm = shm  # keep the mapping alive as long as the graph
        return graph

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def with_probabilities(self, probs: np.ndarray) -> "DirectedGraph":
        """Return a copy of this graph with new out-CSR-ordered probabilities."""
        sources, targets, __ = self.edge_arrays()
        return DirectedGraph(self._n, sources, targets, probs)

    def reversed(self) -> "DirectedGraph":
        """Return the graph with every edge direction flipped."""
        sources, targets, probs = self.edge_arrays()
        return DirectedGraph(self._n, targets, sources, probs)

    def without_nodes(self, nodes) -> "DirectedGraph":
        """Return the graph with all edges incident to ``nodes`` removed.

        Node ids are preserved (the removed nodes stay as isolated ids),
        which keeps RR sets and seed ids comparable across residual
        graphs — the operation adaptive influence maximization applies
        after observing a cascade.
        """
        removed = np.zeros(self._n, dtype=bool)
        removed[np.asarray(list(nodes), dtype=np.int64)] = True
        sources, targets, probs = self.edge_arrays()
        keep = ~(removed[sources] | removed[targets])
        return DirectedGraph(self._n, sources[keep], targets[keep], probs[keep])

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"DirectedGraph(n={self._n}, m={self._m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DirectedGraph):
            return NotImplemented
        return (
            self._n == other._n
            and self._m == other._m
            and np.array_equal(self.out_indptr, other.out_indptr)
            and np.array_equal(self.out_indices, other.out_indices)
            and np.allclose(self.out_probs, other.out_probs)
        )

    def __hash__(self) -> int:  # graphs are mutable-array holders; identity hash
        return id(self)
