"""Compact directed graph in compressed sparse row (CSR) form.

The whole library operates on :class:`DirectedGraph`: an immutable directed
graph whose out-adjacency and in-adjacency are both stored as CSR arrays.
Influence propagation needs the out-adjacency (forward simulation), while
reverse influence sampling walks the in-adjacency, so both directions are
materialised once at construction time.

Each edge ``<u, v>`` carries a propagation probability ``p_{u,v}`` stored in
parallel to the adjacency arrays.  Probabilities default to zero until a
weighting scheme from :mod:`repro.graphs.weights` assigns them.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Sequence, Tuple

import numpy as np

__all__ = [
    "DirectedGraph",
    "GraphDelta",
    "SharedGraphHandle",
    "VersionedGraph",
    "attach_shared",
]

#: The six CSR arrays that fully describe a graph, in block layout order.
_CSR_FIELDS = (
    "out_indptr",
    "out_indices",
    "out_probs",
    "in_indptr",
    "in_indices",
    "in_probs",
)


def _export_block(arrays: Dict[str, np.ndarray]) -> Tuple[Any, Dict[str, Tuple[int, str, int]]]:
    """Pack named arrays into one shared-memory block; return (shm, layout).

    The layout maps each name to ``(offset, dtype.str, size)`` so any
    process can rebuild zero-copy views with :func:`_attach_views`.
    """
    from multiprocessing import shared_memory

    layout: Dict[str, Tuple[int, str, int]] = {}
    offset = 0
    for field, array in arrays.items():
        # Align each array to its itemsize so the views are cheap.
        align = array.dtype.itemsize
        offset = (offset + align - 1) // align * align
        layout[field] = (offset, array.dtype.str, int(array.size))
        offset += array.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for field, array in arrays.items():
        start, dtype, size = layout[field]
        view = np.ndarray(size, dtype=dtype, buffer=shm.buf, offset=start)
        view[:] = array
    return shm, layout


def _attach_views(buf, layout: Dict[str, Tuple[int, str, int]]) -> Dict[str, np.ndarray]:
    """Read-only views into a block exported by :func:`_export_block`."""
    views: Dict[str, np.ndarray] = {}
    for field, (start, dtype, size) in layout.items():
        view = np.ndarray(size, dtype=dtype, buffer=buf, offset=start)
        view.flags.writeable = False
        views[field] = view
    return views


class SharedGraphHandle:
    """Owner of one shared-memory block holding a graph's CSR arrays.

    Created by :meth:`DirectedGraph.to_shared` in the master process; its
    picklable :attr:`spec` travels to workers, which attach read-only
    views via :meth:`DirectedGraph.from_shared` instead of unpickling a
    graph copy.  The handle owns the segment's lifetime: call
    :meth:`unlink` (idempotent, also invoked by ``__del__`` as a
    backstop) when no process needs the block any more.
    """

    def __init__(self, shm: Any, spec: Dict[str, Any]) -> None:
        self._shm = shm
        self.spec = spec

    @property
    def name(self) -> str:
        return self.spec["name"]

    def unlink(self) -> None:
        """Unmap and remove the segment.  Safe to call more than once."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # already removed (e.g. stale tmpdir)
                pass

    def __enter__(self) -> "SharedGraphHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.unlink()

    def __del__(self) -> None:
        try:
            self.unlink()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "unlinked" if self._shm is None else f"name={self.name!r}"
        return f"SharedGraphHandle({state})"


class DirectedGraph:
    """An immutable directed graph with per-edge propagation probabilities.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``.  Nodes are the integers ``0 .. n - 1``.
    sources, targets:
        Parallel integer arrays of length ``m`` describing the edge list.
    probs:
        Optional parallel float array of propagation probabilities.  When
        omitted every edge probability is zero (assign weights later with
        :mod:`repro.graphs.weights`).

    Notes
    -----
    The constructor sorts the edge list twice (once by source, once by
    target) to build both CSR directions.  Use
    :class:`repro.graphs.builder.GraphBuilder` for incremental construction.
    """

    __slots__ = (
        "_n",
        "_m",
        "out_indptr",
        "out_indices",
        "out_probs",
        "in_indptr",
        "in_indices",
        "in_probs",
        "_in_prob_sums",
        "_shm",
    )

    def __init__(
        self,
        num_nodes: int,
        sources: Sequence[int],
        targets: Sequence[int],
        probs: Sequence[float] | None = None,
    ) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        src = np.asarray(sources, dtype=np.int64)
        dst = np.asarray(targets, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("sources and targets must be 1-D arrays of equal length")
        if probs is None:
            prob = np.zeros(src.shape[0], dtype=np.float64)
        else:
            prob = np.asarray(probs, dtype=np.float64)
            if prob.shape != src.shape:
                raise ValueError("probs must have the same length as the edge list")
        if src.size:
            if src.min() < 0 or dst.min() < 0:
                raise ValueError("node ids must be non-negative")
            if src.max() >= num_nodes or dst.max() >= num_nodes:
                raise ValueError("node id exceeds num_nodes - 1")
            if prob.min() < 0.0 or prob.max() > 1.0:
                raise ValueError("edge probabilities must lie in [0, 1]")

        self._n = int(num_nodes)
        self._m = int(src.size)

        # Out-adjacency: edges sorted by source node.
        order = np.argsort(src, kind="stable")
        self.out_indptr = self._build_indptr(src[order])
        self.out_indices = np.ascontiguousarray(dst[order], dtype=np.int32)
        self.out_probs = np.ascontiguousarray(prob[order])

        # In-adjacency: edges sorted by target node.
        order = np.argsort(dst, kind="stable")
        self.in_indptr = self._build_indptr(dst[order])
        self.in_indices = np.ascontiguousarray(src[order], dtype=np.int32)
        self.in_probs = np.ascontiguousarray(prob[order])

        self._in_prob_sums: np.ndarray | None = None
        self._shm = None

    def _build_indptr(self, sorted_keys: np.ndarray) -> np.ndarray:
        counts = np.bincount(sorted_keys, minlength=self._n) if self._n else np.zeros(0, np.int64)
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m``."""
        return self._m

    def nodes(self) -> range:
        """All node ids as a range."""
        return range(self._n)

    def out_neighbors(self, u: int) -> np.ndarray:
        """Targets of edges leaving ``u`` (view, do not mutate)."""
        return self.out_indices[self.out_indptr[u] : self.out_indptr[u + 1]]

    def out_probabilities(self, u: int) -> np.ndarray:
        """Probabilities of edges leaving ``u``, parallel to out_neighbors."""
        return self.out_probs[self.out_indptr[u] : self.out_indptr[u + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of edges entering ``v`` (view, do not mutate)."""
        return self.in_indices[self.in_indptr[v] : self.in_indptr[v + 1]]

    def in_probabilities(self, v: int) -> np.ndarray:
        """Probabilities of edges entering ``v``, parallel to in_neighbors."""
        return self.in_probs[self.in_indptr[v] : self.in_indptr[v + 1]]

    def out_degree(self, u: int) -> int:
        """Number of edges leaving ``u``."""
        return int(self.out_indptr[u + 1] - self.out_indptr[u])

    def in_degree(self, v: int) -> int:
        """Number of edges entering ``v``."""
        return int(self.in_indptr[v + 1] - self.in_indptr[v])

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node as an array."""
        return np.diff(self.out_indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node as an array."""
        return np.diff(self.in_indptr)

    def in_probability_sum(self, v: int) -> float:
        """Sum of incoming edge probabilities of ``v`` (LT stop threshold)."""
        return float(self.in_probability_sums()[v])

    def in_probability_sums(self) -> np.ndarray:
        """Cached per-node sums of incoming edge probabilities."""
        if self._in_prob_sums is None:
            if self._m:
                targets = np.repeat(np.arange(self._n), np.diff(self.in_indptr))
                sums = np.bincount(targets, weights=self.in_probs, minlength=self._n)
            else:
                sums = np.zeros(self._n, dtype=np.float64)
            self._in_prob_sums = sums
        return self._in_prob_sums

    def in_csr(self):
        """The in-adjacency as ``(indptr, indices, probs, overlay)``.

        ``overlay`` is always ``None`` for a plain CSR graph; a
        :class:`VersionedGraph` returns its patched-row overlay instead.
        Samplers resolve their traversal arrays through this one hook so
        the same code runs on both graph kinds.
        """
        return self.in_indptr, self.in_indices, self.in_probs, None

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over ``(u, v, p)`` triples in out-CSR order."""
        for u in range(self._n):
            start, stop = self.out_indptr[u], self.out_indptr[u + 1]
            for idx in range(start, stop):
                yield u, int(self.out_indices[idx]), float(self.out_probs[idx])

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(sources, targets, probs)`` arrays in out-CSR order."""
        sources = np.repeat(np.arange(self._n, dtype=np.int32), np.diff(self.out_indptr))
        return sources, self.out_indices.copy(), self.out_probs.copy()

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``<u, v>`` exists."""
        neighbors = self.out_neighbors(u)
        return bool(np.any(neighbors == v))

    def edge_probability(self, u: int, v: int) -> float:
        """Probability of edge ``<u, v>``; raises ``KeyError`` if absent."""
        start, stop = self.out_indptr[u], self.out_indptr[u + 1]
        for idx in range(start, stop):
            if self.out_indices[idx] == v:
                return float(self.out_probs[idx])
        raise KeyError(f"edge <{u}, {v}> not in graph")

    # ------------------------------------------------------------------
    # Shared-memory export / attach (zero-copy worker broadcast)
    # ------------------------------------------------------------------
    def to_shared(self) -> SharedGraphHandle:
        """Export the six CSR arrays into one shared-memory block.

        Returns a :class:`SharedGraphHandle` whose picklable ``spec``
        lets any process on the machine rebuild this graph with
        :meth:`from_shared` at zero copy cost.  Raises whatever the
        platform raises when POSIX shared memory is unavailable
        (``ImportError``/``OSError``) — callers that want the copy-based
        fallback catch and degrade.
        """
        arrays = {field: getattr(self, field) for field in _CSR_FIELDS}
        shm, layout = _export_block(arrays)
        spec = {
            "name": shm.name,
            "num_nodes": self._n,
            "num_edges": self._m,
            "arrays": layout,
        }
        return SharedGraphHandle(shm, spec)

    @classmethod
    def from_shared(cls, spec: Dict[str, Any]) -> "DirectedGraph":
        """Attach to a block exported by :meth:`to_shared` (read-only).

        The returned graph's CSR arrays are immutable views into the
        shared block — no data is copied.  Attaching re-registers the
        segment with the ``resource_tracker``; within one process tree
        the tracker (inherited by fork and spawn alike) keeps a *set* of
        names, so this is an idempotent no-op and the exporting
        :class:`SharedGraphHandle` remains the sole owner: its
        ``unlink`` both removes the segment and retires the single
        tracker entry.
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=spec["name"], create=False)
        graph = object.__new__(cls)
        graph._n = int(spec["num_nodes"])
        graph._m = int(spec["num_edges"])
        for field, view in _attach_views(shm.buf, spec["arrays"]).items():
            setattr(graph, field, view)
        graph._in_prob_sums = None
        graph._shm = shm  # keep the mapping alive as long as the graph
        return graph

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def with_probabilities(self, probs: np.ndarray) -> "DirectedGraph":
        """Return a copy of this graph with new out-CSR-ordered probabilities."""
        sources, targets, __ = self.edge_arrays()
        return DirectedGraph(self._n, sources, targets, probs)

    def reversed(self) -> "DirectedGraph":
        """Return the graph with every edge direction flipped."""
        sources, targets, probs = self.edge_arrays()
        return DirectedGraph(self._n, targets, sources, probs)

    def without_nodes(self, nodes) -> "DirectedGraph":
        """Return the graph with all edges incident to ``nodes`` removed.

        Node ids are preserved (the removed nodes stay as isolated ids),
        which keeps RR sets and seed ids comparable across residual
        graphs — the operation adaptive influence maximization applies
        after observing a cascade.
        """
        removed = np.zeros(self._n, dtype=bool)
        removed[np.asarray(list(nodes), dtype=np.int64)] = True
        sources, targets, probs = self.edge_arrays()
        keep = ~(removed[sources] | removed[targets])
        return DirectedGraph(self._n, sources[keep], targets[keep], probs[keep])

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"DirectedGraph(n={self._n}, m={self._m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DirectedGraph):
            return NotImplemented
        return (
            self._n == other._n
            and self._m == other._m
            and np.array_equal(self.out_indptr, other.out_indptr)
            and np.array_equal(self.out_indices, other.out_indices)
            and np.allclose(self.out_probs, other.out_probs)
        )

    def __hash__(self) -> int:  # graphs are mutable-array holders; identity hash
        return id(self)


# ----------------------------------------------------------------------
# Dynamic graphs: mutation batches, overlays and versioning
# ----------------------------------------------------------------------
def _edge_arrays(edges, with_probs: bool):
    """Normalize an iterable of ``(u, v[, p])`` into parallel arrays."""
    triples = list(edges)
    width = 3 if with_probs else 2
    for item in triples:
        if len(item) != width:
            raise ValueError(
                f"expected {'(u, v, p)' if with_probs else '(u, v)'} entries, "
                f"got {item!r}"
            )
    sources = np.asarray([int(t[0]) for t in triples], dtype=np.int64)
    targets = np.asarray([int(t[1]) for t in triples], dtype=np.int64)
    if sources.size and (sources.min() < 0 or targets.min() < 0):
        raise ValueError("node ids must be non-negative")
    if not with_probs:
        return sources, targets, np.zeros(0, dtype=np.float64)
    probs = np.asarray([float(t[2]) for t in triples], dtype=np.float64)
    if probs.size and (probs.min() < 0.0 or probs.max() > 1.0):
        raise ValueError("edge probabilities must lie in [0, 1]")
    return sources, targets, probs


class GraphDelta:
    """One batch of graph mutations, applied atomically by
    :meth:`VersionedGraph.apply`.

    Parameters
    ----------
    add_edges:
        Iterable of ``(u, v, p)`` triples to insert.  Parallel edges are
        allowed, matching the :class:`DirectedGraph` constructor.
    remove_edges:
        Iterable of ``(u, v)`` pairs; removes *every* parallel ``<u, v>``
        entry and raises ``ValueError`` when the edge is absent.
    reweight_edges:
        Iterable of ``(u, v, p)`` triples assigning a new probability to
        every ``<u, v>`` entry; raises when the edge is absent.
    remove_nodes:
        Node ids whose incident edges are all dropped.  The ids stay in
        the graph as isolated nodes (mirroring
        :meth:`DirectedGraph.without_nodes`), so RR sets and seeds remain
        comparable across updates.
    add_nodes:
        Number of fresh node ids to append (``n .. n + add_nodes - 1``).
    """

    __slots__ = (
        "add_sources",
        "add_targets",
        "add_probs",
        "remove_sources",
        "remove_targets",
        "reweight_sources",
        "reweight_targets",
        "reweight_probs",
        "remove_nodes",
        "add_nodes",
    )

    def __init__(
        self,
        *,
        add_edges=(),
        remove_edges=(),
        reweight_edges=(),
        remove_nodes=(),
        add_nodes: int = 0,
    ) -> None:
        self.add_sources, self.add_targets, self.add_probs = _edge_arrays(
            add_edges, with_probs=True
        )
        self.remove_sources, self.remove_targets, __ = _edge_arrays(
            remove_edges, with_probs=False
        )
        self.reweight_sources, self.reweight_targets, self.reweight_probs = (
            _edge_arrays(reweight_edges, with_probs=True)
        )
        nodes = np.asarray([int(w) for w in remove_nodes], dtype=np.int64)
        if nodes.size and nodes.min() < 0:
            raise ValueError("node ids must be non-negative")
        self.remove_nodes = np.unique(nodes)
        if int(add_nodes) < 0:
            raise ValueError(f"add_nodes must be >= 0, got {add_nodes}")
        self.add_nodes = int(add_nodes)

    @property
    def num_changes(self) -> int:
        """Total mutations in the batch (edges + nodes)."""
        return int(
            self.add_sources.size
            + self.remove_sources.size
            + self.reweight_sources.size
            + self.remove_nodes.size
            + self.add_nodes
        )

    @property
    def is_empty(self) -> bool:
        return self.num_changes == 0

    def to_json(self) -> Dict[str, Any]:
        """A JSON-safe dict, the wire format of the serving ``update`` op."""
        return {
            "add_edges": [
                [int(u), int(v), float(p)]
                for u, v, p in zip(self.add_sources, self.add_targets, self.add_probs)
            ],
            "remove_edges": [
                [int(u), int(v)]
                for u, v in zip(self.remove_sources, self.remove_targets)
            ],
            "reweight_edges": [
                [int(u), int(v), float(p)]
                for u, v, p in zip(
                    self.reweight_sources, self.reweight_targets, self.reweight_probs
                )
            ],
            "remove_nodes": [int(w) for w in self.remove_nodes],
            "add_nodes": self.add_nodes,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "GraphDelta":
        """Rebuild a delta from :meth:`to_json` output (unknown keys raise)."""
        known = {"add_edges", "remove_edges", "reweight_edges", "remove_nodes", "add_nodes"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown GraphDelta fields: {sorted(unknown)}")
        return cls(
            add_edges=payload.get("add_edges", ()),
            remove_edges=payload.get("remove_edges", ()),
            reweight_edges=payload.get("reweight_edges", ()),
            remove_nodes=payload.get("remove_nodes", ()),
            add_nodes=payload.get("add_nodes", 0),
        )

    def __repr__(self) -> str:
        return (
            f"GraphDelta(+{self.add_sources.size}e/-{self.remove_sources.size}e/"
            f"~{self.reweight_sources.size}e, -{self.remove_nodes.size}n/"
            f"+{self.add_nodes}n)"
        )


class VersionedGraph:
    """A mutable graph: an immutable base CSR plus a compact row overlay.

    The base :class:`DirectedGraph` is never modified (it may be a
    read-only shared-memory view).  :meth:`apply` folds a
    :class:`GraphDelta` into *patched rows*: every node whose adjacency
    changed gets a fully materialised replacement row kept in small
    sorted overlay arrays; all other rows keep reading the base CSR.
    Samplers resolve rows through :meth:`in_csr` — base arrays plus an
    ``(lookup, indptr, indices, probs)`` overlay — so traversal consults
    base + overlay without ever copying the full graph.

    Row-order invariant: a patched row preserves the surviving entries'
    original order, with inserted edges appended at the end.
    :meth:`compact` emits the effective edge list target-major, and the
    :class:`DirectedGraph` constructor's stable sort then reproduces
    every in-row element-for-element — so a sampler traversing base +
    overlay consumes its RNG stream exactly like one traversing the
    compacted CSR (the equivalence ``tests/ris`` pins for the per-set
    methods; the LT sampler's non-uniform path accumulates a global
    prefix sum whose float rounding may differ across compaction, so the
    guarantee there is distributional, not bitwise).

    Node additions change the root-draw range of every RR set, so
    :meth:`apply` handles them by immediate rebase (fold + grow) and
    reports *all* sets as touched (returns ``None``).
    """

    __slots__ = (
        "_base",
        "_n",
        "_num_edges",
        "version",
        "_patched_in",
        "_patched_out",
        "_in_overlay",
        "_out_overlay",
        "_in_prob_sums",
        "_shm",
    )

    def __init__(self, base: DirectedGraph) -> None:
        if not isinstance(base, DirectedGraph):
            raise TypeError(
                f"VersionedGraph wraps a DirectedGraph base, got {type(base).__name__}"
            )
        self._base = base
        self._n = base.num_nodes
        self._num_edges = base.num_edges
        #: Bumped by every applied :class:`GraphDelta`.
        self.version = 0
        self._patched_in: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._patched_out: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._in_overlay = None
        self._out_overlay = None
        self._in_prob_sums: np.ndarray | None = None
        self._shm = None

    # ------------------------------------------------------------------
    # Row resolution (base + overlay)
    # ------------------------------------------------------------------
    def _eff_in(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        row = self._patched_in.get(v)
        if row is not None:
            return row
        base = self._base
        start, stop = base.in_indptr[v], base.in_indptr[v + 1]
        return base.in_indices[start:stop], base.in_probs[start:stop]

    def _eff_out(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        row = self._patched_out.get(u)
        if row is not None:
            return row
        base = self._base
        start, stop = base.out_indptr[u], base.out_indptr[u + 1]
        return base.out_indices[start:stop], base.out_probs[start:stop]

    @property
    def base(self) -> DirectedGraph:
        """The immutable base CSR snapshot."""
        return self._base

    @property
    def in_overlay(self):
        """``(lookup, indptr, indices, probs)`` of patched in-rows, or
        ``None`` when no row is patched.  ``lookup[v]`` is the overlay
        row of node ``v`` or ``-1``."""
        return self._in_overlay

    @property
    def out_overlay(self):
        """Patched out-rows in the same layout as :attr:`in_overlay`."""
        return self._out_overlay

    def in_csr(self):
        """Base in-CSR arrays plus the overlay, the samplers' traversal view."""
        base = self._base
        return base.in_indptr, base.in_indices, base.in_probs, self._in_overlay

    # ------------------------------------------------------------------
    # DirectedGraph-compatible accessors (effective view)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_patched_rows(self) -> int:
        """Overlay size: patched rows across both directions."""
        return len(self._patched_in) + len(self._patched_out)

    def nodes(self) -> range:
        return range(self._n)

    def in_neighbors(self, v: int) -> np.ndarray:
        return self._eff_in(v)[0]

    def in_probabilities(self, v: int) -> np.ndarray:
        return self._eff_in(v)[1]

    def out_neighbors(self, u: int) -> np.ndarray:
        return self._eff_out(u)[0]

    def out_probabilities(self, u: int) -> np.ndarray:
        return self._eff_out(u)[1]

    def in_degree(self, v: int) -> int:
        return int(self._eff_in(v)[0].size)

    def out_degree(self, u: int) -> int:
        return int(self._eff_out(u)[0].size)

    def in_degrees(self) -> np.ndarray:
        degrees = np.diff(self._base.in_indptr)
        if self._patched_in:
            degrees = degrees.copy()
            for v, (indices, __) in self._patched_in.items():
                degrees[v] = indices.size
        return degrees

    def out_degrees(self) -> np.ndarray:
        degrees = np.diff(self._base.out_indptr)
        if self._patched_out:
            degrees = degrees.copy()
            for u, (indices, __) in self._patched_out.items():
                degrees[u] = indices.size
        return degrees

    def in_probability_sums(self) -> np.ndarray:
        if self._in_prob_sums is None:
            sums = np.array(self._base.in_probability_sums(), dtype=np.float64)
            for v, (__, probs) in self._patched_in.items():
                sums[v] = float(probs.sum())
            self._in_prob_sums = sums
        return self._in_prob_sums

    def in_probability_sum(self, v: int) -> float:
        return float(self.in_probability_sums()[v])

    def has_edge(self, u: int, v: int) -> bool:
        return bool(np.any(self._eff_out(u)[0] == v))

    def edge_probability(self, u: int, v: int) -> float:
        indices, probs = self._eff_out(u)
        hits = np.flatnonzero(indices == v)
        if hits.size == 0:
            raise KeyError(f"edge <{u}, {v}> not in graph")
        return float(probs[hits[0]])

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate effective ``(u, v, p)`` triples source-major."""
        for u in range(self._n):
            indices, probs = self._eff_out(u)
            for idx in range(indices.size):
                yield u, int(indices[idx]), float(probs[idx])

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Effective ``(sources, targets, probs)`` in target-major order
        (the canonical compaction order; see :meth:`compact`)."""
        return self._effective_edge_list()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply(self, delta: GraphDelta) -> np.ndarray | None:
        """Fold one mutation batch into the overlay, in place.

        Returns the ascending array of nodes whose *in-rows* changed —
        exactly the RR-set invalidation keys (a reverse traversal
        examines the in-row of every node it collects, so the RR sets
        that consulted a changed edge are the sets containing its
        target) — or ``None`` when every RR set must be considered
        touched (node additions change the root-draw range).

        Bumps :attr:`version`; the graph object's identity is preserved
        so resident pools and configs keep referring to the same graph.
        """
        if not isinstance(delta, GraphDelta):
            raise TypeError(f"apply takes a GraphDelta, got {type(delta).__name__}")
        full_invalidation = delta.add_nodes > 0
        if delta.add_nodes:
            self._grow(delta.add_nodes)
        n = self._n
        for ids, what in (
            (delta.add_sources, "add_edges sources"),
            (delta.add_targets, "add_edges targets"),
            (delta.remove_sources, "remove_edges sources"),
            (delta.remove_targets, "remove_edges targets"),
            (delta.reweight_sources, "reweight_edges sources"),
            (delta.reweight_targets, "reweight_edges targets"),
            (delta.remove_nodes, "remove_nodes"),
        ):
            if ids.size and int(ids.max()) >= n:
                raise ValueError(f"{what} contain node ids >= num_nodes ({n})")

        removed_nodes = set(int(w) for w in delta.remove_nodes)

        # Group the edge ops by row owner, per direction.
        removals_in: Dict[int, set] = {}
        removals_out: Dict[int, set] = {}
        for u, v in zip(delta.remove_sources, delta.remove_targets):
            removals_in.setdefault(int(v), set()).add(int(u))
            removals_out.setdefault(int(u), set()).add(int(v))
        reweights_in: Dict[int, Dict[int, float]] = {}
        reweights_out: Dict[int, Dict[int, float]] = {}
        for u, v, p in zip(
            delta.reweight_sources, delta.reweight_targets, delta.reweight_probs
        ):
            reweights_in.setdefault(int(v), {})[int(u)] = float(p)
            reweights_out.setdefault(int(u), {})[int(v)] = float(p)
        adds_in: Dict[int, list] = {}
        adds_out: Dict[int, list] = {}
        for u, v, p in zip(delta.add_sources, delta.add_targets, delta.add_probs):
            adds_in.setdefault(int(v), []).append((int(u), float(p)))
            adds_out.setdefault(int(u), []).append((int(v), float(p)))

        in_owners = set(removals_in) | set(reweights_in) | set(adds_in) | removed_nodes
        out_owners = set(removals_out) | set(reweights_out) | set(adds_out) | removed_nodes
        for w in removed_nodes:
            in_owners.update(int(x) for x in self._eff_out(w)[0])
            out_owners.update(int(y) for y in self._eff_in(w)[0])
        touched = np.asarray(sorted(in_owners), dtype=np.int64)

        edges_removed = 0
        edges_added = delta.add_sources.size
        for direction, owners in (("in", in_owners), ("out", out_owners)):
            patched = self._patched_in if direction == "in" else self._patched_out
            removals = removals_in if direction == "in" else removals_out
            reweights = reweights_in if direction == "in" else reweights_out
            adds = adds_in if direction == "in" else adds_out
            for owner in sorted(owners):
                indices, probs = self._eff_in(owner) if direction == "in" else self._eff_out(owner)
                indices = np.array(indices, dtype=np.int32)
                probs = np.array(probs, dtype=np.float64)
                before = indices.size
                if owner in removed_nodes:
                    indices = indices[:0]
                    probs = probs[:0]
                else:
                    keep = np.ones(indices.size, dtype=bool)
                    if removed_nodes:
                        keep &= ~np.isin(
                            indices, np.fromiter(removed_nodes, dtype=np.int64)
                        )
                    explicit = removals.get(owner)
                    if explicit:
                        wanted = np.fromiter(explicit, dtype=np.int64)
                        present = np.isin(wanted, indices)
                        if not present.all():
                            missing = int(wanted[~present][0])
                            pair = (missing, owner) if direction == "in" else (owner, missing)
                            raise ValueError(f"edge <{pair[0]}, {pair[1]}> not in graph")
                        keep &= ~np.isin(indices, wanted)
                    indices = indices[keep]
                    probs = probs[keep]
                    new_probs = reweights.get(owner)
                    if new_probs:
                        for other, p in new_probs.items():
                            hits = indices == other
                            if not hits.any():
                                pair = (other, owner) if direction == "in" else (owner, other)
                                raise ValueError(
                                    f"edge <{pair[0]}, {pair[1]}> not in graph"
                                )
                            probs[hits] = p
                    appended = adds.get(owner)
                    if appended:
                        indices = np.concatenate(
                            [indices, np.asarray([a for a, __ in appended], dtype=np.int32)]
                        )
                        probs = np.concatenate(
                            [probs, np.asarray([p for __, p in appended], dtype=np.float64)]
                        )
                if direction == "in":
                    # Count each edge once, from its in-row.
                    added_here = len(adds.get(owner, ())) if owner not in removed_nodes else 0
                    edges_removed += before - (indices.size - added_here)
                patched[owner] = (indices, probs)

        self._num_edges += int(edges_added - edges_removed)
        self._rebuild_overlays()
        self._in_prob_sums = None
        self.version += 1
        return None if full_invalidation else touched

    def _rebuild_overlays(self) -> None:
        self._in_overlay = self._build_overlay(self._patched_in)
        self._out_overlay = self._build_overlay(self._patched_out)

    def _build_overlay(self, patched: Dict[int, Tuple[np.ndarray, np.ndarray]]):
        if not patched:
            return None
        nodes = np.asarray(sorted(patched), dtype=np.int64)
        lookup = np.full(self._n, -1, dtype=np.int64)
        lookup[nodes] = np.arange(nodes.size, dtype=np.int64)
        sizes = np.asarray([patched[int(v)][0].size for v in nodes], dtype=np.int64)
        indptr = np.zeros(nodes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        if int(indptr[-1]):
            indices = np.concatenate([patched[int(v)][0] for v in nodes]).astype(
                np.int32, copy=False
            )
            probs = np.concatenate([patched[int(v)][1] for v in nodes])
        else:
            indices = np.zeros(0, dtype=np.int32)
            probs = np.zeros(0, dtype=np.float64)
        return lookup, indptr, indices, probs

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def _effective_edge_list(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Effective edges target-major, each in-row's order preserved."""
        n = self._n
        base = self._base
        indptr, indices, probs = base.in_indptr, base.in_indices, base.in_probs
        if not self._patched_in:
            sources = indices.astype(np.int64, copy=True)
            targets = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
            return sources, targets, probs.copy()
        src_parts, tgt_parts, prob_parts = [], [], []

        def base_span(lo_node: int, hi_node: int) -> None:
            if lo_node >= hi_node:
                return
            lo, hi = indptr[lo_node], indptr[hi_node]
            src_parts.append(indices[lo:hi].astype(np.int64))
            tgt_parts.append(
                np.repeat(
                    np.arange(lo_node, hi_node, dtype=np.int64),
                    np.diff(indptr[lo_node : hi_node + 1]),
                )
            )
            prob_parts.append(probs[lo:hi])

        prev = 0
        for v in sorted(self._patched_in):
            base_span(prev, v)
            row_indices, row_probs = self._patched_in[v]
            src_parts.append(row_indices.astype(np.int64))
            tgt_parts.append(np.full(row_indices.size, v, dtype=np.int64))
            prob_parts.append(row_probs)
            prev = v + 1
        base_span(prev, n)
        if not src_parts:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), np.zeros(0, dtype=np.float64)
        return (
            np.concatenate(src_parts),
            np.concatenate(tgt_parts),
            np.concatenate(prob_parts),
        )

    def compact(self) -> DirectedGraph:
        """Fold base + overlay into a fresh immutable CSR graph.

        The effective edge list is emitted target-major with per-row
        order preserved, so the new graph's in-rows equal the effective
        rows element-for-element — traversal over the compacted graph
        consumes RNG draws exactly like traversal over base + overlay
        (modulo the LT non-uniform float caveat in the class docstring).
        """
        sources, targets, probs = self._effective_edge_list()
        return DirectedGraph(self._n, sources, targets, probs)

    def rebase(self) -> None:
        """Replace the base with the compacted CSR and clear the overlay.

        Content-preserving (same effective rows, same row order), so
        resident RR sets stay valid; callers holding worker pools must
        still re-broadcast the graph since the backing arrays changed.
        """
        if self._patched_in or self._patched_out:
            self._base = self.compact()
        self._patched_in = {}
        self._patched_out = {}
        self._in_overlay = None
        self._out_overlay = None
        self._in_prob_sums = None

    def _grow(self, count: int) -> None:
        """Rebase onto a CSR with ``count`` extra (isolated) node ids."""
        sources, targets, probs = self._effective_edge_list()
        self._base = DirectedGraph(self._n + count, sources, targets, probs)
        self._n += count
        self._patched_in = {}
        self._patched_out = {}
        self._in_overlay = None
        self._out_overlay = None
        self._in_prob_sums = None

    # ------------------------------------------------------------------
    # Shared-memory export / attach
    # ------------------------------------------------------------------
    def to_shared(self) -> SharedGraphHandle:
        """Export base + overlay into one shared-memory block.

        The spec carries ``kind: "versioned"`` so :func:`attach_shared`
        (and the worker pool's initializer) rebuilds a
        :class:`VersionedGraph` view instead of a plain CSR graph.
        Exports a snapshot: later :meth:`apply` calls on this graph do
        not propagate — re-export (the executors' ``refresh_graph``)
        after every update batch.
        """
        base = self._base
        arrays = {f"base_{field}": getattr(base, field) for field in _CSR_FIELDS}
        for prefix, overlay in (("in", self._in_overlay), ("out", self._out_overlay)):
            if overlay is None:
                lookup = np.full(self._n, -1, dtype=np.int64)
                indptr = np.zeros(1, dtype=np.int64)
                indices = np.zeros(0, dtype=np.int32)
                probs = np.zeros(0, dtype=np.float64)
            else:
                lookup, indptr, indices, probs = overlay
            arrays[f"ov_{prefix}_lookup"] = lookup
            arrays[f"ov_{prefix}_indptr"] = indptr
            arrays[f"ov_{prefix}_indices"] = indices
            arrays[f"ov_{prefix}_probs"] = probs
        shm, layout = _export_block(arrays)
        spec = {
            "kind": "versioned",
            "name": shm.name,
            "num_nodes": self._n,
            "num_edges": self._num_edges,
            "base_num_edges": base.num_edges,
            "version": self.version,
            "arrays": layout,
        }
        return SharedGraphHandle(shm, spec)

    @classmethod
    def from_shared(cls, spec: Dict[str, Any]) -> "VersionedGraph":
        """Attach to a block exported by :meth:`to_shared` (read-only)."""
        from multiprocessing import shared_memory

        if spec.get("kind") != "versioned":
            raise ValueError("spec does not describe a versioned graph block")
        shm = shared_memory.SharedMemory(name=spec["name"], create=False)
        views = _attach_views(shm.buf, spec["arrays"])
        base = object.__new__(DirectedGraph)
        base._n = int(spec["num_nodes"])
        base._m = int(spec["base_num_edges"])
        for field in _CSR_FIELDS:
            setattr(base, field, views[f"base_{field}"])
        base._in_prob_sums = None
        base._shm = None  # the VersionedGraph owns the mapping

        graph = object.__new__(cls)
        graph._base = base
        graph._n = int(spec["num_nodes"])
        graph._num_edges = int(spec["num_edges"])
        graph.version = int(spec["version"])
        graph._patched_in = {}
        graph._patched_out = {}
        graph._in_overlay = None
        graph._out_overlay = None
        for prefix in ("in", "out"):
            lookup = views[f"ov_{prefix}_lookup"]
            rows = np.flatnonzero(lookup >= 0)
            if rows.size == 0:
                continue
            overlay = (
                lookup,
                views[f"ov_{prefix}_indptr"],
                views[f"ov_{prefix}_indices"],
                views[f"ov_{prefix}_probs"],
            )
            patched = {}
            indptr = overlay[1]
            for v in rows:
                row = int(lookup[v])
                start, stop = indptr[row], indptr[row + 1]
                patched[int(v)] = (overlay[2][start:stop], overlay[3][start:stop])
            if prefix == "in":
                graph._in_overlay = overlay
                graph._patched_in = patched
            else:
                graph._out_overlay = overlay
                graph._patched_out = patched
        graph._in_prob_sums = None
        graph._shm = shm
        return graph

    def __repr__(self) -> str:
        return (
            f"VersionedGraph(n={self._n}, m={self._num_edges}, "
            f"version={self.version}, patched_rows={self.num_patched_rows})"
        )

    def __hash__(self) -> int:
        return id(self)


def attach_shared(spec: Dict[str, Any]):
    """Attach to any exported graph block, plain CSR or versioned.

    Dispatches on ``spec["kind"]`` so worker initializers need not know
    which graph flavor the master broadcast.
    """
    if spec.get("kind") == "versioned":
        return VersionedGraph.from_shared(spec)
    return DirectedGraph.from_shared(spec)
