"""Interoperability with networkx.

Downstream users often hold their social graphs as ``networkx.DiGraph``
objects; these converters bridge to and from the library's CSR
representation.  Edge probabilities travel through the ``"probability"``
edge attribute.

networkx is an optional dependency: the functions import it lazily and
raise a clear error when it is unavailable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .builder import GraphBuilder
from .digraph import DirectedGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx

__all__ = ["from_networkx", "to_networkx", "PROBABILITY_KEY"]

#: Edge-attribute key carrying the propagation probability.
PROBABILITY_KEY = "probability"


def _import_networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - environment-dependent
        raise ImportError(
            "networkx is required for graph interop; install it first"
        ) from exc
    return networkx


def from_networkx(nx_graph: "networkx.DiGraph") -> DirectedGraph:
    """Convert a networkx (di)graph with integer-convertible node labels.

    Node labels must form a dense ``0..n-1`` range (relabel with
    ``networkx.convert_node_labels_to_integers`` first if needed).
    Undirected graphs are mirrored into both edge directions.
    """
    networkx = _import_networkx()
    num_nodes = nx_graph.number_of_nodes()
    labels = sorted(int(v) for v in nx_graph.nodes)
    if labels != list(range(num_nodes)):
        raise ValueError(
            "node labels must be the dense integers 0..n-1; relabel with "
            "networkx.convert_node_labels_to_integers"
        )
    undirected = not nx_graph.is_directed()
    builder = GraphBuilder(num_nodes=num_nodes, undirected=undirected)
    for u, v, attrs in nx_graph.edges(data=True):
        builder.add_edge(int(u), int(v), float(attrs.get(PROBABILITY_KEY, 0.0)))
    return builder.build()


def to_networkx(graph: DirectedGraph) -> "networkx.DiGraph":
    """Convert to a ``networkx.DiGraph`` with probability edge attributes."""
    networkx = _import_networkx()
    nx_graph = networkx.DiGraph()
    nx_graph.add_nodes_from(range(graph.num_nodes))
    for u, v, prob in graph.edges():
        nx_graph.add_edge(u, v, **{PROBABILITY_KEY: prob})
    return nx_graph
