"""Incremental construction of :class:`~repro.graphs.digraph.DirectedGraph`.

:class:`GraphBuilder` accumulates edges in Python lists and converts them to
CSR arrays once, which is far cheaper than repeatedly resizing numpy arrays.
It optionally deduplicates parallel edges (keeping the last probability) and
can mirror every edge to model undirected networks such as the Facebook
friendship graph.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from .digraph import DirectedGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates edges and finalises them into a :class:`DirectedGraph`.

    Parameters
    ----------
    num_nodes:
        Optional node count.  When omitted, the node count is inferred as
        ``max(node id) + 1`` at :meth:`build` time.
    undirected:
        When true, :meth:`add_edge` inserts both ``<u, v>`` and ``<v, u>``.

    Examples
    --------
    >>> builder = GraphBuilder(num_nodes=3)
    >>> builder.add_edge(0, 1, 0.5)
    >>> builder.add_edge(1, 2, 0.25)
    >>> graph = builder.build()
    >>> graph.num_edges
    2
    """

    def __init__(self, num_nodes: int | None = None, undirected: bool = False) -> None:
        if num_nodes is not None and num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        self._num_nodes = num_nodes
        self._undirected = bool(undirected)
        self._sources: list[int] = []
        self._targets: list[int] = []
        self._probs: list[float] = []

    def __len__(self) -> int:
        """Number of directed edges accumulated so far."""
        return len(self._sources)

    def add_edge(self, u: int, v: int, prob: float = 0.0) -> None:
        """Add the directed edge ``<u, v>`` (and ``<v, u>`` if undirected)."""
        if u < 0 or v < 0:
            raise ValueError(f"node ids must be non-negative, got <{u}, {v}>")
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"edge probability must lie in [0, 1], got {prob}")
        self._sources.append(u)
        self._targets.append(v)
        self._probs.append(prob)
        if self._undirected and u != v:
            self._sources.append(v)
            self._targets.append(u)
            self._probs.append(prob)

    def add_edges(self, edges: Iterable[Tuple[int, int] | Tuple[int, int, float]]) -> None:
        """Add many edges; each item is ``(u, v)`` or ``(u, v, prob)``."""
        for edge in edges:
            if len(edge) == 2:
                self.add_edge(edge[0], edge[1])
            else:
                self.add_edge(edge[0], edge[1], edge[2])

    def build(
        self,
        dedup: bool = True,
        drop_self_loops: bool = True,
    ) -> DirectedGraph:
        """Finalise accumulated edges into a :class:`DirectedGraph`.

        Parameters
        ----------
        dedup:
            Remove parallel edges, keeping the last probability inserted
            for each ``(u, v)`` pair.
        drop_self_loops:
            Remove edges whose endpoints coincide (self-influence is
            meaningless in IC/LT diffusion).
        """
        src = np.asarray(self._sources, dtype=np.int64)
        dst = np.asarray(self._targets, dtype=np.int64)
        prob = np.asarray(self._probs, dtype=np.float64)

        if drop_self_loops and src.size:
            keep = src != dst
            src, dst, prob = src[keep], dst[keep], prob[keep]

        num_nodes = self._num_nodes
        if num_nodes is None:
            num_nodes = int(max(src.max(), dst.max())) + 1 if src.size else 0

        if dedup and src.size:
            keys = src * num_nodes + dst
            # Stable sort then keep the *last* occurrence of each key so a
            # later add_edge overrides an earlier duplicate's probability.
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            last = np.ones(keys.size, dtype=bool)
            last[:-1] = keys[1:] != keys[:-1]
            chosen = order[last]
            src, dst, prob = src[chosen], dst[chosen], prob[chosen]

        return DirectedGraph(num_nodes, src, dst, prob)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int] | Tuple[int, int, float]],
        num_nodes: int | None = None,
        undirected: bool = False,
    ) -> DirectedGraph:
        """One-shot convenience: build a graph directly from an edge iterable."""
        builder = cls(num_nodes=num_nodes, undirected=undirected)
        builder.add_edges(edges)
        return builder.build()
