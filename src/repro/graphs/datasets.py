"""Synthetic stand-ins for the paper's Table III datasets.

The paper evaluates on four SNAP graphs (Facebook, Google+, LiveJournal,
Twitter) of up to 41.7M nodes and 1.5G edges.  Those traces are not
available here and a pure-Python build cannot traverse billions of edges,
so each dataset is replaced by a seeded synthetic graph that preserves the
*character* the experiments depend on:

======================  ==========================  ===========================
Paper dataset           Character                   Stand-in generator
======================  ==========================  ===========================
Facebook (4K/88.2K)     small, dense, undirected    Barabási–Albert (full scale)
Google+ (107.6K/13.7M)  medium, densest, directed   Chung–Lu, high edge ratio
LiveJournal (4.8M/69M)  large, sparse, directed     Chung–Lu, low edge ratio
Twitter (41.7M/1.5G)    largest, hub-dominated      R-MAT (Graph500 skew)
======================  ==========================  ===========================

Facebook is generated at full scale; the other three are scaled down by
roughly 10x-1000x in node count while preserving degree shape and relative
ordering of density.  Every graph ships with weighted-cascade propagation
probabilities (``p_{u,v} = 1/indeg(v)``), the paper's setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Tuple

import numpy as np

from . import generators, weights
from .digraph import DirectedGraph

__all__ = ["Dataset", "DATASET_NAMES", "load_dataset", "dataset_summary"]


@dataclass(frozen=True)
class Dataset:
    """A named benchmark graph plus its paper-side reference statistics."""

    name: str
    graph: DirectedGraph
    directed: bool
    paper_nodes: int
    paper_edges: int
    paper_avg_degree: float

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Edge count in the paper's convention (undirected edges counted once)."""
        m = self.graph.num_edges
        return m if self.directed else m // 2

    @property
    def avg_degree(self) -> float:
        """Average degree in the paper's convention (2m/n undirected, m/n directed)."""
        if self.num_nodes == 0:
            return 0.0
        factor = 1 if self.directed else 2
        return factor * self.num_edges / self.num_nodes


def _facebook_like(seed: int) -> Tuple[DirectedGraph, bool]:
    rng = np.random.default_rng(seed)
    graph = generators.barabasi_albert(4_000, 22, rng)
    return graph, False


def _googleplus_like(seed: int) -> Tuple[DirectedGraph, bool]:
    rng = np.random.default_rng(seed)
    graph = generators.chung_lu(12_000, 600_000, rng, exponent=2.2)
    return graph, True


def _livejournal_like(seed: int) -> Tuple[DirectedGraph, bool]:
    rng = np.random.default_rng(seed)
    graph = generators.chung_lu(60_000, 850_000, rng, exponent=2.5)
    return graph, True


def _twitter_like(seed: int) -> Tuple[DirectedGraph, bool]:
    rng = np.random.default_rng(seed)
    graph = generators.rmat(15, 32, rng)
    return graph, True


_REGISTRY: Dict[str, Tuple[Callable[[int], Tuple[DirectedGraph, bool]], int, int, float]] = {
    # name -> (factory, paper_nodes, paper_edges, paper_avg_degree)
    "facebook": (_facebook_like, 4_000, 88_200, 43.7),
    "googleplus": (_googleplus_like, 107_600, 13_700_000, 254.1),
    "livejournal": (_livejournal_like, 4_800_000, 69_000_000, 28.5),
    "twitter": (_twitter_like, 41_700_000, 1_500_000_000, 70.5),
}

#: Dataset names in the paper's Table III order.
DATASET_NAMES: Tuple[str, ...] = tuple(_REGISTRY)


@lru_cache(maxsize=None)
def load_dataset(name: str, seed: int = 2022) -> Dataset:
    """Build (and cache) the stand-in for a Table III dataset.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    seed:
        Generation seed; the default reproduces the numbers in
        EXPERIMENTS.md.

    Returns
    -------
    Dataset
        Graph with weighted-cascade probabilities already assigned.
    """
    try:
        factory, paper_nodes, paper_edges, paper_avg = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}") from None
    graph, directed = factory(seed)
    graph = weights.weighted_cascade(graph)
    return Dataset(
        name=name,
        graph=graph,
        directed=directed,
        paper_nodes=paper_nodes,
        paper_edges=paper_edges,
        paper_avg_degree=paper_avg,
    )


def dataset_summary(seed: int = 2022) -> list[dict]:
    """Table III rows for every stand-in: ours vs. the paper's statistics."""
    rows = []
    for name in DATASET_NAMES:
        ds = load_dataset(name, seed=seed)
        rows.append(
            {
                "dataset": name,
                "nodes": ds.num_nodes,
                "edges": ds.num_edges,
                "type": "Directed" if ds.directed else "Undirected",
                "avg_degree": round(ds.avg_degree, 1),
                "paper_nodes": ds.paper_nodes,
                "paper_edges": ds.paper_edges,
                "paper_avg_degree": ds.paper_avg_degree,
            }
        )
    return rows
