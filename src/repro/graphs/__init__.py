"""Graph substrate: CSR directed graphs, builders, I/O, generators, datasets."""

from .builder import GraphBuilder
from .datasets import DATASET_NAMES, Dataset, dataset_summary, load_dataset
from .digraph import (
    DirectedGraph,
    GraphDelta,
    SharedGraphHandle,
    VersionedGraph,
    attach_shared,
)
from .generators import (
    barabasi_albert,
    chung_lu,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    paper_coverage_example,
    paper_example_graph,
    path_graph,
    rmat,
    star_graph,
    watts_strogatz,
)
from .interop import from_networkx, to_networkx
from .stats import (
    DegreeSummary,
    degree_summary,
    largest_wcc_fraction,
    powerlaw_tail_exponent,
    strongly_connected_components,
    weakly_connected_components,
)
from .io import load_npz, read_edge_list, save_npz, write_edge_list
from .weights import trivalency, uniform, weighted_cascade

__all__ = [
    "DirectedGraph",
    "GraphDelta",
    "VersionedGraph",
    "SharedGraphHandle",
    "attach_shared",
    "GraphBuilder",
    "Dataset",
    "DATASET_NAMES",
    "load_dataset",
    "dataset_summary",
    "read_edge_list",
    "write_edge_list",
    "from_networkx",
    "to_networkx",
    "DegreeSummary",
    "degree_summary",
    "weakly_connected_components",
    "largest_wcc_fraction",
    "strongly_connected_components",
    "powerlaw_tail_exponent",
    "save_npz",
    "load_npz",
    "weighted_cascade",
    "trivalency",
    "uniform",
    "paper_example_graph",
    "paper_coverage_example",
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "chung_lu",
    "rmat",
    "star_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
]
