"""Graph input/output: SNAP-style edge lists and binary snapshots.

The paper's datasets are distributed as SNAP edge-list text files (one
``u<TAB>v`` pair per line, ``#`` comments).  :func:`read_edge_list`
understands that format plus an optional third probability column.
:func:`save_npz` / :func:`load_npz` snapshot a finished graph (including
edge probabilities) to a single compressed file for fast reloads.
"""

from __future__ import annotations

import os
from typing import IO, Iterator, Tuple, Union

import numpy as np

from .builder import GraphBuilder
from .digraph import DirectedGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "iter_edge_lines",
    "save_npz",
    "load_npz",
]

PathOrFile = Union[str, os.PathLike, IO[str]]


def iter_edge_lines(handle: IO[str]) -> Iterator[Tuple[int, int, float | None]]:
    """Yield ``(u, v, prob_or_None)`` from an edge-list text stream.

    Lines starting with ``#`` or ``%`` and blank lines are skipped.  Fields
    may be separated by any whitespace.  A malformed line raises
    ``ValueError`` with the offending line number.
    """
    for lineno, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise ValueError(f"line {lineno}: expected 2 or 3 fields, got {len(parts)}")
        try:
            u, v = int(parts[0]), int(parts[1])
            prob = float(parts[2]) if len(parts) == 3 else None
        except ValueError as exc:
            raise ValueError(f"line {lineno}: cannot parse {line!r}") from exc
        yield u, v, prob


def read_edge_list(
    path_or_file: PathOrFile,
    undirected: bool = False,
    num_nodes: int | None = None,
) -> DirectedGraph:
    """Read a SNAP-style edge list into a :class:`DirectedGraph`.

    Parameters
    ----------
    path_or_file:
        Filesystem path or open text handle.
    undirected:
        Mirror each edge, as for the Facebook friendship dataset.
    num_nodes:
        Optional explicit node count (ids must be dense ``0..n-1``).
    """
    builder = GraphBuilder(num_nodes=num_nodes, undirected=undirected)

    def _consume(handle: IO[str]) -> None:
        for u, v, prob in iter_edge_lines(handle):
            builder.add_edge(u, v, prob if prob is not None else 0.0)

    if hasattr(path_or_file, "read"):
        _consume(path_or_file)  # type: ignore[arg-type]
    elif str(path_or_file).endswith(".gz"):
        # SNAP distributes its edge lists gzip-compressed.
        import gzip

        with gzip.open(path_or_file, "rt", encoding="utf-8") as handle:
            _consume(handle)
    else:
        with open(path_or_file, "r", encoding="utf-8") as handle:
            _consume(handle)
    return builder.build()


def write_edge_list(
    graph: DirectedGraph,
    path_or_file: PathOrFile,
    include_probs: bool = True,
) -> None:
    """Write a graph as an edge-list text file (``u v [prob]`` per line)."""

    def _emit(handle: IO[str]) -> None:
        handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for u, v, prob in graph.edges():
            if include_probs:
                handle.write(f"{u}\t{v}\t{prob:.10g}\n")
            else:
                handle.write(f"{u}\t{v}\n")

    if hasattr(path_or_file, "write"):
        _emit(path_or_file)  # type: ignore[arg-type]
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            _emit(handle)


def save_npz(graph: DirectedGraph, path: str | os.PathLike) -> None:
    """Snapshot a graph (structure + probabilities) to a compressed file."""
    sources, targets, probs = graph.edge_arrays()
    np.savez_compressed(
        path,
        num_nodes=np.int64(graph.num_nodes),
        sources=sources,
        targets=targets,
        probs=probs,
    )


def load_npz(path: str | os.PathLike) -> DirectedGraph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(path) as data:
        return DirectedGraph(
            int(data["num_nodes"]),
            data["sources"],
            data["targets"],
            data["probs"],
        )
