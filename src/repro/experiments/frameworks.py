"""Framework comparison: distributed IMM vs SSA vs OPIM-C vs SUBSIM.

The paper's Remark (Section IV-B) claims its distributed techniques apply
uniformly to the state-of-the-art RIS frameworks, whose "key difference
lies in the number of RR sets generated or sampling procedure".  This
extension table makes that concrete: one row per (dataset, framework)
with the RR-set budget each framework actually spent, its simulated
running time on the same cluster, and the Monte-Carlo spread of its seeds
under identical evaluation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..analysis.validation import evaluate_seeds
from ..api import run
from ..core.config import RunConfig
from ..graphs.datasets import load_dataset

__all__ = ["framework_comparison"]


def framework_comparison(
    datasets: Sequence[str] = ("facebook", "twitter"),
    k: int = 50,
    eps: float = 0.5,
    num_machines: int = 8,
    mc_samples: int = 300,
    seed: int = 2022,
) -> list[dict]:
    """Run all four distributed frameworks per dataset and compare."""
    rows: list[dict] = []
    for name in datasets:
        graph = load_dataset(name, seed=seed).graph
        config = RunConfig(graph=graph, k=k, machines=num_machines, eps=eps, seed=seed)
        runs = {
            "DIIMM": run("diimm", config),
            "DSSA": run("dssa", config),
            "DOPIM-C": run("dopimc", config),
            "DSUBSIM": run("dsubsim", config),
        }
        for label, result in runs.items():
            spread = evaluate_seeds(
                graph, result.seeds, "ic", mc_samples, np.random.default_rng(seed)
            )
            rows.append(
                {
                    "dataset": name,
                    "framework": label,
                    "num_rr_sets": result.num_rr_sets,
                    "total_s": round(result.metrics.total_time, 4),
                    "generation_s": round(result.metrics.generation_time, 4),
                    "mc_spread": round(spread.mean, 1),
                }
            )
        best = max(row["mc_spread"] for row in rows if row["dataset"] == name)
        for row in rows:
            if row["dataset"] == name:
                row["vs_best_spread"] = round(row["mc_spread"] / best, 4)
    return rows
