"""Seed-quality comparison: DIIMM vs guarantee-free heuristics.

Not a figure in the paper, but the quantified version of its related-work
argument: heuristics (degree variants, PageRank) are cheap but carry no
approximation guarantee, and their quality gap against the
``(1 - 1/e - eps)`` RIS pipeline varies unpredictably across graphs.
Every strategy's seed set is evaluated with the same forward Monte-Carlo
estimator, so the comparison is apples-to-apples.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..analysis.validation import evaluate_seeds
from ..api import run
from ..baselines import degree_discount, max_degree, pagerank_seeds, single_discount
from ..core.config import RunConfig
from ..graphs.datasets import load_dataset

__all__ = ["seed_quality_comparison"]


def seed_quality_comparison(
    datasets: Sequence[str] = ("facebook", "twitter"),
    k: int = 50,
    eps: float = 0.5,
    model: str = "ic",
    num_machines: int = 8,
    mc_samples: int = 500,
    seed: int = 2022,
) -> list[dict]:
    """Monte-Carlo spread of DIIMM and heuristic seed sets per dataset."""
    rows: list[dict] = []
    for name in datasets:
        graph = load_dataset(name, seed=seed).graph
        rng = np.random.default_rng(seed)
        random_seeds = rng.choice(graph.num_nodes, size=k, replace=False).tolist()
        strategies = {
            "DIIMM": run(
                "diimm",
                RunConfig(
                    graph=graph, k=k, machines=num_machines, eps=eps, model=model, seed=seed
                ),
            ).seeds,
            "max-degree": max_degree(graph, k),
            "single-discount": single_discount(graph, k),
            "degree-discount": degree_discount(graph, k),
            "pagerank": pagerank_seeds(graph, k),
            "random": random_seeds,
        }
        spreads = {}
        for strategy, seeds in strategies.items():
            estimate = evaluate_seeds(
                graph, seeds, model, mc_samples, np.random.default_rng(seed)
            )
            spreads[strategy] = estimate.mean
        best = max(spreads.values())
        for strategy, spread in spreads.items():
            rows.append(
                {
                    "dataset": name,
                    "strategy": strategy,
                    "mc_spread": round(spread, 1),
                    "vs_best": round(spread / best, 4) if best else 0.0,
                }
            )
    return rows
