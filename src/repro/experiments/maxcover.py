"""Figure 10: standalone maximum-coverage comparison.

The coverage instance is the graph itself (Section IV-A): the universe
``V`` doubles as the ground set of elements, and node ``u``'s set is its
neighborhood, so picking ``k`` sets maximises the size of a neighbor
union.  Three algorithms run per (dataset, core-count) point:

* the sequential lazy greedy (baseline for the speedup axis), timed
  under both coverage backends — the dict-walking reference oracle and
  the flat CSR kernel — with their exact agreement asserted at run time
  (the ``kernel_speedup`` column quantifies the flat backend's win),
* NEWGREEDI over element-distributed parts (exact same coverage as the
  sequential greedy — asserted at run time),
* GREEDI over a set-distributed partition with ``kappa = k``.

Paper shapes to compare against: NEWGREEDI speedup ~3.5x at 4 cores,
10-18x at 64 cores; GREEDI slower with a worse speedup; GREEDI's coverage
ratio dropping below 1 and degrading as cores grow (Fig 10(c)).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..cluster.cluster import SimulatedCluster
from ..cluster.network import shared_memory_server
from ..coverage.greedi import greedi
from ..coverage.greedy import greedy_max_coverage
from ..coverage.kernel import as_flat
from ..coverage.newgreedi import newgreedi
from ..coverage.problem import CoverageInstance
from ..graphs.datasets import DATASET_NAMES, load_dataset

__all__ = ["fig10_maxcover", "SERVER_CORE_COUNTS"]

SERVER_CORE_COUNTS = (1, 4, 16, 64)


def fig10_maxcover(
    datasets: Sequence[str] = DATASET_NAMES,
    core_counts: Sequence[int] = SERVER_CORE_COUNTS,
    k: int = 50,
    seed: int = 2022,
) -> list[dict]:
    """Run the Fig 10 sweep; returns one row per (dataset, cores)."""
    rows: list[dict] = []
    for dataset in datasets:
        ds = load_dataset(dataset, seed=seed)
        instance = CoverageInstance.from_graph(ds.graph)

        start = time.perf_counter()
        sequential = greedy_max_coverage([instance], k, backend="reference")
        sequential_time = time.perf_counter() - start

        # Same greedy through the flat CSR kernel (conversion included in
        # the timing — it is part of the backend's end-to-end cost).
        start = time.perf_counter()
        flat_sequential = greedy_max_coverage([as_flat(instance)], k, backend="flat")
        flat_time = time.perf_counter() - start
        if flat_sequential.seeds != sequential.seeds:
            raise AssertionError(
                f"flat kernel diverged from the reference greedy ({dataset})"
            )

        for cores in core_counts:
            rng = np.random.default_rng(seed + cores)
            parts = instance.split(cores, rng=rng)
            cluster = SimulatedCluster(cores, network=shared_memory_server(), seed=seed)
            new_result = newgreedi(cluster, k, stores=parts)
            if new_result.coverage != sequential.coverage:
                raise AssertionError(
                    "NEWGREEDI diverged from the sequential greedy: "
                    f"{new_result.coverage} != {sequential.coverage} "
                    f"({dataset}, cores={cores})"
                )
            new_time = cluster.metrics.total_time

            greedi_cluster = SimulatedCluster(
                cores, network=shared_memory_server(), seed=seed
            )
            greedi_result = greedi(greedi_cluster, instance, k)
            greedi_time = greedi_cluster.metrics.total_time

            rows.append(
                {
                    "figure": "fig10-maxcover",
                    "dataset": dataset,
                    "cores": cores,
                    "sequential_s": round(sequential_time, 4),
                    "sequential_flat_s": round(flat_time, 4),
                    "kernel_speedup": round(sequential_time / flat_time, 2)
                    if flat_time
                    else 0.0,
                    "newgreedi_s": round(new_time, 4),
                    "greedi_s": round(greedi_time, 4),
                    "newgreedi_speedup": round(sequential_time / new_time, 2)
                    if new_time
                    else 0.0,
                    "greedi_speedup": round(sequential_time / greedi_time, 2)
                    if greedi_time
                    else 0.0,
                    "newgreedi_coverage": new_result.coverage,
                    "greedi_coverage": greedi_result.coverage,
                    "coverage_ratio": round(
                        greedi_result.coverage / new_result.coverage, 4
                    )
                    if new_result.coverage
                    else 0.0,
                }
            )
    return rows
