"""Communication scaling: NEWGREEDI's traffic and time versus machines.

Figs 5-9 fold communication into the stacked breakdown; this experiment
isolates it.  A fixed pool of RR sets is scattered over ``l`` machines
and NEWGREEDI runs on each layout, so the *work* is constant and only the
protocol cost varies.  The paper's claims to check: communication time
increases with the machine count, but stays roughly an order of
magnitude below computation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..cluster.cluster import SimulatedCluster
from ..cluster.network import gigabit_cluster
from ..coverage.newgreedi import newgreedi
from ..graphs.datasets import load_dataset
from ..ris import RRCollection, make_sampler

__all__ = ["communication_scaling"]


def communication_scaling(
    dataset: str = "livejournal",
    machine_counts: Sequence[int] = (1, 2, 4, 8, 16),
    num_rr_sets: int = 20000,
    k: int = 50,
    model: str = "ic",
    seed: int = 2022,
) -> list[dict]:
    """NEWGREEDI on a fixed RR pool, per machine count."""
    ds = load_dataset(dataset, seed=seed)
    sampler = make_sampler(ds.graph, model=model)
    pool = sampler.sample_many(num_rr_sets, np.random.default_rng(seed))

    rows = []
    for machines in machine_counts:
        cluster = SimulatedCluster(machines, network=gigabit_cluster(), seed=seed)
        stores = [RRCollection(ds.graph.num_nodes) for __ in range(machines)]
        for idx, sample in enumerate(pool):
            stores[idx % machines].add(sample)
        result = newgreedi(cluster, k, stores=stores)
        breakdown = cluster.metrics.breakdown()
        comm = breakdown["communication"]
        comp = breakdown["computation"]
        rows.append(
            {
                "experiment": "communication-scaling",
                "dataset": dataset,
                "machines": machines,
                "coverage": result.coverage,
                "computation_s": round(comp, 4),
                "communication_s": round(comm, 5),
                "comm_mb": round(cluster.metrics.total_bytes / 1e6, 3),
                "comm_over_comp": round(comm / comp, 4) if comp else 0.0,
            }
        )
    return rows
