"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper, but quantified justifications of its design
decisions:

* ``lazy_vs_naive_greedy`` — the bucket-vector + lazy-update engine of
  Algorithm 1 versus a naive marginal re-scan.
* ``traffic_tuple_vs_dense`` — sparse ``(node, count)`` tuple responses
  versus shipping full length-``n`` vectors each round (the Section III-C
  traffic optimisation).
* ``subsim_vs_bfs_generation`` — SUBSIM subset sampling versus plain
  reverse BFS, per-dataset generation throughput (the Fig 7 mechanism).
* ``workload_balance`` — empirical per-machine workload spread against
  the Corollary 1 concentration bound.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..analysis.martingale import empirical_workload_balance, workload_concentration
from ..cluster.cluster import SimulatedCluster
from ..api import run
from ..cluster.metrics import COMMUNICATION
from ..core.config import RunConfig
from ..core.pool import SamplePool
from ..coverage.greedy import greedy_max_coverage, naive_greedy_max_coverage
from ..coverage.problem import CoverageInstance
from ..graphs.datasets import load_dataset
from ..graphs.digraph import DirectedGraph, GraphDelta, VersionedGraph
from ..ris import make_sampler

__all__ = [
    "lazy_vs_naive_greedy",
    "traffic_tuple_vs_dense",
    "subsim_vs_bfs_generation",
    "workload_balance",
    "heterogeneity",
    "epsilon_sweep",
    "static_vs_dynamic_updates",
    "backend_method_matrix",
]


def lazy_vs_naive_greedy(
    dataset: str = "facebook",
    k_values: Sequence[int] = (10, 25, 50),
    seed: int = 2022,
) -> list[dict]:
    """Lazy bucket greedy vs naive re-scan on the graph coverage instance."""
    ds = load_dataset(dataset, seed=seed)
    instance = CoverageInstance.from_graph(ds.graph)
    rows = []
    for k in k_values:
        start = time.perf_counter()
        lazy = greedy_max_coverage([instance], k)
        lazy_time = time.perf_counter() - start
        start = time.perf_counter()
        naive = naive_greedy_max_coverage([instance], k)
        naive_time = time.perf_counter() - start
        if lazy.seeds != naive.seeds:
            raise AssertionError("lazy and naive greedy diverged")
        rows.append(
            {
                "ablation": "lazy-vs-naive",
                "dataset": dataset,
                "k": k,
                "lazy_s": round(lazy_time, 4),
                "naive_s": round(naive_time, 4),
                "speedup": round(naive_time / lazy_time, 1) if lazy_time else 0.0,
            }
        )
    return rows


def traffic_tuple_vs_dense(
    dataset: str = "facebook",
    machine_counts: Sequence[int] = (4, 16),
    k: int = 50,
    eps: float = 0.5,
    seed: int = 2022,
) -> list[dict]:
    """Measured sparse-tuple traffic vs hypothetical dense-vector traffic.

    The dense alternative responds to every gather with a full length-``n``
    vector of 8-byte entries per machine; the measured bytes come from the
    run's recorded communication phases.
    """
    ds = load_dataset(dataset, seed=seed)
    n = ds.graph.num_nodes
    rows = []
    for machines in machine_counts:
        result = run(
            "diimm", RunConfig(graph=ds.graph, k=k, machines=machines, eps=eps, seed=seed)
        )
        comm_phases = [
            p for p in result.metrics.phases if p.category == COMMUNICATION
        ]
        gathers = [p for p in comm_phases if "gather" in p.label or "counts" in p.label]
        actual_bytes = sum(p.num_bytes for p in comm_phases)
        dense_bytes = sum(
            8 * n * machines if p.num_bytes else 0 for p in gathers
        ) + sum(p.num_bytes for p in comm_phases if p not in gathers)
        rows.append(
            {
                "ablation": "tuple-vs-dense-traffic",
                "dataset": dataset,
                "machines": machines,
                "actual_mb": round(actual_bytes / 1e6, 3),
                "dense_mb": round(dense_bytes / 1e6, 3),
                "saving_factor": round(dense_bytes / actual_bytes, 1)
                if actual_bytes
                else 0.0,
            }
        )
    return rows


def subsim_vs_bfs_generation(
    datasets: Sequence[str] = ("facebook", "googleplus", "twitter"),
    num_rr_sets: int = 3000,
    seed: int = 2022,
) -> list[dict]:
    """Generation throughput of SUBSIM vs plain reverse BFS (IC model)."""
    rows = []
    for dataset in datasets:
        ds = load_dataset(dataset, seed=seed)
        timings = {}
        for method in ("bfs", "subsim"):
            sampler = make_sampler(ds.graph, model="ic", method=method)
            rng = np.random.default_rng(seed)
            start = time.perf_counter()
            sampler.sample_many(num_rr_sets, rng)
            timings[method] = time.perf_counter() - start
        rows.append(
            {
                "ablation": "subsim-vs-bfs",
                "dataset": dataset,
                "bfs_s": round(timings["bfs"], 4),
                "subsim_s": round(timings["subsim"], 4),
                "speedup": round(timings["bfs"] / timings["subsim"], 2),
            }
        )
    return rows


def epsilon_sweep(
    dataset: str = "facebook",
    eps_values: Sequence[float] = (0.6, 0.5, 0.4, 0.3),
    k: int = 50,
    num_machines: int = 8,
    seed: int = 2022,
) -> list[dict]:
    """RR-set budget and runtime versus ``eps`` (the ``1/eps^2`` law).

    DESIGN.md runs the experiments at ``eps = 0.5`` instead of the paper's
    ``0.01`` on the grounds that the sample count scales as ``1/eps^2``
    without changing any code path.  This ablation verifies the law on the
    stand-ins: halving ``eps`` should roughly quadruple ``theta`` and the
    generation time.
    """
    ds = load_dataset(dataset, seed=seed)
    rows = []
    baseline_theta = None
    for eps in eps_values:
        result = run(
            "diimm", RunConfig(graph=ds.graph, k=k, machines=num_machines, eps=eps, seed=seed)
        )
        if baseline_theta is None:
            baseline_theta = result.num_rr_sets
            baseline_eps = eps
        expected_ratio = (baseline_eps / eps) ** 2
        rows.append(
            {
                "ablation": "epsilon-sweep",
                "dataset": dataset,
                "eps": eps,
                "num_rr_sets": result.num_rr_sets,
                "theta_ratio": round(result.num_rr_sets / baseline_theta, 2),
                "expected_ratio": round(expected_ratio, 2),
                "generation_s": round(result.metrics.generation_time, 4),
                "total_s": round(result.metrics.total_time, 4),
            }
        )
    return rows


def heterogeneity(
    dataset: str = "facebook",
    num_machines: int = 8,
    num_rr_sets: int = 8000,
    max_slowdown: float = 3.0,
    model: str = "ic",
    seed: int = 2022,
) -> list[dict]:
    """Even vs speed-weighted work split on a heterogeneous cluster.

    The paper assumes identical machines, where the even ``theta / l``
    split is optimal (Corollary 1).  This ablation handicaps half the
    machines by up to ``max_slowdown`` and compares the parallel
    generation time of the even split against a speed-proportional split,
    quantifying how much the assumption matters.
    """
    ds = load_dataset(dataset, seed=seed)
    sampler = make_sampler(ds.graph, model=model)
    slowdowns = [
        max_slowdown if i % 2 else 1.0 for i in range(num_machines)
    ]
    rows = []
    for strategy in ("even", "weighted"):
        cluster = SimulatedCluster(num_machines, seed=seed, slowdowns=slowdowns)
        cluster.init_collections(ds.graph.num_nodes)
        shares = (
            cluster.split_count(num_rr_sets)
            if strategy == "even"
            else cluster.split_count_weighted(num_rr_sets)
        )

        def generate(machine):
            machine.collection.extend(
                sampler.sample_many(shares[machine.machine_id], machine.rng)
            )

        from ..cluster.metrics import GENERATION

        cluster.map(GENERATION, f"hetero/{strategy}", generate)
        rows.append(
            {
                "ablation": "heterogeneity",
                "dataset": dataset,
                "strategy": strategy,
                "machines": num_machines,
                "max_slowdown": max_slowdown,
                "parallel_gen_s": round(cluster.metrics.generation_time, 4),
                "shares_min_max": f"{min(shares)}/{max(shares)}",
            }
        )
    even, weighted = rows
    even["vs_weighted"] = round(
        even["parallel_gen_s"] / weighted["parallel_gen_s"], 2
    )
    weighted["vs_weighted"] = 1.0
    return rows


def workload_balance(
    dataset: str = "livejournal",
    machine_counts: Sequence[int] = (4, 16, 64),
    num_rr_sets: int = 20000,
    model: str = "ic",
    seed: int = 2022,
) -> list[dict]:
    """Per-machine workload spread vs the Corollary 1 bound.

    Generates ``num_rr_sets`` RR sets split evenly across machines and
    reports how far each machine's total RR size strays from the mean,
    together with the theoretical deviation probability at ``eps = 0.1``.
    """
    ds = load_dataset(dataset, seed=seed)
    sampler = make_sampler(ds.graph, model=model)
    rows = []
    for machines in machine_counts:
        cluster = SimulatedCluster(machines, seed=seed)
        cluster.init_collections(ds.graph.num_nodes)
        shares = cluster.split_count(num_rr_sets)
        for machine in cluster.machines:
            machine.collection.extend(
                sampler.sample_many(shares[machine.machine_id], machine.rng)
            )
        sizes = [m.collection.total_size for m in cluster.machines]
        balance = empirical_workload_balance(sizes)
        eps_mean = balance.mean / shares[0] if shares[0] else 1.0
        bound = workload_concentration(
            shares[0], 0.1, ds.graph.num_nodes, max(eps_mean, 1e-9)
        )
        rows.append(
            {
                "ablation": "workload-balance",
                "dataset": dataset,
                "machines": machines,
                "rr_sets_per_machine": shares[0],
                "max_over_mean": round(balance.max_over_mean, 4),
                "min_over_mean": round(balance.min_over_mean, 4),
                "corollary1_deviation_bound": f"{bound:.3g}",
            }
        )
    return rows


def _update_stream(
    base: DirectedGraph,
    rng: np.random.Generator,
    num_updates: int,
    edges_per_update: int,
) -> list[GraphDelta]:
    """Mixed update batches over disjoint edges of ``base``.

    Each delta removes ``edges_per_update`` existing edges, halves the
    weight of another disjoint batch, and inserts as many fresh random
    edges — the workload profile of an evolving social graph.
    """
    sources, targets, probs = base.edge_arrays()
    picks = rng.choice(
        sources.size, size=num_updates * edges_per_update * 2, replace=False
    )
    added: set[tuple[int, int]] = set()
    deltas = []
    for i in range(num_updates):
        lo = i * edges_per_update * 2
        removals = picks[lo : lo + edges_per_update]
        reweights = picks[lo + edges_per_update : lo + 2 * edges_per_update]
        inserts: list[tuple[int, int, float]] = []
        while len(inserts) < edges_per_update:
            u = int(rng.integers(base.num_nodes))
            v = int(rng.integers(base.num_nodes))
            if u != v and not base.has_edge(u, v) and (u, v) not in added:
                added.add((u, v))
                inserts.append((u, v, 0.05))
        deltas.append(
            GraphDelta(
                add_edges=inserts,
                remove_edges=[
                    (int(sources[j]), int(targets[j])) for j in removals
                ],
                reweight_edges=[
                    (int(sources[j]), int(targets[j]), float(probs[j]) * 0.5)
                    for j in reweights
                ],
            )
        )
    return deltas


def static_vs_dynamic_updates(
    dataset: str = "livejournal",
    machines: int = 2,
    sets_per_machine: int = 1500,
    num_updates: int = 4,
    edges_per_update: int = 8,
    seed: int = 2022,
) -> list[dict]:
    """Serving a graph-update stream: static recompute vs dynamic repair.

    The static pipeline answers each update by regenerating every
    resident RR set on the updated graph (what a pool without per-set
    substreams must do); the dynamic pipeline repairs the warm pool in
    place, redrawing only the sets whose traversal consulted a changed
    in-row.  Both paths are differentially checked — the repaired
    collections must be bit-identical to the cold regeneration — so the
    speedup column measures identical work, not an approximation.
    """
    ds = load_dataset(dataset, seed=seed)
    base = ds.graph
    rng = np.random.default_rng(seed)
    deltas = _update_stream(base, rng, num_updates, edges_per_update)

    def fresh_graph() -> VersionedGraph:
        return VersionedGraph(DirectedGraph(base.num_nodes, *base.edge_arrays()))

    targets = [sets_per_machine] * machines
    warm = SamplePool(fresh_graph(), machines=machines, seed=seed, rng_scheme="per-set")
    cold_graph = fresh_graph()
    rows = []
    try:
        warm.ensure("main", targets)
        for i, delta in enumerate(deltas):
            start = time.perf_counter()
            repaired = warm.apply_update(delta)
            dynamic_s = time.perf_counter() - start
            cold_graph.apply(delta)
            cold = SamplePool(
                cold_graph, machines=machines, seed=seed, rng_scheme="per-set"
            )
            try:
                start = time.perf_counter()
                cold.ensure("main", targets)
                static_s = time.perf_counter() - start
                for ws, cs in zip(warm.stores("main"), cold.stores("main")):
                    if not (
                        np.array_equal(ws.nodes, cs.nodes)
                        and np.array_equal(ws.offsets, cs.offsets)
                    ):
                        raise AssertionError(
                            "repaired pool diverged from cold regeneration"
                        )
            finally:
                cold.close()
            rows.append(
                {
                    "ablation": "static-vs-dynamic",
                    "dataset": dataset,
                    "update": i + 1,
                    "num_changes": delta.num_changes,
                    "sets_repaired": repaired["main"],
                    "sets_total": machines * sets_per_machine,
                    "static_s": round(static_s, 4),
                    "dynamic_s": round(dynamic_s, 4),
                    "speedup": round(static_s / max(dynamic_s, 1e-9), 2),
                }
            )
    finally:
        warm.close()
    return rows


def backend_method_matrix(
    dataset: str = "facebook",
    backends: Sequence[str] = ("flat", "sketch"),
    methods: Sequence[str] = ("bfs", "vectorized"),
    executors: Sequence[str] = ("simulated",),
    k: int = 20,
    eps: float = 0.5,
    machines: int = 4,
    seed: int = 2022,
) -> list[dict]:
    """Full DIIMM sweep over {backend} x {generation method} x {executor}.

    Every combination runs the same query; each row carries the
    per-component times (generation / selection / communication), the
    peak store + coverage memory, and ratios against the
    (first backend, first method, first executor) baseline row — the
    declarative matrix the registry-driven ablation bench renders.
    """
    ds = load_dataset(dataset, seed=seed)
    rows: list[dict] = []
    baseline: dict | None = None
    for backend in backends:
        for method in methods:
            for executor in executors:
                result = run(
                    "diimm",
                    RunConfig(
                        graph=ds.graph,
                        k=k,
                        machines=machines,
                        eps=eps,
                        seed=seed,
                        backend=backend,
                        method=method,
                        executor=executor,
                    ),
                )
                metrics = result.metrics
                memory = metrics.memory_summary()
                row = {
                    "ablation": "backend-method-matrix",
                    "dataset": dataset,
                    "backend": backend,
                    "method": method,
                    "executor": executor,
                    "spread": round(result.estimated_spread, 1),
                    "num_rr_sets": result.num_rr_sets,
                    "generation_s": round(metrics.generation_time, 4),
                    "selection_s": round(metrics.computation_time, 4),
                    "communication_s": round(metrics.communication_time, 4),
                    "store_mb": round(memory["rr_store_nbytes"] / 1e6, 2),
                    "coverage_mb": round(memory["coverage_nbytes"] / 1e6, 2),
                }
                if baseline is None:
                    baseline = row
                row["generation_speedup"] = round(
                    baseline["generation_s"] / max(row["generation_s"], 1e-9), 2
                )
                row["selection_speedup"] = round(
                    baseline["selection_s"] / max(row["selection_s"], 1e-9), 2
                )
                row["memory_factor"] = round(
                    (baseline["store_mb"] + baseline["coverage_mb"])
                    / max(row["store_mb"] + row["coverage_mb"], 1e-9),
                    2,
                )
                rows.append(row)
    return rows
