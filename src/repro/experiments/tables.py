"""Tables III and IV of the paper.

Table III reports dataset statistics; ours prints the synthetic stand-ins
next to the paper's originals.  Table IV reports, per dataset, the number
of RR sets DIIMM generated under the IC model and their total size; the
absolute values scale with graph size and ``1/eps^2``, so the comparison
target is the *ordering* across datasets, not the magnitudes.
"""

from __future__ import annotations

from typing import Sequence

from ..api import run
from ..core.config import RunConfig
from ..graphs.datasets import DATASET_NAMES, dataset_summary, load_dataset

__all__ = ["table3_rows", "table4_rows", "PAPER_TABLE4"]

#: The paper's Table IV (IC model): dataset -> (#RR sets, total size).
PAPER_TABLE4 = {
    "facebook": (8_200_000, 70_800_000),
    "googleplus": (37_700_000, 118_300_000),
    "livejournal": (215_600_000, 2_200_000_000),
    "twitter": (31_500_000, 558_500_000),
}


def table3_rows(seed: int = 2022) -> list[dict]:
    """Dataset statistics, ours vs the paper's Table III."""
    return dataset_summary(seed=seed)


def table4_rows(
    datasets: Sequence[str] = DATASET_NAMES,
    k: int = 50,
    eps: float = 0.5,
    num_machines: int = 4,
    seed: int = 2022,
) -> list[dict]:
    """RR-set counts and total sizes under the IC model (Table IV).

    Runs DIIMM per dataset (the RR-set count is a property of the sampling
    schedule, essentially independent of the machine count) and reports
    measured values next to the paper's.
    """
    rows = []
    for name in datasets:
        ds = load_dataset(name, seed=seed)
        result = run(
            "diimm",
            RunConfig(graph=ds.graph, k=k, machines=num_machines, eps=eps, model="ic", seed=seed),
        )
        paper_sets, paper_size = PAPER_TABLE4[name]
        rows.append(
            {
                "dataset": name,
                "num_rr_sets": result.num_rr_sets,
                "total_size": result.total_rr_size,
                "avg_rr_size": round(result.total_rr_size / result.num_rr_sets, 2),
                "paper_num_rr_sets": paper_sets,
                "paper_total_size": paper_size,
                "paper_avg_rr_size": round(paper_size / paper_sets, 2),
            }
        )
    return rows
