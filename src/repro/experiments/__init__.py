"""Experiment harness: one runner per table/figure of the paper.

==================  ==========================================
Paper artefact      Runner
==================  ==========================================
Table III           :func:`tables.table3_rows`
Table IV            :func:`tables.table4_rows`
Fig 5               :func:`scaling.fig5_cluster_ic`
Fig 6               :func:`scaling.fig6_server_ic`
Fig 7               :func:`scaling.fig7_server_subsim`
Fig 8               :func:`scaling.fig8_cluster_lt`
Fig 9               :func:`scaling.fig9_server_lt`
Fig 10              :func:`maxcover.fig10_maxcover`
Ablations (ours)    :mod:`ablations`
==================  ==========================================
"""

from .ablations import (
    backend_method_matrix,
    epsilon_sweep,
    heterogeneity,
    lazy_vs_naive_greedy,
    static_vs_dynamic_updates,
    subsim_vs_bfs_generation,
    traffic_tuple_vs_dense,
    workload_balance,
)
from .communication import communication_scaling
from .frameworks import framework_comparison
from .quality import seed_quality_comparison
from .maxcover import fig10_maxcover
from .report import format_table, print_table, write_json
from .scaling import (
    ScalingConfig,
    fig5_cluster_ic,
    fig6_server_ic,
    fig7_server_subsim,
    fig8_cluster_lt,
    fig9_server_lt,
    run_scaling,
)
from .tables import table3_rows, table4_rows

__all__ = [
    "table3_rows",
    "table4_rows",
    "ScalingConfig",
    "run_scaling",
    "fig5_cluster_ic",
    "fig6_server_ic",
    "fig7_server_subsim",
    "fig8_cluster_lt",
    "fig9_server_lt",
    "fig10_maxcover",
    "lazy_vs_naive_greedy",
    "traffic_tuple_vs_dense",
    "subsim_vs_bfs_generation",
    "workload_balance",
    "heterogeneity",
    "epsilon_sweep",
    "static_vs_dynamic_updates",
    "backend_method_matrix",
    "seed_quality_comparison",
    "framework_comparison",
    "communication_scaling",
    "format_table",
    "print_table",
    "write_json",
]
