"""Figures 5-9: DIIMM / distributed SUBSIM running time versus machines.

Each figure is a sweep over machine counts for every dataset, reporting
the simulated-parallel time breakdown (RR-set generation, seed-selection
computation, communication) plus the speedup over single-machine IMM —
exactly the series the paper plots.

The paper's headline numbers to compare shapes against:

* cluster, 4 machines: ~3.5x speedup; 16 machines: ~14x (Fig 5);
* 64-core server: 56x / 45x / 43x / 31x on Facebook / Google+ /
  LiveJournal / Twitter (Fig 6);
* distributed SUBSIM scales like DIIMM (Fig 7);
* LT runs are faster than IC end-to-end (Figs 8-9);
* communication stays roughly an order of magnitude below computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..api import run
from ..cluster.network import NetworkModel, gigabit_cluster, shared_memory_server
from ..core.config import RunConfig
from ..graphs.datasets import DATASET_NAMES, load_dataset

__all__ = [
    "ScalingConfig",
    "run_scaling",
    "fig5_cluster_ic",
    "fig6_server_ic",
    "fig7_server_subsim",
    "fig8_cluster_lt",
    "fig9_server_lt",
]

CLUSTER_MACHINE_COUNTS = (1, 2, 4, 8, 16)
SERVER_CORE_COUNTS = (1, 4, 16, 64)


@dataclass(frozen=True)
class ScalingConfig:
    """One scaling experiment (= one figure of the paper)."""

    label: str
    datasets: Sequence[str] = DATASET_NAMES
    machine_counts: Sequence[int] = CLUSTER_MACHINE_COUNTS
    model: str = "ic"
    method: str = "bfs"
    network_factory: Callable[[], NetworkModel] = gigabit_cluster
    k: int = 50
    eps: float = 0.5
    seed: int = 2022
    executor: str = "simulated"
    extra: dict = field(default_factory=dict)


def _result_row(config: ScalingConfig, dataset: str, num_machines: int, result) -> dict:
    breakdown = result.breakdown
    return {
        "figure": config.label,
        "dataset": dataset,
        "machines": num_machines,
        "algorithm": result.algorithm,
        "generation_s": round(breakdown["generation"], 4),
        "computation_s": round(breakdown["computation"], 4),
        "communication_s": round(breakdown["communication"], 4),
        "total_s": round(breakdown["total"], 4),
        "num_rr_sets": result.num_rr_sets,
    }


def run_scaling(config: ScalingConfig) -> list[dict]:
    """Run one figure's sweep; returns rows with times and speedups.

    Machine count 1 runs the vanilla single-machine algorithm (the paper's
    baseline); larger counts run the distributed algorithm.  Speedups are
    relative to the measured single-machine total.
    """
    rows: list[dict] = []
    for dataset in config.datasets:
        ds = load_dataset(dataset, seed=config.seed)
        baseline_total: float | None = None
        for num_machines in config.machine_counts:
            run_config = RunConfig(
                graph=ds.graph,
                k=config.k,
                machines=num_machines,
                eps=config.eps,
                model=config.model,
                method=config.method,
                network=None if num_machines == 1 else config.network_factory(),
                seed=config.seed,
                executor=config.executor,
            )
            result = run("imm" if num_machines == 1 else "diimm", run_config)
            row = _result_row(config, dataset, num_machines, result)
            if baseline_total is None:
                baseline_total = row["total_s"]
            row["speedup"] = round(baseline_total / row["total_s"], 2) if row["total_s"] else 0.0
            rows.append(row)
    return rows


def _make_figure(
    label: str,
    machine_counts: Sequence[int],
    model: str,
    method: str,
    network_factory: Callable[[], NetworkModel],
):
    def runner(
        datasets: Sequence[str] = DATASET_NAMES,
        k: int = 50,
        eps: float = 0.5,
        seed: int = 2022,
        machine_counts: Sequence[int] = machine_counts,
    ) -> list[dict]:
        config = ScalingConfig(
            label=label,
            datasets=datasets,
            machine_counts=machine_counts,
            model=model,
            method=method,
            network_factory=network_factory,
            k=k,
            eps=eps,
            seed=seed,
        )
        return run_scaling(config)

    runner.__name__ = label.replace("-", "_")
    runner.__doc__ = f"Reproduce {label}: see module docstring for the paper's shape."
    return runner


fig5_cluster_ic = _make_figure(
    "fig5-cluster-ic", CLUSTER_MACHINE_COUNTS, "ic", "bfs", gigabit_cluster
)
fig6_server_ic = _make_figure(
    "fig6-server-ic", SERVER_CORE_COUNTS, "ic", "bfs", shared_memory_server
)
fig7_server_subsim = _make_figure(
    "fig7-server-subsim", SERVER_CORE_COUNTS, "ic", "subsim", shared_memory_server
)
fig8_cluster_lt = _make_figure(
    "fig8-cluster-lt", CLUSTER_MACHINE_COUNTS, "lt", "bfs", gigabit_cluster
)
fig9_server_lt = _make_figure(
    "fig9-server-lt", SERVER_CORE_COUNTS, "lt", "bfs", shared_memory_server
)
