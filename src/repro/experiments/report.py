"""Rendering helpers for experiment output.

Every experiment module returns plain ``list[dict]`` rows; these helpers
render them as aligned text tables (what the benchmark harness prints) or
dump them as JSON for post-processing.
"""

from __future__ import annotations

import json
import os
from typing import Mapping, Sequence

__all__ = ["format_table", "print_table", "write_json"]


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render rows as an aligned monospace table.

    Columns come from the union of row keys, in first-seen order.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_render_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in cells
    )
    parts = [title, header, rule, body] if title else [header, rule, body]
    return "\n".join(part for part in parts if part)


def print_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, title=title))


def write_json(rows: Sequence[Mapping[str, object]], path: str | os.PathLike) -> None:
    """Dump rows to a JSON file (pretty-printed, stable key order)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(list(rows), handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
