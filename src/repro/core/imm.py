"""Single-machine IMM (Tang et al., SIGMOD 2015, with Chen's 2018 fix).

This is the paper's baseline: the ``l = 1`` reference point of Figs 5-9.
IMM interleaves two phases:

1. **Lower-bound search** — for ``t = 1, 2, ...`` guess ``x = n / 2^t`` for
   OPT, generate ``theta_t = lambda' / x`` RR sets, run greedy, and accept
   ``LB = n * F_R(S_t) / (1 + eps')`` once the estimated spread clears
   ``(1 + eps') * x``.
2. **Final sampling** — grow the collection to ``theta = lambda* / LB``
   RR sets and return the greedy solution on them.

The loop is the shared :class:`~repro.core.driver.RoundDriver` running
the :class:`~repro.core.driver.ImmScheduleRule` over a one-machine
cluster in *central* selection mode: coverage counts are still
maintained incrementally, but selection runs the centralized lazy bucket
greedy in a single metered compute phase and the run issues no
communication phases at all — single-machine versus distributed
comparisons therefore isolate the distribution machinery itself.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import SimulatedCluster
from ..cluster.executor import executor_scope, make_executor
from ..cluster.faults import FaultPlan, RetryPolicy
from ..graphs.digraph import DirectedGraph
from ..ris import make_collection
from .bounds import ImmParameters
from .checkpoint import manager_for
from .config import RunConfig
from .diimm import make_schedule_rule
from .driver import RoundDriver
from .result import IMResult

__all__ = ["imm", "imm_from_config"]


def imm(
    graph: DirectedGraph,
    k: int,
    eps: float = 0.5,
    delta: float | None = None,
    model: str = "ic",
    method: str = "bfs",
    seed: int = 0,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    faults: FaultPlan | str | None = None,
    retry: RetryPolicy | None = None,
) -> IMResult:
    """Run IMM on a single machine.

    This keyword signature is a thin shim over
    :class:`~repro.core.config.RunConfig` / :func:`imm_from_config`;
    prefer :func:`repro.api.run` in new code.

    Parameters
    ----------
    graph:
        Weighted directed graph.
    k:
        Seed-set size.
    eps:
        Approximation slack; the guarantee is ``(1 - 1/e - eps)``.
    delta:
        Failure probability; defaults to ``1/n`` (the paper's setting).
    model, method:
        Sampler selection (``"ic"``/``"lt"``, ``"bfs"``/``"subsim"``).
    seed:
        RNG seed.
    checkpoint_dir, resume:
        Driver-level checkpointing, as in :func:`repro.core.diimm.diimm`.
    faults, retry:
        Fault-injection plan and recovery policy (see
        :mod:`repro.cluster.faults`).

    Returns
    -------
    IMResult
        With a metrics breakdown whose communication time is zero.
    """
    config = RunConfig(
        graph=graph,
        k=k,
        eps=eps,
        delta=delta,
        model=model,
        method=method,
        seed=seed,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        faults=faults,
        retry=retry,
    )
    return imm_from_config(config)


def imm_from_config(config: RunConfig, *, executor=None, pool=None) -> IMResult:
    """Run IMM from a validated :class:`~repro.core.config.RunConfig`.

    ``config.machines`` is ignored: the baseline is defined as the
    ``l = 1`` reference point, so it always runs one machine.

    ``executor`` lends a pre-built single-machine executor whose worker
    pool and shared-memory graph the run reuses and never closes; the
    caller also owns the cluster's RNG streams (no reseeding happens).
    ``pool`` serves the query warm from a
    :class:`~repro.core.pool.SamplePool` built with
    ``rng_scheme="legacy-imm"``; the result is bit-identical to a cold
    run with the same config.
    """
    config.validate("imm")
    graph, k = config.graph, config.k
    n = graph.num_nodes
    delta = 1.0 / n if config.delta is None else config.delta
    params = ImmParameters.compute(n, k, config.eps, delta)
    rule = make_schedule_rule(config, params, delta)
    # IMM historically ignores config.backend (the baseline is defined on
    # the exact flat store); only the sketch backend opts in, so the
    # single-machine memory-bounded path exists too.
    backend = "sketch" if config.backend == "sketch" else "flat"

    def result(run, driver, metrics) -> IMResult:
        return IMResult(
            seeds=run.selection.seeds,
            estimated_spread=n * run.selection.fraction,
            num_rr_sets=driver.total_sets("main"),
            total_rr_size=driver.total_size("main"),
            total_edges_examined=driver.total_edges_examined("main"),
            lower_bound=rule.lower_bound,
            search_rounds=rule.search_rounds,
            metrics=metrics,
            algorithm="IMM",
            model=config.model,
            method=config.method,
            params={"k": k, "eps": config.eps, "delta": delta, "num_machines": 1},
        )

    if pool is not None:
        if executor is not None:
            raise ValueError("pass either executor or pool, not both")
        pool.check_config(config, machines=1)
        if pool.rng_scheme not in ("legacy-imm", "per-set"):
            raise ValueError(
                "IMM warm pools must use rng_scheme='legacy-imm' (the "
                "baseline's historical stream) or 'per-set' (dynamic "
                f"serving's repairable substreams); got {pool.rng_scheme!r}"
            )
        with pool.query_metrics() as metrics:
            driver = RoundDriver(
                pool.executor,
                rule,
                k,
                model=config.model,
                method=config.method,
                backend="flat",
                selection="central",
                pool=pool,
            )
            run = driver.run()
        return result(run, driver, metrics)

    owns_executor = executor is None
    if owns_executor:
        cluster = SimulatedCluster(1, seed=config.seed)
        # The baseline's historical stream: one generator seeded directly
        # (not spawned through the cluster's seed sequence), so results
        # match the original single-machine implementation bit for bit.
        cluster.machines[0].rng = np.random.default_rng(config.seed)
        exec_ = make_executor(
            config.executor_spec(),
            cluster,
            graph=graph,
            faults=config.faults,
            retry=config.retry,
        )
    else:
        exec_ = executor
        cluster = exec_.cluster
        if cluster.num_machines != 1:
            raise ValueError(
                f"IMM is single-machine; the lent executor has "
                f"{cluster.num_machines} machines"
            )
    stores = {
        "main": [
            make_collection(n, backend, sketch_precision=config.sketch_precision)
        ]
    }
    checkpoint = manager_for(
        config.checkpoint_dir,
        algorithm="IMM",
        n=n,
        k=k,
        eps=config.eps,
        delta=delta,
        seed=config.seed,
        num_machines=1,
        model=config.model,
        method=config.method,
        backend=backend,
    )
    driver = RoundDriver(
        exec_,
        rule,
        k,
        stores,
        model=config.model,
        method=config.method,
        backend=backend,
        selection="central",
        checkpoint=checkpoint,
        resume=config.resume,
    )
    with executor_scope(exec_, owned=owns_executor) as metrics:
        run = driver.run()
    return result(run, driver, metrics)
