"""Single-machine IMM (Tang et al., SIGMOD 2015, with Chen's 2018 fix).

This is the paper's baseline: the ``l = 1`` reference point of Figs 5-9.
IMM interleaves two phases:

1. **Lower-bound search** — for ``t = 1, 2, ...`` guess ``x = n / 2^t`` for
   OPT, generate ``theta_t = lambda' / x`` RR sets, run greedy, and accept
   ``LB = n * F_R(S_t) / (1 + eps')`` once the estimated spread clears
   ``(1 + eps') * x``.
2. **Final sampling** — grow the collection to ``theta = lambda* / LB``
   RR sets and return the greedy solution on them.

The implementation shares the bounds module and the lazy bucket greedy
with DIIMM, so single-machine versus distributed comparisons isolate the
distribution machinery itself.
"""

from __future__ import annotations

import time

import numpy as np

from ..cluster.metrics import COMPUTATION, GENERATION, RunMetrics
from ..coverage.greedy import greedy_max_coverage
from ..graphs.digraph import DirectedGraph
from ..ris import RRCollection, make_sampler
from .bounds import ImmParameters
from .result import IMResult

__all__ = ["imm"]


def imm(
    graph: DirectedGraph,
    k: int,
    eps: float = 0.5,
    delta: float | None = None,
    model: str = "ic",
    method: str = "bfs",
    seed: int = 0,
) -> IMResult:
    """Run IMM on a single machine.

    Parameters
    ----------
    graph:
        Weighted directed graph.
    k:
        Seed-set size.
    eps:
        Approximation slack; the guarantee is ``(1 - 1/e - eps)``.
    delta:
        Failure probability; defaults to ``1/n`` (the paper's setting).
    model, method:
        Sampler selection (``"ic"``/``"lt"``, ``"bfs"``/``"subsim"``).
    seed:
        RNG seed.

    Returns
    -------
    IMResult
        With a metrics breakdown whose communication time is zero.
    """
    n = graph.num_nodes
    if delta is None:
        delta = 1.0 / n
    params = ImmParameters.compute(n, k, eps, delta)
    sampler = make_sampler(graph, model=model, method=method)
    rng = np.random.default_rng(seed)
    collection = RRCollection(n)
    metrics = RunMetrics()

    def generate_to(target: int, label: str) -> None:
        missing = target - collection.num_sets
        if missing <= 0:
            return
        start = time.perf_counter()
        collection.extend(sampler.sample_many(missing, rng))
        metrics.record_compute_phase(GENERATION, label, [time.perf_counter() - start])

    def select(label: str):
        start = time.perf_counter()
        result = greedy_max_coverage([collection], k)
        metrics.record_compute_phase(COMPUTATION, label, [time.perf_counter() - start])
        return result

    # Phase 1: lower-bound search (Algorithm 2 lines 3-10).
    lower_bound = 1.0
    search_rounds = 0
    for t in range(1, params.max_search_rounds + 1):
        search_rounds = t
        x = n / (2.0**t)
        generate_to(params.theta_for_round(t), f"search-{t}/generate")
        candidate = select(f"search-{t}/select")
        if n * candidate.fraction >= (1.0 + params.eps_prime) * x:
            lower_bound = n * candidate.fraction / (1.0 + params.eps_prime)
            break

    # Phase 2: final sampling and selection (lines 11-13).
    generate_to(params.theta_final(lower_bound), "final/generate")
    final = select("final/select")

    return IMResult(
        seeds=final.seeds,
        estimated_spread=n * final.fraction,
        num_rr_sets=collection.num_sets,
        total_rr_size=collection.total_size,
        total_edges_examined=collection.total_edges_examined,
        lower_bound=lower_bound,
        search_rounds=search_rounds,
        metrics=metrics,
        algorithm="IMM",
        model=model,
        method=method,
        params={"k": k, "eps": eps, "delta": delta, "num_machines": 1},
    )
