"""Single-machine IMM (Tang et al., SIGMOD 2015, with Chen's 2018 fix).

This is the paper's baseline: the ``l = 1`` reference point of Figs 5-9.
IMM interleaves two phases:

1. **Lower-bound search** — for ``t = 1, 2, ...`` guess ``x = n / 2^t`` for
   OPT, generate ``theta_t = lambda' / x`` RR sets, run greedy, and accept
   ``LB = n * F_R(S_t) / (1 + eps')`` once the estimated spread clears
   ``(1 + eps') * x``.
2. **Final sampling** — grow the collection to ``theta = lambda* / LB``
   RR sets and return the greedy solution on them.

The loop is the shared :class:`~repro.core.driver.RoundDriver` running
the :class:`~repro.core.driver.ImmScheduleRule` over a one-machine
cluster in *central* selection mode: coverage counts are still
maintained incrementally, but selection runs the centralized lazy bucket
greedy in a single metered compute phase and the run issues no
communication phases at all — single-machine versus distributed
comparisons therefore isolate the distribution machinery itself.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import SimulatedCluster
from ..cluster.executor import SimulatedExecutor
from ..graphs.digraph import DirectedGraph
from ..ris import make_collection
from .bounds import ImmParameters
from .checkpoint import manager_for
from .driver import ImmScheduleRule, RoundDriver, SubsimScheduleRule
from .result import IMResult

__all__ = ["imm"]


def imm(
    graph: DirectedGraph,
    k: int,
    eps: float = 0.5,
    delta: float | None = None,
    model: str = "ic",
    method: str = "bfs",
    seed: int = 0,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> IMResult:
    """Run IMM on a single machine.

    Parameters
    ----------
    graph:
        Weighted directed graph.
    k:
        Seed-set size.
    eps:
        Approximation slack; the guarantee is ``(1 - 1/e - eps)``.
    delta:
        Failure probability; defaults to ``1/n`` (the paper's setting).
    model, method:
        Sampler selection (``"ic"``/``"lt"``, ``"bfs"``/``"subsim"``).
    seed:
        RNG seed.
    checkpoint_dir, resume:
        Driver-level checkpointing, as in :func:`repro.core.diimm.diimm`.

    Returns
    -------
    IMResult
        With a metrics breakdown whose communication time is zero.
    """
    n = graph.num_nodes
    if delta is None:
        delta = 1.0 / n
    params = ImmParameters.compute(n, k, eps, delta)
    cluster = SimulatedCluster(1, seed=seed)
    # The baseline's historical stream: one generator seeded directly
    # (not spawned through the cluster's seed sequence), so results match
    # the original single-machine implementation bit for bit.
    cluster.machines[0].rng = np.random.default_rng(seed)
    exec_ = SimulatedExecutor(cluster, graph=graph)
    rule_type = SubsimScheduleRule if method == "subsim" else ImmScheduleRule
    rule = rule_type(params)
    stores = {"main": [make_collection(n, "flat")]}
    checkpoint = manager_for(
        checkpoint_dir,
        algorithm="IMM",
        n=n,
        k=k,
        eps=eps,
        delta=delta,
        seed=seed,
        num_machines=1,
        model=model,
        method=method,
        backend="flat",
    )
    driver = RoundDriver(
        exec_,
        rule,
        k,
        stores,
        model=model,
        method=method,
        backend="flat",
        selection="central",
        checkpoint=checkpoint,
        resume=resume,
    )
    run = driver.run()

    return IMResult(
        seeds=run.selection.seeds,
        estimated_spread=n * run.selection.fraction,
        num_rr_sets=driver.total_sets("main"),
        total_rr_size=driver.total_size("main"),
        total_edges_examined=driver.total_edges_examined("main"),
        lower_bound=rule.lower_bound,
        search_rounds=rule.search_rounds,
        metrics=cluster.metrics,
        algorithm="IMM",
        model=model,
        method=method,
        params={"k": k, "eps": eps, "delta": delta, "num_machines": 1},
    )
