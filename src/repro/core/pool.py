"""The SamplePool: RR-sample lifetime split from query lifetime.

Every cold entry point couples three lifetimes that have no business
being coupled: the executor (worker processes, shared-memory graph), the
per-machine RR collections, and the query being answered.  A
:class:`SamplePool` owns the first two for as long as the caller wants —
typically the lifetime of a :class:`~repro.serve.service.InfluenceService`
— and answers any number of queries against *prefixes* of the same
collections:

* each machine's collection is append-only and grown by topping up
  (:meth:`ensure`), continuing the machine's RNG stream exactly where
  the previous query left it;
* a query never reads the collections directly — it reads
  :class:`~repro.ris.flat.FlatPrefixView` windows
  (:meth:`view_stores`) whose limits follow the query's own sampling
  schedule, so the sets it sees are bit-identical to the collections a
  cold run of that schedule would have generated (the per-set samplers'
  batch contract: machine ``i``'s first ``c`` RR sets depend only on its
  stream and ``c``, not on wave boundaries);
* finished queries donate their final
  :class:`~repro.coverage.state.CoverageState` back to the pool
  (:meth:`donate_coverage`); later queries whose first-round prefixes
  dominate a donated watermark fork it copy-on-write
  (:meth:`fork_coverage`) instead of re-aggregating from zero.

The pool is thread-safe by serialization: :meth:`query_metrics` — which
every query must wrap its phases in — holds the pool lock, swaps a fresh
:class:`~repro.cluster.metrics.RunMetrics` onto the cluster for the
query, and merges it into the pool's lifetime metrics afterwards.
Queries against *different* pools run concurrently.

Bit-for-bit warm/cold equivalence holds for the per-set generation
methods (``bfs``, ``subsim``) only; the blocked ``vectorized`` sampler
consumes randomness per wave, so pools refuse it rather than silently
weakening the correctness anchor.

Dynamic graphs
--------------
A pool built with ``rng_scheme="per-set"`` over a
:class:`~repro.graphs.digraph.VersionedGraph` survives graph updates:
every RR set is drawn from its own counter-based substream
(:func:`~repro.ris.rrset.per_set_rng`), so when
:meth:`apply_update` lands a :class:`~repro.graphs.digraph.GraphDelta`
the pool regenerates *only* the sets whose traversal consulted a
changed in-row (:meth:`FlatRRCollection.affected_sets
<repro.ris.flat.FlatRRCollection.affected_sets>`) and splices them in
place under stable ids (:meth:`~repro.ris.flat.FlatRRCollection.replace_sets`).
Donated coverage snapshots are repaired by retraction deltas instead of
being discarded, and the pool's :meth:`signature` carries an update
epoch so the serving layer's result cache misses exactly the entries a
repair invalidated.  The differential anchor: a repaired warm pool is
bit-identical to a pool built cold on the already-updated graph with
the same seed and schedule.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..cluster.cluster import SimulatedCluster
from ..cluster.executor import (
    GeneratePhase,
    MapPhase,
    fold_legacy_executor_kwargs,
    make_executor,
)
from ..cluster.spec import as_spec
from ..cluster.metrics import GENERATION, RunMetrics
from ..cluster.network import NetworkModel
from ..coverage.state import CoverageState
from ..graphs.digraph import GraphDelta, VersionedGraph
from ..ris.flat import FlatPrefixView, FlatRRCollection, append_batch, gather_rows
from ..ris.rrset import RRSampler, concat_batches, sample_set_range

__all__ = ["SamplePool", "PREFIX_DETERMINISTIC_METHODS", "RNG_SCHEMES"]

#: Generation methods whose batches equal sequential per-set draws, the
#: property warm/cold bit-equality rests on.
PREFIX_DETERMINISTIC_METHODS: Tuple[str, ...] = ("bfs", "subsim")

#: How the pool seeds its machines: ``"cluster"`` spawns per-machine
#: streams from the cluster seed sequence (every distributed algorithm);
#: ``"legacy-imm"`` seeds machine 0 directly (the single-machine IMM
#: baseline's historical stream); ``"per-set"`` draws RR set ``i`` of
#: machine ``m`` from its own counter-based substream
#: (:func:`~repro.ris.rrset.per_set_rng`), which is what makes sets
#: individually regenerable after a graph update (:meth:`SamplePool.repair`).
RNG_SCHEMES: Tuple[str, ...] = ("cluster", "legacy-imm", "per-set")

#: Donated coverage snapshots kept per collection key.
MAX_CACHED_COVERAGE = 4


class SamplePool:
    """A resident, shared, append-only RR-sample pool.

    Parameters
    ----------
    graph:
        The (already loaded) :class:`~repro.graphs.digraph.DirectedGraph`.
    machines:
        Cluster width ``l``; fixed for the pool's lifetime.
    seed:
        Root RNG seed.  Warm results equal cold runs with this seed.
    model, method:
        Sampler selection; ``method`` must be prefix-deterministic
        (:data:`PREFIX_DETERMINISTIC_METHODS`).
    executor:
        An :class:`~repro.cluster.spec.ExecutorSpec` or its string
        shorthand (``"simulated"``, ``"multiprocessing:4"``,
        ``"socket:..."``); the pool owns the executor (worker
        processes, shared-memory graph, socket connections) until
        :meth:`close`.
    processes, start_method, zero_copy:
        Deprecated — pass the matching :class:`ExecutorSpec` option
        instead; each warns before being folded into the spec.
    rng_scheme:
        See :data:`RNG_SCHEMES`.
    sampler:
        Optional custom :class:`~repro.ris.rrset.RRSampler` (e.g. a
        :class:`~repro.applications.targeted.TargetedSampler`) used for
        generation instead of the executor's ``(model, method)`` one.
    sampler_factory:
        Optional ``graph -> RRSampler`` callable building the custom
        sampler; required instead of ``sampler`` when the pool must
        survive graph updates (:meth:`repair` rebuilds the sampler
        against the mutated graph, which a fixed instance cannot do).
    """

    def __init__(
        self,
        graph,
        machines: int = 1,
        *,
        seed: int = 0,
        model: str = "ic",
        method: str = "bfs",
        executor="simulated",
        processes: int | None = None,
        network: NetworkModel | None = None,
        rng_scheme: str = "cluster",
        sampler: RRSampler | None = None,
        sampler_factory=None,
        start_method: str | None = None,
        zero_copy: bool | None = None,
    ) -> None:
        if method not in PREFIX_DETERMINISTIC_METHODS:
            raise ValueError(
                f"SamplePool requires a prefix-deterministic method "
                f"{PREFIX_DETERMINISTIC_METHODS} so warm queries stay "
                f"bit-identical to cold runs; got {method!r}"
            )
        if rng_scheme not in RNG_SCHEMES:
            raise ValueError(
                f"rng_scheme must be one of {RNG_SCHEMES}, got {rng_scheme!r}"
            )
        if rng_scheme == "legacy-imm" and machines != 1:
            raise ValueError(
                f"the legacy-imm RNG scheme is single-machine, got {machines} machines"
            )
        if sampler is not None and sampler_factory is not None:
            raise ValueError("pass either sampler or sampler_factory, not both")
        spec = fold_legacy_executor_kwargs(
            as_spec(executor),
            processes=processes,
            start_method=start_method,
            zero_copy=zero_copy,
            owner="SamplePool",
        )
        self.graph = graph
        self.seed = seed
        self.model = model
        self.method = method
        self.rng_scheme = rng_scheme
        self.cluster = SimulatedCluster(machines, network=network, seed=seed)
        if rng_scheme == "legacy-imm":
            self.cluster.machines[0].rng = np.random.default_rng(seed)
        self.executor = make_executor(spec, self.cluster, graph=graph)
        try:
            self._sampler_factory = sampler_factory
            self._sampler = (
                sampler_factory(graph) if sampler_factory is not None else sampler
            )
        except BaseException:
            # A raising sampler factory must not leak the worker pool /
            # shared-memory graph the executor just acquired.
            self.executor.close()
            raise
        self._stores: Dict[str, List[FlatRRCollection]] = {}
        self._coverage_cache: Dict[str, List[CoverageState]] = {}
        self._lock = threading.RLock()
        self.queries_served = 0
        #: Number of graph updates repaired into the pool; part of
        #: :meth:`signature` so repaired contents miss stale cache entries.
        self.updates = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return self.cluster.num_machines

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def lock(self) -> threading.RLock:
        """The pool-wide lock serializing queries (held by
        :meth:`query_metrics`)."""
        return self._lock

    @property
    def lifetime_metrics(self) -> RunMetrics:
        """Phases accumulated across every query served so far."""
        return self.cluster.metrics

    def sizes(self) -> Dict[str, List[int]]:
        """Per-machine collection sizes for each key."""
        with self._lock:
            return {
                key: [store.num_sets for store in stores]
                for key, stores in self._stores.items()
            }

    def signature(self) -> Tuple:
        """A hashable snapshot of the pool's contents — the pool-state
        component of the serving layer's query-cache key.

        Covers per-key collection sizes *and* the update epoch: an
        in-place repair keeps every size but rewrites contents, so the
        epoch is what makes pre-update cache entries miss.
        """
        with self._lock:
            return (
                self.updates,
                tuple(
                    sorted(
                        (key, tuple(store.num_sets for store in stores))
                        for key, stores in self._stores.items()
                    )
                ),
            )

    # ------------------------------------------------------------------
    # Growth and views
    # ------------------------------------------------------------------
    def stores(self, key: str) -> List[FlatRRCollection]:
        """The backing per-machine collections for ``key`` (created on
        first use)."""
        with self._lock:
            stores = self._stores.get(key)
            if stores is None:
                stores = [
                    FlatRRCollection(self.num_nodes)
                    for _ in range(self.num_machines)
                ]
                self._stores[key] = stores
            return stores

    def view_stores(self, keys: Sequence[str]) -> Dict[str, List[FlatPrefixView]]:
        """Fresh zero-limit prefix views, one per machine per key.

        Each query gets its own views; their limits advance with the
        query's schedule while the backing collections are shared.
        """
        return {
            key: [FlatPrefixView(store, 0) for store in self.stores(key)]
            for key in keys
        }

    def ensure(
        self, key: str, needed: Sequence[int], label: str = "pool/ensure"
    ) -> int:
        """Top collection ``key`` up to ``needed[i]`` sets on machine ``i``.

        Only the shortfall is generated, continuing each machine's RNG
        stream; machines already at or past their target draw nothing.
        Returns the number of RR sets generated.
        """
        with self._lock:
            stores = self.stores(key)
            if len(needed) != len(stores):
                raise ValueError(
                    f"expected {len(stores)} per-machine targets, got {len(needed)}"
                )
            counts = [
                max(0, int(target) - store.num_sets)
                for target, store in zip(needed, stores)
            ]
            total = sum(counts)
            if total == 0:
                return 0
            per_set = self.rng_scheme == "per-set"
            starts = tuple(store.num_sets for store in stores)
            if self._sampler is None:
                self.executor.run_phase(
                    GeneratePhase(
                        label,
                        counts=tuple(counts),
                        targets=tuple(stores),
                        model=self.model,
                        method=self.method,
                        rng_scheme="per-set" if per_set else "stream",
                        seed=self.seed if per_set else None,
                        starts=starts if per_set else None,
                    )
                )
            else:
                sampler = self._sampler
                seed = self.seed

                def top_up(machine) -> int:
                    mid = machine.machine_id
                    count = counts[mid]
                    if count:
                        if per_set:
                            batch = sample_set_range(
                                sampler, seed, mid, starts[mid], count
                            )
                        else:
                            batch = sampler.sample_batch(machine.rng, count)
                        append_batch(stores[mid], batch)
                    return count

                self.executor.run_phase(MapPhase(label, top_up, category=GENERATION))
            return total

    # ------------------------------------------------------------------
    # Dynamic-graph repair
    # ------------------------------------------------------------------
    def apply_update(self, delta: GraphDelta) -> Dict[str, int]:
        """Land ``delta`` on the pool's graph and repair every collection.

        The graph must be a :class:`~repro.graphs.digraph.VersionedGraph`
        (it mutates in place, preserving the identity
        :meth:`check_config` pins).  Returns, per collection key, how
        many RR sets were regenerated.
        """
        with self._lock:
            if not isinstance(self.graph, VersionedGraph):
                raise TypeError(
                    "apply_update needs a VersionedGraph; wrap the base graph "
                    "in VersionedGraph(graph) when building the pool"
                )
            touched = self.graph.apply(delta)
            return self.repair(touched)

    def repair(self, touched=None) -> Dict[str, int]:
        """Regenerate the RR sets invalidated by a graph mutation.

        ``touched`` is what :meth:`VersionedGraph.apply
        <repro.graphs.digraph.VersionedGraph.apply>` returned: the
        ascending node ids whose in-rows changed, or ``None`` for full
        invalidation (node additions).  Only sets containing a touched
        node are redrawn — from the same per-set substreams a cold pool
        on the updated graph would use — and spliced in place under
        stable ids, so repaired collections are bit-identical to cold
        regeneration.  Donated coverage snapshots are patched by
        retraction deltas (full invalidation drops them instead).
        Requires ``rng_scheme="per-set"``; metered as generation phases
        in the pool's lifetime metrics.
        """
        with self._lock:
            if self.rng_scheme != "per-set":
                raise ValueError(
                    "in-place repair requires rng_scheme='per-set' (sequential "
                    f"machine streams cannot redraw single sets), got "
                    f"{self.rng_scheme!r}"
                )
            self.executor.refresh_graph()
            if self._sampler_factory is not None:
                self._sampler = self._sampler_factory(self.graph)
            elif self._sampler is not None:
                raise ValueError(
                    "the pool's fixed custom sampler cannot be rebuilt against "
                    "the updated graph; construct the pool with "
                    "sampler_factory= instead of sampler="
                )
            repaired: Dict[str, int] = {}
            for key in list(self._stores):
                stores = self._stores[key]
                sampler = (
                    self._sampler
                    if self._sampler is not None
                    else self.executor.sampler(self.model, self.method)
                )
                if touched is None:
                    repaired[key] = self._regenerate_all(key, stores, sampler)
                else:
                    repaired[key] = self._repair_touched(key, stores, sampler, touched)
            if touched is None:
                self._coverage_cache.clear()
            # A repair that rewrote nothing left every collection — and
            # therefore every cached result — bit-identical, so the epoch
            # (and with it the serving cache) only moves on real rewrites.
            if touched is None or any(repaired.values()):
                self.updates += 1
            return repaired

    def _repair_touched(
        self,
        key: str,
        stores: List[FlatRRCollection],
        sampler: RRSampler,
        touched: np.ndarray,
    ) -> int:
        """Redraw and splice the sets containing a touched node."""
        seed = self.seed
        cache = tuple(self._coverage_cache.get(key, ()))

        def regen(machine) -> int:
            mid = machine.machine_id
            store = stores[mid]
            ids = store.affected_sets(touched)
            if ids.size == 0:
                return 0
            # Old contents (id order) for the coverage retraction deltas.
            old_nodes = gather_rows(store.nodes, store.offsets, ids)
            old_sizes = store.offsets[ids + 1] - store.offsets[ids]
            old_bounds = np.concatenate(([0], np.cumsum(old_sizes)))
            # Redraw each contiguous id run from its own substreams.
            runs = np.split(ids, np.flatnonzero(np.diff(ids) != 1) + 1)
            batch = concat_batches(
                [
                    sample_set_range(sampler, seed, mid, int(run[0]), run.size)
                    for run in runs
                ]
            )
            store.replace_sets(ids, batch)
            for state in cache:
                # Only ids below the snapshot's watermark were ever
                # ingested; retract their old contents, add the new.
                below = int(np.searchsorted(ids, state.watermarks[mid]))
                if below:
                    state.repair(
                        mid,
                        old_nodes[: old_bounds[below]],
                        batch.nodes[: batch.offsets[below]],
                    )
            return int(ids.size)

        results = self.executor.run_phase(
            MapPhase(f"pool/repair/{key}", regen, category=GENERATION)
        ).results
        return int(sum(results))

    def _regenerate_all(
        self, key: str, stores: List[FlatRRCollection], sampler: RRSampler
    ) -> int:
        """Full invalidation: rebuild each machine's collection cold.

        Node additions change the root-draw range (and possibly the node
        universe the stores validate against), so every set is redrawn
        into a fresh collection of the graph's current size; set counts
        are preserved so outstanding schedules resume unchanged.
        """
        seed = self.seed
        num_nodes = self.num_nodes
        counts = [store.num_sets for store in stores]

        def rebuild(machine) -> int:
            mid = machine.machine_id
            fresh = FlatRRCollection(num_nodes)
            if counts[mid]:
                append_batch(
                    fresh, sample_set_range(sampler, seed, mid, 0, counts[mid])
                )
            stores[mid] = fresh
            return counts[mid]

        results = self.executor.run_phase(
            MapPhase(f"pool/rebuild/{key}", rebuild, category=GENERATION)
        ).results
        return int(sum(results))

    # ------------------------------------------------------------------
    # Coverage snapshot cache
    # ------------------------------------------------------------------
    def fork_coverage(self, key: str, limits: Sequence[int]) -> CoverageState | None:
        """Fork the best donated coverage snapshot usable at ``limits``.

        Usable means watermarks elementwise ``<=`` the query's first
        ingest limits — the snapshot covers a strict prefix of what the
        query sees, so folding the remainder on top reproduces a
        from-scratch aggregation integer for integer.  Returns ``None``
        when no donated snapshot qualifies.
        """
        with self._lock:
            best: CoverageState | None = None
            for state in self._coverage_cache.get(key, ()):
                if all(w <= lim for w, lim in zip(state.watermarks, limits)) and (
                    best is None or sum(state.watermarks) > sum(best.watermarks)
                ):
                    best = state
            return best.fork() if best is not None else None

    def donate_coverage(self, key: str, state: CoverageState) -> None:
        """Adopt a finished query's coverage state into the snapshot cache.

        The donor must not mutate the state afterwards; the pool only
        ever hands out copy-on-write forks of it.
        """
        with self._lock:
            cache = self._coverage_cache.setdefault(key, [])
            marks = list(state.watermarks)
            if any(cached.watermarks == marks for cached in cache):
                return
            cache.append(state)
            if len(cache) > MAX_CACHED_COVERAGE:
                cache.pop(0)

    # ------------------------------------------------------------------
    # Per-query metering
    # ------------------------------------------------------------------
    @contextmanager
    def query_metrics(self) -> Iterator[RunMetrics]:
        """Serialize one query and meter it in isolation.

        Holds the pool lock for the duration, swaps a fresh
        :class:`RunMetrics` onto the cluster (so the query's phases are
        its own), and on exit merges them into the pool's lifetime
        metrics and restores the previous sink.
        """
        with self._lock:
            previous = self.cluster.metrics
            metrics = RunMetrics()
            self.cluster.metrics = metrics
            try:
                yield metrics
            finally:
                self.cluster.metrics = previous
                previous.merge(metrics)
                self.queries_served += 1

    # ------------------------------------------------------------------
    # Config compatibility
    # ------------------------------------------------------------------
    def check_config(self, config, machines: int | None = None) -> None:
        """Reject a :class:`~repro.core.config.RunConfig` whose results
        could not equal a cold run over this pool's streams."""
        expected = self.num_machines if machines is None else machines
        if machines is not None and self.num_machines != machines:
            raise ValueError(
                f"pool has {self.num_machines} machines, query needs {expected}"
            )
        if config.graph is not self.graph:
            raise ValueError("config.graph is not the pool's graph")
        if config.seed != self.seed:
            raise ValueError(
                f"config.seed={config.seed} differs from the pool seed "
                f"{self.seed}; warm results would not match a cold run"
            )
        if config.model != self.model or config.method != self.method:
            raise ValueError(
                f"pool samples ({self.model!r}, {self.method!r}); config wants "
                f"({config.model!r}, {config.method!r})"
            )
        if config.backend != "flat":
            hint = (
                "; sketch register banks cannot be windowed to a query's "
                "prefix — run sketch queries cold via repro.api.run"
                if config.backend == "sketch"
                else ""
            )
            raise ValueError(
                f"warm pools are flat-store only, got backend={config.backend!r}{hint}"
            )
        if config.checkpoint_dir is not None or config.resume:
            raise ValueError("checkpointing is not supported on warm-pool queries")
        if config.faults is not None:
            raise ValueError("fault injection is not supported on warm-pool queries")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the executor (worker pool, shared memory).  Idempotent."""
        self._closed = True
        self.executor.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SamplePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        sizes = {key: sum(s.num_sets for s in stores) for key, stores in self._stores.items()}
        return (
            f"SamplePool(machines={self.num_machines}, model={self.model!r}, "
            f"method={self.method!r}, executor={self.executor.name!r}, "
            f"sets={sizes})"
        )
