"""The SamplePool: RR-sample lifetime split from query lifetime.

Every cold entry point couples three lifetimes that have no business
being coupled: the executor (worker processes, shared-memory graph), the
per-machine RR collections, and the query being answered.  A
:class:`SamplePool` owns the first two for as long as the caller wants —
typically the lifetime of a :class:`~repro.serve.service.InfluenceService`
— and answers any number of queries against *prefixes* of the same
collections:

* each machine's collection is append-only and grown by topping up
  (:meth:`ensure`), continuing the machine's RNG stream exactly where
  the previous query left it;
* a query never reads the collections directly — it reads
  :class:`~repro.ris.flat.FlatPrefixView` windows
  (:meth:`view_stores`) whose limits follow the query's own sampling
  schedule, so the sets it sees are bit-identical to the collections a
  cold run of that schedule would have generated (the per-set samplers'
  batch contract: machine ``i``'s first ``c`` RR sets depend only on its
  stream and ``c``, not on wave boundaries);
* finished queries donate their final
  :class:`~repro.coverage.state.CoverageState` back to the pool
  (:meth:`donate_coverage`); later queries whose first-round prefixes
  dominate a donated watermark fork it copy-on-write
  (:meth:`fork_coverage`) instead of re-aggregating from zero.

The pool is thread-safe by serialization: :meth:`query_metrics` — which
every query must wrap its phases in — holds the pool lock, swaps a fresh
:class:`~repro.cluster.metrics.RunMetrics` onto the cluster for the
query, and merges it into the pool's lifetime metrics afterwards.
Queries against *different* pools run concurrently.

Bit-for-bit warm/cold equivalence holds for the per-set generation
methods (``bfs``, ``subsim``) only; the blocked ``vectorized`` sampler
consumes randomness per wave, so pools refuse it rather than silently
weakening the correctness anchor.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..cluster.cluster import SimulatedCluster
from ..cluster.executor import GeneratePhase, MapPhase, make_executor
from ..cluster.metrics import GENERATION, RunMetrics
from ..cluster.network import NetworkModel
from ..coverage.state import CoverageState
from ..ris.flat import FlatPrefixView, FlatRRCollection, append_batch
from ..ris.rrset import RRSampler

__all__ = ["SamplePool", "PREFIX_DETERMINISTIC_METHODS", "RNG_SCHEMES"]

#: Generation methods whose batches equal sequential per-set draws, the
#: property warm/cold bit-equality rests on.
PREFIX_DETERMINISTIC_METHODS: Tuple[str, ...] = ("bfs", "subsim")

#: How the pool seeds its machines: ``"cluster"`` spawns per-machine
#: streams from the cluster seed sequence (every distributed algorithm);
#: ``"legacy-imm"`` seeds machine 0 directly (the single-machine IMM
#: baseline's historical stream).
RNG_SCHEMES: Tuple[str, ...] = ("cluster", "legacy-imm")

#: Donated coverage snapshots kept per collection key.
MAX_CACHED_COVERAGE = 4


class SamplePool:
    """A resident, shared, append-only RR-sample pool.

    Parameters
    ----------
    graph:
        The (already loaded) :class:`~repro.graphs.digraph.DirectedGraph`.
    machines:
        Cluster width ``l``; fixed for the pool's lifetime.
    seed:
        Root RNG seed.  Warm results equal cold runs with this seed.
    model, method:
        Sampler selection; ``method`` must be prefix-deterministic
        (:data:`PREFIX_DETERMINISTIC_METHODS`).
    executor:
        ``"simulated"`` or ``"multiprocessing"``; the pool owns the
        executor (worker processes, shared-memory graph) until
        :meth:`close`.
    rng_scheme:
        See :data:`RNG_SCHEMES`.
    sampler:
        Optional custom :class:`~repro.ris.rrset.RRSampler` (e.g. a
        :class:`~repro.applications.targeted.TargetedSampler`) used for
        generation instead of the executor's ``(model, method)`` one.
    """

    def __init__(
        self,
        graph,
        machines: int = 1,
        *,
        seed: int = 0,
        model: str = "ic",
        method: str = "bfs",
        executor: str = "simulated",
        processes: int | None = None,
        network: NetworkModel | None = None,
        rng_scheme: str = "cluster",
        sampler: RRSampler | None = None,
        start_method: str | None = None,
        zero_copy: bool | None = None,
    ) -> None:
        if method not in PREFIX_DETERMINISTIC_METHODS:
            raise ValueError(
                f"SamplePool requires a prefix-deterministic method "
                f"{PREFIX_DETERMINISTIC_METHODS} so warm queries stay "
                f"bit-identical to cold runs; got {method!r}"
            )
        if rng_scheme not in RNG_SCHEMES:
            raise ValueError(
                f"rng_scheme must be one of {RNG_SCHEMES}, got {rng_scheme!r}"
            )
        if rng_scheme == "legacy-imm" and machines != 1:
            raise ValueError(
                f"the legacy-imm RNG scheme is single-machine, got {machines} machines"
            )
        self.graph = graph
        self.seed = seed
        self.model = model
        self.method = method
        self.rng_scheme = rng_scheme
        self.cluster = SimulatedCluster(machines, network=network, seed=seed)
        if rng_scheme == "legacy-imm":
            self.cluster.machines[0].rng = np.random.default_rng(seed)
        self.executor = make_executor(
            executor,
            self.cluster,
            graph=graph,
            processes=processes,
            start_method=start_method,
            zero_copy=zero_copy,
        )
        self._sampler = sampler
        self._stores: Dict[str, List[FlatRRCollection]] = {}
        self._coverage_cache: Dict[str, List[CoverageState]] = {}
        self._lock = threading.RLock()
        self.queries_served = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return self.cluster.num_machines

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def lock(self) -> threading.RLock:
        """The pool-wide lock serializing queries (held by
        :meth:`query_metrics`)."""
        return self._lock

    @property
    def lifetime_metrics(self) -> RunMetrics:
        """Phases accumulated across every query served so far."""
        return self.cluster.metrics

    def sizes(self) -> Dict[str, List[int]]:
        """Per-machine collection sizes for each key."""
        with self._lock:
            return {
                key: [store.num_sets for store in stores]
                for key, stores in self._stores.items()
            }

    def signature(self) -> Tuple[Tuple[str, Tuple[int, ...]], ...]:
        """A hashable snapshot of the pool's contents — the pool-size
        component of the serving layer's query-cache key."""
        with self._lock:
            return tuple(
                sorted(
                    (key, tuple(store.num_sets for store in stores))
                    for key, stores in self._stores.items()
                )
            )

    # ------------------------------------------------------------------
    # Growth and views
    # ------------------------------------------------------------------
    def stores(self, key: str) -> List[FlatRRCollection]:
        """The backing per-machine collections for ``key`` (created on
        first use)."""
        with self._lock:
            stores = self._stores.get(key)
            if stores is None:
                stores = [
                    FlatRRCollection(self.num_nodes)
                    for _ in range(self.num_machines)
                ]
                self._stores[key] = stores
            return stores

    def view_stores(self, keys: Sequence[str]) -> Dict[str, List[FlatPrefixView]]:
        """Fresh zero-limit prefix views, one per machine per key.

        Each query gets its own views; their limits advance with the
        query's schedule while the backing collections are shared.
        """
        return {
            key: [FlatPrefixView(store, 0) for store in self.stores(key)]
            for key in keys
        }

    def ensure(
        self, key: str, needed: Sequence[int], label: str = "pool/ensure"
    ) -> int:
        """Top collection ``key`` up to ``needed[i]`` sets on machine ``i``.

        Only the shortfall is generated, continuing each machine's RNG
        stream; machines already at or past their target draw nothing.
        Returns the number of RR sets generated.
        """
        with self._lock:
            stores = self.stores(key)
            if len(needed) != len(stores):
                raise ValueError(
                    f"expected {len(stores)} per-machine targets, got {len(needed)}"
                )
            counts = [
                max(0, int(target) - store.num_sets)
                for target, store in zip(needed, stores)
            ]
            total = sum(counts)
            if total == 0:
                return 0
            if self._sampler is None:
                self.executor.run_phase(
                    GeneratePhase(
                        label,
                        counts=tuple(counts),
                        targets=tuple(stores),
                        model=self.model,
                        method=self.method,
                    )
                )
            else:
                sampler = self._sampler

                def top_up(machine) -> int:
                    count = counts[machine.machine_id]
                    if count:
                        batch = sampler.sample_batch(machine.rng, count)
                        append_batch(stores[machine.machine_id], batch)
                    return count

                self.executor.run_phase(MapPhase(label, top_up, category=GENERATION))
            return total

    # ------------------------------------------------------------------
    # Coverage snapshot cache
    # ------------------------------------------------------------------
    def fork_coverage(self, key: str, limits: Sequence[int]) -> CoverageState | None:
        """Fork the best donated coverage snapshot usable at ``limits``.

        Usable means watermarks elementwise ``<=`` the query's first
        ingest limits — the snapshot covers a strict prefix of what the
        query sees, so folding the remainder on top reproduces a
        from-scratch aggregation integer for integer.  Returns ``None``
        when no donated snapshot qualifies.
        """
        with self._lock:
            best: CoverageState | None = None
            for state in self._coverage_cache.get(key, ()):
                if all(w <= lim for w, lim in zip(state.watermarks, limits)) and (
                    best is None or sum(state.watermarks) > sum(best.watermarks)
                ):
                    best = state
            return best.fork() if best is not None else None

    def donate_coverage(self, key: str, state: CoverageState) -> None:
        """Adopt a finished query's coverage state into the snapshot cache.

        The donor must not mutate the state afterwards; the pool only
        ever hands out copy-on-write forks of it.
        """
        with self._lock:
            cache = self._coverage_cache.setdefault(key, [])
            marks = list(state.watermarks)
            if any(cached.watermarks == marks for cached in cache):
                return
            cache.append(state)
            if len(cache) > MAX_CACHED_COVERAGE:
                cache.pop(0)

    # ------------------------------------------------------------------
    # Per-query metering
    # ------------------------------------------------------------------
    @contextmanager
    def query_metrics(self) -> Iterator[RunMetrics]:
        """Serialize one query and meter it in isolation.

        Holds the pool lock for the duration, swaps a fresh
        :class:`RunMetrics` onto the cluster (so the query's phases are
        its own), and on exit merges them into the pool's lifetime
        metrics and restores the previous sink.
        """
        with self._lock:
            previous = self.cluster.metrics
            metrics = RunMetrics()
            self.cluster.metrics = metrics
            try:
                yield metrics
            finally:
                self.cluster.metrics = previous
                previous.merge(metrics)
                self.queries_served += 1

    # ------------------------------------------------------------------
    # Config compatibility
    # ------------------------------------------------------------------
    def check_config(self, config, machines: int | None = None) -> None:
        """Reject a :class:`~repro.core.config.RunConfig` whose results
        could not equal a cold run over this pool's streams."""
        expected = self.num_machines if machines is None else machines
        if machines is not None and self.num_machines != machines:
            raise ValueError(
                f"pool has {self.num_machines} machines, query needs {expected}"
            )
        if config.graph is not self.graph:
            raise ValueError("config.graph is not the pool's graph")
        if config.seed != self.seed:
            raise ValueError(
                f"config.seed={config.seed} differs from the pool seed "
                f"{self.seed}; warm results would not match a cold run"
            )
        if config.model != self.model or config.method != self.method:
            raise ValueError(
                f"pool samples ({self.model!r}, {self.method!r}); config wants "
                f"({config.model!r}, {config.method!r})"
            )
        if config.backend != "flat":
            raise ValueError(
                f"warm pools are flat-store only, got backend={config.backend!r}"
            )
        if config.checkpoint_dir is not None or config.resume:
            raise ValueError("checkpointing is not supported on warm-pool queries")
        if config.faults is not None:
            raise ValueError("fault injection is not supported on warm-pool queries")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the executor (worker pool, shared memory).  Idempotent."""
        self._closed = True
        self.executor.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SamplePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        sizes = {key: sum(s.num_sets for s in stores) for key, stores in self._stores.items()}
        return (
            f"SamplePool(machines={self.num_machines}, model={self.model!r}, "
            f"method={self.method!r}, executor={self.executor.name!r}, "
            f"sets={sizes})"
        )
