"""Distributed SUBSIM (paper Fig 7).

SUBSIM (Guo et al., SIGMOD 2020) keeps IMM's sampling *schedule* but
replaces the RR-set generation procedure with subset sampling, cutting the
per-set cost from the in-degree volume to roughly the set size.  Section
III-C of the paper observes that the distributed techniques apply to any
RIS framework, and Fig 7 demonstrates it on SUBSIM: the speedup ratio over
single-machine SUBSIM matches DIIMM's over IMM.

Accordingly, this module runs the DIIMM driver with the
:class:`~repro.ris.subsim.SubsimSampler`; the single-machine baseline is
:func:`repro.core.imm.imm` with ``method="subsim"``.
"""

from __future__ import annotations

from ..cluster.network import NetworkModel
from ..graphs.digraph import DirectedGraph
from .diimm import diimm
from .result import IMResult

__all__ = ["distributed_subsim"]


def distributed_subsim(
    graph: DirectedGraph,
    k: int,
    num_machines: int,
    eps: float = 0.5,
    delta: float | None = None,
    network: NetworkModel | None = None,
    seed: int = 0,
    backend: str = "flat",
    executor: str = "simulated",
    processes: int | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> IMResult:
    """Distributed SUBSIM under the IC model.

    Subset sampling exploits shared in-edge probabilities; it is defined
    for the IC model only (the LT reverse walk is already linear in the
    walk length), hence no ``model`` parameter.  The DIIMM driver runs a
    :class:`~repro.core.driver.SubsimScheduleRule` for it, so round
    annotations and checkpoints carry the SUBSIM identity.
    """
    return diimm(
        graph,
        k,
        num_machines,
        eps=eps,
        delta=delta,
        model="ic",
        method="subsim",
        network=network,
        seed=seed,
        algorithm_label="DSUBSIM",
        backend=backend,
        executor=executor,
        processes=processes,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
