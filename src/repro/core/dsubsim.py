"""Distributed SUBSIM (paper Fig 7).

SUBSIM (Guo et al., SIGMOD 2020) keeps IMM's sampling *schedule* but
replaces the RR-set generation procedure with subset sampling, cutting the
per-set cost from the in-degree volume to roughly the set size.  Section
III-C of the paper observes that the distributed techniques apply to any
RIS framework, and Fig 7 demonstrates it on SUBSIM: the speedup ratio over
single-machine SUBSIM matches DIIMM's over IMM.

Accordingly, this module runs the DIIMM driver with the
:class:`~repro.ris.subsim.SubsimSampler`; the single-machine baseline is
:func:`repro.core.imm.imm` with ``method="subsim"``.
"""

from __future__ import annotations

from ..cluster.faults import FaultPlan, RetryPolicy
from ..cluster.network import NetworkModel
from ..graphs.digraph import DirectedGraph
from .config import RunConfig
from .diimm import diimm_from_config
from .result import IMResult

__all__ = ["distributed_subsim", "distributed_subsim_from_config"]


def distributed_subsim(
    graph: DirectedGraph,
    k: int,
    num_machines: int,
    eps: float = 0.5,
    delta: float | None = None,
    network: NetworkModel | None = None,
    seed: int = 0,
    backend: str = "flat",
    executor: str = "simulated",
    processes: int | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    faults: FaultPlan | str | None = None,
    retry: RetryPolicy | None = None,
) -> IMResult:
    """Distributed SUBSIM under the IC model.

    This keyword signature is a thin shim over
    :class:`~repro.core.config.RunConfig` /
    :func:`distributed_subsim_from_config`; prefer :func:`repro.api.run`
    in new code.

    Subset sampling exploits shared in-edge probabilities; it is defined
    for the IC model only (the LT reverse walk is already linear in the
    walk length), hence no ``model`` parameter.  The DIIMM driver runs a
    :class:`~repro.core.driver.SubsimScheduleRule` for it, so round
    annotations and checkpoints carry the SUBSIM identity.
    """
    config = RunConfig(
        graph=graph,
        k=k,
        machines=num_machines,
        eps=eps,
        delta=delta,
        model="ic",
        method="subsim",
        network=network,
        seed=seed,
        backend=backend,
        executor=executor,
        processes=processes,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        faults=faults,
        retry=retry,
    )
    return distributed_subsim_from_config(config)


def distributed_subsim_from_config(
    config: RunConfig, *, executor=None, pool=None
) -> IMResult:
    """Run D-SUBSIM from a validated :class:`~repro.core.config.RunConfig`.

    Forces ``method="subsim"`` and validates the IC-only constraint, then
    delegates to the DIIMM driver under the ``DSUBSIM`` label.
    ``executor`` and ``pool`` are forwarded unchanged (SUBSIM's sampler
    is per-set stream-deterministic, so warm pools apply to it exactly as
    to DIIMM).
    """
    config = config.with_overrides(method="subsim")
    config.validate("dsubsim")
    return diimm_from_config(
        config, algorithm_label="DSUBSIM", executor=executor, pool=pool
    )
