"""Driver-level checkpoint/resume: per-round snapshots of the whole loop.

A round snapshot captures everything the :class:`~repro.core.driver.RoundDriver`
needs to deterministically re-enter the loop after the round:

* every machine's RR collections (via :func:`repro.ris.serialization.save_collection`,
  which stamps the format magic/version);
* the master's incremental :class:`~repro.coverage.state.CoverageState`;
* each machine's RNG state, so the next wave draws the same stream;
* the stopping rule's internal state and the driver's round position;
* the run configuration, validated on resume so a checkpoint can never be
  silently continued under different parameters.

Snapshots are written atomically: the round directory is assembled under
a temporary name and renamed into place, so a run killed mid-write leaves
either the previous complete snapshot or nothing — never a torn one.  The
driver only checkpoints rounds it decided to *continue* past; a crash
during round ``r + 1`` resumes from round ``r``'s snapshot and replays
the interrupted round bit-for-bit (all randomness lives in the saved RNG
states), ending in the identical seed set.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence

import numpy as np

from ..ris.serialization import (
    CheckpointFormatError,
    load_collection,
    load_flat_collection,
    save_collection,
)

__all__ = [
    "DRIVER_CHECKPOINT_MAGIC",
    "DRIVER_CHECKPOINT_VERSION",
    "DriverSnapshot",
    "CheckpointManager",
    "manager_for",
]

#: Identifies a ``state.json`` as a driver checkpoint.
DRIVER_CHECKPOINT_MAGIC = "repro-driver-checkpoint"
#: Layout version of the round-directory schema.
DRIVER_CHECKPOINT_VERSION = 1

_ROUND_DIR = re.compile(r"^round-(\d{4,})$")


@dataclass
class DriverSnapshot:
    """One restored round snapshot, ready to hand back to the driver.

    ``recovery`` carries the fault-tolerance events recorded up to the
    snapshot (as dicts, see
    :meth:`RunMetrics.recovery_state <repro.cluster.metrics.RunMetrics.recovery_state>`),
    so a resumed run's recovery log covers the whole run, not just the
    rounds after the restart.  Pre-fault-layer checkpoints restore with
    an empty log.
    """

    round_index: int
    rule_state: Dict[str, Any]
    rng_states: List[Dict[str, Any]]
    coverage_state: Dict[str, np.ndarray]
    stores: Dict[str, List]
    recovery: List[Dict[str, Any]] = field(default_factory=list)


class CheckpointManager:
    """Reads and writes round snapshots under one checkpoint directory.

    Parameters
    ----------
    directory:
        Where snapshots live; created on first save.  One directory holds
        one run's snapshots (``round-0001/``, ``round-0002/``, ...).
    config:
        The run's identifying parameters (graph size, ``k``, ``eps``,
        seed, machines, ...).  Stored in every snapshot and compared on
        resume; a mismatch raises :class:`CheckpointFormatError` instead
        of continuing the wrong run.
    """

    def __init__(self, directory: str | os.PathLike, config: Mapping[str, Any]) -> None:
        self.directory = Path(directory)
        self.config = dict(config)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(
        self,
        round_index: int,
        rule_name: str,
        rule_state: Dict[str, Any],
        rng_states: Sequence[Dict[str, Any]],
        coverage_state: Dict[str, np.ndarray],
        stores: Mapping[str, Sequence],
        recovery: Sequence[Mapping[str, Any]] = (),
    ) -> Path:
        """Atomically write the snapshot for ``round_index``; return its dir.

        ``recovery`` is the run's fault-tolerance log so far (event
        dicts); stored under an optional key, so the format version is
        unchanged and older checkpoints stay loadable.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        final_dir = self.directory / f"round-{round_index:04d}"
        tmp_dir = self.directory / f".tmp-round-{round_index:04d}"
        if tmp_dir.exists():
            shutil.rmtree(tmp_dir)
        tmp_dir.mkdir()

        np.savez_compressed(tmp_dir / "coverage.npz", **coverage_state)
        for key, per_machine in stores.items():
            for machine_id, store in enumerate(per_machine):
                save_collection(store, tmp_dir / f"machine{machine_id}-{key}.npz")
        state = {
            "magic": DRIVER_CHECKPOINT_MAGIC,
            "version": DRIVER_CHECKPOINT_VERSION,
            "round_index": int(round_index),
            "rule": {"name": rule_name, "state": rule_state},
            "rng_states": list(rng_states),
            "collection_keys": list(stores),
            "num_machines": len(rng_states),
            "config": self.config,
            "recovery": [dict(event) for event in recovery],
        }
        with open(tmp_dir / "state.json", "w") as handle:
            json.dump(state, handle, indent=2)

        if final_dir.exists():
            shutil.rmtree(final_dir)
        os.replace(tmp_dir, final_dir)
        return final_dir

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def latest_round(self) -> int | None:
        """Highest round index with a complete snapshot, or ``None``."""
        if not self.directory.is_dir():
            return None
        rounds = []
        for entry in self.directory.iterdir():
            match = _ROUND_DIR.match(entry.name)
            if match and (entry / "state.json").is_file():
                rounds.append(int(match.group(1)))
        return max(rounds) if rounds else None

    def load_latest(
        self,
        rule_name: str,
        collection_keys: Sequence[str],
        num_machines: int,
        backend: str,
    ) -> DriverSnapshot:
        """Load and validate the most recent snapshot.

        Raises :class:`FileNotFoundError` when the directory holds no
        snapshot and :class:`CheckpointFormatError` when the snapshot
        does not belong to this run (different rule, shape, config or
        format version).
        """
        round_index = self.latest_round()
        if round_index is None:
            raise FileNotFoundError(
                f"no driver checkpoint found under {self.directory}"
            )
        return self.load(round_index, rule_name, collection_keys, num_machines, backend)

    def load(
        self,
        round_index: int,
        rule_name: str,
        collection_keys: Sequence[str],
        num_machines: int,
        backend: str,
    ) -> DriverSnapshot:
        """Load and validate one round's snapshot."""
        round_dir = self.directory / f"round-{round_index:04d}"
        state_path = round_dir / "state.json"
        try:
            with open(state_path) as handle:
                state = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointFormatError(
                f"{state_path} is not a readable driver checkpoint: {exc}"
            ) from exc

        if state.get("magic") != DRIVER_CHECKPOINT_MAGIC:
            raise CheckpointFormatError(
                f"{state_path} is not a driver checkpoint "
                f"(missing {DRIVER_CHECKPOINT_MAGIC!r} header)"
            )
        version = state.get("version")
        if version != DRIVER_CHECKPOINT_VERSION:
            raise CheckpointFormatError(
                f"{state_path} uses driver-checkpoint version {version}, but this "
                f"build reads version {DRIVER_CHECKPOINT_VERSION}; regenerate the "
                "checkpoint with the matching release"
            )
        if state["rule"]["name"] != rule_name:
            raise CheckpointFormatError(
                f"checkpoint {round_dir} was written by rule "
                f"{state['rule']['name']!r}, but this run uses {rule_name!r}"
            )
        if state["num_machines"] != num_machines or sorted(
            state["collection_keys"]
        ) != sorted(collection_keys):
            raise CheckpointFormatError(
                f"checkpoint {round_dir} covers {state['num_machines']} machines "
                f"and collections {state['collection_keys']}, but this run has "
                f"{num_machines} machines and collections {list(collection_keys)}"
            )
        if state["config"] != self.config:
            changed = sorted(
                key
                for key in set(state["config"]) | set(self.config)
                if state["config"].get(key) != self.config.get(key)
            )
            raise CheckpointFormatError(
                f"checkpoint {round_dir} was written under a different run "
                f"configuration (differing keys: {changed}); refusing to resume"
            )

        with np.load(round_dir / "coverage.npz") as data:
            coverage_state = {name: data[name] for name in data.files}
        loader = load_flat_collection if backend == "flat" else load_collection
        stores: Dict[str, List] = {}
        for key in state["collection_keys"]:
            stores[key] = [
                loader(round_dir / f"machine{machine_id}-{key}.npz")
                for machine_id in range(num_machines)
            ]
        return DriverSnapshot(
            round_index=int(state["round_index"]),
            rule_state=state["rule"]["state"],
            rng_states=state["rng_states"],
            coverage_state=coverage_state,
            stores=stores,
            recovery=state.get("recovery", []),
        )


def manager_for(checkpoint_dir: str | os.PathLike | None, **config) -> CheckpointManager | None:
    """Build the manager the algorithm entry points share.

    ``None`` when checkpointing is disabled; ``config`` becomes the
    snapshot's identifying run configuration.
    """
    if checkpoint_dir is None:
        return None
    return CheckpointManager(checkpoint_dir, config)
