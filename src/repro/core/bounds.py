"""IMM sampling bounds: equations (3)-(7) of the paper.

The IMM framework (Tang et al., SIGMOD 2015) decides how many RR sets to
generate from two quantities:

* ``lambda'`` (eq. 3) controls the lower-bound search: in iteration ``t``
  it prescribes ``theta_t = lambda' / x`` RR sets for the guess
  ``x = n / 2^t`` of OPT.
* ``lambda*`` (eqs. 4-6) controls the final sampling:
  ``theta = lambda* / LB`` RR sets guarantee that greedy returns a
  ``(1 - 1/e - eps)``-approximation with probability ``>= 1 - delta'/2``.

Chen (arXiv:1808.09363) pointed out a subtle flaw in IMM's original
martingale analysis; the fix (adopted by this paper, eq. 7) replaces
``delta' = delta`` with the root of ``ceil(lambda*) * delta' = delta``.
Since ``lambda*`` itself depends on ``delta'`` through ``alpha`` and
``beta``, :func:`solve_delta_prime` iterates the monotone map
``delta' <- delta / ceil(lambda*(delta'))`` to its fixed point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "log_binomial",
    "lambda_prime",
    "alpha_term",
    "beta_term",
    "lambda_star",
    "solve_delta_prime",
    "ImmParameters",
    "opim_spread_lower_bound",
    "opim_opt_upper_bound",
]


def log_binomial(n: int, k: int) -> float:
    """Natural log of the binomial coefficient ``C(n, k)`` via lgamma."""
    if k < 0 or k > n:
        raise ValueError(f"require 0 <= k <= n, got n={n}, k={k}")
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def lambda_prime(n: int, k: int, eps_prime: float, delta_prime: float) -> float:
    """Equation (3): the lower-bound-search sampling coefficient."""
    _validate(n, k, eps_prime, delta_prime)
    log_terms = log_binomial(n, k) + math.log(2.0 / delta_prime) + math.log(max(math.log2(n), 1.0))
    return (2.0 + 2.0 * eps_prime / 3.0) * log_terms * n / (eps_prime**2)


def alpha_term(delta_prime: float) -> float:
    """Equation (4)."""
    if not 0.0 < delta_prime < 1.0:
        raise ValueError(f"delta_prime must lie in (0, 1), got {delta_prime}")
    return math.sqrt(math.log(2.0 / delta_prime) + math.log(2.0))


def beta_term(n: int, k: int, delta_prime: float) -> float:
    """Equation (5)."""
    one_minus_inv_e = 1.0 - 1.0 / math.e
    return math.sqrt(
        one_minus_inv_e
        * (log_binomial(n, k) + math.log(2.0 / delta_prime) + math.log(2.0))
    )


def lambda_star(n: int, k: int, eps: float, delta_prime: float) -> float:
    """Equation (6): the final-phase sampling coefficient."""
    _validate(n, k, eps, delta_prime)
    one_minus_inv_e = 1.0 - 1.0 / math.e
    combined = one_minus_inv_e * alpha_term(delta_prime) + beta_term(n, k, delta_prime)
    return 2.0 * n * combined**2 / (eps**2)


def solve_delta_prime(
    n: int,
    k: int,
    eps: float,
    delta: float,
    tolerance: float = 1e-12,
    max_rounds: int = 200,
) -> float:
    """Equation (7): fixed point of ``ceil(lambda*(delta')) * delta' = delta``.

    The map ``delta' <- delta / ceil(lambda*(delta'))`` is monotone
    (shrinking ``delta'`` only grows ``lambda*`` logarithmically), so the
    iteration converges geometrically from the start ``delta' = delta``.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    delta_prime = delta
    for __ in range(max_rounds):
        updated = delta / math.ceil(lambda_star(n, k, eps, delta_prime))
        if abs(updated - delta_prime) <= tolerance * delta_prime:
            return updated
        delta_prime = updated
    return delta_prime


def _validate(n: int, k: int, eps: float, delta_prime: float) -> None:
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if not 1 <= k <= n:
        raise ValueError(f"require 1 <= k <= n, got k={k}, n={n}")
    if eps <= 0.0:
        raise ValueError(f"epsilon must be positive, got {eps}")
    if not 0.0 < delta_prime < 1.0:
        raise ValueError(f"delta_prime must lie in (0, 1), got {delta_prime}")


@dataclass(frozen=True)
class ImmParameters:
    """All sampling-schedule constants for one ``(n, k, eps, delta)`` tuple."""

    n: int
    k: int
    eps: float
    delta: float
    eps_prime: float
    delta_prime: float
    lambda_prime: float
    lambda_star: float
    max_search_rounds: int

    @classmethod
    def compute(cls, n: int, k: int, eps: float, delta: float) -> "ImmParameters":
        """Derive every constant of Algorithm 2's header (lines 1-2, 11)."""
        eps_prime = math.sqrt(2.0) * eps
        delta_prime = solve_delta_prime(n, k, eps, delta)
        return cls(
            n=n,
            k=k,
            eps=eps,
            delta=delta,
            eps_prime=eps_prime,
            delta_prime=delta_prime,
            lambda_prime=lambda_prime(n, k, eps_prime, delta_prime),
            lambda_star=lambda_star(n, k, eps, delta_prime),
            max_search_rounds=max(int(math.log2(n)) - 1, 1),
        )

    def theta_for_round(self, t: int) -> int:
        """RR sets required by search round ``t`` (``theta_t = lambda'/x``)."""
        if t < 1:
            raise ValueError(f"round index must be >= 1, got {t}")
        x = self.n / (2.0**t)
        return int(math.ceil(self.lambda_prime / x))

    def theta_final(self, lower_bound: float) -> int:
        """RR sets required by the final phase (``theta = lambda*/LB``)."""
        if lower_bound < 1.0:
            raise ValueError(f"lower bound must be >= 1, got {lower_bound}")
        return int(math.ceil(self.lambda_star / lower_bound))


def opim_spread_lower_bound(coverage: int, num_sets: int, n: int, a: float) -> float:
    """OPIM-C's martingale lower bound on ``sigma(S)`` from validation coverage.

    ``coverage`` is the number of validation (``R2``) RR sets hit by the
    solution, ``num_sets`` the validation-collection size and ``a`` the
    union-bound-adjusted log term ``ln(3 * i_max / delta)``.
    """
    if num_sets == 0:
        return 0.0
    inner = math.sqrt(coverage + 2.0 * a / 9.0) - math.sqrt(a / 2.0)
    return (inner * inner - a / 18.0) * n / num_sets


def opim_opt_upper_bound(coverage: int, num_sets: int, n: int, a: float) -> float:
    """OPIM-C's martingale upper bound on OPT from the greedy coverage.

    The greedy coverage on the selection collection ``R1`` is inflated by
    ``1 / (1 - 1/e)`` before the concentration bound is applied.
    """
    if num_sets == 0:
        return float(n)
    base = coverage / (1.0 - 1.0 / math.e)
    inner = math.sqrt(base + a / 2.0) + math.sqrt(a / 2.0)
    return inner * inner * n / num_sets
