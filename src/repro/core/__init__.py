"""Core influence-maximization algorithms: bounds, IMM, DIIMM, SUBSIM, OPIM-C."""

from .bounds import (
    ImmParameters,
    alpha_term,
    beta_term,
    lambda_prime,
    lambda_star,
    log_binomial,
    solve_delta_prime,
)
from .diimm import diimm
from .dopimc import distributed_opimc
from .dssa import distributed_ssa
from .dsubsim import distributed_subsim
from .imm import imm
from .result import IMResult

__all__ = [
    "ImmParameters",
    "log_binomial",
    "lambda_prime",
    "lambda_star",
    "alpha_term",
    "beta_term",
    "solve_delta_prime",
    "imm",
    "diimm",
    "distributed_subsim",
    "distributed_opimc",
    "distributed_ssa",
    "IMResult",
]
