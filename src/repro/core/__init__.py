"""Core influence-maximization algorithms: bounds, the round driver, IMM,
DIIMM, SUBSIM, SSA, OPIM-C."""

from .bounds import (
    ImmParameters,
    alpha_term,
    beta_term,
    lambda_prime,
    lambda_star,
    log_binomial,
    opim_opt_upper_bound,
    opim_spread_lower_bound,
    solve_delta_prime,
)
from .checkpoint import CheckpointManager, DriverSnapshot
from .config import BACKENDS, RunConfig
from .diimm import diimm, diimm_from_config
from .dopimc import distributed_opimc, distributed_opimc_from_config
from .driver import (
    DriverRun,
    ImmScheduleRule,
    OpimStoppingRule,
    RoundDriver,
    RoundPlan,
    StareStoppingRule,
    StoppingRule,
    SubsimScheduleRule,
)
from .dssa import distributed_ssa, distributed_ssa_from_config
from .dsubsim import distributed_subsim, distributed_subsim_from_config
from .imm import imm, imm_from_config
from .result import IMResult

__all__ = [
    "ImmParameters",
    "log_binomial",
    "lambda_prime",
    "lambda_star",
    "alpha_term",
    "beta_term",
    "solve_delta_prime",
    "opim_spread_lower_bound",
    "opim_opt_upper_bound",
    "RoundDriver",
    "RoundPlan",
    "StoppingRule",
    "ImmScheduleRule",
    "SubsimScheduleRule",
    "StareStoppingRule",
    "OpimStoppingRule",
    "DriverRun",
    "CheckpointManager",
    "DriverSnapshot",
    "RunConfig",
    "BACKENDS",
    "imm",
    "imm_from_config",
    "diimm",
    "diimm_from_config",
    "distributed_subsim",
    "distributed_subsim_from_config",
    "distributed_opimc",
    "distributed_opimc_from_config",
    "distributed_ssa",
    "distributed_ssa_from_config",
    "IMResult",
]
