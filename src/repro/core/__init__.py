"""Core influence-maximization algorithms: bounds, the round driver, IMM,
DIIMM, SUBSIM, SSA, OPIM-C."""

from .bounds import (
    ImmParameters,
    alpha_term,
    beta_term,
    lambda_prime,
    lambda_star,
    log_binomial,
    opim_opt_upper_bound,
    opim_spread_lower_bound,
    solve_delta_prime,
)
from .checkpoint import CheckpointManager, DriverSnapshot
from .diimm import diimm
from .dopimc import distributed_opimc
from .driver import (
    DriverRun,
    ImmScheduleRule,
    OpimStoppingRule,
    RoundDriver,
    RoundPlan,
    StareStoppingRule,
    StoppingRule,
    SubsimScheduleRule,
)
from .dssa import distributed_ssa
from .dsubsim import distributed_subsim
from .imm import imm
from .result import IMResult

__all__ = [
    "ImmParameters",
    "log_binomial",
    "lambda_prime",
    "lambda_star",
    "alpha_term",
    "beta_term",
    "solve_delta_prime",
    "opim_spread_lower_bound",
    "opim_opt_upper_bound",
    "RoundDriver",
    "RoundPlan",
    "StoppingRule",
    "ImmScheduleRule",
    "SubsimScheduleRule",
    "StareStoppingRule",
    "OpimStoppingRule",
    "DriverRun",
    "CheckpointManager",
    "DriverSnapshot",
    "imm",
    "diimm",
    "distributed_subsim",
    "distributed_opimc",
    "distributed_ssa",
    "IMResult",
]
