"""The RoundDriver: one adaptive sampling loop for every RIS algorithm.

Every algorithm in this package — IMM, DIIMM, D-SSA, D-OPIM-C, D-SUBSIM —
is the *same* loop with a different stopping policy::

    repeat:
        generate RR sets up to the round's targets      (distributed RIS)
        fold the new sets into the coverage counts      (incremental)
        select a candidate seed set                     (NEWGREEDI / greedy)
        ask the stopping rule: certified?               (policy-specific)
    until the rule says stop

Previously each entry point carried a private copy of that loop; this
module hoists it into :class:`RoundDriver` and turns the policies into
:class:`StoppingRule` objects:

* :class:`ImmScheduleRule` — IMM's precomputed lower-bound search plus
  final sampling (paper Algorithm 2);
* :class:`SubsimScheduleRule` — the same schedule under SUBSIM's sampler
  (the paper's Fig 7 configuration);
* :class:`StareStoppingRule` — SSA's stop-and-stare comparison against an
  independent verification collection;
* :class:`OpimStoppingRule` — OPIM-C's martingale lower/upper-bound
  certificate.

The driver owns a persistent
:class:`~repro.coverage.state.CoverageState` per tracked collection and
updates it *incrementally* from each wave's sparse ``(node, count)``
deltas — the Section III-C traffic optimisation DIIMM already used, now
applied to all four distributed algorithms and the selection path (D-SSA
and D-OPIM-C previously re-aggregated their full collections before
every selection).  Every phase a round issues is annotated with the
round index and rule name in the run metrics
(:meth:`RunMetrics.annotated <repro.cluster.metrics.RunMetrics.annotated>`),
so ``summarize_rounds`` can attribute time and traffic per round.

Checkpoint/resume: give the driver a
:class:`~repro.core.checkpoint.CheckpointManager` and it snapshots the
full loop state — collections, coverage counts, RNG streams, rule state
and position — after every round it decides to continue past.  A crashed
run resumed from the latest snapshot deterministically re-executes the
interrupted round and finishes with the identical seed set.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from ..cluster.executor import (
    Executor,
    GatherPhase,
    GeneratePhase,
    MapPhase,
    MasterPhase,
)
from ..cluster.machine import Machine
from ..coverage.greedy import GreedyResult, greedy_max_coverage
from ..coverage.newgreedi import newgreedi
from ..coverage.sketch import SketchCoverageState, sketch_lazy_greedy
from ..coverage.state import CoverageState
from .bounds import ImmParameters, opim_opt_upper_bound, opim_spread_lower_bound

__all__ = [
    "RoundPlan",
    "StoppingRule",
    "ImmScheduleRule",
    "SubsimScheduleRule",
    "StareStoppingRule",
    "OpimStoppingRule",
    "ErrorAdaptiveRule",
    "DriverRun",
    "RoundDriver",
    "SELECTION_MODES",
]

#: Bytes for one scalar (coverage integer) in a gather.
SCALAR_BYTES = 8

#: How the driver runs seed selection each round.
SELECTION_MODES = ("newgreedi", "central")


@dataclass(frozen=True)
class RoundPlan:
    """One round's worth of work, as prescribed by a stopping rule.

    ``targets`` maps each collection key to the *total* number of RR sets
    it must reach this round (growth, not increment — re-running a round
    after a crash generates only what is still missing).
    """

    label: str
    targets: Mapping[str, int]


class StoppingRule(ABC):
    """Policy half of the adaptive loop: scheduling and termination.

    A rule owns the algorithm-specific decisions — how many RR sets the
    next round needs, which collections exist, and whether the current
    selection is good enough to stop — while the
    :class:`RoundDriver` owns the mechanics (generation, incremental
    coverage maintenance, selection, metering, checkpointing).

    Contract: the driver alternates ``plan = rule.next_round()`` and
    ``stop = rule.check(driver, selection, plan)`` until ``check``
    returns ``True``.  Rules carry their results (lower bounds, spread
    estimates, round counts) as attributes the entry points read after
    the run, and must round-trip through ``state_dict`` /
    ``load_state_dict`` for checkpointing.
    """

    #: Rule identifier, stamped on every phase record of the run.
    name: str = "abstract"
    #: Collection keys this rule samples into, in generation order.
    collection_keys: Tuple[str, ...] = ()
    #: The key seed selection runs on (its coverage state is maintained).
    selection_key: str = ""

    @abstractmethod
    def next_round(self) -> RoundPlan:
        """Advance to the next round and return its targets."""

    @abstractmethod
    def check(self, driver: "RoundDriver", selection: GreedyResult, plan: RoundPlan) -> bool:
        """Inspect the round's selection; return ``True`` to stop.

        Rules may issue further phases through the driver (e.g. a
        verification-coverage gather via :meth:`RoundDriver.coverage_of`);
        those land inside the same round annotation.
        """

    @abstractmethod
    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of the rule's mutable state."""

    @abstractmethod
    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot."""


class ImmScheduleRule(StoppingRule):
    """IMM's sampling schedule (Algorithm 2): search rounds, then final.

    Search round ``t`` targets ``theta_t = lambda' / x`` RR sets for the
    OPT guess ``x = n / 2^t`` and accepts
    ``LB = n * F_R(S_t) / (1 + eps')`` once the estimate clears
    ``(1 + eps') * x``; the final round grows the collection to
    ``lambda* / LB`` and its selection is the answer.
    """

    name = "imm-schedule"
    collection_keys = ("main",)
    selection_key = "main"

    def __init__(self, params: ImmParameters) -> None:
        self.params = params
        self.t = 0
        self.final_pending = False
        self.lower_bound = 1.0
        self.search_rounds = 0

    def next_round(self) -> RoundPlan:
        if self.final_pending:
            return RoundPlan(
                "final", {"main": self.params.theta_final(self.lower_bound)}
            )
        self.t += 1
        return RoundPlan(
            f"search-{self.t}", {"main": self.params.theta_for_round(self.t)}
        )

    def check(self, driver: "RoundDriver", selection: GreedyResult, plan: RoundPlan) -> bool:
        if self.final_pending:
            return True
        n = self.params.n
        self.search_rounds = self.t
        x = n / (2.0**self.t)
        if n * selection.fraction >= (1.0 + self.params.eps_prime) * x:
            self.lower_bound = n * selection.fraction / (1.0 + self.params.eps_prime)
            self.final_pending = True
        elif self.t >= self.params.max_search_rounds:
            # Search exhausted without certification: fall through to the
            # final round with the trivial bound, exactly as Algorithm 2's
            # for-loop does.
            self.final_pending = True
        return False

    def state_dict(self) -> Dict[str, Any]:
        return {
            "t": self.t,
            "final_pending": self.final_pending,
            "lower_bound": self.lower_bound,
            "search_rounds": self.search_rounds,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.t = int(state["t"])
        self.final_pending = bool(state["final_pending"])
        self.lower_bound = float(state["lower_bound"])
        self.search_rounds = int(state["search_rounds"])


class SubsimScheduleRule(ImmScheduleRule):
    """IMM's schedule driven by SUBSIM's subset-sampling generator.

    SUBSIM changes how an RR set is *drawn*, not how many are needed, so
    the rule is the IMM schedule under a different name — the name is
    what round annotations and checkpoints record.
    """

    name = "subsim-schedule"


class StareStoppingRule(StoppingRule):
    """SSA's stop-and-stare check over selection/verification collections.

    Each round greedy-selects on ``select`` and re-estimates the
    candidate's spread on the independent ``verify`` collection; the loop
    stops once the estimates agree within ``(1 + eps_1)`` and the
    candidate's coverage clears the minimum-support threshold, or the
    doubling hits IMM's worst-case cap ``theta_max``.
    """

    name = "stop-and-stare"
    collection_keys = ("select", "verify")
    selection_key = "select"

    def __init__(
        self,
        n: int,
        eps_1: float,
        min_coverage: float,
        theta_initial: int,
        theta_max: int,
    ) -> None:
        self.n = n
        self.eps_1 = eps_1
        self.min_coverage = min_coverage
        self.theta_max = theta_max
        self.theta = min(theta_initial, theta_max)
        self.rounds = 0
        self.verify_estimate = 0.0

    def next_round(self) -> RoundPlan:
        self.rounds += 1
        return RoundPlan(
            f"round-{self.rounds}",
            {"select": self.theta, "verify": self.theta},
        )

    def check(self, driver: "RoundDriver", selection: GreedyResult, plan: RoundPlan) -> bool:
        select_sets = driver.total_sets("select")
        select_estimate = self.n * selection.coverage / select_sets
        verify_coverage = driver.coverage_of(
            "verify", selection.seeds, f"{plan.label}/stare"
        )
        verify_sets = driver.total_sets("verify")
        self.verify_estimate = self.n * verify_coverage / verify_sets

        consistent = self.verify_estimate >= select_estimate / (1.0 + self.eps_1)
        supported = selection.coverage >= self.min_coverage
        if (consistent and supported) or self.theta >= self.theta_max:
            return True
        self.theta = min(self.theta * 2, self.theta_max)
        return False

    def state_dict(self) -> Dict[str, Any]:
        return {
            "theta": self.theta,
            "rounds": self.rounds,
            "verify_estimate": self.verify_estimate,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.theta = int(state["theta"])
        self.rounds = int(state["rounds"])
        self.verify_estimate = float(state["verify_estimate"])


class OpimStoppingRule(StoppingRule):
    """OPIM-C's certificate check over the ``R1``/``R2`` collections.

    Each round doubles both collections, selects on ``R1``, validates on
    ``R2``, and stops once the martingale lower bound on ``sigma(S)``
    over the upper bound on OPT certifies a
    ``(1 - 1/e - eps)``-approximation — or the round budget ``i_max``
    (which the union-bound term ``a`` was sized for) is spent.
    """

    name = "opim-c"
    collection_keys = ("R1", "R2")
    selection_key = "R1"

    def __init__(
        self,
        n: int,
        eps: float,
        theta_initial: int,
        i_max: int,
        a: float,
    ) -> None:
        self.n = n
        self.eps = eps
        self.i_max = i_max
        self.a = a
        self.theta = theta_initial
        self.rounds = 0
        self.certified_ratio = 0.0
        self.estimated_spread = 0.0

    def next_round(self) -> RoundPlan:
        self.rounds += 1
        return RoundPlan(
            f"round-{self.rounds}", {"R1": self.theta, "R2": self.theta}
        )

    def check(self, driver: "RoundDriver", selection: GreedyResult, plan: RoundPlan) -> bool:
        validation_coverage = driver.coverage_of(
            "R2", selection.seeds, f"{plan.label}/validate"
        )
        r1_sets = driver.total_sets("R1")
        r2_sets = driver.total_sets("R2")
        self.estimated_spread = (
            self.n * validation_coverage / r2_sets if r2_sets else 0.0
        )
        sigma_low = opim_spread_lower_bound(validation_coverage, r2_sets, self.n, self.a)
        opt_high = opim_opt_upper_bound(selection.coverage, r1_sets, self.n, self.a)
        self.certified_ratio = sigma_low / opt_high if opt_high > 0 else 0.0
        if self.certified_ratio >= 1.0 - 1.0 / math.e - self.eps:
            return True
        if self.rounds >= self.i_max:
            return True
        self.theta *= 2
        return False

    def state_dict(self) -> Dict[str, Any]:
        return {
            "theta": self.theta,
            "rounds": self.rounds,
            "certified_ratio": self.certified_ratio,
            "estimated_spread": self.estimated_spread,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.theta = int(state["theta"])
        self.rounds = int(state["rounds"])
        self.certified_ratio = float(state["certified_ratio"])
        self.estimated_spread = float(state["estimated_spread"])


class ErrorAdaptiveRule(StoppingRule):
    """Sample until the *measured* relative error satisfies eps.

    The IMM schedule sizes theta for the worst case — ``lambda* / LB``
    with union-bound terms over every candidate seed set — so easy
    instances (high spread, generous eps) pay for sets they never
    needed.  Following the count-distinct-sketch IM line of work
    (Göktürk & Kaya, arXiv:2105.04023), this rule doubles theta and
    stops as soon as the selection's *achieved* error budget

        eps_hat = sqrt(3 ln(2/delta) / coverage) + sketch_error

    drops to eps: the first term is the multiplicative-Chernoff
    deviation of the spread estimate at the observed coverage support,
    the second the backend's register noise floor (``1.04 / sqrt(m)``
    for ``backend="sketch"``, 0 for the exact stores).  Termination is
    unconditional — theta is capped at ``theta_max``, the IMM
    worst-case budget the schedule would have spent anyway.
    """

    name = "error-adaptive"
    collection_keys = ("main",)
    selection_key = "main"

    def __init__(
        self,
        n: int,
        eps: float,
        delta: float,
        theta_initial: int,
        theta_max: int,
        sketch_rel_error: float = 0.0,
    ) -> None:
        if not 0.0 < eps < 1.0:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        if theta_initial < 1 or theta_max < 1:
            raise ValueError("theta_initial and theta_max must be >= 1")
        if sketch_rel_error >= eps:
            raise ValueError(
                f"sketch_rel_error={sketch_rel_error:.4f} already exceeds "
                f"eps={eps}; the error target is unreachable at this "
                "sketch precision"
            )
        self.n = n
        self.eps = eps
        self.delta = delta
        self.theta_max = theta_max
        self.sketch_rel_error = sketch_rel_error
        self.theta = min(theta_initial, theta_max)
        self.rounds = 0
        #: Last measured total relative error (sampling + sketch terms).
        self.measured_error = float("inf")
        self.sampling_error = float("inf")
        #: Spread lower bound implied by the last selection (entry points
        #: report it where the IMM schedule reports its LB).
        self.lower_bound = 1.0
        self.search_rounds = 0

    def next_round(self) -> RoundPlan:
        self.rounds += 1
        return RoundPlan(f"adaptive-{self.rounds}", {"main": self.theta})

    def check(self, driver: "RoundDriver", selection: GreedyResult, plan: RoundPlan) -> bool:
        coverage = float(selection.coverage)
        self.search_rounds = self.rounds
        self.sampling_error = math.sqrt(
            3.0 * math.log(2.0 / self.delta) / max(coverage, 1.0)
        )
        self.measured_error = self.sampling_error + self.sketch_rel_error
        self.lower_bound = max(
            1.0, self.n * selection.fraction / (1.0 + self.measured_error)
        )
        if self.measured_error <= self.eps:
            return True
        if self.theta >= self.theta_max:
            return True
        self.theta = min(self.theta * 2, self.theta_max)
        return False

    def state_dict(self) -> Dict[str, Any]:
        return {
            "theta": self.theta,
            "rounds": self.rounds,
            "measured_error": self.measured_error,
            "sampling_error": self.sampling_error,
            "lower_bound": self.lower_bound,
            "search_rounds": self.search_rounds,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.theta = int(state["theta"])
        self.rounds = int(state["rounds"])
        self.measured_error = float(state["measured_error"])
        self.sampling_error = float(state["sampling_error"])
        self.lower_bound = float(state["lower_bound"])
        self.search_rounds = int(state["search_rounds"])


@dataclass
class DriverRun:
    """Outcome of a :meth:`RoundDriver.run`."""

    #: The stopping round's selection — the algorithm's answer.
    selection: GreedyResult
    #: Driver rounds executed in this process (excludes checkpointed ones).
    rounds_executed: int
    #: Index of the round the run stopped in (counts checkpointed rounds).
    final_round: int
    #: Round index the run resumed after, or ``None`` for a fresh run.
    resumed_from: int | None = None


class RoundDriver:
    """Mechanism half of the adaptive loop: generate, ingest, select.

    Parameters
    ----------
    executor:
        The :class:`~repro.cluster.executor.Executor` all phases run
        through (simulated or multiprocessing — the loop is identical).
    rule:
        The :class:`StoppingRule` providing targets and termination.
    k:
        Seed-set size.
    stores:
        Per-machine RR stores for each of the rule's collection keys,
        ``{key: [store_machine_0, ...]}``.  The driver owns their growth;
        machines only contribute RNG streams.
    model, method:
        Sampler selection for the generation phases.
    backend:
        Coverage backend (``"flat"`` / ``"reference"`` / ``"sketch"``).
        With ``"sketch"`` the driver maintains a
        :class:`~repro.coverage.sketch.SketchCoverageState` (register
        deltas through the same wave protocol) and runs selection
        master-side over the merged bank regardless of ``selection`` —
        the bank *is* the communicated state, so no per-selection
        element exchange remains.  Warm pools and checkpointing are
        refused (the bank is lossy and its journal is pruned).
    selection:
        ``"newgreedi"`` (default) runs the element-distributed protocol
        of Algorithm 1; ``"central"`` runs the centralized lazy greedy in
        a single metered compute phase — the single-machine baselines'
        mode, which issues no communication phases at all.
    checkpoint:
        Optional :class:`~repro.core.checkpoint.CheckpointManager`.  When
        set, the driver snapshots the loop state after every round whose
        check decides to *continue* (the stopping round produces the
        result, so there is nothing left to resume).
    resume:
        Restore the latest checkpoint before looping.  Raises
        :class:`FileNotFoundError` if the checkpoint directory holds no
        usable snapshot.
    pool:
        Optional :class:`~repro.core.pool.SamplePool`.  When set, the
        driver serves the query *warm*: ``stores`` must be ``None`` (the
        driver reads per-query prefix views of the pool's shared
        collections), "generate until the rule is satisfied" becomes
        "top the pool up until the rule is satisfied", and the coverage
        state is forked copy-on-write from the pool's donated snapshots.
        The executor must be the pool's, and checkpointing is refused.
    """

    def __init__(
        self,
        executor: Executor,
        rule: StoppingRule,
        k: int,
        stores: Dict[str, List] | None = None,
        model: str = "ic",
        method: str = "bfs",
        backend: str = "flat",
        selection: str = "newgreedi",
        checkpoint=None,
        resume: bool = False,
        pool=None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if selection not in SELECTION_MODES:
            raise ValueError(
                f"selection must be one of {SELECTION_MODES}, got {selection!r}"
            )
        if pool is not None:
            if stores is not None:
                raise ValueError("pass either stores or pool, not both")
            if checkpoint is not None or resume:
                raise ValueError(
                    "checkpointing is not supported on warm-pool queries: the "
                    "pool outlives the query and snapshots would alias it"
                )
            if executor is not pool.executor:
                raise ValueError("a pooled driver must run on the pool's executor")
            stores = pool.view_stores(rule.collection_keys)
        if stores is None:
            raise ValueError("stores is required when no pool is given")
        if set(stores) != set(rule.collection_keys):
            raise ValueError(
                f"stores keys {sorted(stores)} do not match the rule's "
                f"collection keys {sorted(rule.collection_keys)}"
            )
        for key, per_machine in stores.items():
            if len(per_machine) != executor.num_machines:
                raise ValueError(
                    f"collection {key!r} has {len(per_machine)} stores for "
                    f"{executor.num_machines} machines"
                )
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint manager")
        if selection == "central" and executor.num_machines != 1:
            raise ValueError(
                "central selection is the single-machine baselines' mode; "
                f"got {executor.num_machines} machines"
            )
        if backend == "sketch":
            if pool is not None:
                raise ValueError(
                    "backend='sketch' cannot serve warm-pool queries: pools "
                    "window exact flat stores to per-query prefixes, which "
                    "a lossy register bank cannot provide"
                )
            if checkpoint is not None or resume:
                raise ValueError(
                    "checkpointing is not supported with backend='sketch': "
                    "the register journal is pruned after every ingest, so "
                    "round snapshots cannot be restored"
                )
        self.executor = executor
        self.cluster = executor.cluster
        self.rule = rule
        self.k = k
        self.stores = stores
        self.model = model
        self.method = method
        self.backend = backend
        self.selection_mode = selection
        self.checkpoint = checkpoint
        self.resume = resume
        self.pool = pool
        # Per-machine cumulative generation targets per collection.  Each
        # round's *total* target is split over machines exactly as the
        # historical per-wave split_count did, but tracked cumulatively:
        # machine i's quota after any round is a pure function of the
        # round targets, which is what lets a warm pool serve the same
        # prefix a cold run would have generated.
        self._needed: Dict[str, List[int]] = {
            key: [store.num_sets for store in per_machine]
            for key, per_machine in stores.items()
        }
        # Lazily replaced by a pool-donated fork at the first ingest.
        self._coverage_forked = pool is None
        num_nodes = stores[rule.selection_key][0].num_nodes
        self.n = num_nodes
        # Only the selection collection needs master-side counts; the
        # verification collections are probed with full coverage_of scans.
        if backend == "sketch":
            self.coverage = SketchCoverageState(
                num_nodes,
                executor.num_machines,
                precision=stores[rule.selection_key][0].precision,
            )
        else:
            self.coverage = CoverageState(num_nodes, executor.num_machines)

    # ------------------------------------------------------------------
    # Helpers (also the rules' view of the run)
    # ------------------------------------------------------------------
    def total_sets(self, key: str) -> int:
        """Total RR sets across machines in collection ``key``."""
        return sum(store.num_sets for store in self.stores[key])

    def total_size(self, key: str) -> int:
        """Total RR-set size (node slots) in collection ``key``."""
        return sum(store.total_size for store in self.stores[key])

    def total_edges_examined(self, key: str) -> int:
        """Total edges examined generating collection ``key``."""
        return sum(store.total_edges_examined for store in self.stores[key])

    def coverage_of(self, key: str, seeds: Sequence[int], label: str) -> int:
        """Total RR sets of collection ``key`` hit by ``seeds``.

        One metered map (each machine scans its own store) plus a gather
        of one scalar per machine — the validation/stare probe of D-SSA
        and D-OPIM-C.
        """
        stores = self.stores[key]

        def scan(machine: Machine) -> int:
            return stores[machine.machine_id].coverage_of(seeds)

        per_machine = self.executor.run_phase(MapPhase(label, scan)).results
        self.executor.run_phase(
            GatherPhase(label, (SCALAR_BYTES,) * self.executor.num_machines)
        )
        return sum(per_machine)

    # ------------------------------------------------------------------
    # Round mechanics
    # ------------------------------------------------------------------
    def _generate_label(self, round_label: str, key: str) -> str:
        if len(self.rule.collection_keys) == 1:
            return f"{round_label}/generate"
        return f"{round_label}/generate-{key}"

    def _counts_label(self, round_label: str, key: str) -> str:
        if len(self.rule.collection_keys) == 1:
            return f"{round_label}/counts"
        return f"{round_label}/counts-{key}"

    def _grow(self, key: str, target: int, round_label: str) -> None:
        """Raise collection ``key`` to ``target`` total RR sets.

        The round's increment is split over machines with the cluster's
        ``split_count`` and folded into the per-machine cumulative quotas
        ``self._needed[key]``.  Cold mode then generates each machine's
        shortfall — identical, machine for machine, to the historical
        per-wave ``split_count(missing)`` — while pool mode tops the
        shared collections up to the quotas and advances this query's
        prefix views to them.
        """
        needed = self._needed[key]
        total_needed = sum(needed)
        if target > total_needed:
            for idx, extra in enumerate(self.cluster.split_count(target - total_needed)):
                needed[idx] += extra
        if self.pool is not None:
            self.pool.ensure(
                key, needed, label=self._generate_label(round_label, key)
            )
            for view, limit in zip(self.stores[key], needed):
                view.set_limit(limit)
            return
        counts = [
            max(0, quota - store.num_sets)
            for quota, store in zip(needed, self.stores[key])
        ]
        if not any(counts):
            return
        self.executor.run_phase(
            GeneratePhase(
                self._generate_label(round_label, key),
                counts=tuple(counts),
                targets=tuple(self.stores[key]),
                model=self.model,
                method=self.method,
            )
        )

    def _ingest(self, round_label: str) -> None:
        key = self.rule.selection_key
        if not self._coverage_forked:
            # First ingest of a pooled query: adopt the best donated
            # coverage snapshot covered by this round's prefix, so only
            # the sets beyond its watermarks need re-aggregating.
            self._coverage_forked = True
            limits = [store.num_sets for store in self.stores[key]]
            forked = self.pool.fork_coverage(key, limits)
            if forked is not None:
                self.coverage = forked
        self.coverage.ingest(
            self.executor,
            self.stores[key],
            label=self._counts_label(round_label, key),
            communicate=self.selection_mode != "central",
        )

    def _record_memory(self) -> None:
        """Sample resident store/coverage bytes into the run's peaks."""
        rr_store = 0
        for per_machine in self.stores.values():
            for store in per_machine:
                nbytes = getattr(store, "nbytes", None)
                if callable(nbytes):
                    rr_store += int(nbytes())
        self.executor.metrics.record_memory(
            rr_store_nbytes=rr_store, coverage_nbytes=int(self.coverage.nbytes())
        )

    def _select(self, round_label: str) -> GreedyResult:
        key = self.rule.selection_key
        if self.backend == "sketch":
            # The register deltas already travelled in the ingest gather,
            # so selection is a pure master-side computation over the
            # merged bank — no further communication, and bit-identical
            # across executors because the bank is (max-merge is
            # commutative and idempotent).
            def sketch_select() -> GreedyResult:
                return sketch_lazy_greedy(
                    self.coverage.bank(), self.k, self.total_sets(key)
                )

            return self.executor.run_phase(
                MasterPhase(f"{round_label}/select-sketch", sketch_select)
            ).results
        if self.selection_mode == "newgreedi":
            return newgreedi(
                self.executor,
                self.k,
                stores=self.stores[key],
                label=f"{round_label}/newgreedi",
                backend=self.backend,
                coverage_state=self.coverage,
            )

        stores = self.stores[key]
        counts = self.coverage.selection_counts()

        def central_greedy(machine: Machine) -> GreedyResult:
            return greedy_max_coverage(
                stores, self.k, backend=self.backend, initial_counts=counts
            )

        results = self.executor.run_phase(
            MapPhase(f"{round_label}/select", central_greedy)
        ).results
        return results[0]

    # ------------------------------------------------------------------
    # Checkpoint plumbing
    # ------------------------------------------------------------------
    def _rng_states(self) -> List[Dict[str, Any]]:
        return [m.rng.bit_generator.state for m in self.executor.machines]

    def _save_checkpoint(self, round_index: int) -> None:
        self.checkpoint.save(
            round_index=round_index,
            rule_name=self.rule.name,
            rule_state=self.rule.state_dict(),
            rng_states=self._rng_states(),
            coverage_state=self.coverage.state_dict(),
            stores=self.stores,
            recovery=self.executor.metrics.recovery_state(),
        )

    def _restore_checkpoint(self) -> int:
        snapshot = self.checkpoint.load_latest(
            rule_name=self.rule.name,
            collection_keys=self.rule.collection_keys,
            num_machines=self.executor.num_machines,
            backend=self.backend,
        )
        self.rule.load_state_dict(snapshot.rule_state)
        for machine, state in zip(self.executor.machines, snapshot.rng_states):
            machine.set_rng_state(state)
        self.coverage.load_state_dict(snapshot.coverage_state)
        for key, per_machine in snapshot.stores.items():
            for idx, store in enumerate(per_machine):
                self.stores[key][idx] = store
        # Checkpoints are taken at round boundaries, where every machine
        # sits exactly at its cumulative quota.
        for key, per_machine in self.stores.items():
            self._needed[key] = [store.num_sets for store in per_machine]
        # Recovery events from before the restart stay visible in the
        # resumed run's metrics; the resumed rounds append after them.
        self.executor.metrics.restore_recovery(snapshot.recovery)
        return snapshot.round_index

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run(self) -> DriverRun:
        """Execute rounds until the rule stops; return the final selection."""
        resumed_from = None
        round_index = 1
        if self.resume:
            resumed_from = self._restore_checkpoint()
            round_index = resumed_from + 1

        metrics = self.executor.metrics
        rounds_executed = 0
        while True:
            plan = self.rule.next_round()
            with metrics.annotated(round_index=round_index, rule=self.rule.name):
                for key in self.rule.collection_keys:
                    self._grow(key, int(plan.targets[key]), plan.label)
                self._ingest(plan.label)
                self._record_memory()
                selection = self._select(plan.label)
                stop = self.rule.check(self, selection, plan)
            rounds_executed += 1
            if stop:
                if self.pool is not None:
                    # Hand the final counts back for later queries to
                    # fork; this driver never touches them again.
                    self.pool.donate_coverage(self.rule.selection_key, self.coverage)
                return DriverRun(
                    selection=selection,
                    rounds_executed=rounds_executed,
                    final_round=round_index,
                    resumed_from=resumed_from,
                )
            if self.checkpoint is not None:
                self._save_checkpoint(round_index)
            round_index += 1
