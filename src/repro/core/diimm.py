"""DIIMM: distributed IMM (paper Algorithm 2).

DIIMM is IMM with both phases distributed over ``l`` machines:

* **Distributed RIS** — every generation wave of ``theta_t - theta_{t-1}``
  RR sets is split evenly; each machine extends its private collection
  ``R_i`` with its own RNG stream.  Corollary 1 guarantees the per-machine
  workload concentrates around its mean, so the wave's parallel time is
  close to ``1/l`` of the sequential time.
* **NEWGREEDI seed selection** — every greedy call runs the
  element-distributed protocol of Algorithm 1 and returns *exactly* the
  centralized greedy solution (Lemma 2), so DIIMM inherits IMM's
  ``(1 - 1/e - eps)`` guarantee (Theorem 1) unchanged.

The loop itself — generate, ingest sparse coverage deltas, select, check
— is the shared :class:`~repro.core.driver.RoundDriver` running the
:class:`~repro.core.driver.ImmScheduleRule`; this module only assembles
the pieces and reads the result.
"""

from __future__ import annotations

from ..cluster.cluster import SimulatedCluster
from ..cluster.executor import executor_scope, make_executor
from ..cluster.faults import FaultPlan, RetryPolicy
from ..cluster.network import NetworkModel
from ..coverage.sketch import hll_relative_error
from ..graphs.digraph import DirectedGraph
from ..ris import make_collection
from .bounds import ImmParameters
from .checkpoint import manager_for
from .config import RunConfig
from .driver import (
    ErrorAdaptiveRule,
    ImmScheduleRule,
    RoundDriver,
    SubsimScheduleRule,
)
from .result import IMResult


def make_schedule_rule(config: RunConfig, params: ImmParameters, delta: float):
    """The stopping rule a :class:`RunConfig` asks for.

    ``stopping="schedule"`` is the IMM/SUBSIM theta schedule;
    ``stopping="error-adaptive"`` doubles from ``theta_initial`` (or the
    schedule's first search round) until the measured error satisfies
    ``eps``, capped at the schedule's own worst-case final theta — so the
    adaptive run can never sample more than the schedule would have.
    """
    if config.stopping == "error-adaptive":
        theta_initial = (
            config.theta_initial
            if config.theta_initial is not None
            else params.theta_for_round(1)
        )
        sketch_error = (
            hll_relative_error(config.sketch_precision)
            if config.backend == "sketch"
            else 0.0
        )
        return ErrorAdaptiveRule(
            n=params.n,
            eps=config.eps,
            delta=delta,
            theta_initial=theta_initial,
            theta_max=params.theta_final(float(config.k)),
            sketch_rel_error=sketch_error,
        )
    rule_type = SubsimScheduleRule if config.method == "subsim" else ImmScheduleRule
    return rule_type(params)


__all__ = ["diimm", "diimm_from_config"]


def diimm(
    graph: DirectedGraph,
    k: int,
    num_machines: int,
    eps: float = 0.5,
    delta: float | None = None,
    model: str = "ic",
    method: str = "bfs",
    network: NetworkModel | None = None,
    seed: int = 0,
    algorithm_label: str = "DIIMM",
    backend: str = "flat",
    executor: str = "simulated",
    processes: int | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    faults: FaultPlan | str | None = None,
    retry: RetryPolicy | None = None,
) -> IMResult:
    """Run DIIMM on a simulated cluster of ``num_machines`` machines.

    This keyword signature is a thin shim over
    :class:`~repro.core.config.RunConfig` /
    :func:`diimm_from_config`; prefer :func:`repro.api.run` in new code.

    Parameters mirror :func:`repro.core.imm.imm` plus:

    num_machines:
        Number of worker machines ``l``.
    network:
        Cost model for master<->slave traffic; defaults to the
        shared-memory server profile.
    algorithm_label:
        Reported algorithm name (the SUBSIM wrapper overrides it).
    backend:
        Coverage backend: ``"flat"`` (default) keeps each machine's
        ``R_i`` in CSR arrays and selects seeds through the vectorized
        kernel; ``"reference"`` uses the dict-indexed store and loops
        (seeds are identical either way — Lemma 2 holds for both);
        ``"sketch"`` keeps per-node HyperLogLog register banks instead
        of set contents, trading exactness for ``O(n * 2**precision)``
        memory (see :mod:`repro.coverage.sketch`).
    executor:
        Execution backend for the phase plans: ``"simulated"``
        (sequential metered execution, the default) or
        ``"multiprocessing"`` (generation fanned out over OS processes).
        Seeds and collections are identical for a fixed random seed.
    processes:
        Worker-pool size for the multiprocessing executor; ignored by
        the simulated one.
    checkpoint_dir:
        When set, the driver snapshots the loop state there after every
        non-final round (collections, coverage counts, RNG streams, rule
        position) — see :mod:`repro.core.checkpoint`.
    resume:
        Restore the latest snapshot from ``checkpoint_dir`` and continue
        the run from there.  The resumed run ends in the identical seed
        set a fresh run would produce.
    faults, retry:
        Fault-injection plan and recovery policy for the executors (see
        :mod:`repro.cluster.faults`); the selected seeds are identical
        with or without them.

    Returns
    -------
    IMResult
        ``metrics`` carries the Fig 5-9 breakdown (generation /
        computation / communication, all simulated-parallel), with every
        phase annotated by its round index and stopping rule.
    """
    config = RunConfig(
        graph=graph,
        k=k,
        machines=num_machines,
        eps=eps,
        delta=delta,
        model=model,
        method=method,
        seed=seed,
        backend=backend,
        executor=executor,
        processes=processes,
        network=network,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        faults=faults,
        retry=retry,
    )
    return diimm_from_config(config, algorithm_label=algorithm_label)


def diimm_from_config(
    config: RunConfig,
    algorithm_label: str = "DIIMM",
    *,
    executor=None,
    pool=None,
) -> IMResult:
    """Run DIIMM from a validated :class:`~repro.core.config.RunConfig`.

    ``executor`` lends a pre-built executor (its worker pool,
    shared-memory graph, and RNG streams are reused and never closed or
    reseeded here).  ``pool`` serves the query warm from a
    :class:`~repro.core.pool.SamplePool`; the result is bit-identical to
    a cold run with the same config.
    """
    config.validate("diimm")
    graph, k = config.graph, config.k
    n = graph.num_nodes
    delta = 1.0 / n if config.delta is None else config.delta
    params = ImmParameters.compute(n, k, config.eps, delta)
    rule = make_schedule_rule(config, params, delta)

    def result(run, driver, metrics, executor_name: str) -> IMResult:
        return IMResult(
            seeds=run.selection.seeds,
            estimated_spread=n * run.selection.fraction,
            num_rr_sets=driver.total_sets("main"),
            total_rr_size=driver.total_size("main"),
            total_edges_examined=driver.total_edges_examined("main"),
            lower_bound=rule.lower_bound,
            search_rounds=rule.search_rounds,
            metrics=metrics,
            algorithm=algorithm_label,
            model=config.model,
            method=config.method,
            params={
                "k": k,
                "eps": config.eps,
                "delta": delta,
                "num_machines": config.machines,
                "executor": executor_name,
            },
        )

    if pool is not None:
        if executor is not None:
            raise ValueError("pass either executor or pool, not both")
        pool.check_config(config, machines=config.machines)
        with pool.query_metrics() as metrics:
            driver = RoundDriver(
                pool.executor,
                rule,
                k,
                model=config.model,
                method=config.method,
                backend="flat",
                pool=pool,
            )
            run = driver.run()
        return result(run, driver, metrics, pool.executor.name)

    owns_executor = executor is None
    if owns_executor:
        cluster = SimulatedCluster(
            config.machines, network=config.network, seed=config.seed
        )
        exec_ = make_executor(
            config.executor_spec(),
            cluster,
            graph=graph,
            faults=config.faults,
            retry=config.retry,
        )
    else:
        exec_ = executor
        cluster = exec_.cluster
        if cluster.num_machines != config.machines:
            raise ValueError(
                f"config asks for {config.machines} machines but the lent "
                f"executor has {cluster.num_machines}"
            )
    stores = {
        "main": [
            make_collection(
                n,
                config.backend,
                machine_id=machine_id,
                sketch_precision=config.sketch_precision,
            )
            for machine_id in range(config.machines)
        ]
    }
    checkpoint = manager_for(
        config.checkpoint_dir,
        algorithm=algorithm_label,
        n=n,
        k=k,
        eps=config.eps,
        delta=delta,
        seed=config.seed,
        num_machines=config.machines,
        model=config.model,
        method=config.method,
        backend=config.backend,
    )
    driver = RoundDriver(
        exec_,
        rule,
        k,
        stores,
        model=config.model,
        method=config.method,
        backend=config.backend,
        checkpoint=checkpoint,
        resume=config.resume,
    )
    with executor_scope(exec_, owned=owns_executor) as metrics:
        run = driver.run()
    return result(run, driver, metrics, exec_.name)
