"""DIIMM: distributed IMM (paper Algorithm 2).

DIIMM is IMM with both phases distributed over ``l`` machines:

* **Distributed RIS** — every generation wave of ``theta_t - theta_{t-1}``
  RR sets is split evenly; each machine extends its private collection
  ``R_i`` with its own RNG stream.  Corollary 1 guarantees the per-machine
  workload concentrates around its mean, so the wave's parallel time is
  close to ``1/l`` of the sequential time.
* **NEWGREEDI seed selection** — every greedy call runs the
  element-distributed protocol of Algorithm 1 and returns *exactly* the
  centralized greedy solution (Lemma 2), so DIIMM inherits IMM's
  ``(1 - 1/e - eps)`` guarantee (Theorem 1) unchanged.

The master maintains the aggregated coverage-count vector incrementally:
after each wave, machines respond with sparse ``(node, count)`` tuples over
their *newly generated* RR sets only — the traffic optimisation described
at the end of Section III-C.
"""

from __future__ import annotations

import numpy as np

from ..cluster.cluster import SimulatedCluster
from ..cluster.executor import GeneratePhase, make_executor
from ..cluster.network import NetworkModel
from ..coverage.newgreedi import gather_coverage_counts, newgreedi
from ..graphs.digraph import DirectedGraph
from .bounds import ImmParameters
from .result import IMResult

__all__ = ["diimm"]


def diimm(
    graph: DirectedGraph,
    k: int,
    num_machines: int,
    eps: float = 0.5,
    delta: float | None = None,
    model: str = "ic",
    method: str = "bfs",
    network: NetworkModel | None = None,
    seed: int = 0,
    algorithm_label: str = "DIIMM",
    backend: str = "flat",
    executor: str = "simulated",
    processes: int | None = None,
) -> IMResult:
    """Run DIIMM on a simulated cluster of ``num_machines`` machines.

    Parameters mirror :func:`repro.core.imm.imm` plus:

    num_machines:
        Number of worker machines ``l``.
    network:
        Cost model for master<->slave traffic; defaults to the
        shared-memory server profile.
    algorithm_label:
        Reported algorithm name (the SUBSIM wrapper overrides it).
    backend:
        Coverage backend: ``"flat"`` (default) keeps each machine's
        ``R_i`` in CSR arrays and selects seeds through the vectorized
        kernel; ``"reference"`` uses the dict-indexed store and loops.
        The selected seeds are identical either way (Lemma 2 holds for
        both).
    executor:
        Execution backend for the phase plans: ``"simulated"``
        (sequential metered execution, the default) or
        ``"multiprocessing"`` (generation fanned out over OS processes).
        Seeds and collections are identical for a fixed random seed.
    processes:
        Worker-pool size for the multiprocessing executor; ignored by
        the simulated one.

    Returns
    -------
    IMResult
        ``metrics`` carries the Fig 5-9 breakdown (generation /
        computation / communication, all simulated-parallel).
    """
    n = graph.num_nodes
    if delta is None:
        delta = 1.0 / n
    params = ImmParameters.compute(n, k, eps, delta)
    cluster = SimulatedCluster(num_machines, network=network, seed=seed)
    cluster.init_collections(n, backend=backend)
    exec_ = make_executor(executor, cluster, graph=graph, processes=processes)
    running_counts = np.zeros(n, dtype=np.int64)

    def total_sets() -> int:
        return sum(machine.collection.num_sets for machine in cluster.machines)

    def generate_to(target: int, label: str) -> None:
        """Grow the distributed collection to ``target`` RR sets in total."""
        nonlocal running_counts
        missing = target - total_sets()
        if missing <= 0:
            return
        previous_sizes = [machine.collection.num_sets for machine in cluster.machines]
        exec_.run_phase(
            GeneratePhase(
                f"{label}/generate",
                counts=tuple(cluster.split_count(missing)),
                model=model,
                method=method,
            )
        )
        # Incremental master-side counts: tuples over the new sets only.
        running_counts = running_counts + gather_coverage_counts(
            exec_,
            start_indices=previous_sizes,
            label=f"{label}/counts",
        )

    def select(label: str):
        return newgreedi(
            exec_,
            k,
            initial_counts=running_counts,
            label=f"{label}/newgreedi",
            backend=backend,
        )

    # Phase 1: distributed lower-bound search (Algorithm 2 lines 3-10).
    lower_bound = 1.0
    search_rounds = 0
    for t in range(1, params.max_search_rounds + 1):
        search_rounds = t
        x = n / (2.0**t)
        generate_to(params.theta_for_round(t), f"search-{t}")
        candidate = select(f"search-{t}")
        if n * candidate.fraction >= (1.0 + params.eps_prime) * x:
            lower_bound = n * candidate.fraction / (1.0 + params.eps_prime)
            break

    # Phase 2: final distributed sampling and selection (lines 11-13).
    generate_to(params.theta_final(lower_bound), "final")
    final = select("final")

    return IMResult(
        seeds=final.seeds,
        estimated_spread=n * final.fraction,
        num_rr_sets=total_sets(),
        total_rr_size=sum(m.collection.total_size for m in cluster.machines),
        total_edges_examined=sum(
            m.collection.total_edges_examined for m in cluster.machines
        ),
        lower_bound=lower_bound,
        search_rounds=search_rounds,
        metrics=cluster.metrics,
        algorithm=algorithm_label,
        model=model,
        method=method,
        params={
            "k": k,
            "eps": eps,
            "delta": delta,
            "num_machines": num_machines,
            "executor": exec_.name,
        },
    )
