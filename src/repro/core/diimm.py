"""DIIMM: distributed IMM (paper Algorithm 2).

DIIMM is IMM with both phases distributed over ``l`` machines:

* **Distributed RIS** — every generation wave of ``theta_t - theta_{t-1}``
  RR sets is split evenly; each machine extends its private collection
  ``R_i`` with its own RNG stream.  Corollary 1 guarantees the per-machine
  workload concentrates around its mean, so the wave's parallel time is
  close to ``1/l`` of the sequential time.
* **NEWGREEDI seed selection** — every greedy call runs the
  element-distributed protocol of Algorithm 1 and returns *exactly* the
  centralized greedy solution (Lemma 2), so DIIMM inherits IMM's
  ``(1 - 1/e - eps)`` guarantee (Theorem 1) unchanged.

The loop itself — generate, ingest sparse coverage deltas, select, check
— is the shared :class:`~repro.core.driver.RoundDriver` running the
:class:`~repro.core.driver.ImmScheduleRule`; this module only assembles
the pieces and reads the result.
"""

from __future__ import annotations

from ..cluster.cluster import SimulatedCluster
from ..cluster.executor import make_executor
from ..cluster.network import NetworkModel
from ..graphs.digraph import DirectedGraph
from ..ris import make_collection
from .bounds import ImmParameters
from .checkpoint import manager_for
from .driver import ImmScheduleRule, RoundDriver, SubsimScheduleRule
from .result import IMResult

__all__ = ["diimm"]


def diimm(
    graph: DirectedGraph,
    k: int,
    num_machines: int,
    eps: float = 0.5,
    delta: float | None = None,
    model: str = "ic",
    method: str = "bfs",
    network: NetworkModel | None = None,
    seed: int = 0,
    algorithm_label: str = "DIIMM",
    backend: str = "flat",
    executor: str = "simulated",
    processes: int | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> IMResult:
    """Run DIIMM on a simulated cluster of ``num_machines`` machines.

    Parameters mirror :func:`repro.core.imm.imm` plus:

    num_machines:
        Number of worker machines ``l``.
    network:
        Cost model for master<->slave traffic; defaults to the
        shared-memory server profile.
    algorithm_label:
        Reported algorithm name (the SUBSIM wrapper overrides it).
    backend:
        Coverage backend: ``"flat"`` (default) keeps each machine's
        ``R_i`` in CSR arrays and selects seeds through the vectorized
        kernel; ``"reference"`` uses the dict-indexed store and loops.
        The selected seeds are identical either way (Lemma 2 holds for
        both).
    executor:
        Execution backend for the phase plans: ``"simulated"``
        (sequential metered execution, the default) or
        ``"multiprocessing"`` (generation fanned out over OS processes).
        Seeds and collections are identical for a fixed random seed.
    processes:
        Worker-pool size for the multiprocessing executor; ignored by
        the simulated one.
    checkpoint_dir:
        When set, the driver snapshots the loop state there after every
        non-final round (collections, coverage counts, RNG streams, rule
        position) — see :mod:`repro.core.checkpoint`.
    resume:
        Restore the latest snapshot from ``checkpoint_dir`` and continue
        the run from there.  The resumed run ends in the identical seed
        set a fresh run would produce.

    Returns
    -------
    IMResult
        ``metrics`` carries the Fig 5-9 breakdown (generation /
        computation / communication, all simulated-parallel), with every
        phase annotated by its round index and stopping rule.
    """
    n = graph.num_nodes
    if delta is None:
        delta = 1.0 / n
    params = ImmParameters.compute(n, k, eps, delta)
    cluster = SimulatedCluster(num_machines, network=network, seed=seed)
    exec_ = make_executor(executor, cluster, graph=graph, processes=processes)
    rule_type = SubsimScheduleRule if method == "subsim" else ImmScheduleRule
    rule = rule_type(params)
    stores = {"main": [make_collection(n, backend) for _ in range(num_machines)]}
    checkpoint = manager_for(
        checkpoint_dir,
        algorithm=algorithm_label,
        n=n,
        k=k,
        eps=eps,
        delta=delta,
        seed=seed,
        num_machines=num_machines,
        model=model,
        method=method,
        backend=backend,
    )
    driver = RoundDriver(
        exec_,
        rule,
        k,
        stores,
        model=model,
        method=method,
        backend=backend,
        checkpoint=checkpoint,
        resume=resume,
    )
    run = driver.run()

    return IMResult(
        seeds=run.selection.seeds,
        estimated_spread=n * run.selection.fraction,
        num_rr_sets=driver.total_sets("main"),
        total_rr_size=driver.total_size("main"),
        total_edges_examined=driver.total_edges_examined("main"),
        lower_bound=rule.lower_bound,
        search_rounds=rule.search_rounds,
        metrics=cluster.metrics,
        algorithm=algorithm_label,
        model=model,
        method=method,
        params={
            "k": k,
            "eps": eps,
            "delta": delta,
            "num_machines": num_machines,
            "executor": exec_.name,
        },
    )
