"""The shared run configuration behind every algorithm entry point.

Historically each of the five entry points (IMM, DIIMM, D-SSA, D-SUBSIM,
D-OPIM-C) grew its own near-identical keyword list, and every caller —
CLI, experiments, tests — re-assembled those kwargs by hand.
:class:`RunConfig` centralises the knobs once: entry points accept it
(via :func:`repro.api.run`) and the legacy keyword signatures are thin
shims that build one.

Validation lives here too (:meth:`RunConfig.validate`): every argument
check an entry point used to perform — or forgot to perform — raises a
uniform ``ValueError`` naming the offending field, so the CLI, the
facade and direct library use all fail identically.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Any

from ..cluster.executor import EXECUTORS
from ..cluster.faults import FaultPlan, RetryPolicy
from ..cluster.network import NetworkModel
from ..cluster.spec import ExecutorSpec, as_spec
from ..coverage.sketch import MAX_PRECISION, MIN_PRECISION, hll_relative_error

__all__ = ["RunConfig", "BACKENDS", "MODELS", "METHODS", "STOPPINGS"]

#: Coverage-store flavours, as accepted by :func:`repro.ris.make_collection`.
BACKENDS: tuple[str, ...] = ("flat", "reference", "sketch")
#: Diffusion models the samplers implement.
MODELS: tuple[str, ...] = ("ic", "lt")
#: RR-set generation procedures.
METHODS: tuple[str, ...] = ("bfs", "subsim", "vectorized")
#: Stopping policies for the IMM-schedule algorithms: the precomputed
#: theta schedule, or error-adaptive doubling until the measured
#: relative error satisfies eps (see
#: :class:`~repro.core.driver.ErrorAdaptiveRule`).
STOPPINGS: tuple[str, ...] = ("schedule", "error-adaptive")

#: Algorithms whose stopping certificates require exact coverage counts;
#: ``backend="sketch"`` and ``stopping="error-adaptive"`` are refused.
_EXACT_ONLY_ALGORITHMS = ("dssa", "dopimc")


@dataclass(frozen=True)
class RunConfig:
    """Frozen configuration of one influence-maximization run.

    Parameters
    ----------
    graph:
        Weighted :class:`~repro.graphs.digraph.DirectedGraph`.
    k:
        Seed-set size.
    machines:
        Number of worker machines ``l`` (ignored by single-machine IMM,
        which always runs one).
    eps:
        Approximation slack; the guarantee is ``(1 - 1/e - eps)``.
    delta:
        Failure probability; ``None`` means the paper's ``1/n``.
    model, method:
        Diffusion model (``"ic"``/``"lt"``) and RR-set generation
        procedure (``"bfs"``/``"subsim"``/``"vectorized"``).
    seed:
        Root RNG seed; fixes the whole run.
    backend:
        Coverage-store flavour (:data:`BACKENDS`).
    executor:
        An :class:`~repro.cluster.spec.ExecutorSpec` or its string
        shorthand (``"simulated"``, ``"multiprocessing:4"``,
        ``"socket:127.0.0.1:9100,9101"``); coerced to a spec at
        construction.
    processes:
        Deprecated — worker-pool size for the multiprocessing executor.
        Use ``executor=MultiprocessingSpec(processes=...)`` or the
        ``"multiprocessing:N"`` shorthand instead.
    network:
        Master<->slave cost model; ``None`` means the shared-memory
        profile.
    checkpoint_dir, resume:
        Driver-level checkpointing, as in :mod:`repro.core.checkpoint`.
    sketch_precision:
        Registers per node for ``backend="sketch"``:
        ``m = 2**sketch_precision`` one-byte HyperLogLog registers, so
        memory is ``n * m`` bytes and the sketch's relative error is
        ``1.04 / sqrt(m)``.  Ignored by the exact backends.
    stopping:
        Stopping policy for the IMM-schedule algorithms
        (:data:`STOPPINGS`): ``"schedule"`` (default) runs the
        precomputed theta schedule; ``"error-adaptive"`` doubles theta
        until the measured relative error — sampling plus sketch noise —
        satisfies ``eps``, typically stopping with far fewer samples.
    theta_initial:
        First-round collection size override for the doubling frameworks
        (D-SSA, D-OPIM-C) and the error-adaptive rule; ``None`` uses
        each framework's own default.  Ignored by the theta schedule.
    faults:
        A :class:`~repro.cluster.faults.FaultPlan` — or its
        :meth:`~repro.cluster.faults.FaultPlan.parse` string form —
        enabling the fault-tolerant executor path.  ``None`` (default)
        runs the original healthy path.
    retry:
        Recovery policy applied when ``faults`` is set; ``None`` uses
        :data:`~repro.cluster.faults.DEFAULT_RETRY`.
    """

    graph: Any
    k: int
    machines: int = 1
    eps: float = 0.5
    delta: float | None = None
    model: str = "ic"
    method: str = "bfs"
    seed: int = 0
    backend: str = "flat"
    sketch_precision: int = 10
    stopping: str = "schedule"
    executor: str | ExecutorSpec = "simulated"
    processes: int | None = None
    network: NetworkModel | None = None
    checkpoint_dir: str | None = None
    resume: bool = False
    theta_initial: int | None = None
    faults: FaultPlan | None = field(default=None)
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if isinstance(self.faults, str):
            object.__setattr__(self, "faults", FaultPlan.parse(self.faults))
        if not isinstance(self.executor, ExecutorSpec):
            try:
                object.__setattr__(self, "executor", as_spec(self.executor))
            except (TypeError, ValueError):
                # Left as-is so validate() reports the canonical
                # ``config.executor must be one of ...`` message.
                pass
        if self.processes is not None:
            warnings.warn(
                "RunConfig.processes is deprecated; use "
                "executor=MultiprocessingSpec(processes=...) or the "
                "'multiprocessing:N' shorthand",
                DeprecationWarning,
                stacklevel=3,
            )

    def validate(self, algorithm: str | None = None) -> "RunConfig":
        """Check every field; raise ``ValueError`` naming the bad one.

        ``algorithm`` additionally applies per-algorithm constraints
        (D-SUBSIM is IC-only).  Returns ``self`` so call sites can chain
        ``config.validate(...)``.
        """
        if self.graph is None:
            raise ValueError("config.graph must be a DirectedGraph, got None")
        if self.k < 1:
            raise ValueError(f"config.k must be >= 1, got {self.k}")
        if not 0.0 < self.eps < 1.0:
            raise ValueError(f"config.eps must be in (0, 1), got {self.eps}")
        if self.machines < 1:
            raise ValueError(f"config.machines must be >= 1, got {self.machines}")
        if self.delta is not None and not 0.0 < self.delta < 1.0:
            raise ValueError(f"config.delta must be in (0, 1) or None, got {self.delta}")
        if self.model not in MODELS:
            raise ValueError(f"config.model must be one of {MODELS}, got {self.model!r}")
        if self.method not in METHODS:
            raise ValueError(f"config.method must be one of {METHODS}, got {self.method!r}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"config.backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if not isinstance(self.sketch_precision, int) or not (
            MIN_PRECISION <= self.sketch_precision <= MAX_PRECISION
        ):
            raise ValueError(
                f"config.sketch_precision must be an int in "
                f"[{MIN_PRECISION}, {MAX_PRECISION}], got {self.sketch_precision!r}"
            )
        if self.stopping not in STOPPINGS:
            raise ValueError(
                f"config.stopping must be one of {STOPPINGS}, got {self.stopping!r}"
            )
        if self.backend == "sketch":
            self._validate_sketch(algorithm)
        if self.stopping == "error-adaptive" and algorithm in _EXACT_ONLY_ALGORITHMS:
            raise ValueError(
                "config.stopping='error-adaptive' replaces the IMM theta "
                f"schedule; {algorithm!r} owns its own stopping certificate "
                "(stop-and-stare / OPIM-C) and cannot use it"
            )
        if not isinstance(self.executor, ExecutorSpec):
            raise ValueError(
                f"config.executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        try:
            self.executor.validate()
        except ValueError as exc:
            raise ValueError(f"config.executor is invalid: {exc}") from None
        if self.processes is not None and self.processes < 1:
            raise ValueError(
                f"config.processes must be >= 1 or None, got {self.processes}"
            )
        if self.theta_initial is not None and self.theta_initial < 1:
            raise ValueError(
                f"config.theta_initial must be >= 1 or None, got {self.theta_initial}"
            )
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("config.resume requires config.checkpoint_dir to be set")
        if algorithm == "dsubsim" and self.model != "ic":
            raise ValueError(
                "config.model must be 'ic' for dsubsim: subset sampling is defined "
                f"for the IC model only, got {self.model!r}"
            )
        return self

    def _validate_sketch(self, algorithm: str | None) -> None:
        """The combos ``backend="sketch"`` refuses, caught at config time.

        Each restriction is structural, not an implementation gap: the
        register bank is a lossy, irreversible summary, so anything that
        needs to *remove* or *window* an RR set's contribution — dynamic
        repair, warm-pool prefix views, round snapshots — cannot run on
        it, and the exact-count stopping certificates of D-SSA /
        D-OPIM-C are not stated for estimates.
        """
        from ..graphs.digraph import VersionedGraph

        if isinstance(self.graph, VersionedGraph):
            raise ValueError(
                "backend='sketch' does not support dynamic-graph repair: "
                "register banks cannot retract an invalidated RR set's "
                "contribution; use backend='flat' with VersionedGraph"
            )
        if self.checkpoint_dir is not None or self.resume:
            raise ValueError(
                "backend='sketch' does not support checkpoint/resume: the "
                "register journal is pruned after every ingest, so round "
                "snapshots cannot be restored; use backend='flat' for "
                "checkpointed runs"
            )
        if algorithm in _EXACT_ONLY_ALGORITHMS:
            raise ValueError(
                "backend='sketch' supports the IMM-schedule algorithms "
                f"('imm', 'diimm', 'dsubsim'); {algorithm!r}'s stopping "
                "certificate assumes exact coverage counts — use "
                "backend='flat'"
            )
        if self.stopping == "error-adaptive":
            noise_floor = hll_relative_error(self.sketch_precision)
            if noise_floor >= self.eps:
                raise ValueError(
                    f"config.eps={self.eps} is below the sketch noise floor "
                    f"{noise_floor:.4f} of sketch_precision="
                    f"{self.sketch_precision} (1.04/sqrt(2**p)); raise "
                    "sketch_precision or eps"
                )

    def with_overrides(self, **changes: Any) -> "RunConfig":
        """A copy with the given fields replaced (frozen-safe)."""
        return replace(self, **changes)

    def executor_spec(self) -> ExecutorSpec:
        """The validated executor spec, with the deprecated ``processes``
        field folded in (silently — the deprecation already warned at
        construction).  Entry points resolve the executor through this,
        so a spec's own ``processes`` always wins over the legacy field,
        and ``processes`` stays a no-op for backends without a pool —
        matching the historical keyword behaviour."""
        spec = self.executor if isinstance(self.executor, ExecutorSpec) else as_spec(self.executor)
        if (
            self.processes is not None
            and hasattr(spec, "processes")
            and spec.processes is None
        ):
            spec = spec.with_overrides(processes=self.processes)
        return spec.validate()

    def describe(self) -> dict[str, Any]:
        """A JSON-friendly summary (graph as its size, plan as its syntax)."""
        out: dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "graph":
                value = None if value is None else f"graph(n={value.num_nodes})"
            elif isinstance(value, (FaultPlan, ExecutorSpec)):
                value = value.describe()
            elif isinstance(value, NetworkModel):
                value = value.name
            elif isinstance(value, RetryPolicy):
                value = (
                    f"RetryPolicy(max_attempts={value.max_attempts}, "
                    f"phase_timeout={value.phase_timeout}, backoff={value.backoff}, "
                    f"reassign={value.reassign})"
                )
            out[spec.name] = value
        return out
