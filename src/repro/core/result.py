"""Result container shared by all influence-maximization algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..cluster.metrics import RunMetrics

__all__ = ["IMResult"]


@dataclass
class IMResult:
    """Outcome of one influence-maximization run.

    Attributes
    ----------
    seeds:
        The selected size-``k`` seed set.
    estimated_spread:
        ``n * F_R(S)``: the RIS estimate of the seed set's influence.
    num_rr_sets:
        Total number of RR sets generated (``theta``), across machines.
    total_rr_size:
        Sum of RR-set sizes (Table IV's "total size" column).
    total_edges_examined:
        Sum of ``w(R)``; the generation-work measure.
    lower_bound:
        The OPT lower bound LB found by the search phase.
    search_rounds:
        Number of lower-bound search iterations executed.
    metrics:
        Timing/traffic breakdown (generation / computation / communication).
    algorithm, model, method:
        Labels for reporting.
    params:
        Free-form scalar parameters (k, eps, delta, num_machines, ...).
    """

    seeds: List[int]
    estimated_spread: float
    num_rr_sets: int
    total_rr_size: int
    total_edges_examined: int
    lower_bound: float
    search_rounds: int
    metrics: RunMetrics
    algorithm: str
    model: str
    method: str = "bfs"
    params: Dict[str, float] = field(default_factory=dict)

    @property
    def breakdown(self) -> Dict[str, float]:
        """Shortcut to the Fig 5-9 time breakdown."""
        return self.metrics.breakdown()

    def summary_row(self) -> Dict[str, object]:
        """Flat dict suitable for printing experiment tables."""
        row: Dict[str, object] = {
            "algorithm": self.algorithm,
            "model": self.model,
            "method": self.method,
            "num_rr_sets": self.num_rr_sets,
            "total_rr_size": self.total_rr_size,
            "estimated_spread": round(self.estimated_spread, 2),
            "lower_bound": round(self.lower_bound, 2),
        }
        row.update({key: round(value, 4) for key, value in self.breakdown.items()})
        row.update(self.params)
        return row
