"""Distributed OPIM-C (extension; paper Section III-C compatibility claim).

OPIM-C (Tang et al., SIGMOD 2018) is an *online* RIS framework: instead of
IMM's precomputed sample budget it doubles two independent RR collections
— ``R1`` for seed selection, ``R2`` for validation — and stops as soon as
a data-dependent bound certifies the current solution:

* a lower bound on ``sigma(S)`` from ``S``'s coverage on ``R2``,
* an upper bound on OPT from the greedy coverage on ``R1`` divided by
  ``(1 - 1/e)``,

both via martingale concentration.  When the ratio clears
``1 - 1/e - eps`` the solution is certified and typically needs far fewer
RR sets than IMM's worst-case schedule.

The paper claims (Section III-C, Remark in IV-B) that distributed RIS and
NEWGREEDI accelerate OPIM-C the same way they accelerate IMM; this module
substantiates that claim: both collections are generated across machines,
selection runs through NEWGREEDI, and validation coverage is gathered as a
single integer per machine.
"""

from __future__ import annotations

import math

from ..cluster.cluster import SimulatedCluster
from ..cluster.executor import GatherPhase, GeneratePhase, MapPhase, make_executor
from ..cluster.machine import Machine
from ..cluster.network import NetworkModel
from ..coverage.newgreedi import newgreedi
from ..graphs.digraph import DirectedGraph
from ..ris import make_collection
from .bounds import ImmParameters
from .result import IMResult

__all__ = ["distributed_opimc"]


def _spread_lower_bound(coverage: int, num_sets: int, n: int, a: float) -> float:
    """Martingale lower bound on ``sigma(S)`` from validation coverage."""
    if num_sets == 0:
        return 0.0
    inner = math.sqrt(coverage + 2.0 * a / 9.0) - math.sqrt(a / 2.0)
    return (inner * inner - a / 18.0) * n / num_sets


def _opt_upper_bound(coverage: int, num_sets: int, n: int, a: float) -> float:
    """Martingale upper bound on OPT from the greedy selection coverage."""
    if num_sets == 0:
        return float(n)
    base = coverage / (1.0 - 1.0 / math.e)
    inner = math.sqrt(base + a / 2.0) + math.sqrt(a / 2.0)
    return inner * inner * n / num_sets


def distributed_opimc(
    graph: DirectedGraph,
    k: int,
    num_machines: int,
    eps: float = 0.5,
    delta: float | None = None,
    model: str = "ic",
    method: str = "bfs",
    network: NetworkModel | None = None,
    seed: int = 0,
    theta_initial: int | None = None,
    backend: str = "flat",
    executor: str = "simulated",
    processes: int | None = None,
) -> IMResult:
    """Run distributed OPIM-C; parameters mirror :func:`repro.core.diimm.diimm`.

    ``theta_initial`` overrides the size of the first doubling round
    (defaults to the OPIM-C heuristic
    ``theta_0 = theta_max * eps^2 * k / n``, clamped to at least 64).
    """
    n = graph.num_nodes
    if delta is None:
        delta = 1.0 / n
    params = ImmParameters.compute(n, k, eps, delta)
    # OPT >= k (the seeds activate at least themselves), so theta_max =
    # lambda*/k RR sets always suffice for IMM's guarantee.
    theta_max = max(int(math.ceil(params.lambda_star / k)), 64)
    if theta_initial is None:
        theta_initial = max(int(theta_max * eps * eps * k / n), 64)
    i_max = max(int(math.ceil(math.log2(max(theta_max / theta_initial, 2.0)))), 1)
    a = math.log(3.0 * i_max / delta)

    cluster = SimulatedCluster(num_machines, network=network, seed=seed)
    exec_ = make_executor(executor, cluster, graph=graph, processes=processes)
    for machine in cluster.machines:
        machine.state["R1"] = make_collection(n, backend)
        machine.state["R2"] = make_collection(n, backend)

    def grow(collection_key: str, target: int, label: str) -> None:
        current = sum(m.state[collection_key].num_sets for m in cluster.machines)
        missing = target - current
        if missing <= 0:
            return
        exec_.run_phase(
            GeneratePhase(
                f"{label}/generate-{collection_key}",
                counts=tuple(cluster.split_count(missing)),
                targets=tuple(m.state[collection_key] for m in cluster.machines),
                model=model,
                method=method,
            )
        )

    seeds: list[int] = []
    estimated_spread = 0.0
    certified_ratio = 0.0
    rounds = 0
    theta = theta_initial
    for round_idx in range(1, i_max + 1):
        rounds = round_idx
        grow("R1", theta, f"round-{round_idx}")
        grow("R2", theta, f"round-{round_idx}")

        selection = newgreedi(
            exec_,
            k,
            stores=[m.state["R1"] for m in cluster.machines],
            label=f"round-{round_idx}/newgreedi",
            backend=backend,
        )
        seeds = selection.seeds

        def validate(machine: Machine) -> int:
            return machine.state["R2"].coverage_of(seeds)

        per_machine = exec_.run_phase(
            MapPhase(f"round-{round_idx}/validate", validate)
        ).results
        exec_.run_phase(
            GatherPhase(f"round-{round_idx}/validate", (8,) * cluster.num_machines)
        )

        r1_sets = sum(m.state["R1"].num_sets for m in cluster.machines)
        r2_sets = sum(m.state["R2"].num_sets for m in cluster.machines)
        validation_coverage = sum(per_machine)
        estimated_spread = n * validation_coverage / r2_sets if r2_sets else 0.0
        sigma_low = _spread_lower_bound(validation_coverage, r2_sets, n, a)
        opt_high = _opt_upper_bound(selection.coverage, r1_sets, n, a)
        certified_ratio = sigma_low / opt_high if opt_high > 0 else 0.0
        if certified_ratio >= 1.0 - 1.0 / math.e - eps:
            break
        theta *= 2

    total_rr = sum(
        m.state["R1"].num_sets + m.state["R2"].num_sets for m in cluster.machines
    )
    total_size = sum(
        m.state["R1"].total_size + m.state["R2"].total_size for m in cluster.machines
    )
    total_edges = sum(
        m.state["R1"].total_edges_examined + m.state["R2"].total_edges_examined
        for m in cluster.machines
    )
    return IMResult(
        seeds=seeds,
        estimated_spread=estimated_spread,
        num_rr_sets=total_rr,
        total_rr_size=total_size,
        total_edges_examined=total_edges,
        lower_bound=certified_ratio,
        search_rounds=rounds,
        metrics=cluster.metrics,
        algorithm="DOPIM-C",
        model=model,
        method=method,
        params={
            "k": k,
            "eps": eps,
            "delta": delta,
            "num_machines": num_machines,
            "executor": exec_.name,
        },
    )
