"""Distributed OPIM-C (extension; paper Section III-C compatibility claim).

OPIM-C (Tang et al., SIGMOD 2018) is an *online* RIS framework: instead of
IMM's precomputed sample budget it doubles two independent RR collections
— ``R1`` for seed selection, ``R2`` for validation — and stops as soon as
a data-dependent bound certifies the current solution:

* a lower bound on ``sigma(S)`` from ``S``'s coverage on ``R2``,
* an upper bound on OPT from the greedy coverage on ``R1`` divided by
  ``(1 - 1/e)``,

both via martingale concentration
(:func:`~repro.core.bounds.opim_spread_lower_bound` /
:func:`~repro.core.bounds.opim_opt_upper_bound`).  When the ratio clears
``1 - 1/e - eps`` the solution is certified and typically needs far fewer
RR sets than IMM's worst-case schedule.

The paper claims (Section III-C, Remark in IV-B) that distributed RIS and
NEWGREEDI accelerate OPIM-C the same way they accelerate IMM; this module
substantiates that claim by running the shared
:class:`~repro.core.driver.RoundDriver` with an
:class:`~repro.core.driver.OpimStoppingRule`: both collections are
generated across machines, ``R1``'s coverage counts are maintained
incrementally, selection runs through NEWGREEDI, and validation coverage
is gathered as a single integer per machine.
"""

from __future__ import annotations

import math

from ..cluster.cluster import SimulatedCluster
from ..cluster.executor import executor_scope, make_executor
from ..cluster.faults import FaultPlan, RetryPolicy
from ..cluster.network import NetworkModel
from ..graphs.digraph import DirectedGraph
from ..ris import make_collection
from .bounds import ImmParameters
from .checkpoint import manager_for
from .config import RunConfig
from .driver import OpimStoppingRule, RoundDriver
from .result import IMResult

__all__ = ["distributed_opimc", "distributed_opimc_from_config"]


def distributed_opimc(
    graph: DirectedGraph,
    k: int,
    num_machines: int,
    eps: float = 0.5,
    delta: float | None = None,
    model: str = "ic",
    method: str = "bfs",
    network: NetworkModel | None = None,
    seed: int = 0,
    theta_initial: int | None = None,
    backend: str = "flat",
    executor: str = "simulated",
    processes: int | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    faults: FaultPlan | str | None = None,
    retry: RetryPolicy | None = None,
) -> IMResult:
    """Run distributed OPIM-C; parameters mirror :func:`repro.core.diimm.diimm`.

    This keyword signature is a thin shim over
    :class:`~repro.core.config.RunConfig` /
    :func:`distributed_opimc_from_config`; prefer :func:`repro.api.run`
    in new code.

    ``theta_initial`` overrides the size of the first doubling round
    (defaults to the OPIM-C heuristic
    ``theta_0 = theta_max * eps^2 * k / n``, clamped to at least 64).
    """
    config = RunConfig(
        graph=graph,
        k=k,
        machines=num_machines,
        eps=eps,
        delta=delta,
        model=model,
        method=method,
        seed=seed,
        backend=backend,
        executor=executor,
        processes=processes,
        network=network,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        theta_initial=theta_initial,
        faults=faults,
        retry=retry,
    )
    return distributed_opimc_from_config(config)


def distributed_opimc_from_config(config: RunConfig, *, executor=None) -> IMResult:
    """Run D-OPIM-C from a validated :class:`~repro.core.config.RunConfig`.

    ``executor`` lends a pre-built executor; the run reuses its worker
    pool, shared-memory graph, and RNG streams and never closes it.
    OPIM-C interleaves draws across ``R1``/``R2``, so it has no warm
    ``pool=`` mode (per-collection prefixes are not stream-deterministic).
    """
    config.validate("dopimc")
    graph, k, eps = config.graph, config.k, config.eps
    n = graph.num_nodes
    delta = 1.0 / n if config.delta is None else config.delta
    params = ImmParameters.compute(n, k, eps, delta)
    # OPT >= k (the seeds activate at least themselves), so theta_max =
    # lambda*/k RR sets always suffice for IMM's guarantee.
    theta_max = max(int(math.ceil(params.lambda_star / k)), 64)
    theta_initial = config.theta_initial
    if theta_initial is None:
        theta_initial = max(int(theta_max * eps * eps * k / n), 64)
    i_max = max(int(math.ceil(math.log2(max(theta_max / theta_initial, 2.0)))), 1)
    a = math.log(3.0 * i_max / delta)

    owns_executor = executor is None
    if owns_executor:
        cluster = SimulatedCluster(
            config.machines, network=config.network, seed=config.seed
        )
        exec_ = make_executor(
            config.executor_spec(),
            cluster,
            graph=graph,
            faults=config.faults,
            retry=config.retry,
        )
    else:
        exec_ = executor
        cluster = exec_.cluster
        if cluster.num_machines != config.machines:
            raise ValueError(
                f"config asks for {config.machines} machines but the lent "
                f"executor has {cluster.num_machines}"
            )
    rule = OpimStoppingRule(n, eps=eps, theta_initial=theta_initial, i_max=i_max, a=a)
    stores = {
        key: [make_collection(n, config.backend) for _ in range(config.machines)]
        for key in rule.collection_keys
    }
    checkpoint = manager_for(
        config.checkpoint_dir,
        algorithm="DOPIM-C",
        n=n,
        k=k,
        eps=eps,
        delta=delta,
        seed=config.seed,
        num_machines=config.machines,
        model=config.model,
        method=config.method,
        backend=config.backend,
    )
    driver = RoundDriver(
        exec_,
        rule,
        k,
        stores,
        model=config.model,
        method=config.method,
        backend=config.backend,
        checkpoint=checkpoint,
        resume=config.resume,
    )
    with executor_scope(exec_, owned=owns_executor) as metrics:
        run = driver.run()

    total_rr = driver.total_sets("R1") + driver.total_sets("R2")
    total_size = driver.total_size("R1") + driver.total_size("R2")
    total_edges = driver.total_edges_examined("R1") + driver.total_edges_examined("R2")
    return IMResult(
        seeds=run.selection.seeds,
        estimated_spread=rule.estimated_spread,
        num_rr_sets=total_rr,
        total_rr_size=total_size,
        total_edges_examined=total_edges,
        lower_bound=rule.certified_ratio,
        search_rounds=rule.rounds,
        metrics=metrics,
        algorithm="DOPIM-C",
        model=config.model,
        method=config.method,
        params={
            "k": k,
            "eps": eps,
            "delta": delta,
            "num_machines": config.machines,
            "executor": exec_.name,
        },
    )
