"""The unified entry point: ``run(algorithm, config)``.

Every algorithm in the reproduction — single-machine IMM, DIIMM, D-SSA,
D-SUBSIM and D-OPIM-C — takes the same knobs: a graph, ``k``, the
cluster shape, the sampler, the executor, checkpointing and (new) the
fault plan.  This module is the one place those knobs meet the
algorithms:

    from repro.api import RunConfig, run

    config = RunConfig(graph=g, k=50, machines=16, eps=0.3, seed=7)
    result = run("diimm", config)

``run`` validates the config (uniform ``ValueError`` messages, see
:meth:`RunConfig.validate <repro.core.config.RunConfig.validate>`) and
dispatches to the algorithm's ``*_from_config`` implementation.  The
legacy keyword entry points (:func:`repro.core.imm.imm` and friends)
remain as thin shims that build a :class:`RunConfig` and call the same
implementations, so both styles return bit-identical results.
"""

from __future__ import annotations

from typing import Callable, Dict

from .core.config import RunConfig
from .core.diimm import diimm_from_config
from .core.dopimc import distributed_opimc_from_config
from .core.dssa import distributed_ssa_from_config
from .core.dsubsim import distributed_subsim_from_config
from .core.imm import imm_from_config
from .core.result import IMResult

__all__ = ["ALGORITHMS", "RunConfig", "run"]

_DISPATCH: Dict[str, Callable[[RunConfig], IMResult]] = {
    "imm": imm_from_config,
    "diimm": diimm_from_config,
    "dssa": distributed_ssa_from_config,
    "dsubsim": distributed_subsim_from_config,
    "dopimc": distributed_opimc_from_config,
}

#: The registered algorithm names, in dispatch order.
ALGORITHMS: tuple[str, ...] = tuple(_DISPATCH)


def run(algorithm: str, config: RunConfig) -> IMResult:
    """Run ``algorithm`` under ``config`` and return its :class:`IMResult`.

    Parameters
    ----------
    algorithm:
        One of :data:`ALGORITHMS`: ``"imm"`` (single-machine baseline),
        ``"diimm"``, ``"dssa"``, ``"dsubsim"`` or ``"dopimc"``.
    config:
        The run's :class:`~repro.core.config.RunConfig`; validated here,
        so a bad field fails before any work starts.

    Returns
    -------
    IMResult
        Identical — seeds, spread estimate, metrics — to what the
        algorithm's legacy keyword entry point returns for the same
        parameters.
    """
    key = algorithm.lower().replace("-", "").replace("_", "")
    if key not in _DISPATCH:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    config.validate(key)
    return _DISPATCH[key](config)
