"""The unified entry point: ``run(algorithm, config)``.

Every algorithm in the reproduction — single-machine IMM, DIIMM, D-SSA,
D-SUBSIM and D-OPIM-C — takes the same knobs: a graph, ``k``, the
cluster shape, the sampler, the executor, checkpointing and (new) the
fault plan.  This module is the one place those knobs meet the
algorithms:

    from repro.api import RunConfig, run

    config = RunConfig(graph=g, k=50, machines=16, eps=0.3, seed=7)
    result = run("diimm", config)

``run`` validates the config (uniform ``ValueError`` messages, see
:meth:`RunConfig.validate <repro.core.config.RunConfig.validate>`) and
dispatches to the algorithm's ``*_from_config`` implementation.  The
legacy keyword entry points (:func:`repro.core.imm.imm` and friends)
remain as thin shims that build a :class:`RunConfig` and call the same
implementations, so both styles return bit-identical results.
"""

from __future__ import annotations

from typing import Callable, Dict

from .core.config import RunConfig
from .core.diimm import diimm_from_config
from .core.dopimc import distributed_opimc_from_config
from .core.dssa import distributed_ssa_from_config
from .core.dsubsim import distributed_subsim_from_config
from .core.imm import imm_from_config
from .core.result import IMResult

__all__ = ["ALGORITHMS", "POOLABLE", "RunConfig", "run"]

_DISPATCH: Dict[str, Callable[..., IMResult]] = {
    "imm": imm_from_config,
    "diimm": diimm_from_config,
    "dssa": distributed_ssa_from_config,
    "dsubsim": distributed_subsim_from_config,
    "dopimc": distributed_opimc_from_config,
}

#: The registered algorithm names, in dispatch order.
ALGORITHMS: tuple[str, ...] = tuple(_DISPATCH)

#: Algorithms that can be served warm from a :class:`~repro.core.pool.SamplePool`
#: (their samplers draw each collection from one uninterleaved stream).
POOLABLE: tuple[str, ...] = ("imm", "diimm", "dsubsim")


def run(algorithm: str, config: RunConfig, *, executor=None, pool=None) -> IMResult:
    """Run ``algorithm`` under ``config`` and return its :class:`IMResult`.

    Parameters
    ----------
    algorithm:
        One of :data:`ALGORITHMS`: ``"imm"`` (single-machine baseline),
        ``"diimm"``, ``"dssa"``, ``"dsubsim"`` or ``"dopimc"``.
    config:
        The run's :class:`~repro.core.config.RunConfig`; validated here,
        so a bad field fails before any work starts.
    executor:
        Optional pre-built :class:`~repro.cluster.executor.Executor` to
        lend the run.  Its worker pool, shared-memory graph, and RNG
        streams are reused; the run never closes or reseeds a lent
        executor — the caller keeps ownership.  Mutually exclusive with
        ``pool``.
    pool:
        Optional :class:`~repro.core.pool.SamplePool` to serve the query
        warm from (only for :data:`POOLABLE` algorithms).  The pool's
        collections are grown as needed and retained; the result is
        bit-identical to a cold ``run`` with the same config.

    Returns
    -------
    IMResult
        Identical — seeds, spread estimate, metrics — to what the
        algorithm's legacy keyword entry point returns for the same
        parameters.
    """
    key = algorithm.lower().replace("-", "").replace("_", "")
    if key not in _DISPATCH:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    config.validate(key)
    if pool is not None:
        if executor is not None:
            raise ValueError("pass either executor or pool, not both")
        if key not in POOLABLE:
            raise ValueError(
                f"algorithm {algorithm!r} cannot run from a warm pool; "
                f"poolable algorithms are {POOLABLE}"
            )
        return _DISPATCH[key](config, pool=pool)
    if executor is not None:
        return _DISPATCH[key](config, executor=executor)
    return _DISPATCH[key](config)
