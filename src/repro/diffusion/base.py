"""Common interface for influence diffusion models.

A diffusion model turns a seed set into a random set of activated nodes via
the discrete-time process of Kempe et al. (KDD 2003).  Concrete models (IC,
LT, triggering) implement :meth:`DiffusionModel.simulate`; everything else
in the library interacts with models through this interface or through the
string names ``"ic"`` / ``"lt"`` resolved by :func:`get_model`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

import numpy as np

from ..graphs.digraph import DirectedGraph

__all__ = ["DiffusionModel", "get_model", "seeds_to_array"]


def seeds_to_array(seeds: Iterable[int], num_nodes: int) -> np.ndarray:
    """Validate a seed iterable and return it as a unique int array."""
    arr = np.unique(np.asarray(list(seeds), dtype=np.int64))
    if arr.size and (arr[0] < 0 or arr[-1] >= num_nodes):
        raise ValueError("seed ids must lie in [0, num_nodes)")
    return arr


class DiffusionModel(ABC):
    """Abstract influence diffusion model.

    Subclasses must be stateless with respect to the graph: all randomness
    comes from the ``rng`` argument so simulations are reproducible and can
    be distributed across machines with spawned seeds.
    """

    #: Short lowercase identifier (``"ic"``, ``"lt"``, ``"triggering"``).
    name: str = "abstract"

    @abstractmethod
    def simulate(
        self,
        graph: DirectedGraph,
        seeds: Iterable[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Run one diffusion cascade and return the activated node ids.

        The returned array always contains the seeds themselves and is
        sorted ascending.
        """

    def cascade_size(
        self,
        graph: DirectedGraph,
        seeds: Iterable[int],
        rng: np.random.Generator,
    ) -> int:
        """Convenience: size of one simulated cascade."""
        return int(self.simulate(graph, seeds, rng).size)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def get_model(name: str) -> DiffusionModel:
    """Resolve a model by name (``"ic"`` or ``"lt"``)."""
    from .ic import IndependentCascade
    from .lt import LinearThreshold

    table = {"ic": IndependentCascade, "lt": LinearThreshold}
    key = name.lower()
    if key not in table:
        raise KeyError(f"unknown diffusion model {name!r}; choose from {sorted(table)}")
    return table[key]()
