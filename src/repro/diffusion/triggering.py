"""The triggering model of Kempe et al., via live-edge graphs.

Under the triggering model each node ``v`` independently samples a
*triggering set* ``T_v`` of in-neighbors; ``v`` activates when any node of
``T_v`` is active.  Equivalently, one samples a random *live-edge graph*
(keep edge ``<u, v>`` iff ``u in T_v``) and the activated set is exactly
the set of nodes forward-reachable from the seeds.

Both IC and LT are triggering instances:

* **IC**: each in-edge of ``v`` enters ``T_v`` independently with its
  probability ``p_{u,v}``.
* **LT**: ``T_v`` contains *at most one* in-edge, edge ``<u, v>`` with
  probability ``p_{u,v}`` and none with the remaining probability.

These live-edge samplers double as an independent reference implementation:
tests check that :class:`TriggeringModel` agrees in distribution with the
round-based simulators in :mod:`repro.diffusion.ic` / ``lt``.  They are also
exactly the distributions that reverse influence sampling inverts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Tuple

import numpy as np

from ..graphs.digraph import DirectedGraph
from .base import DiffusionModel, seeds_to_array
from .lt import check_lt_feasible

__all__ = [
    "TriggeringDistribution",
    "ICTriggering",
    "LTTriggering",
    "TriggeringModel",
    "reachable_from",
]


class TriggeringDistribution(ABC):
    """Strategy that samples live in-edges for every node at once."""

    @abstractmethod
    def sample_live_edges(
        self,
        graph: DirectedGraph,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, targets)`` of the sampled live-edge graph."""


def _in_edge_targets(graph: DirectedGraph) -> np.ndarray:
    """Target node of every edge in in-CSR order."""
    return np.repeat(np.arange(graph.num_nodes), graph.in_degrees())


class ICTriggering(TriggeringDistribution):
    """IC triggering sets: every in-edge is live independently."""

    def sample_live_edges(
        self,
        graph: DirectedGraph,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        live = rng.random(graph.num_edges) < graph.in_probs
        targets = _in_edge_targets(graph)
        return graph.in_indices[live].astype(np.int64), targets[live]


class LTTriggering(TriggeringDistribution):
    """LT triggering sets: at most one live in-edge per node."""

    def sample_live_edges(
        self,
        graph: DirectedGraph,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        check_lt_feasible(graph)
        n = graph.num_nodes
        indptr = graph.in_indptr
        prefix = np.concatenate(([0.0], np.cumsum(graph.in_probs)))
        # For each node v, pick the first in-edge j with cumulative incoming
        # probability >= r_v; if r_v exceeds the node's total, no edge is live.
        r = rng.random(n)
        target_vals = prefix[indptr[:-1]] + r
        chosen = np.searchsorted(prefix, target_vals, side="left") - 1
        valid = chosen < indptr[1:]
        # Guard against floating rounding pushing chosen below the segment.
        valid &= chosen >= indptr[:-1]
        nodes = np.flatnonzero(valid)
        edges = chosen[valid]
        return graph.in_indices[edges].astype(np.int64), nodes.astype(np.int64)


def reachable_from(
    num_nodes: int,
    sources: np.ndarray,
    targets: np.ndarray,
    seeds: np.ndarray,
) -> np.ndarray:
    """Nodes forward-reachable from ``seeds`` over the edge list given.

    Builds a temporary CSR for the live edges and runs a frontier BFS.
    """
    active = np.zeros(num_nodes, dtype=bool)
    active[seeds] = True
    if sources.size == 0:
        return np.flatnonzero(active)
    order = np.argsort(sources, kind="stable")
    sources = sources[order]
    targets = targets[order]
    counts = np.bincount(sources, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    frontier = seeds
    while frontier.size:
        starts = indptr[frontier]
        stops = indptr[frontier + 1]
        seg = stops - starts
        total = int(seg.sum())
        if total == 0:
            break
        offsets = np.repeat(starts, seg)
        within = np.arange(total) - np.repeat(np.cumsum(seg) - seg, seg)
        hit = targets[offsets + within]
        hit = np.unique(hit)
        newly = hit[~active[hit]]
        active[newly] = True
        frontier = newly
    return np.flatnonzero(active)


class TriggeringModel(DiffusionModel):
    """Diffusion by sampling a live-edge graph then a forward reachability.

    Parameters
    ----------
    distribution:
        The triggering-set sampler; :class:`ICTriggering` and
        :class:`LTTriggering` reproduce the IC and LT models exactly.
    """

    name = "triggering"

    def __init__(self, distribution: TriggeringDistribution) -> None:
        self.distribution = distribution

    def simulate(
        self,
        graph: DirectedGraph,
        seeds: Iterable[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        seed_arr = seeds_to_array(seeds, graph.num_nodes)
        sources, targets = self.distribution.sample_live_edges(graph, rng)
        return reachable_from(graph.num_nodes, sources, targets, seed_arr)

    def __repr__(self) -> str:
        return f"TriggeringModel({type(self.distribution).__name__})"
