"""Forward simulation of the independent cascade (IC) model.

When a node ``u`` first becomes active it gets a single chance to activate
each currently inactive out-neighbor ``v``, succeeding independently with
probability ``p_{u,v}``.  The process runs in synchronous rounds until no
new node activates.

The implementation processes a whole frontier at once with numpy: it
gathers the out-edges of every frontier node, flips all coins in one draw,
and deduplicates newly activated targets.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..graphs.digraph import DirectedGraph
from .base import DiffusionModel, seeds_to_array

__all__ = ["IndependentCascade"]


class IndependentCascade(DiffusionModel):
    """The IC model of Kempe et al. (KDD 2003)."""

    name = "ic"

    def simulate(
        self,
        graph: DirectedGraph,
        seeds: Iterable[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        seed_arr = seeds_to_array(seeds, graph.num_nodes)
        active = np.zeros(graph.num_nodes, dtype=bool)
        active[seed_arr] = True
        frontier = seed_arr

        indptr, indices, probs = graph.out_indptr, graph.out_indices, graph.out_probs
        while frontier.size:
            # Gather the out-edges of every frontier node.
            starts = indptr[frontier]
            stops = indptr[frontier + 1]
            counts = stops - starts
            total = int(counts.sum())
            if total == 0:
                break
            # Flat indices of all frontier out-edges.
            offsets = np.repeat(starts, counts)
            within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
            edge_idx = offsets + within
            targets = indices[edge_idx]
            success = rng.random(total) < probs[edge_idx]
            hit = targets[success]
            # A target may be hit by several frontier nodes; activation
            # happens once.  Inactive check uses the *pre-round* state, so a
            # node activated this round cannot also fire this round.
            hit = np.unique(hit)
            newly = hit[~active[hit]]
            active[newly] = True
            frontier = newly
        return np.flatnonzero(active)
