"""Exact influence spread for tiny graphs by live-edge enumeration.

The spread is #P-hard in general, but for graphs with a handful of edges we
can enumerate every live-edge outcome and sum probabilities exactly.  These
routines validate the simulators and the RIS estimators against the paper's
worked Example 1 (``sigma({v1}) = 3.664`` under IC, ``3.9`` under LT) and
supply ground-truth optima for approximation-ratio tests.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence, Tuple

import numpy as np

from ..graphs.digraph import DirectedGraph
from .base import seeds_to_array
from .lt import check_lt_feasible
from .triggering import reachable_from

__all__ = [
    "exact_spread_ic",
    "exact_spread_lt",
    "exact_optimum",
]

_MAX_IC_EDGES = 22
_MAX_LT_OUTCOMES = 2_000_000


def _edge_list(graph: DirectedGraph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    return graph.edge_arrays()


def exact_spread_ic(graph: DirectedGraph, seeds: Iterable[int]) -> float:
    """Exact ``sigma(seeds)`` under IC via enumeration of edge subsets.

    Exponential in the edge count; refuses graphs with more than
    ``2**22`` outcomes.
    """
    m = graph.num_edges
    if m > _MAX_IC_EDGES:
        raise ValueError(f"exact IC enumeration limited to {_MAX_IC_EDGES} edges, got {m}")
    seed_arr = seeds_to_array(seeds, graph.num_nodes)
    sources, targets, probs = _edge_list(graph)

    total = 0.0
    for mask in range(1 << m):
        live = np.array([(mask >> e) & 1 for e in range(m)], dtype=bool)
        prob = float(np.prod(np.where(live, probs, 1.0 - probs)))
        if prob == 0.0:
            continue
        reach = reachable_from(graph.num_nodes, sources[live], targets[live], seed_arr)
        total += prob * reach.size
    return total


def exact_spread_lt(graph: DirectedGraph, seeds: Iterable[int]) -> float:
    """Exact ``sigma(seeds)`` under LT via enumeration of triggering choices.

    Each node independently keeps at most one live in-edge (edge ``<u, v>``
    with probability ``p_{u,v}``, none with the remainder); the spread is
    the probability-weighted reachable-set size over all combinations.
    """
    check_lt_feasible(graph)
    seed_arr = seeds_to_array(seeds, graph.num_nodes)
    n = graph.num_nodes

    per_node_options: list[list[tuple[int | None, float]]] = []
    num_outcomes = 1
    for v in range(n):
        in_nodes = graph.in_neighbors(v)
        in_probs = graph.in_probabilities(v)
        options: list[tuple[int | None, float]] = [
            (int(u), float(p)) for u, p in zip(in_nodes, in_probs)
        ]
        slack = 1.0 - float(in_probs.sum())
        if slack > 1e-12 or not options:
            options.append((None, max(slack, 0.0) if options else 1.0))
        per_node_options.append(options)
        num_outcomes *= len(options)
        if num_outcomes > _MAX_LT_OUTCOMES:
            raise ValueError(
                f"exact LT enumeration limited to {_MAX_LT_OUTCOMES} outcomes"
            )

    total = 0.0
    for combo in itertools.product(*per_node_options):
        prob = 1.0
        sources: list[int] = []
        targets: list[int] = []
        for v, (u, p) in enumerate(combo):
            prob *= p
            if u is not None:
                sources.append(u)
                targets.append(v)
        if prob == 0.0:
            continue
        reach = reachable_from(
            n,
            np.asarray(sources, dtype=np.int64),
            np.asarray(targets, dtype=np.int64),
            seed_arr,
        )
        total += prob * reach.size
    return total


def exact_optimum(
    graph: DirectedGraph,
    k: int,
    model: str = "ic",
    candidates: Sequence[int] | None = None,
) -> tuple[tuple[int, ...], float]:
    """Brute-force the optimal size-``k`` seed set on a tiny graph.

    Returns ``(best_seed_tuple, best_exact_spread)``.  Only sensible for
    graphs small enough for :func:`exact_spread_ic` / :func:`exact_spread_lt`.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    pool = list(candidates) if candidates is not None else list(range(graph.num_nodes))
    spread = exact_spread_ic if model == "ic" else exact_spread_lt
    best_set: tuple[int, ...] = ()
    best_value = -1.0
    for combo in itertools.combinations(pool, min(k, len(pool))):
        value = spread(graph, combo)
        if value > best_value:
            best_set, best_value = combo, value
    return best_set, best_value
