"""Diffusion models: IC, LT, triggering; spread estimation and exact values."""

from .base import DiffusionModel, get_model, seeds_to_array
from .exact import exact_optimum, exact_spread_ic, exact_spread_lt
from .ic import IndependentCascade
from .lt import LinearThreshold, check_lt_feasible
from .spread import SpreadEstimate, estimate_spread, singleton_spreads, spread_with_ci
from .timed import TimedCascade, simulate_ic_timed, simulate_lt_timed
from .triggering import (
    ICTriggering,
    LTTriggering,
    TriggeringDistribution,
    TriggeringModel,
    reachable_from,
)

__all__ = [
    "DiffusionModel",
    "get_model",
    "seeds_to_array",
    "IndependentCascade",
    "LinearThreshold",
    "check_lt_feasible",
    "TriggeringModel",
    "TriggeringDistribution",
    "ICTriggering",
    "LTTriggering",
    "reachable_from",
    "SpreadEstimate",
    "estimate_spread",
    "spread_with_ci",
    "singleton_spreads",
    "exact_spread_ic",
    "exact_spread_lt",
    "exact_optimum",
    "TimedCascade",
    "simulate_ic_timed",
    "simulate_lt_timed",
]
