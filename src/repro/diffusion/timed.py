"""Cascades with activation timestamps.

The paper's diffusion process is a discrete-time one — "suppose that node
u is first activated at slot i, then u has a single chance to activate
each outgoing neighbor v at time slot i + 1".  The plain simulators only
return *who* activates; this module also returns *when*, which downstream
applications need (e.g. deadline-constrained influence, animation of a
campaign, or validating that the round-based and live-edge simulators
agree on dynamics, not just reach).

Activation times are reported as an int array over all nodes, with ``-1``
for nodes never activated and ``0`` for the seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..graphs.digraph import DirectedGraph
from .base import seeds_to_array
from .lt import check_lt_feasible

__all__ = ["TimedCascade", "simulate_ic_timed", "simulate_lt_timed"]


@dataclass(frozen=True)
class TimedCascade:
    """One cascade with per-node activation rounds.

    Attributes
    ----------
    activation_round:
        Length-``n`` int array; ``-1`` = never activated, ``0`` = seed,
        ``t`` = first activated at time slot ``t``.
    """

    activation_round: np.ndarray

    @property
    def activated(self) -> np.ndarray:
        """Ids of all activated nodes, sorted."""
        return np.flatnonzero(self.activation_round >= 0)

    @property
    def size(self) -> int:
        """Number of activated nodes."""
        return int((self.activation_round >= 0).sum())

    @property
    def duration(self) -> int:
        """Last round in which a node activated (0 when only seeds)."""
        if self.size == 0:
            return 0
        return int(self.activation_round.max())

    def activated_at(self, round_index: int) -> np.ndarray:
        """Nodes first activated exactly at ``round_index``."""
        return np.flatnonzero(self.activation_round == round_index)


def _gather_frontier_edges(graph: DirectedGraph, frontier: np.ndarray):
    starts = graph.out_indptr[frontier]
    counts = graph.out_indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return None
    offsets = np.repeat(starts, counts)
    within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    return offsets + within


def simulate_ic_timed(
    graph: DirectedGraph,
    seeds: Iterable[int],
    rng: np.random.Generator,
) -> TimedCascade:
    """IC cascade with activation rounds (same process as
    :class:`~repro.diffusion.ic.IndependentCascade`)."""
    seed_arr = seeds_to_array(seeds, graph.num_nodes)
    rounds = np.full(graph.num_nodes, -1, dtype=np.int64)
    rounds[seed_arr] = 0
    frontier = seed_arr
    current = 0
    while frontier.size:
        edge_idx = _gather_frontier_edges(graph, frontier)
        if edge_idx is None:
            break
        success = rng.random(edge_idx.size) < graph.out_probs[edge_idx]
        hit = np.unique(graph.out_indices[edge_idx[success]])
        newly = hit[rounds[hit] == -1]
        current += 1
        rounds[newly] = current
        frontier = newly.astype(np.int64)
    return TimedCascade(activation_round=rounds)


def simulate_lt_timed(
    graph: DirectedGraph,
    seeds: Iterable[int],
    rng: np.random.Generator,
) -> TimedCascade:
    """LT cascade with activation rounds (same process as
    :class:`~repro.diffusion.lt.LinearThreshold`)."""
    check_lt_feasible(graph)
    seed_arr = seeds_to_array(seeds, graph.num_nodes)
    n = graph.num_nodes
    rounds = np.full(n, -1, dtype=np.int64)
    rounds[seed_arr] = 0
    thresholds = rng.random(n)
    thresholds[thresholds == 0.0] = np.finfo(np.float64).tiny
    accumulated = np.zeros(n, dtype=np.float64)
    frontier = seed_arr
    current = 0
    while frontier.size:
        edge_idx = _gather_frontier_edges(graph, frontier)
        if edge_idx is None:
            break
        targets = graph.out_indices[edge_idx]
        np.add.at(accumulated, targets, graph.out_probs[edge_idx])
        candidates = np.unique(targets)
        candidates = candidates[rounds[candidates] == -1]
        newly = candidates[accumulated[candidates] >= thresholds[candidates]]
        current += 1
        rounds[newly] = current
        frontier = newly.astype(np.int64)
    return TimedCascade(activation_round=rounds)
