"""Monte-Carlo estimation of the influence spread ``sigma(S)``.

Computing the exact spread is #P-hard under both IC and LT (Chen et al.),
so the standard estimator averages cascade sizes over independent
simulations.  :func:`estimate_spread` reports the mean together with its
standard error so callers can reason about estimation noise, and
:func:`spread_with_ci` adds a normal-approximation confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..graphs.digraph import DirectedGraph
from .base import DiffusionModel

__all__ = ["SpreadEstimate", "estimate_spread", "spread_with_ci", "singleton_spreads"]


@dataclass(frozen=True)
class SpreadEstimate:
    """Result of a Monte-Carlo spread estimation."""

    mean: float
    stderr: float
    num_samples: int

    def ci(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval at ``z`` sigmas."""
        return (self.mean - z * self.stderr, self.mean + z * self.stderr)


def estimate_spread(
    graph: DirectedGraph,
    seeds: Iterable[int],
    model: DiffusionModel,
    num_samples: int,
    rng: np.random.Generator,
) -> SpreadEstimate:
    """Estimate ``sigma(seeds)`` by averaging ``num_samples`` cascades."""
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    seed_list = list(seeds)
    sizes = np.empty(num_samples, dtype=np.float64)
    for i in range(num_samples):
        sizes[i] = model.simulate(graph, seed_list, rng).size
    mean = float(sizes.mean())
    stderr = float(sizes.std(ddof=1) / np.sqrt(num_samples)) if num_samples > 1 else 0.0
    return SpreadEstimate(mean=mean, stderr=stderr, num_samples=num_samples)


def spread_with_ci(
    graph: DirectedGraph,
    seeds: Iterable[int],
    model: DiffusionModel,
    num_samples: int,
    rng: np.random.Generator,
    z: float = 1.96,
) -> tuple[float, tuple[float, float]]:
    """Convenience wrapper returning ``(mean, (low, high))``."""
    est = estimate_spread(graph, seeds, model, num_samples, rng)
    return est.mean, est.ci(z)


def singleton_spreads(
    graph: DirectedGraph,
    model: DiffusionModel,
    num_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Monte-Carlo estimate of ``sigma({v})`` for every node ``v``.

    Used to validate Lemma 3: the expected RR-set size equals the average
    singleton spread ``(1/n) * sum_v sigma({v})``.
    """
    n = graph.num_nodes
    means = np.zeros(n, dtype=np.float64)
    for v in range(n):
        means[v] = estimate_spread(graph, [v], model, num_samples, rng).mean
    return means
