"""Forward simulation of the linear threshold (LT) model.

Every node ``v`` draws a threshold ``lambda_v ~ U[0, 1]`` once per cascade.
An inactive node activates as soon as the summed probabilities of its
*active* in-neighbors reach the threshold:
``sum_{u in A_v^in} p_{u,v} >= lambda_v``.

The model requires ``sum_{u in N_v^in} p_{u,v} <= 1`` for every node; the
constructor of :class:`LinearThreshold` checks this lazily per graph (with
a small tolerance) and raises on violation, because running LT on an
invalid weighting silently distorts spreads.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..graphs.digraph import DirectedGraph
from .base import DiffusionModel, seeds_to_array

__all__ = ["LinearThreshold", "check_lt_feasible"]

_LT_TOLERANCE = 1e-9


def check_lt_feasible(graph: DirectedGraph) -> None:
    """Raise ``ValueError`` unless incoming probabilities sum to <= 1."""
    sums = graph.in_probability_sums()
    worst = float(sums.max()) if sums.size else 0.0
    if worst > 1.0 + _LT_TOLERANCE:
        raise ValueError(
            f"LT model requires sum of incoming probabilities <= 1 per node; "
            f"worst node has {worst:.6f}"
        )


class LinearThreshold(DiffusionModel):
    """The LT model of Kempe et al. (KDD 2003)."""

    name = "lt"

    def simulate(
        self,
        graph: DirectedGraph,
        seeds: Iterable[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        check_lt_feasible(graph)
        seed_arr = seeds_to_array(seeds, graph.num_nodes)
        n = graph.num_nodes
        active = np.zeros(n, dtype=bool)
        active[seed_arr] = True
        # Thresholds are sampled up front; a node with accumulated incoming
        # weight >= threshold activates.  thresholds are in (0, 1]: a zero
        # threshold would activate nodes with no active in-neighbors, which
        # the model forbids, so we nudge exact zeros up.
        thresholds = rng.random(n)
        thresholds[thresholds == 0.0] = np.finfo(np.float64).tiny
        accumulated = np.zeros(n, dtype=np.float64)

        indptr, indices, probs = graph.out_indptr, graph.out_indices, graph.out_probs
        frontier = seed_arr
        while frontier.size:
            starts = indptr[frontier]
            stops = indptr[frontier + 1]
            counts = stops - starts
            total = int(counts.sum())
            if total == 0:
                break
            offsets = np.repeat(starts, counts)
            within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
            edge_idx = offsets + within
            targets = indices[edge_idx]
            np.add.at(accumulated, targets, probs[edge_idx])
            candidates = np.unique(targets)
            candidates = candidates[~active[candidates]]
            newly = candidates[accumulated[candidates] >= thresholds[candidates]]
            active[newly] = True
            frontier = newly
        return np.flatnonzero(active)
